//! SPAIN-style multipath on the §6 prototype: build one VLAN spanning
//! tree per switch, then steer the same RPC over the direct two-switch
//! path and over every indirect three-switch detour, measuring each.
//!
//! Run with `cargo run --release --example spain_multipath`.

use quartz::netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz::netsim::time::SimTime;
use quartz::topology::builders::prototype_quartz;
use quartz::topology::spain::SpainFabric;

fn main() {
    let p = prototype_quartz();
    let spain = SpainFabric::per_switch(&p.net);
    let (src, dst) = (p.hosts[2], p.hosts[4]); // S2-host → S3-host

    println!("SPAIN path choices for {src} → {dst} (links incl. host hops):");
    for (vlan, len) in spain.path_choices(src, dst) {
        println!(
            "  VLAN {vlan} (tree rooted at {}): {len} links",
            spain.root(vlan)
        );
    }
    println!(
        "best VLAN: {}\n",
        spain.best_vlan(src, dst).expect("reachable")
    );

    println!("measured RPC round trips per VLAN:");
    for vlan in 0..spain.vlans() {
        let mut sim = Simulator::new(
            p.net.clone(),
            SimConfig {
                prop_delay_ns: 0,
                ..SimConfig::default()
            },
        );
        let t = sim.add_route_table(spain.table(vlan).clone());
        let f = sim.add_flow(
            src,
            dst,
            100,
            FlowKind::Rpc { count: 500 },
            0,
            SimTime::ZERO,
        );
        sim.pin_flow_to_table(f, t);
        sim.run(SimTime::from_ms(100));
        let s = sim.stats().summary(0);
        println!("  VLAN {vlan}: mean RTT {:.2} µs", s.mean_us());
    }
    println!("\nThe VLANs rooted at S2/S3 ride the direct mesh channel; the others pay one extra switch — exactly the knob the prototype used (§6).");
}
