//! Throughput analysis of a MapReduce-style shuffle (§5.1): how much of
//! the ideal bisection bandwidth does a Quartz mesh deliver on incast and
//! rack-level shuffle patterns, and what detour fraction should VLB use?
//!
//! Run with `cargo run --release --example mapreduce_shuffle`.

use quartz::core::routing::RoutingPolicy;
use quartz::flowsim::fabric::{OversubscribedFabric, QuartzFabric};
use quartz::flowsim::matrix::{incast, rack_shuffle};
use quartz::flowsim::throughput::normalized_throughput;

fn main() {
    let (racks, hpr) = (16, 8);
    let hosts = racks * hpr;

    println!("Incast 10:1 (the MapReduce shuffle stage), {hosts} hosts:");
    let d = incast(hosts, 10, 7);
    for k in [0.0, 0.25, 0.5, 0.75] {
        let policy = if k == 0.0 {
            RoutingPolicy::EcmpDirect
        } else {
            RoutingPolicy::vlb(k)
        };
        let f = QuartzFabric {
            racks,
            hosts_per_rack: hpr,
            channel_cap: 1.0,
            policy: policy.into(),
        };
        let t = normalized_throughput(&f, &d);
        println!("  {policy:<18} normalized throughput {:.3}", t.normalized);
    }

    println!("\nRack-level shuffle (VM rebalancing), 4 target racks:");
    let d = rack_shuffle(racks, hpr, 4, 7);
    for (name, t) in [
        (
            "Quartz ECMP",
            normalized_throughput(
                &QuartzFabric {
                    racks,
                    hosts_per_rack: hpr,
                    channel_cap: 1.0,
                    policy: RoutingPolicy::EcmpDirect.into(),
                },
                &d,
            ),
        ),
        (
            "Quartz VLB k=0.75",
            normalized_throughput(
                &QuartzFabric {
                    racks,
                    hosts_per_rack: hpr,
                    channel_cap: 1.0,
                    policy: RoutingPolicy::vlb(0.75).into(),
                },
                &d,
            ),
        ),
        (
            "1/2 bisection Clos",
            normalized_throughput(
                &OversubscribedFabric {
                    racks,
                    hosts_per_rack: hpr,
                    oversub: 2.0,
                },
                &d,
            ),
        ),
    ] {
        println!("  {name:<18} normalized throughput {:.3}", t.normalized);
    }
    println!("\nVLB turns concentrated rack-pair traffic into spread load — §3.4's Figure 7(b).");
}
