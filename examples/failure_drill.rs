//! A live failure drill (§3.5 in action): cut a fiber mid-simulation,
//! watch traffic drop, reconverge routing, and watch it flow again over
//! a two-hop detour.
//!
//! Run with `cargo run --release --example failure_drill`.

use quartz::netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz::netsim::time::SimTime;
use quartz::topology::builders::quartz_mesh;

fn main() {
    let q = quartz_mesh(6, 2, 10.0, 10.0);
    let mut sim = Simulator::new(q.net.clone(), SimConfig::default());
    let stop = SimTime::from_ms(30);
    sim.add_flow(
        q.hosts[0], // under switch 0
        q.hosts[2], // under switch 1
        400,
        FlowKind::Poisson {
            mean_gap_ns: 4_000.0,
            stop,
            respond: false,
        },
        0,
        SimTime::ZERO,
    );

    // T+10 ms: backhoe finds the direct S0–S1 channel.
    let direct = q.net.link_between(q.switches[0], q.switches[1]).unwrap();
    sim.fail_link_at(direct, SimTime::from_ms(10));

    sim.run(SimTime::from_ms(10));
    let healthy = (sim.stats().delivered, sim.stats().dropped);
    println!(
        "t=10ms  delivered {:>6}  dropped {:>4}  (healthy)",
        healthy.0, healthy.1
    );

    sim.run(SimTime::from_ms(20));
    let cut = (sim.stats().delivered, sim.stats().dropped);
    println!(
        "t=20ms  delivered {:>6}  dropped {:>4}  (fiber cut, routes stale)",
        cut.0, cut.1
    );

    sim.reroute();
    sim.run(SimTime::from_ms(35));
    let after = (sim.stats().delivered, sim.stats().dropped);
    println!(
        "t=30ms  delivered {:>6}  dropped {:>4}  (reconverged via 2-hop detour)",
        after.0, after.1
    );

    let s = sim.stats().summary(0);
    println!(
        "\nmean latency {:.2} µs, p99 {:.2} µs — detour packets pay one extra switch",
        s.mean_us(),
        s.p99_ns as f64 / 1e3
    );
    println!("With two physical rings, the cut wouldn't even cost this much (Figure 6).");
}
