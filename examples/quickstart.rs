//! Quickstart: design a Quartz ring, plan its wavelengths and optics,
//! and check the §3 headline numbers.
//!
//! Run with `cargo run --release --example quickstart`.

use quartz::core::routing::pair_capacity_channels;
use quartz::core::{QuartzRing, RoutingPolicy};

fn main() {
    // The paper's flagship element: 33 low-latency 64-port switches,
    // 32 server ports and 32 ring transceivers each (§3.2).
    let ring = QuartzRing::paper_config(33).expect("feasible design");
    println!("Quartz ring of {} switches", ring.switches());
    println!("  server ports          : {}", ring.server_ports());
    println!("  max switch hops       : {}", ring.max_switch_hops());
    println!("  rack-pair oversub     : {}:1", ring.oversubscription());

    // Wavelength planning (§3.1) — a one-time, design-time event.
    let plan = ring.assign_channels();
    plan.validate().expect("conflict-free plan");
    println!("  wavelengths required  : {}", plan.wavelengths_used());
    println!("  WDM muxes per switch  : {}", plan.muxes_per_switch(80));
    println!("  grid                  : {}", plan.grid.name());

    // Optical feasibility (§3.3): amplifier placement and power budget.
    let optics = ring.optical_plan().expect("power budget satisfiable");
    println!("  amplifiers on the ring: {}", optics.amplifier_count());
    println!("  worst path margin     : {}", optics.worst_margin());

    // Routing policy (§3.4): ECMP takes the single direct hop; VLB
    // unlocks the two-hop detour capacity.
    let m = ring.switches();
    println!(
        "  pair capacity         : {}x direct, {}x with VLB",
        pair_capacity_channels(m, RoutingPolicy::EcmpDirect),
        pair_capacity_channels(m, RoutingPolicy::vlb(0.5)),
    );
}
