//! The §6.1 prototype experiment as a library user would run it: a
//! ping-pong RPC on the four-switch Quartz mesh, with bursty cross
//! traffic aimed at the RPC destination's switch — then the same
//! hardware rewired as a two-tier tree.
//!
//! Run with `cargo run --release --example rpc_cross_traffic`.

use quartz::netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz::netsim::time::SimTime;
use quartz::topology::builders::{prototype_quartz, prototype_two_tier};

fn main() {
    let horizon = SimTime::from_ms(2_000);
    let cross_mbps = 150.0;
    let period_ns = (20.0 * 1500.0 * 8.0 / (cross_mbps / 1000.0)) as u64;

    for wiring in ["quartz", "two-tier tree"] {
        let (net, rpc, cross) = if wiring == "quartz" {
            let p = prototype_quartz();
            (
                p.net,
                (p.hosts[2], p.hosts[4]),
                vec![(p.hosts[0], p.hosts[5]), (p.hosts[1], p.hosts[5])],
            )
        } else {
            let p = prototype_two_tier();
            (
                p.net,
                (p.hosts[0], p.hosts[2]),
                vec![(p.hosts[4], p.hosts[3]), (p.hosts[5], p.hosts[3])],
            )
        };
        let mut sim = Simulator::new(net, SimConfig::default());
        sim.add_flow(
            rpc.0,
            rpc.1,
            100,
            FlowKind::Rpc { count: 2_000 },
            0,
            SimTime::ZERO,
        );
        for (s, d) in cross {
            sim.add_flow(
                s,
                d,
                1_500,
                FlowKind::Burst {
                    burst_pkts: 20,
                    period_ns,
                    stop: horizon,
                },
                1,
                SimTime::ZERO,
            );
        }
        sim.run(horizon);
        let s = sim.stats().summary(0);
        println!(
            "{wiring:>14}: RPC RTT mean {:.2} µs (p99 {:.2} µs, {} calls, {} drops)",
            s.mean_us(),
            s.p99_ns as f64 / 1e3,
            s.count,
            sim.stats().dropped,
        );
    }
    println!("\nThe mesh isolates the RPC from cross-traffic; the tree funnels everything through its root (Figure 14).");
}
