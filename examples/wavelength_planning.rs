//! Wavelength planning in depth (§3.1): greedy vs exact assignment, the
//! physical ITU wavelengths each switch pair gets, and the power budget
//! along the worst lightpath.
//!
//! Run with `cargo run --release --example wavelength_planning`.

use quartz::core::channel::bounds::load_lower_bound;
use quartz::core::channel::exact::{solve, ExactStatus};
use quartz::core::channel::{greedy, Pair};
use quartz::optics::ring::RingOpticalPlan;

fn main() {
    let m = 9;
    println!(
        "Ring of {m} switches — all {} pairs need channels.\n",
        m * (m - 1) / 2
    );

    let g = greedy::assign_best(m);
    let e = solve(m, 50_000_000);
    println!(
        "greedy: {} wavelengths; exact: {} ({}); load bound: {}",
        g.channels_used(),
        e.channels,
        match e.status {
            ExactStatus::Optimal => "proven optimal",
            ExactStatus::BudgetExhausted => "best found",
        },
        load_lower_bound(m),
    );

    // Physical wavelengths for a few pairs, on the DWDM grid.
    let ring = quartz::core::QuartzRing::new(m, 4, m - 1, 10.0).unwrap();
    let plan = ring.assign_channels();
    plan.validate().unwrap();
    println!("\nSample channel assignments ({}):", plan.grid.name());
    for (a, b) in [(0, 1), (0, 4), (2, 7)] {
        let pair = Pair::new(a, b);
        let (dir, ch) = plan.assignment.lookup(pair).unwrap();
        let w = plan.wavelength_of(pair).unwrap();
        println!("  λ{a}{b}: channel {ch} = {w} ({dir:?} arc)");
    }

    // Optical feasibility for the same ring.
    let optics = RingOpticalPlan::paper_plan(m).unwrap();
    println!(
        "\nOptics: {} amplifiers, {} dB receiver pad, worst margin {}",
        optics.amplifier_count(),
        optics.receiver_pad().attenuation.value(),
        optics.worst_margin(),
    );
    let path = optics.lightpath(0, m / 2);
    println!(
        "Longest lightpath traverses {} elements end to end.",
        path.elements.len()
    );
}
