//! A head-to-head latency shootout: run the same scatter workload on the
//! five §7 architectures and watch where the microseconds go.
//!
//! Run with `cargo run --release --example latency_comparison`.

use quartz::netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz::netsim::time::SimTime;
use quartz::topology::builders::{
    jellyfish, quartz_in_core, quartz_in_edge, quartz_in_edge_and_core, three_tier,
};
use quartz::topology::graph::{Network, NodeId};

fn scatter(net: Network, hosts: Vec<NodeId>, name: &str) {
    let mut sim = Simulator::new(net, SimConfig::default());
    let stop = SimTime::from_ms(3);
    // One sender scatters 400 B packets to 15 receivers spread across
    // the whole network (global traffic, as in Figure 17) at ~6 Gb/s.
    for &dst in hosts.iter().skip(1).step_by(4).take(15) {
        sim.add_flow(
            hosts[0],
            dst,
            400,
            FlowKind::Poisson {
                mean_gap_ns: 8_000.0,
                stop,
                respond: false,
            },
            0,
            SimTime::ZERO,
        );
    }
    sim.run(stop + 2_000_000);
    let s = sim.stats().summary(0);
    println!(
        "{name:<28} mean {:>6.2} µs   p99 {:>6.2} µs",
        s.mean_us(),
        s.p99_ns as f64 / 1e3
    );
}

fn main() {
    println!("Scatter task, 64-host instances of the Figure 15 architectures:\n");
    let t = three_tier(8, 2, 4, 2, 10.0, 40.0);
    scatter(t.net, t.hosts, "Three-tier multi-root tree");
    let j = jellyfish(16, 4, 4, 10.0, 10.0, 71);
    scatter(j.net, j.hosts, "Jellyfish");
    let q = quartz_in_core(8, 2, 4, 4);
    scatter(q.net, q.hosts, "Quartz in core");
    let q = quartz_in_edge(4, 4, 4, 2);
    scatter(q.net, q.hosts, "Quartz in edge");
    let q = quartz_in_edge_and_core(4, 4, 4, 4);
    scatter(q.net, q.hosts, "Quartz in edge and core");
    println!("\nThe 6 µs store-and-forward core dominates wherever it remains on the path (§7.1).");
}
