//! Incremental deployment (§8): grow a Quartz ring one rack at a time
//! and price each step — the argument against buying a mostly-empty core
//! chassis up front.
//!
//! Run with `cargo run --release --example incremental_growth`.

use quartz::core::scalability::{expansion_step, max_mesh_server_ports};

fn main() {
    println!("Growing a Quartz ring one switch at a time (greedy re-planning):\n");
    println!("  step    new pairs  re-tuned  wavelengths");
    for m in 4..=16 {
        let s = expansion_step(m);
        println!(
            "  {:>2}→{:<3}  {:>8}  {:>8}  {:>3} → {:<3}",
            s.from, s.to, s.added, s.retuned, s.wavelengths.0, s.wavelengths.1
        );
    }
    println!("\nEach step provisions the new switch's transceivers and re-tunes a");
    println!("bounded set of existing channels — no forklift, no empty chassis.");

    println!("\nHow far the element scales as cut-through port counts grow (§8):\n");
    for ports in [16usize, 32, 64, 128, 256] {
        println!(
            "  {ports:>3}-port switches → up to {:>5} server ports per element",
            max_mesh_server_ports(ports)
        );
    }
    println!("\n(The fiber's 160-channel budget caps the ring at 35 switches — after");
    println!("that, more ports per switch only widen each rack, §3.1.)");
}
