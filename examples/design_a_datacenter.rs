//! The §4.4 configurator as a tool: given a datacenter size and expected
//! utilization, what does Quartz cost and save? Also shows fault
//! tolerance (§3.5) for the recommended ring design.
//!
//! Run with `cargo run --release --example design_a_datacenter`.

use quartz::core::fault::FailureModel;
use quartz::cost::catalog::PriceCatalog;
use quartz::cost::configurator::{configure, DatacenterSize, Utilization};

fn main() {
    let catalog = PriceCatalog::era_2014();
    println!("Configurator (Table 8) under the 2014 catalog:\n");
    for row in configure(&catalog) {
        let premium = row.quartz_cost / row.baseline_cost - 1.0;
        println!(
            "{:?} / {:?}: {} (${:.0}/server) → {} (${:.0}/server, {:+.1}%), latency −{:.0}%",
            row.size,
            row.utilization,
            row.baseline.name(),
            row.baseline_cost,
            row.quartz.name(),
            row.quartz_cost,
            premium * 100.0,
            row.latency_reduction * 100.0,
        );
    }

    // The same question five years out, with WDM prices down 4x
    // (Figure 1's decline rate makes that less than four years).
    let future = catalog.with_wdm_scale(0.25);
    println!("\nWith WDM gear at a quarter of 2014 prices:\n");
    for row in configure(&future) {
        if matches!(row.size, DatacenterSize::Small) && row.utilization == Utilization::High {
            let premium = row.quartz_cost / row.baseline_cost - 1.0;
            println!(
                "Small/High: premium falls to {:+.1}% for a {:.0}% latency cut",
                premium * 100.0,
                row.latency_reduction * 100.0
            );
        }
    }

    // Reliability of the recommended medium design's rings (§3.5).
    println!("\nFault tolerance of a 33-switch ring (Monte Carlo, 4 cuts):");
    for rings in 1..=2 {
        let r = FailureModel::new(33, rings).monte_carlo(4, 5_000, 42);
        println!(
            "  {rings} physical ring(s): bandwidth loss {:.1}%, partition probability {:.4}",
            r.mean_bandwidth_loss * 100.0,
            r.partition_probability
        );
    }
}
