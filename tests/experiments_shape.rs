//! Shape tests for every reproduced table and figure: each experiment is
//! run at `Quick` scale and its qualitative conclusions — who wins, in
//! what order, where the knees are — are asserted. These are the claims
//! EXPERIMENTS.md records; a regression here means the reproduction no
//! longer tells the paper's story.

use quartz_bench::experiments::*;
use quartz_bench::Scale;

#[test]
fn fig01_cost_declines_exponentially() {
    let rows = fig01::run(Scale::Quick);
    assert!(rows.len() >= 5);
    assert!(rows.first().unwrap().2 / rows.last().unwrap().2 >= 1_000.0);
}

#[test]
fn table02_standard_vs_state_of_art() {
    let rows = table02::run(Scale::Quick);
    // Every component except congestion improves by at least 4x.
    for (name, std, soa) in &rows[..3] {
        assert!(
            *std >= 4 * *soa,
            "{name}: {std} vs {soa} — state of the art must win"
        );
    }
}

#[test]
fn fig05_greedy_tracks_optimal() {
    let rows = fig05::run(Scale::Quick);
    for r in &rows {
        assert!(r.greedy >= r.lower_bound, "m={}", r.m);
        if let Some(opt) = r.optimal {
            assert!(r.greedy >= opt && opt >= r.lower_bound, "m={}", r.m);
            // "nearly as well as the optimal solution": within 25 %.
            assert!(
                r.greedy as f64 <= opt as f64 * 1.25,
                "m={}: greedy {} vs optimal {opt}",
                r.m,
                r.greedy
            );
        }
    }
}

#[test]
fn fig06_more_rings_help() {
    let grid = fig06::run(Scale::Quick);
    // Bandwidth loss falls with ring count (column-wise).
    #[allow(clippy::needless_range_loop)] // f and r index a 2-D grid
    for f in 0..4 {
        for r in 1..4 {
            assert!(
                grid[r][f].mean_bandwidth_loss < grid[r - 1][f].mean_bandwidth_loss,
                "rings {} vs {} at {} failures",
                r + 1,
                r,
                f + 1
            );
        }
    }
    // One ring partitions with ≥ 2 failures; two rings almost never do.
    assert!(grid[0][1].partition_probability > 0.9);
    assert!(grid[1][3].partition_probability < 0.05);
}

#[test]
fn table08_structure() {
    let rows = table08::run(Scale::Quick);
    assert_eq!(rows.len(), 6);
    for r in &rows {
        assert!(r.latency_reduction > 0.0);
        // Quartz never more than ~25 % premium, sometimes free.
        let premium = r.quartz_cost / r.baseline_cost - 1.0;
        assert!(premium < 0.25, "{premium}");
    }
}

#[test]
fn table09_orderings() {
    let rows = table09::run(Scale::Quick);
    let find = |name: &str| rows.iter().find(|r| r.name.contains(name)).unwrap().clone();
    let mesh = find("Mesh");
    let tree = find("2-Tier");
    let bcube = find("BCube");
    // Mesh: fewest switch hops, most diversity; BCube pays server hops.
    assert_eq!(mesh.hops.switch_hops, 2);
    assert!(mesh.latency_us < tree.latency_us);
    assert!(bcube.latency_us > 10.0);
    assert!(mesh.path_diversity > tree.path_diversity);
    assert!(mesh.wiring_with_wdm.unwrap() < mesh.wiring);
}

#[test]
fn fig10_quartz_between_half_and_full() {
    for r in fig10::run(Scale::Quick) {
        assert!(r.quartz <= r.full + 1e-9, "{}", r.pattern);
        assert!(
            r.quartz > r.quarter,
            "{}: quartz {} vs quarter {}",
            r.pattern,
            r.quartz,
            r.quarter
        );
        assert!(r.half >= r.quarter, "{}", r.pattern);
    }
}

#[test]
fn fig14_tree_degrades_quartz_does_not() {
    let pts = fig14::run(Scale::Quick);
    let last = pts.last().unwrap();
    assert!(last.cross_mbps >= 200.0 - 1e-9);
    assert!(
        last.tree > 1.15,
        "tree should degrade under cross-traffic: {}",
        last.tree
    );
    assert!(
        last.quartz < 1.05,
        "quartz should be (nearly) unaffected: {}",
        last.quartz
    );
    assert!(last.tree > last.quartz);
}

#[test]
fn table16_constants() {
    let specs = table16::run(Scale::Quick);
    assert_eq!(specs.len(), 2);
    assert!(specs[0].latency_ns > 10 * specs[1].latency_ns);
}

#[test]
fn fig17_three_tier_worst_quartz_best() {
    let panels = fig17::run(Scale::Quick);
    for (w, panel) in panels {
        let latency_of = |arch: fig17::Arch| {
            panel
                .iter()
                .find(|(a, _)| *a == arch)
                .unwrap()
                .1
                .last()
                .unwrap()
                .1
        };
        let tree = latency_of(fig17::Arch::ThreeTier);
        let both = latency_of(fig17::Arch::QuartzInEdgeAndCore);
        let core = latency_of(fig17::Arch::QuartzInCore);
        assert!(
            both < 0.5 * tree,
            "{:?}: edge+core {both:.2} should halve tree {tree:.2}",
            w
        );
        assert!(core < tree, "{w:?}: core swap must help");
    }
}

#[test]
fn fig18_quartz_locality_beats_jellyfish() {
    let panels = fig18::run(Scale::Quick);
    for (w, panel) in panels {
        let latency_of = |arch: fig17::Arch| {
            panel
                .iter()
                .find(|(a, _)| *a == arch)
                .unwrap()
                .1
                .last()
                .unwrap()
                .1
        };
        let jf = latency_of(fig17::Arch::Jellyfish);
        let qjf = latency_of(fig17::Arch::QuartzInJellyfish);
        let qec = latency_of(fig17::Arch::QuartzInEdgeAndCore);
        // Quartz keeps the local task inside its ring: at or below the
        // random graph that cannot exploit locality.
        assert!(
            qjf <= jf * 1.35 && qec <= jf * 1.35,
            "{w:?}: quartz local {qjf:.2}/{qec:.2} vs jellyfish {jf:.2}"
        );
    }
}

#[test]
fn fig20_ecmp_saturates_vlb_does_not() {
    let pts = fig20::run(Scale::Quick);
    let designs = fig20::designs();
    let at = |gbps: f64, d: fig20::Design| {
        let p = pts.iter().find(|p| (p.gbps - gbps).abs() < 1e-9).unwrap();
        let i = designs.iter().position(|&x| x == d).unwrap();
        p.results[i]
    };
    use fig20::Design::*;
    // Below saturation everything is fine; the non-blocking switch pays
    // its store-and-forward 6 µs.
    let (nb10, _) = at(10.0, NonBlockingSwitch);
    let (ecmp10, _) = at(10.0, QuartzEcmp);
    assert!(nb10 > 6.0 && ecmp10 < 2.0);
    // At 50 Gb/s ECMP's direct 40 G channel is saturated: huge latency
    // and loss. VLB and the non-blocking switch stay flat.
    let (ecmp50, loss50) = at(50.0, QuartzEcmp);
    let (vlb50, vloss) = at(50.0, QuartzVlb);
    let (nb50, _) = at(50.0, NonBlockingSwitch);
    assert!(ecmp50 > 30.0 && loss50 > 0.05, "{ecmp50} {loss50}");
    assert!(vlb50 < 3.0 && vloss < 0.01, "{vlb50} {vloss}");
    assert!((nb50 - nb10).abs() < 1.0);
}

#[test]
fn ext01_topology_beats_protocol() {
    // §2.1.4 quantified: DCTCP halves-or-better the tree's probe tail;
    // the Quartz mesh beats both by an order of magnitude with plain
    // Reno, because no shared queue exists at all.
    let rows = ext01::run(Scale::Quick);
    let find = |name: &str| {
        rows.iter()
            .find(|r| r.config == name)
            .unwrap_or_else(|| panic!("missing row {name}"))
    };
    let tree_reno = find("Two-tier tree + Reno");
    let tree_dctcp = find("Two-tier tree + DCTCP");
    let quartz_reno = find("Quartz + Reno");
    assert!(tree_reno.drops > 0, "Reno must overflow the shared buffer");
    assert_eq!(tree_dctcp.drops, 0, "DCTCP must hold the queue under K");
    assert!(
        tree_dctcp.probe_p99_us < tree_reno.probe_p99_us / 2.0,
        "DCTCP should cut the tree tail: {} vs {}",
        tree_dctcp.probe_p99_us,
        tree_reno.probe_p99_us
    );
    assert!(
        quartz_reno.probe_p99_us < tree_dctcp.probe_p99_us / 10.0,
        "the mesh should beat DCTCP-on-tree: {} vs {}",
        quartz_reno.probe_p99_us,
        tree_dctcp.probe_p99_us
    );
}

#[test]
fn ext02_server_forwarding_is_the_latency_cliff() {
    let rows = ext02::run(Scale::Quick);
    let find = |name: &str| rows.iter().find(|r| r.name.contains(name)).unwrap();
    let quartz = find("Quartz");
    let bcube = find("BCube");
    let dcell = find("DCell");
    let camcube = find("CamCube");
    assert_eq!(quartz.hops.server_hops, 0);
    assert!(quartz.latency_us <= 1.0 + 1e-9);
    // Every server-centric design pays at least one 15 µs relay; CamCube
    // (switchless) is the worst.
    for r in [bcube, dcell, camcube] {
        assert!(r.hops.server_hops >= 1, "{}", r.name);
        assert!(r.latency_us > 10.0 * quartz.latency_us, "{}", r.name);
    }
    assert_eq!(camcube.hops.switch_hops, 0, "CamCube is switchless");
}

#[test]
fn ext03_request_time_halves_on_quartz() {
    // §1's motivating request: the dependent RPC stages amplify per-hop
    // latency; Quartz in edge+core roughly halves the tree's request
    // completion, with or without cross-traffic.
    let rows = ext03::run(Scale::Quick);
    let at = |arch: fig17::Arch, cross: usize| {
        rows.iter()
            .find(|r| r.arch == arch && r.cross_tasks == cross)
            .unwrap()
            .completion_us
    };
    for cross in [0usize, 2] {
        let tree = at(fig17::Arch::ThreeTier, cross);
        let quartz = at(fig17::Arch::QuartzInEdgeAndCore, cross);
        assert!(
            quartz < 0.6 * tree,
            "cross={cross}: quartz {quartz:.0} vs tree {tree:.0}"
        );
    }
}
