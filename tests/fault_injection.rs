//! Acceptance test of the dynamic fault-injection subsystem: a 33-switch
//! Quartz ring under steady Poisson traffic, one fiber cut mid-run.
//!
//! The pinned claims:
//! * the severed pair keeps receiving after the cut — packets reroute
//!   over surviving channels with measurable latency and hop stretch;
//! * the control plane's reconvergence time is finite and exactly the
//!   configured delay;
//! * two same-seed runs are bit-identical.

use quartz::netsim::faults::{ring_cut_scenario, CutScenarioConfig, FaultKind, FaultPlan};
use quartz::netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz::netsim::time::SimTime;
use quartz::topology::builders::quartz_mesh;

fn paper_scenario(seed: u64) -> CutScenarioConfig {
    CutScenarioConfig {
        switches: 33,
        hosts_per_switch: 1,
        cut_at: SimTime::from_ms(1),
        reconvergence_ns: 50_000,
        duration: SimTime::from_ms(3),
        mean_gap_ns: 4_000.0,
        background_pairs: 16,
        seed,
    }
}

#[test]
fn ring_cut_reroutes_severed_pair_over_surviving_channels() {
    let report = ring_cut_scenario(&paper_scenario(7));

    // Healthy phase: the pair talked over its 3-link direct path.
    assert!(report.pre.count > 100, "pre-cut traffic flowed");
    assert_eq!(report.pre_mean_hops, 3.0, "direct mesh path is 3 links");

    // After the cut, packets keep arriving — over a longer detour.
    assert!(
        report.post.count > 100,
        "severed pair still receives after the cut: {report:?}"
    );
    assert!(
        report.post_mean_hops > report.pre_mean_hops,
        "detour stretches the path: {} vs {}",
        report.post_mean_hops,
        report.pre_mean_hops
    );
    assert!(
        report.post.p50_ns > report.pre.p50_ns,
        "detour latency exceeds the direct path"
    );
    // Every post-cut delivery took a detour of ≥ 4 links.
    assert!(report
        .post_hop_distribution
        .iter()
        .all(|&(hops, _)| hops >= 4));

    // Reconvergence is finite and exactly the configured control-plane
    // delay; the outage cost a bounded number of packets.
    assert_eq!(report.reconvergence_ns, Some(50_000));
    assert!(report.drops_during_outage > 0, "the outage was not free");
    assert!(
        report.drops_during_outage < 100,
        "50 us of a 4 us-gap flow is tens of packets, not {}",
        report.drops_during_outage
    );
    assert_eq!(
        report.generated,
        report.delivered + report.dropped,
        "packet conservation"
    );
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let a = ring_cut_scenario(&paper_scenario(21));
    let b = ring_cut_scenario(&paper_scenario(21));
    assert_eq!(a, b, "same seed must reproduce the exact report");

    let c = ring_cut_scenario(&paper_scenario(22));
    assert_ne!(a, c, "a different seed perturbs the run");
}

#[test]
fn fault_plan_drives_the_simulator_fault_log() {
    // Cut two channels with one plan; auto-reconvergence closes both
    // records with the configured delay.
    let q = quartz_mesh(8, 1, 10.0, 10.0);
    let mut sim = Simulator::new(
        q.net.clone(),
        SimConfig {
            seed: 5,
            reconvergence_ns: Some(20_000),
            ..SimConfig::default()
        },
    );
    for (i, (a, b)) in [(0usize, 3usize), (2, 6), (5, 1)].into_iter().enumerate() {
        sim.add_flow(
            q.hosts[a],
            q.hosts[b],
            400,
            FlowKind::Poisson {
                mean_gap_ns: 8_000.0,
                stop: SimTime::from_ms(4),
                respond: false,
            },
            i as u32,
            SimTime::ZERO,
        );
    }
    let l03 = q.net.link_between(q.switches[0], q.switches[3]).unwrap();
    let l26 = q.net.link_between(q.switches[2], q.switches[6]).unwrap();
    let mut plan = FaultPlan::new();
    plan.link_down(l03, SimTime::from_ms(1))
        .link_down(l26, SimTime::from_us(1_500));
    sim.apply_fault_plan(&plan);
    sim.run(SimTime::from_ms(5));

    let log = sim.fault_log();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].kind, FaultKind::LinkDown(l03));
    assert_eq!(log[1].kind, FaultKind::LinkDown(l26));
    for rec in log {
        assert_eq!(
            rec.reconverged_at.map(|t| t - rec.at),
            Some(20_000),
            "each fault reconverges after the configured delay"
        );
    }
    // Both severed pairs kept talking end to end.
    let st = sim.stats();
    for tag in 0..2 {
        assert!(st.summary(tag).count > 200, "tag {tag} kept flowing");
        assert!(st.mean_hops(tag) > 3.0, "tag {tag} detoured");
    }
    assert_eq!(st.generated, st.delivered + st.dropped);
}
