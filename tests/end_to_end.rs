//! End-to-end integration: design a Quartz element, plan its wavelengths
//! and optics, build topologies around it, and verify with the packet
//! simulator that the headline claim holds — Quartz cuts latency and
//! shields traffic from cross-traffic congestion.

use quartz::core::channel::Pair;
use quartz::core::fault::FailureModel;
use quartz::core::QuartzRing;
use quartz::netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz::netsim::time::SimTime;
use quartz::topology::builders::{quartz_in_edge_and_core, three_tier};
use quartz::topology::metrics::{diameter_hops, latency_no_congestion_us};
use quartz::topology::route::RouteTable;

/// The full §3 design pipeline holds together for every legal ring size.
#[test]
fn design_pipeline_all_ring_sizes() {
    for m in [4usize, 9, 16, 24, 33] {
        let ring = QuartzRing::paper_config(m.min(33)).unwrap();
        let plan = ring.assign_channels();
        plan.validate().unwrap_or_else(|e| panic!("m={m}: {e}"));
        assert_eq!(
            plan.wavelengths_used(),
            ring.wavelengths_required(),
            "m={m}: plan and design disagree on wavelength count"
        );
        let optics = ring.optical_plan().unwrap();
        assert_eq!(optics.sites(), ring.switches());
        // Every pair has both a channel and a feasible lightpath.
        let (a, b) = (0, m.min(33) / 2);
        assert!(plan.assignment.lookup(Pair::new(a, b)).is_some());
    }
}

/// The paper's scalability arithmetic, checked across crates: a 33-switch
/// ring of 64-port switches mimics a 1056-port switch and needs two
/// physical fiber rings, which the fault model then exploits.
#[test]
fn scalability_and_fault_tolerance_compose() {
    let ring = QuartzRing::paper_config(33).unwrap();
    assert_eq!(ring.server_ports(), 1056);
    let rings = ring.physical_rings();
    assert_eq!(rings, 2);
    let fm = FailureModel::new(33, rings);
    let single = FailureModel::new(33, 1);
    let two = fm.monte_carlo(2, 2_000, 1);
    let one = single.monte_carlo(2, 2_000, 1);
    assert!(two.partition_probability < 0.01);
    assert!(one.partition_probability > 0.9);
}

/// Quartz in edge and core roughly halves scatter latency vs the
/// three-tier tree (§7.1, Figure 17) — the paper's headline.
#[test]
fn quartz_halves_three_tier_latency() {
    let mean_us = |net, hosts: Vec<_>| {
        let mut sim = Simulator::new(net, SimConfig::default());
        let stop = SimTime::from_ms(2);
        for &dst in hosts.iter().skip(1).step_by(4).take(12) {
            sim.add_flow(
                hosts[0],
                dst,
                400,
                FlowKind::Poisson {
                    mean_gap_ns: 8_000.0,
                    stop,
                    respond: false,
                },
                0,
                SimTime::ZERO,
            );
        }
        sim.run(stop + 2_000_000);
        sim.stats().summary(0).mean_us()
    };
    let t = three_tier(8, 2, 4, 2, 10.0, 40.0);
    let tree = mean_us(t.net, t.hosts);
    let q = quartz_in_edge_and_core(4, 4, 4, 4);
    let quartz = mean_us(q.net, q.hosts);
    assert!(
        quartz < 0.6 * tree,
        "expected ≥40% cut: tree {tree:.2} µs vs quartz {quartz:.2} µs"
    );
}

/// The static hop analysis (Table 9) agrees with what the simulator
/// measures at near-zero load.
#[test]
fn analytic_and_simulated_latency_agree_unloaded() {
    let q = quartz_in_edge_and_core(2, 4, 2, 4);
    let table = RouteTable::all_shortest_paths(&q.net);
    let hops = diameter_hops(&q.net, &table);
    // Worst path: 2 edge-ring switches + 2 core-ring switches.
    assert_eq!(hops.switch_hops, 4);
    let analytic_us = latency_no_congestion_us(hops, 0.38, 15.0);

    // Simulate one packet along a worst-case pair (hosts in different
    // rings) and compare within serialization slack.
    let mut sim = Simulator::new(
        q.net.clone(),
        SimConfig {
            prop_delay_ns: 0,
            ..SimConfig::default()
        },
    );
    let src = q.hosts[0];
    let dst = *q.hosts.last().unwrap();
    sim.add_flow(
        src,
        dst,
        400,
        FlowKind::Poisson {
            mean_gap_ns: 1e9,
            stop: SimTime::from_ns(1),
            respond: false,
        },
        0,
        SimTime::ZERO,
    );
    sim.run(SimTime::from_ms(1));
    let sim_us = sim.stats().summary(0).mean_us();
    // Switch latencies dominate; serialization adds ≤ ~1 µs.
    assert!(
        (sim_us - analytic_us).abs() < 1.2,
        "sim {sim_us:.2} vs analytic {analytic_us:.2}"
    );
}

/// Packet conservation holds across a composite architecture under load.
#[test]
fn conservation_under_load() {
    let q = quartz_in_edge_and_core(4, 4, 2, 4);
    let mut sim = Simulator::new(q.net.clone(), SimConfig::default());
    let stop = SimTime::from_ms(2);
    for (i, w) in q.hosts.windows(2).enumerate() {
        sim.add_flow(
            w[0],
            w[1],
            400,
            FlowKind::Poisson {
                mean_gap_ns: 2_000.0,
                stop,
                respond: i % 2 == 0,
            },
            i as u32,
            SimTime::ZERO,
        );
    }
    sim.run(SimTime::from_ms(50));
    let st = sim.stats();
    assert!(st.generated > 10_000);
    assert_eq!(st.generated, st.delivered + st.dropped);
}
