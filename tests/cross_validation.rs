//! Cross-validation between the two performance models: the packet-level
//! simulator (`quartz-netsim`) and the flow-level max-min solver
//! (`quartz-flowsim`) must agree on steady-state throughput when driven
//! by the same demands on the same fabric — the strongest internal
//! consistency check the workspace has.

use quartz::core::routing::RoutingPolicy;
use quartz::flowsim::fabric::{Fabric, QuartzFabric};
use quartz::flowsim::waterfill::max_min_rates;
use quartz::netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz::netsim::switch::LatencyModel;
use quartz::netsim::time::SimTime;
use quartz::topology::builders::quartz_mesh;

/// Packet-level delivered rate per flow (in line-rate units) on a 4×2
/// mesh, offering `offer` line-rate units per flow.
///
/// The offer stays below the source NIC rate: a saturated source link
/// re-shapes Poisson traffic into deterministic back-to-back spacing,
/// and two such deterministic streams meeting at one drop-tail queue
/// phase-lock (one wins every freed slot) — physically real for
/// unrandomized senders, but not the regime the fluid model describes.
fn netsim_rates(demands: &[(usize, usize)], offer: f64) -> Vec<f64> {
    let q = quartz_mesh(4, 2, 10.0, 10.0);
    let mut sim = Simulator::new(
        q.net.clone(),
        SimConfig {
            prop_delay_ns: 0,
            latency: LatencyModel::ideal(),
            ..SimConfig::default()
        },
    );
    let run_ms = 40u64;
    let stop = SimTime::from_ms(run_ms);
    for (i, &(s, d)) in demands.iter().enumerate() {
        sim.add_flow(
            q.hosts[s],
            q.hosts[d],
            400,
            FlowKind::Poisson {
                mean_gap_ns: 320.0 / offer,
                stop,
                respond: false,
            },
            i as u32,
            SimTime::ZERO,
        );
    }
    sim.run(SimTime::from_ms(run_ms + 20));
    demands
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let delivered = sim.stats().summary(i as u32).count as f64;
            // bits delivered / simulated time, normalized to 10 Gb/s.
            delivered * 400.0 * 8.0 / (run_ms as f64 * 1e6) / 10.0
        })
        .collect()
}

/// Flow-level max-min prediction for the same demands.
fn flowsim_rates(demands: &[(usize, usize)]) -> Vec<f64> {
    let fabric = QuartzFabric {
        racks: 4,
        hosts_per_rack: 2,
        channel_cap: 1.0,
        policy: RoutingPolicy::EcmpDirect.into(),
    };
    max_min_rates(&fabric.problem(demands))
}

#[test]
fn packet_and_flow_models_agree_on_shared_channel() {
    // Two flows share the rack0→rack1 channel (fair split 0.5 each); a
    // third has the rack2→rack3 channel to itself. Offer 0.8 per flow:
    // the shared pair is bottleneck-governed (0.5 < 0.8), the lone flow
    // demand-governed (0.8 < 1.0).
    let offer = 0.8;
    let demands = vec![(0usize, 2usize), (1, 3), (4, 6)];
    let predicted = flowsim_rates(&demands);
    let measured = netsim_rates(&demands, offer);
    assert!((predicted[0] - 0.5).abs() < 1e-9);
    assert!((predicted[1] - 0.5).abs() < 1e-9);
    assert!(predicted[2] > 0.99);
    for (i, (p, m)) in predicted.iter().zip(&measured).enumerate() {
        let expect = p.min(offer); // the fluid model has no demand cap
        let err = (expect - m).abs() / expect;
        assert!(
            err < 0.12,
            "flow {i}: expected {expect:.3} vs netsim {m:.3} ({err:.2} rel err)"
        );
    }
}

#[test]
fn packet_and_flow_models_agree_on_incast() {
    // Both hosts of racks 0 and 1 target rack 2's first host: four flows
    // into one 10 G downlink → 0.25 each in both models. Offer 0.3 per
    // flow so only the shared downlink saturates (the intermediate
    // channels carry 0.6 and stay Poisson).
    let offer = 0.3;
    let demands = vec![(0usize, 4usize), (1, 4), (2, 4), (3, 4)];
    let predicted = flowsim_rates(&demands);
    let measured = netsim_rates(&demands, offer);
    for (i, (p, m)) in predicted.iter().zip(&measured).enumerate() {
        assert!((p - 0.25).abs() < 0.01, "prediction {p} for flow {i}");
        let err = (p - m).abs() / p;
        assert!(
            err < 0.12,
            "flow {i}: flowsim {p:.3} vs netsim {m:.3} ({err:.2} rel err)"
        );
    }
}
