//! Property-based tests on the core invariants, spanning crates.

use proptest::prelude::*;
use quartz::core::channel::bounds::load_lower_bound;
use quartz::core::channel::{all_pairs, greedy, Arc, Direction, Pair};
use quartz::flowsim::waterfill::{is_max_min, max_min_rates, Problem};
use quartz::netsim::transport::{ReceiverState, SendAction, SenderState, TcpVariant};
use quartz::topology::builders::jellyfish;
use quartz::topology::route::RouteTable;

proptest! {
    /// The greedy wavelength assignment is valid (complete and
    /// conflict-free) for every ring size and starting offset.
    #[test]
    fn greedy_assignment_always_valid(m in 2usize..24, start in 0usize..24) {
        let a = greedy::assign(m, start % m);
        prop_assert!(a.validate().is_ok());
        prop_assert_eq!(a.entries().len(), m * (m - 1) / 2);
        prop_assert!(a.channels_used() >= load_lower_bound(m));
    }

    /// A pair's clockwise and counter-clockwise arcs tile the ring: they
    /// are disjoint and jointly cover every fiber link.
    #[test]
    fn arcs_tile_the_ring(m in 2usize..40, x in 0usize..40, y in 0usize..40) {
        let (x, y) = (x % m, y % m);
        prop_assume!(x != y);
        let p = Pair::new(x, y);
        let cw = Arc::of(p, Direction::Cw, m);
        let ccw = Arc::of(p, Direction::Ccw, m);
        for link in 0..m {
            prop_assert!(cw.covers(link) != ccw.covers(link), "link {link}");
        }
        prop_assert_eq!(cw.len + ccw.len, m);
    }

    /// Link loads always sum to the total arc length of the assignment.
    #[test]
    fn link_loads_conserve_hops(m in 3usize..16) {
        let a = greedy::assign_best(m);
        let total: usize = a.link_loads().iter().sum();
        let arcs: usize = a
            .entries()
            .iter()
            .map(|(p, d, _)| Arc::of(*p, *d, m).len)
            .collect::<Vec<_>>()
            .iter()
            .sum();
        prop_assert_eq!(total, arcs);
        prop_assert_eq!(a.entries().len(), all_pairs(m).len());
    }

    /// The water-filling solver always produces a feasible, max-min fair
    /// allocation, for arbitrary problems.
    #[test]
    fn waterfill_is_always_max_min(
        caps in prop::collection::vec(0.5f64..20.0, 3..12),
        paths in prop::collection::vec(
            prop::collection::vec((0usize..12, 0.1f64..1.0), 1..4),
            1..30,
        ),
    ) {
        let mut p = Problem::default();
        for c in &caps {
            p.add_link(*c);
        }
        for path in paths {
            let mut seen = Vec::new();
            for (l, w) in path {
                let l = l % caps.len();
                if !seen.iter().any(|&(m, _)| m == l) {
                    seen.push((l, w));
                }
            }
            if !seen.is_empty() {
                p.add_flow(seen);
            }
        }
        let rates = max_min_rates(&p);
        prop_assert!(is_max_min(&p, &rates));
    }

    /// ECMP next hops strictly reduce distance to the destination on
    /// random (Jellyfish) topologies — no routing loops, ever.
    #[test]
    fn next_hops_strictly_progress(seed in 0u64..20) {
        let j = jellyfish(10, 3, 2, 10.0, 10.0, seed);
        let t = RouteTable::all_shortest_paths(&j.net);
        for a in j.net.hosts() {
            for b in j.net.hosts() {
                if a == b {
                    continue;
                }
                let d = t.path_len(a, b).unwrap();
                for &nh in t.next_hops(a, b) {
                    prop_assert_eq!(t.path_len(nh, b).unwrap(), d - 1);
                }
            }
        }
    }

    /// The transport state machine always completes a transfer over a
    /// lossy in-order pipe, for any loss pattern, using only the
    /// fast-retransmit and RTO mechanisms.
    #[test]
    fn transport_completes_under_arbitrary_loss(
        total in 1u64..200,
        dctcp in prop::bool::ANY,
        loss_bits in prop::collection::vec(prop::bool::ANY, 64),
    ) {
        let variant = if dctcp { TcpVariant::Dctcp } else { TcpVariant::Reno };
        let mut s = SenderState::new(variant, total);
        let mut r = ReceiverState::default();
        let mut wire: std::collections::VecDeque<u64> = Default::default();
        let mut last_epoch = 0u64;
        let mut drop_idx = 0usize;

        fn apply(
            acts: Vec<SendAction>,
            wire: &mut std::collections::VecDeque<u64>,
            last_epoch: &mut u64,
        ) {
            for a in acts {
                match a {
                    SendAction::SendData { seq } => wire.push_back(seq),
                    SendAction::ArmRto { epoch } => *last_epoch = epoch,
                    SendAction::Complete => {}
                }
            }
        }

        apply(s.pump(), &mut wire, &mut last_epoch);
        let mut guard = 0;
        while !s.is_complete() {
            guard += 1;
            prop_assert!(guard < 50_000, "deadlock under loss");
            match wire.pop_front() {
                Some(seq) => {
                    // Drop according to the random pattern (cycled).
                    let dropped = loss_bits[drop_idx % loss_bits.len()];
                    drop_idx += 1;
                    if dropped {
                        continue;
                    }
                    let ack = r.on_data(seq);
                    apply(s.on_ack(ack, false), &mut wire, &mut last_epoch);
                }
                None => {
                    // The wire drained without completing: fire the RTO.
                    let acts = s.on_rto(last_epoch);
                    prop_assert!(
                        !acts.is_empty(),
                        "a live timer must restart a stalled connection"
                    );
                    apply(acts, &mut wire, &mut last_epoch);
                }
            }
        }
    }
}
