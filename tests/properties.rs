//! Property-style tests on the core invariants, spanning crates.
//!
//! These were once `proptest` properties; they are now exhaustive or
//! seeded-random sweeps driven by the in-tree deterministic RNG, so the
//! workspace needs no external dependencies and every failure
//! reproduces exactly.

use quartz::core::channel::bounds::load_lower_bound;
use quartz::core::channel::{all_pairs, greedy, Arc, Direction, Pair};
use quartz::core::fault::FailureModel;
use quartz::core::rng::StdRng;
use quartz::flowsim::waterfill::{is_max_min, max_min_rates, Problem};
use quartz::netsim::transport::{ReceiverState, SendAction, SenderState, TcpVariant};
use quartz::topology::builders::jellyfish;
use quartz::topology::route::RouteTable;

/// The greedy wavelength assignment is valid (complete and
/// conflict-free) for every ring size and starting offset.
#[test]
fn greedy_assignment_always_valid() {
    for m in 2usize..24 {
        for start in 0..m {
            let a = greedy::assign(m, start);
            assert!(a.validate().is_ok(), "m={m} start={start}");
            assert_eq!(a.entries().len(), m * (m - 1) / 2);
            assert!(a.channels_used() >= load_lower_bound(m));
        }
    }
}

/// A pair's clockwise and counter-clockwise arcs tile the ring: they
/// are disjoint and jointly cover every fiber link.
#[test]
fn arcs_tile_the_ring() {
    for m in 2usize..40 {
        for x in 0..m {
            for y in (x + 1)..m {
                let p = Pair::new(x, y);
                let cw = Arc::of(p, Direction::Cw, m);
                let ccw = Arc::of(p, Direction::Ccw, m);
                for link in 0..m {
                    assert!(
                        cw.covers(link) != ccw.covers(link),
                        "m={m} pair=({x},{y}) link {link}"
                    );
                }
                assert_eq!(cw.len + ccw.len, m);
            }
        }
    }
}

/// Link loads always sum to the total arc length of the assignment.
#[test]
fn link_loads_conserve_hops() {
    for m in 3usize..16 {
        let a = greedy::assign_best(m);
        let total: usize = a.link_loads().iter().sum();
        let arcs: usize = a
            .entries()
            .iter()
            .map(|(p, d, _)| Arc::of(*p, *d, m).len)
            .sum();
        assert_eq!(total, arcs, "m={m}");
        assert_eq!(a.entries().len(), all_pairs(m).len());
    }
}

/// The water-filling solver always produces a feasible, max-min fair
/// allocation, for randomly generated problems.
#[test]
fn waterfill_is_always_max_min() {
    for case in 0u64..60 {
        let mut rng = StdRng::seed_from_u64(0x57A7 + case);
        let n_links = rng.random_range(3..12);
        let mut p = Problem::default();
        let caps: Vec<f64> = (0..n_links)
            .map(|_| 0.5 + rng.random::<f64>() * 19.5)
            .collect();
        for &c in &caps {
            p.add_link(c);
        }
        let n_flows = rng.random_range(1..30);
        for _ in 0..n_flows {
            let hops = rng.random_range(1..4);
            let mut seen: Vec<(usize, f64)> = Vec::new();
            for _ in 0..hops {
                let l = rng.random_range(0..n_links);
                let w = 0.1 + rng.random::<f64>() * 0.9;
                if !seen.iter().any(|&(m, _)| m == l) {
                    seen.push((l, w));
                }
            }
            p.add_flow(seen);
        }
        let rates = max_min_rates(&p);
        assert!(is_max_min(&p, &rates), "case {case}");
    }
}

/// ECMP next hops strictly reduce distance to the destination on
/// random (Jellyfish) topologies — no routing loops, ever.
#[test]
fn next_hops_strictly_progress() {
    for seed in 0u64..20 {
        let j = jellyfish(10, 3, 2, 10.0, 10.0, seed);
        let t = RouteTable::all_shortest_paths(&j.net);
        for a in j.net.hosts() {
            for b in j.net.hosts() {
                if a == b {
                    continue;
                }
                let d = t.path_len(a, b).unwrap();
                for &nh in t.next_hops(a, b) {
                    assert_eq!(t.path_len(nh, b).unwrap(), d - 1, "seed {seed}");
                }
            }
        }
    }
}

/// Failure-trial invariants hold for random mesh sizes, ring counts,
/// and failure sets: counts are bounded, probabilities live in [0, 1],
/// trials are deterministic, and the severed-pair list agrees with the
/// trial's loss count.
#[test]
fn failure_trial_invariants() {
    for case in 0u64..40 {
        let mut rng = StdRng::seed_from_u64(0xFA17 + case);
        let m = 3 + rng.random_range(0..20);
        let rings = 1 + rng.random_range(0..3);
        let model = FailureModel::new(m, rings);

        let cuts = rng.random_range(1..5);
        let broken: Vec<(usize, usize)> = (0..cuts)
            .map(|_| (rng.random_range(0..rings), rng.random_range(0..m)))
            .collect();

        let t = model.trial(&broken);
        let total = m * (m - 1) / 2;
        assert_eq!(t.total_pairs, total, "case {case}");
        assert!(t.lost_pairs <= total, "case {case}");
        assert_eq!(t, model.trial(&broken), "trial must be deterministic");
        assert_eq!(
            model.severed_pairs(&broken).len(),
            t.lost_pairs,
            "severed-pair list and loss count must agree (case {case})"
        );

        let d = model.trial_detours(&broken);
        assert_eq!(d.outcome, t, "case {case}");
        assert_eq!(d.detour_hops.len(), t.lost_pairs, "case {case}");
        assert!(
            d.detour_hops.iter().flatten().all(|&h| h >= 2),
            "a severed pair's detour takes at least two hops (case {case})"
        );
        if !t.partitioned {
            assert!(
                d.detour_hops.iter().all(Option::is_some),
                "unpartitioned ⇒ every severed pair has a detour (case {case})"
            );
            assert_eq!(
                d.hop_histogram.iter().sum::<usize>(),
                total,
                "histogram covers every pair (case {case})"
            );
        }
        assert!(d.mean_stretch() >= 1.0, "case {case}");

        let report = model.monte_carlo(cuts, 50, 0xBEEF + case);
        assert!(
            (0.0..=1.0).contains(&report.mean_bandwidth_loss),
            "case {case}"
        );
        assert!(
            (0.0..=1.0).contains(&report.partition_probability),
            "case {case}"
        );
        assert!(report.mean_detour_stretch >= 1.0, "case {case}");
        // A trial that shatters the mesh completely has no connected
        // pairs and contributes 0 hops; without partitions the mean must
        // be a real path length.
        assert!(
            report.mean_post_failure_hops >= 1.0 || report.partition_probability > 0.0,
            "case {case}: {report:?}"
        );
        assert!(report.mean_post_failure_hops >= 0.0, "case {case}");
    }
}

/// The transport state machine always completes a transfer over a
/// lossy in-order pipe, for any loss pattern, using only the
/// fast-retransmit and RTO mechanisms.
#[test]
fn transport_completes_under_arbitrary_loss() {
    fn apply(
        acts: Vec<SendAction>,
        wire: &mut std::collections::VecDeque<u64>,
        last_epoch: &mut u64,
    ) {
        for a in acts {
            match a {
                SendAction::SendData { seq } => wire.push_back(seq),
                SendAction::ArmRto { epoch } => *last_epoch = epoch,
                SendAction::Complete => {}
            }
        }
    }

    for case in 0u64..60 {
        let mut rng = StdRng::seed_from_u64(0x10_55 + case);
        let total = 1 + rng.random_range(0..200) as u64;
        let variant = if rng.random::<u64>().is_multiple_of(2) {
            TcpVariant::Dctcp
        } else {
            TcpVariant::Reno
        };
        let loss_bits: Vec<bool> = (0..64).map(|_| rng.random::<f64>() < 0.5).collect();

        let mut s = SenderState::new(variant, total);
        let mut r = ReceiverState::default();
        let mut wire: std::collections::VecDeque<u64> = Default::default();
        let mut last_epoch = 0u64;
        let mut drop_idx = 0usize;

        apply(s.pump(), &mut wire, &mut last_epoch);
        let mut guard = 0;
        while !s.is_complete() {
            guard += 1;
            assert!(guard < 50_000, "deadlock under loss (case {case})");
            match wire.pop_front() {
                Some(seq) => {
                    // Drop according to the random pattern (cycled).
                    let dropped = loss_bits[drop_idx % loss_bits.len()];
                    drop_idx += 1;
                    if dropped {
                        continue;
                    }
                    let ack = r.on_data(seq);
                    apply(s.on_ack(ack, false), &mut wire, &mut last_epoch);
                }
                None => {
                    // The wire drained without completing: fire the RTO.
                    let acts = s.on_rto(last_epoch);
                    assert!(
                        !acts.is_empty(),
                        "a live timer must restart a stalled connection (case {case})"
                    );
                    apply(acts, &mut wire, &mut last_epoch);
                }
            }
        }
    }
}
