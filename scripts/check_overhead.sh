#!/usr/bin/env bash
# Gate: the disabled-recorder (NullRecorder) observability wiring may
# cost at most OVERHEAD_MAX (default 2 %) of fig06 wall time.
#
#   scripts/check_overhead.sh BASELINE.json CURRENT.json [CURRENT2.json ...]
#
# Each file is a BENCH_<name>.json report from the bench harness
# (QUARTZ_BENCH_JSON=…). The script reads the `total_quick` wall time
# from the baseline and from every current file, takes the *best*
# (minimum) current run — wall clocks are noisy, so callers pass several
# runs — and fails when best/baseline exceeds the allowed ratio.
set -euo pipefail

usage="usage: scripts/check_overhead.sh BASELINE.json CURRENT.json [CURRENT2.json ...]"
baseline=${1:?$usage}
shift
[ $# -ge 1 ] || {
    echo "$usage" >&2
    exit 2
}
max=${OVERHEAD_MAX:-1.02}

total_quick_ns() {
    sed -n 's/.*"name": "total_quick", "mean_ns": \([0-9.]*\).*/\1/p' "$1" | head -n 1
}

base=$(total_quick_ns "$baseline")
[ -n "$base" ] || {
    echo "error: no total_quick measurement in $baseline" >&2
    exit 2
}

best=
for f in "$@"; do
    cur=$(total_quick_ns "$f")
    [ -n "$cur" ] || {
        echo "error: no total_quick measurement in $f" >&2
        exit 2
    }
    if [ -z "$best" ] || awk -v a="$cur" -v b="$best" 'BEGIN { exit !(a < b) }'; then
        best=$cur
    fi
done

awk -v b="$base" -v c="$best" -v m="$max" 'BEGIN {
    r = c / b
    printf "fig06 total_quick: baseline %.1f ms, best current %.1f ms, ratio %.4f (max %s)\n",
           b / 1e6, c / 1e6, r, m
    if (r <= m) {
        print "overhead gate: OK"
        exit 0
    }
    print "overhead gate: FAIL — recorder-off wiring regressed past the budget"
    exit 1
}'
