#!/usr/bin/env bash
# Gate: a wall-time measurement may cost at most OVERHEAD_MAX (default
# 2 %) of its checked-in baseline.
#
#   scripts/check_overhead.sh BASELINE.json CURRENT.json [CURRENT2.json ...]
#
# Each file is a BENCH_<name>.json report from the bench harness
# (QUARTZ_BENCH_JSON=…). The script reads the MEASURE measurement
# (default `total_quick`, the fig06 recorder-off wall time) from the
# baseline and from every current file, takes the *best* (minimum)
# current run — wall clocks are noisy, so callers pass several runs —
# and fails when best/baseline exceeds the allowed ratio.
#
# Env knobs:
#   MEASURE       measurement name to compare  (default: total_quick)
#   OVERHEAD_MAX  max allowed current/baseline (default: 1.02)
set -euo pipefail

usage="usage: scripts/check_overhead.sh BASELINE.json CURRENT.json [CURRENT2.json ...]"
baseline=${1:?$usage}
shift
[ $# -ge 1 ] || {
    echo "$usage" >&2
    exit 2
}
max=${OVERHEAD_MAX:-1.02}
measure=${MEASURE:-total_quick}

mean_ns() {
    sed -n 's/.*"name": "'"$measure"'", "mean_ns": \([0-9.]*\).*/\1/p' "$1" | head -n 1
}

base=$(mean_ns "$baseline")
[ -n "$base" ] || {
    echo "error: no $measure measurement in $baseline" >&2
    exit 2
}

best=
for f in "$@"; do
    cur=$(mean_ns "$f")
    [ -n "$cur" ] || {
        echo "error: no $measure measurement in $f" >&2
        exit 2
    }
    if [ -z "$best" ] || awk -v a="$cur" -v b="$best" 'BEGIN { exit !(a < b) }'; then
        best=$cur
    fi
done

awk -v b="$base" -v c="$best" -v m="$max" -v n="$measure" 'BEGIN {
    r = c / b
    printf "%s: baseline %.1f ms, best current %.1f ms, ratio %.4f (max %s)\n",
           n, b / 1e6, c / 1e6, r, m
    if (r <= m) {
        print "overhead gate: OK"
        exit 0
    }
    print "overhead gate: FAIL — measurement regressed past the budget"
    exit 1
}'
