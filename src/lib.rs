//! # Quartz
//!
//! A from-scratch Rust reproduction of *Quartz: A New Design Element for
//! Low-Latency DCNs* (Liu, Gao, Wong, Keshav — SIGCOMM 2014).
//!
//! Quartz implements a logical full mesh of low-latency top-of-rack
//! switches as a physical optical ring using commodity wavelength-division
//! multiplexing: every switch pair owns a dedicated wavelength channel, so
//! an O(n²) mesh needs only O(n) fibers. The mesh gives two-switch-hop
//! paths and eliminates cross-traffic congestion; the ring keeps the wiring
//! as simple as a 2-tier tree.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`optics`] — WDM grids, transceivers, mux/demuxes, amplifiers, and
//!   lightpath power budgets.
//! * [`core`] — the Quartz design element itself: ring design, channel
//!   (wavelength) assignment, routing policy, fault tolerance.
//! * [`topology`] — DCN topology generators (trees, Fat-Tree, BCube,
//!   Jellyfish, mesh, and Quartz composites) plus routing and graph metrics.
//! * [`netsim`] — the packet-level discrete-event simulator used for all
//!   latency experiments.
//! * [`flowsim`] — the flow-level max-min fair throughput solver used for
//!   bisection-bandwidth experiments.
//! * [`cost`] — the hardware price catalog and the Table 8 configurator.
//! * [`obs`] — deterministic sim-time tracing, metrics, and profiling
//!   (recorders, the metrics registry, and the trace timeline renderer).
//!
//! ## Quickstart
//!
//! ```
//! use quartz::core::QuartzRing;
//!
//! // Design a Quartz ring of 33 low-latency 64-port switches with a
//! // 32:32 server-to-trunk port split — the paper's 1056-port element.
//! let ring = QuartzRing::paper_config(33).expect("valid design");
//! assert_eq!(ring.server_ports(), 1056);
//! let plan = ring.assign_channels();
//! assert!(plan.validate().is_ok());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub use quartz_core as core;
pub use quartz_cost as cost;
pub use quartz_flowsim as flowsim;
pub use quartz_netsim as netsim;
pub use quartz_obs as obs;
pub use quartz_optics as optics;
pub use quartz_topology as topology;
