//! End-to-end tests of the `quartz` binary.

use std::process::Command;

fn quartz(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_quartz"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_every_command() {
    let (ok, stdout, _) = quartz(&["help"]);
    assert!(ok);
    for cmd in [
        "design",
        "plan",
        "grow",
        "faults",
        "configure",
        "throughput",
        "rpc",
        "topo",
        "power",
    ] {
        assert!(stdout.contains(cmd), "help is missing '{cmd}'");
    }
}

#[test]
fn design_prints_the_flagship_numbers() {
    let (ok, stdout, _) = quartz(&["design", "--switches", "33"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("1056"));
    assert!(stdout.contains("wavelengths"));
}

#[test]
fn plan_exact_proves_small_rings() {
    let (ok, stdout, _) = quartz(&["plan", "--switches", "7", "--exact", "true"]);
    assert!(ok);
    assert!(stdout.contains("proven optimal"), "{stdout}");
}

#[test]
fn infeasible_design_fails_cleanly() {
    let (ok, _, stderr) = quartz(&["design", "--switches", "40", "--trunk-ports", "64"]);
    assert!(!ok);
    assert!(stderr.contains("wavelengths"), "{stderr}");
}

#[test]
fn unknown_flag_is_rejected_with_suggestions() {
    let (ok, _, stderr) = quartz(&["design", "--swithces", "9"]);
    assert!(!ok);
    assert!(stderr.contains("unknown option"), "{stderr}");
    assert!(stderr.contains("switches"), "{stderr}");
}

#[test]
fn topo_emits_valid_dot() {
    let (ok, stdout, _) = quartz(&["topo", "--kind", "prototype"]);
    assert!(ok);
    assert!(stdout.starts_with("graph"));
    assert!(stdout.trim_end().ends_with('}'));
    assert!(stdout.contains(" -- "));
}

#[test]
fn faults_reports_both_metrics() {
    let (ok, stdout, _) = quartz(&[
        "faults",
        "--switches",
        "17",
        "--rings",
        "2",
        "--failures",
        "3",
        "--trials",
        "500",
    ]);
    assert!(ok);
    assert!(stdout.contains("bandwidth loss"));
    assert!(stdout.contains("partition probability"));
}
