//! `quartz` — command-line tools for the Quartz WDM-ring design element.
//!
//! ```text
//! quartz design     --switches 33 [--server-ports 32 --trunk-ports 32 --rate 10]
//! quartz plan       --switches 9 [--exact true] [--show-pairs 10]
//! quartz grow       --switches 9
//! quartz scale      [--channels 160 --port-count 64 --thermal true]
//! quartz faults     --switches 33 --rings 2 [--failures 4 --trials 10000 --jobs 4]
//! quartz faults     --dynamic true [--switches 33 --cut-at-us 1000 --reconverge-us 50 --duration-ms 4]
//! quartz rwa        [--switches 9 --budget 200000]
//! quartz rwa        --dynamic true [--switches 9 --cuts 2 --duration-us 1500 --repair-us 400
//!                    --control-us 20 --reconverge-us 50 --budget 2000000 --instant-retune true
//!                    --units 4 --jobs 4 --seed 42 --metrics-out rwa.ndjson]
//! quartz configure
//! quartz throughput --racks 16 --hosts 8 [--pattern permutation|incast|shuffle] [--policy ecmp|adaptive|vlb:0.5]
//! quartz rpc        [--cross-mbps 150 --wiring quartz|tree]
//! quartz trace      [--quick true --switches 33 --seed 3350 --out trace.ndjson --timeline 40]
//! quartz workload   --spec trace.ndjson|websearch|hadoop|incast:<fanin>|allreduce:ring|tree
//!                   [--transport reno|dctcp --load 0.4 --bytes N --jitter-ns N --ranks N
//!                    --rings 2 --switches 3 --hosts 2 --core 2 --window-us 2000
//!                    --horizon-ms 80 --seed 42 --units 1 --jobs 0 --quick true
//!                    --trace-out wl.ndjson --metrics-out wl-metrics.ndjson]
//! quartz shard      [--domains 4 --jobs 0 --pods 4 --tors 3 --hosts 2 --ring 4
//!                    --duration-ms 4 --cut-at-us 500 --seed 42 --quick true
//!                    --trace-out shard.ndjson --metrics-out shard-metrics.ndjson]
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

mod args;

use args::Args;
use quartz_core::channel::{bounds, exact, greedy};
use quartz_core::fault::FailureModel;
use quartz_core::pool::ThreadPool;
use quartz_core::scalability;
use quartz_core::QuartzRing;
use quartz_netsim::faults::{ring_cut_scenario, ring_cut_scenario_traced, CutScenarioConfig};
use quartz_netsim::time::SimTime;

fn main() {
    let args = match Args::from_env() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage();
            std::process::exit(2);
        }
    };
    let result = match args.command.as_deref() {
        Some("design") => cmd_design(&args),
        Some("plan") => cmd_plan(&args),
        Some("grow") => cmd_grow(&args),
        Some("scale") => cmd_scale(&args),
        Some("faults") => cmd_faults(&args),
        Some("rwa") => cmd_rwa(&args),
        Some("configure") => cmd_configure(&args),
        Some("throughput") => cmd_throughput(&args),
        Some("rpc") => cmd_rpc(&args),
        Some("topo") => cmd_topo(&args),
        Some("power") => cmd_power(&args),
        Some("trace") => cmd_trace(&args),
        Some("workload") => cmd_workload(&args),
        Some("shard") => cmd_shard(&args),
        Some("help") | None => {
            usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn usage() {
    println!(
        "quartz — design tools for WDM-ring full-mesh datacenter networks\n\n\
         commands:\n\
         \x20 design      check a ring design: ports, wavelengths, optics, fault plan\n\
         \x20 plan        wavelength assignment (greedy, optionally proven optimal)\n\
         \x20 grow        cost of expanding a ring by one switch\n\
         \x20 scale       element size ceilings and the expansion cost table\n\
         \x20             (retune counts and dark time under the tunable-laser model)\n\
         \x20 faults      Monte-Carlo bandwidth-loss / partition analysis;\n\
         \x20             --dynamic true simulates a live mid-run fiber cut\n\
         \x20 rwa         online wavelength re-assignment: one cut+repair walkthrough;\n\
         \x20             --dynamic true runs the full churn scenario with retune\n\
         \x20             latency charged in the packet path\n\
         \x20 configure   the cost/latency configurator (paper Table 8)\n\
         \x20 throughput  max-min throughput of a mesh under a traffic pattern\n\
         \x20 rpc         simulate the prototype RPC-under-cross-traffic experiment\n\
         \x20 topo        emit a topology as Graphviz DOT on stdout\n\
         \x20 power       network power draw per design (watts/server)\n\
         \x20 trace       replay the ring-cut scenario with full event tracing;\n\
         \x20             prints a sim-time timeline, --out writes the ndjson trace\n\
         \x20 workload    drive a traffic workload (trace replay, websearch/hadoop\n\
         \x20             heavy-tail mix, incast, ring/tree all-reduce) through the\n\
         \x20             transport layer and report per-bucket FCT and slowdown\n\
         \x20 shard       run one simulation across spatial domains under\n\
         \x20             conservative lookahead; stdout is identical at any\n\
         \x20             --domains value (the determinism contract)\n\n\
         run a command with wrong flags to see its options"
    );
}

fn cmd_design(args: &Args) -> Result<(), String> {
    args.expect_only(&["switches", "server-ports", "trunk-ports", "rate"])?;
    let m: usize = args.num("switches", 33)?;
    let n: usize = args.num("server-ports", 32)?;
    let k: usize = args.num("trunk-ports", if m > 0 { m - 1 } else { 32 })?;
    let rate: f64 = args.num("rate", 10.0)?;

    let ring = QuartzRing::new(m, n, k, rate).map_err(|e| e.to_string())?;
    println!("Quartz ring: {m} switches, {n} server + {k} trunk ports each, {rate} Gb/s");
    println!("  server ports           {}", ring.server_ports());
    println!("  worst-case switch hops {}", ring.max_switch_hops());
    println!("  rack-pair oversub      {}:1", ring.oversubscription());
    println!("  wavelengths (greedy)   {}", ring.wavelengths_required());
    println!("  lower bound            {}", bounds::load_lower_bound(m));
    println!("  WDM muxes per switch   {}", ring.muxes_per_switch());
    println!("  physical fiber rings   {}", ring.physical_rings());
    let optics = ring.optical_plan().map_err(|e| e.to_string())?;
    println!("  amplifiers on ring     {}", optics.amplifier_count());
    println!(
        "  receiver pad           {} dB",
        optics.receiver_pad().attenuation.value()
    );
    println!("  worst optical margin   {}", optics.worst_margin());
    println!(
        "  max ports at this port count: {}",
        scalability::max_mesh_server_ports(n + k)
    );
    Ok(())
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    args.expect_only(&["switches", "exact", "show-pairs"])?;
    let m: usize = args.num("switches", 9)?;
    let want_exact: bool = args.num("exact", false)?;
    let show: usize = args.num("show-pairs", 10)?;
    if m < 2 {
        return Err("--switches must be ≥ 2".into());
    }

    let assignment = if want_exact {
        if m > 64 {
            return Err("--exact supports up to 64 switches".into());
        }
        let r = exact::solve(m, exact::DEFAULT_NODE_BUDGET);
        println!(
            "exact plan: {} wavelengths ({})",
            r.channels,
            match r.status {
                exact::ExactStatus::Optimal => "proven optimal",
                exact::ExactStatus::BudgetExhausted => "best found within budget",
            }
        );
        r.assignment
    } else {
        let a = greedy::assign_best(m);
        println!(
            "greedy plan: {} wavelengths (lower bound {})",
            a.channels_used(),
            bounds::load_lower_bound(m)
        );
        a
    };
    assignment.validate().map_err(|e| e.to_string())?;

    for (shown, (pair, dir, ch)) in assignment.entries().iter().enumerate() {
        if shown >= show {
            println!("  … ({} more pairs)", assignment.entries().len() - shown);
            break;
        }
        println!("  λ[{} ↔ {}] = channel {ch} ({dir:?} arc)", pair.a, pair.b);
    }
    Ok(())
}

fn cmd_grow(args: &Args) -> Result<(), String> {
    args.expect_only(&["switches"])?;
    let m: usize = args.num("switches", 9)?;
    if m < 2 {
        return Err("--switches must be ≥ 2".into());
    }
    let step = scalability::expansion_step(m);
    println!("growing a ring from {} to {} switches:", step.from, step.to);
    println!("  new pairs (channels to provision) {}", step.added);
    println!("  existing pairs re-tuned           {}", step.retuned);
    println!(
        "  wavelengths                        {} → {}",
        step.wavelengths.0, step.wavelengths.1
    );
    println!(
        "  retune dark time (fast-tunable)    {} total, {} critical path",
        fmt_ns(step.retune_total_ns),
        fmt_ns(step.retune_max_ns)
    );
    let thermal = scalability::expansion_step_with(m, &quartz_optics::retune::THERMAL_TUNABLE_SFP);
    println!(
        "  retune dark time (thermal SFP+)    {} total, {} critical path",
        fmt_ns(thermal.retune_total_ns),
        fmt_ns(thermal.retune_max_ns)
    );
    Ok(())
}

/// Renders a nanosecond quantity with a human unit (ns / µs / ms).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// `scale`: the element-size ceilings (§3.1/§8) and the per-step
/// expansion cost table with retune latency under the tunable-laser
/// model.
fn cmd_scale(args: &Args) -> Result<(), String> {
    args.expect_only(&["channels", "port-count", "thermal"])?;
    let channels: usize = args.num("channels", 160)?;
    let ports: usize = args.num("port-count", 64)?;
    let thermal: bool = args.num("thermal", false)?;
    if channels == 0 {
        return Err("--channels must be ≥ 1".into());
    }
    if ports < 4 {
        return Err("--port-count must be ≥ 4".into());
    }
    let model = if thermal {
        quartz_optics::retune::THERMAL_TUNABLE_SFP
    } else {
        quartz_optics::retune::FAST_TUNABLE_SFP
    };
    let ceiling = scalability::max_ring_size_for_channels(channels);
    println!("Quartz element scaling:");
    println!("  ring ceiling at {channels} channels   {ceiling} switches");
    println!(
        "  max server ports ({ports}-port sw)  {}",
        scalability::max_mesh_server_ports(ports)
    );
    println!(
        "\nexpansion cost per added switch ({} retune model):",
        if thermal {
            "thermal SFP+"
        } else {
            "fast-tunable"
        }
    );
    println!(
        "  {:>8}  {:>5}  {:>7}  {:>9}  {:>12}  {:>13}",
        "step", "added", "retuned", "waves", "dark total", "critical path"
    );
    for m in [4usize, 8, 12, 16, 24, 32] {
        if m + 1 > ceiling {
            break;
        }
        let step = scalability::expansion_step_with(m, &model);
        println!(
            "  {:>2} → {:>2}  {:>5}  {:>7}  {:>4} → {:<3}  {:>12}  {:>13}",
            step.from,
            step.to,
            step.added,
            step.retuned,
            step.wavelengths.0,
            step.wavelengths.1,
            fmt_ns(step.retune_total_ns),
            fmt_ns(step.retune_max_ns)
        );
    }
    Ok(())
}

fn cmd_faults(args: &Args) -> Result<(), String> {
    args.expect_only(&[
        "switches",
        "rings",
        "failures",
        "trials",
        "seed",
        "jobs",
        "dynamic",
        "cut-at-us",
        "reconverge-us",
        "duration-ms",
    ])?;
    let dynamic: bool = args.num("dynamic", false)?;
    if dynamic {
        return cmd_faults_dynamic(args);
    }
    let m: usize = args.num("switches", 33)?;
    let rings: usize = args.num("rings", 2)?;
    let failures: usize = args.num("failures", 4)?;
    let trials: usize = args.num("trials", 10_000)?;
    let seed: u64 = args.num("seed", 42)?;
    // 0 = one worker per hardware thread; the report is identical at
    // any worker count.
    let jobs: usize = args.num("jobs", 0)?;
    if m < 3 {
        return Err("--switches must be ≥ 3".into());
    }
    let model = FailureModel::new(m, rings);
    let r = model.monte_carlo_with(failures, trials, seed, &ThreadPool::new(jobs));
    println!(
        "{m}-switch ring, {rings} physical fiber ring(s), {failures} random cut(s), {trials} trials:"
    );
    println!(
        "  mean direct-bandwidth loss {:.1}%",
        r.mean_bandwidth_loss * 100.0
    );
    println!(
        "  partition probability      {:.4}",
        r.partition_probability
    );
    println!(
        "  severed-pair detour        {:.2} hops (mesh-wide mean {:.2})",
        r.mean_detour_stretch, r.mean_post_failure_hops
    );
    Ok(())
}

/// `faults --dynamic true`: cut one fiber mid-run under steady Poisson
/// traffic and report what the packets saw.
fn cmd_faults_dynamic(args: &Args) -> Result<(), String> {
    let m: usize = args.num("switches", 33)?;
    let cut_at_us: u64 = args.num("cut-at-us", 1_000)?;
    let reconverge_us: u64 = args.num("reconverge-us", 50)?;
    let duration_ms: u64 = args.num("duration-ms", 4)?;
    let seed: u64 = args.num("seed", 42)?;
    if m < 3 {
        return Err("--switches must be ≥ 3".into());
    }
    let cut_at = SimTime::from_us(cut_at_us);
    let duration = SimTime::from_ms(duration_ms);
    if cut_at >= duration {
        return Err("--cut-at-us must fall inside --duration-ms".into());
    }
    let cfg = CutScenarioConfig {
        switches: m,
        hosts_per_switch: 1,
        cut_at,
        reconvergence_ns: reconverge_us * 1_000,
        duration,
        mean_gap_ns: 4_000.0,
        background_pairs: (m / 2).max(4),
        seed,
    };
    let s = ring_cut_scenario(&cfg);
    println!(
        "{m}-switch mesh, fiber 0<->1 cut at {cut_at_us} us, {reconverge_us} us reconvergence, {duration_ms} ms run (seed {seed}):"
    );
    println!(
        "  severed pair latency  p50 {:.2} -> {:.2} us, mean {:.2} -> {:.2} us",
        s.pre.p50_ns as f64 / 1e3,
        s.post.p50_ns as f64 / 1e3,
        s.pre.mean_ns / 1e3,
        s.post.mean_ns / 1e3
    );
    println!(
        "  path stretch          {:.2} -> {:.2} links per packet",
        s.pre_mean_hops, s.post_mean_hops
    );
    match s.reconvergence_ns {
        Some(ns) => println!(
            "  reconvergence         {:.1} us, {} packets lost during the outage",
            ns as f64 / 1e3,
            s.drops_during_outage
        ),
        None => {
            println!("  reconvergence         never (run ended before the control plane acted)")
        }
    }
    println!(
        "  totals                {} generated, {} delivered, {} dropped",
        s.generated, s.delivered, s.dropped
    );
    if !s.post_hop_distribution.is_empty() {
        let dist: Vec<String> = s
            .post_hop_distribution
            .iter()
            .map(|(h, n)| format!("{h} links x{n}"))
            .collect();
        println!("  post-cut paths        {}", dist.join(", "));
    }
    Ok(())
}

/// `rwa`: the online wavelength-reassignment control plane. Without
/// flags, walk one cut+repair round on fiber 0 and print what the
/// incremental solver did; with `--dynamic true`, run the full churn
/// scenario (seeded cut/repair sequence, retune latency charged in the
/// packet path) across `--units` independent units on `--jobs` workers.
/// Output is bit-identical at any `--jobs` count.
fn cmd_rwa(args: &Args) -> Result<(), String> {
    args.expect_only(&[
        "dynamic",
        "switches",
        "budget",
        "cuts",
        "seed",
        "duration-us",
        "repair-us",
        "control-us",
        "reconverge-us",
        "instant-retune",
        "units",
        "jobs",
        "metrics-out",
    ])?;
    let dynamic: bool = args.num("dynamic", false)?;
    if dynamic {
        return cmd_rwa_dynamic(args);
    }
    use quartz_core::channel::online::{OnlineRwa, ResolveReport, RingDelta, DEFAULT_NODE_BUDGET};
    let m: usize = args.num("switches", 9)?;
    let budget: u64 = args.num("budget", DEFAULT_NODE_BUDGET)?;
    if !(3..=64).contains(&m) {
        return Err("--switches must be in 3..=64".into());
    }
    let mut rwa = OnlineRwa::new(m, budget);
    println!(
        "{m}-switch ring, seed plan {} wavelengths, node budget {budget}:",
        rwa.plan().channels_used()
    );
    let show = |label: &str, r: &ResolveReport| {
        println!(
            "  {label}: {} ({} ch vs {} fresh), {} moved / {} relit / {} torn down / {} dark, {} nodes",
            r.outcome.as_str(),
            r.channels,
            r.fresh_channels,
            r.moved.len(),
            r.restored.len(),
            r.torn_down.len(),
            r.unroutable,
            r.nodes_used
        );
        for op in r.moved.iter().chain(r.restored.iter()).take(6) {
            println!(
                "    pair ({},{}) retunes {:?} ch {} → {:?} ch {}",
                op.pair.a, op.pair.b, op.from.0, op.from.1, op.to.0, op.to.1
            );
        }
    };
    let cut = rwa.apply(RingDelta::FiberCut(0));
    show("cut fiber 0", &cut);
    let repair = rwa.apply(RingDelta::FiberRepair(0));
    show("repair fiber 0", &repair);
    rwa.plan()
        .clone()
        .into_assignment()
        .expect("healed ring")
        .validate()
        .map_err(|e| e.to_string())?;
    println!(
        "  healed plan valid: {} wavelengths",
        rwa.plan().channels_used()
    );
    Ok(())
}

/// `rwa --dynamic true`: the churn scenario with the retune window in
/// the packet path.
fn cmd_rwa_dynamic(args: &Args) -> Result<(), String> {
    use quartz_core::channel::online::DEFAULT_NODE_BUDGET;
    use quartz_netsim::rwa::{churn_scenario_traced, churn_units, ChurnScenarioConfig};
    use quartz_optics::retune::RetuneModel;

    let m: usize = args.num("switches", 9)?;
    let cuts: usize = args.num("cuts", 2)?;
    let seed: u64 = args.num("seed", 42)?;
    let duration_us: u64 = args.num("duration-us", 1_500)?;
    let repair_us: u64 = args.num("repair-us", 400)?;
    let control_us: u64 = args.num("control-us", 20)?;
    let reconverge_us: u64 = args.num("reconverge-us", 50)?;
    let budget: u64 = args.num("budget", DEFAULT_NODE_BUDGET)?;
    let instant: bool = args.num("instant-retune", false)?;
    let units: usize = args.num("units", 4)?;
    let jobs: usize = args.num("jobs", 0)?;
    if !(3..=64).contains(&m) {
        return Err("--switches must be in 3..=64".into());
    }
    if cuts == 0 || cuts > m {
        return Err(format!("--cuts must be in 1..={m}"));
    }
    if duration_us < 100 {
        return Err("--duration-us must be ≥ 100".into());
    }
    if units == 0 {
        return Err("--units must be ≥ 1".into());
    }
    let mut cfg = ChurnScenarioConfig::quick(seed);
    cfg.switches = m;
    cfg.cuts = cuts;
    cfg.duration = SimTime::from_us(duration_us);
    cfg.churn_window = (
        SimTime::from_us(duration_us / 8),
        SimTime::from_us(duration_us / 2),
    );
    cfg.repair_after_ns = if repair_us == 0 {
        None
    } else {
        Some(repair_us * 1_000)
    };
    cfg.control_delay_ns = control_us * 1_000;
    cfg.reconvergence_ns = reconverge_us * 1_000;
    cfg.node_budget = budget;
    if instant {
        cfg.retune = RetuneModel::instant();
    }

    println!(
        "{m}-switch mesh, {cuts} fiber cut(s){}, {} retune, {duration_us} us run, budget {budget} (seed {seed}, {units} unit(s)):",
        if repair_us == 0 {
            " (no repair)".to_string()
        } else {
            format!(" + repair after {repair_us} us")
        },
        if instant { "instant" } else { "fast-tunable" }
    );
    let reports = churn_units(&cfg, units, &ThreadPool::new(jobs));
    let mut tot = (0u32, 0u32, 0u32, 0u64, 0u64, 0u64);
    for (u, r) in reports.iter().enumerate() {
        println!(
            "  unit {u}: {} warm / {} fallback / {} fresh; {} retunes ({} dark); {} dropped; p99 neighbor {:.2} us, cross {:.2} us",
            r.warm_start,
            r.budget_fallback,
            r.fresh_solve,
            r.retunes,
            fmt_ns(r.dark_ns_total),
            r.dropped,
            r.neighbor.p99_ns as f64 / 1e3,
            r.cross.p99_ns as f64 / 1e3
        );
        tot.0 += r.warm_start;
        tot.1 += r.budget_fallback;
        tot.2 += r.fresh_solve;
        tot.3 += r.retunes;
        tot.4 += r.dark_ns_total;
        tot.5 += r.dropped;
    }
    println!(
        "  aggregate: {} re-solve(s) ({} warm, {} fallback, {} fresh), {} retunes, {} dark, {} dropped",
        tot.0 + tot.1 + tot.2,
        tot.0,
        tot.1,
        tot.2,
        tot.3,
        fmt_ns(tot.4),
        tot.5
    );

    if let Some(out) = args.get("metrics-out") {
        // One traced run of the base config: the control-plane events
        // plus the merged metrics, as ndjson. Independent of --jobs.
        let (_report, events, metrics) = churn_scenario_traced(&cfg);
        let mut body = String::new();
        for ev in &events {
            if matches!(ev.tag(), "rwa_resolve" | "retune" | "fault" | "reroute") {
                body.push_str(&ev.ndjson_line());
            }
        }
        body.push_str(&metrics.to_ndjson());
        std::fs::write(out, body).map_err(|e| format!("writing {out}: {e}"))?;
        println!("  re-solve metrics written: {out}");
    }
    Ok(())
}

fn cmd_configure(args: &Args) -> Result<(), String> {
    args.expect_only(&["wdm-scale"])?;
    let scale: f64 = args.num("wdm-scale", 1.0)?;
    let catalog = quartz_cost::catalog::PriceCatalog::era_2014().with_wdm_scale(scale);
    for row in quartz_cost::configurator::configure(&catalog) {
        let premium = row.quartz_cost / row.baseline_cost - 1.0;
        println!(
            "{:?}/{:?}: {} ${:.0} → {} ${:.0} ({:+.1}%), latency −{:.0}%",
            row.size,
            row.utilization,
            row.baseline.name(),
            row.baseline_cost,
            row.quartz.name(),
            row.quartz_cost,
            premium * 100.0,
            row.latency_reduction * 100.0
        );
    }
    Ok(())
}

fn cmd_throughput(args: &Args) -> Result<(), String> {
    args.expect_only(&["racks", "hosts", "pattern", "policy", "seed"])?;
    let racks: usize = args.num("racks", 16)?;
    let hosts: usize = args.num("hosts", 8)?;
    let seed: u64 = args.num("seed", 1)?;
    let pattern = args.get("pattern").unwrap_or("permutation");
    let policy_s = args.get("policy").unwrap_or("adaptive");

    use quartz_flowsim::fabric::{MeshRouting, QuartzFabric};
    use quartz_flowsim::matrix;
    use quartz_flowsim::throughput::normalized_throughput;

    let total = racks * hosts;
    let demands = match pattern {
        "permutation" => matrix::random_permutation(total, seed),
        "incast" => matrix::incast(total, 10.min(total - 1), seed),
        "shuffle" => matrix::rack_shuffle(racks, hosts, 4.min(racks - 1), seed),
        other => return Err(format!("unknown pattern '{other}'")),
    };
    let policy = match policy_s {
        "ecmp" => MeshRouting::EcmpDirect,
        "adaptive" => MeshRouting::VlbAdaptive,
        s => match s.strip_prefix("vlb:") {
            Some(k) => {
                MeshRouting::VlbUniform(k.parse().map_err(|_| format!("bad VLB fraction '{k}'"))?)
            }
            None => return Err(format!("unknown policy '{policy_s}'")),
        },
    };
    let fabric = QuartzFabric {
        racks,
        hosts_per_rack: hosts,
        channel_cap: 1.0,
        policy,
    };
    let t = normalized_throughput(&fabric, &demands);
    println!(
        "{racks}×{hosts} mesh, {pattern}, {policy_s}: normalized throughput {:.3} ({:.1} of {:.1} line-rate units)",
        t.normalized, t.aggregate, t.ideal_aggregate
    );
    Ok(())
}

fn cmd_rpc(args: &Args) -> Result<(), String> {
    args.expect_only(&["cross-mbps", "wiring", "count"])?;
    let mbps: f64 = args.num("cross-mbps", 150.0)?;
    let count: u32 = args.num("count", 2_000)?;
    let wiring = args.get("wiring").unwrap_or("quartz");

    use quartz_netsim::sim::{FlowKind, SimConfig, Simulator};
    use quartz_netsim::time::SimTime;
    use quartz_topology::builders::{prototype_quartz, prototype_two_tier};

    let (net, rpc, cross) = match wiring {
        "quartz" => {
            let p = prototype_quartz();
            (
                p.net,
                (p.hosts[2], p.hosts[4]),
                vec![(p.hosts[0], p.hosts[5]), (p.hosts[1], p.hosts[5])],
            )
        }
        "tree" => {
            let p = prototype_two_tier();
            (
                p.net,
                (p.hosts[0], p.hosts[2]),
                vec![(p.hosts[4], p.hosts[3]), (p.hosts[5], p.hosts[3])],
            )
        }
        other => return Err(format!("unknown wiring '{other}' (quartz|tree)")),
    };
    let horizon = SimTime::from_ms(4_000);
    let mut sim = Simulator::new(net, SimConfig::default());
    sim.add_flow(rpc.0, rpc.1, 100, FlowKind::Rpc { count }, 0, SimTime::ZERO);
    if mbps > 0.0 {
        let period_ns = (20.0 * 1500.0 * 8.0 / (mbps / 1000.0)) as u64;
        for (s, d) in cross {
            sim.add_flow(
                s,
                d,
                1_500,
                FlowKind::Burst {
                    burst_pkts: 20,
                    period_ns,
                    stop: horizon,
                },
                1,
                SimTime::ZERO,
            );
        }
    }
    sim.run(horizon);
    let s = sim.stats().summary(0);
    println!(
        "{wiring} wiring, {mbps} Mb/s cross-traffic per source: RPC RTT mean {:.2} µs, p99 {:.2} µs ({} calls)",
        s.mean_us(),
        s.p99_ns as f64 / 1e3,
        s.count
    );
    Ok(())
}

fn cmd_topo(args: &Args) -> Result<(), String> {
    args.expect_only(&["kind", "size", "hosts", "seed"])?;
    let kind = args.get("kind").unwrap_or("mesh");
    let size: usize = args.num("size", 4)?;
    let hosts: usize = args.num("hosts", 2)?;
    let seed: u64 = args.num("seed", 1)?;
    use quartz_topology::builders as b;
    use quartz_topology::dot::to_dot;
    let (net, title) = match kind {
        "mesh" => (b::quartz_mesh(size, hosts, 10.0, 10.0).net, "Quartz mesh"),
        "three-tier" => (
            b::three_tier(size.max(1), 2, hosts, 2, 10.0, 40.0).net,
            "Three-tier tree",
        ),
        "jellyfish" => {
            let deg = 4.min(size.saturating_sub(1)).max(1);
            (
                b::jellyfish(size.max(4), deg, hosts, 10.0, 10.0, seed).net,
                "Jellyfish",
            )
        }
        "prototype" => (b::prototype_quartz().net, "Quartz prototype"),
        "edge-core" => (
            b::quartz_in_edge_and_core(size.max(2), 4, hosts, 4).net,
            "Quartz in edge and core",
        ),
        other => {
            return Err(format!(
                "unknown kind '{other}' (mesh|three-tier|jellyfish|prototype|edge-core)"
            ))
        }
    };
    print!("{}", to_dot(&net, title));
    Ok(())
}

/// `trace`: replay the mid-run fiber-cut scenario (the Figure 6 dynamic
/// panel) with the `quartz-obs` recorder attached, print a rendered
/// sim-time timeline plus a summary, and optionally write the full
/// event + metrics trace as ndjson. Everything is keyed to simulated
/// time, so the same seed always produces a byte-identical trace.
fn cmd_trace(args: &Args) -> Result<(), String> {
    args.expect_only(&["switches", "seed", "quick", "out", "timeline"])?;
    let quick: bool = args.num("quick", false)?;
    let seed: u64 = args.num("seed", 0xD16)?;
    let mut cfg = if quick {
        CutScenarioConfig::quick(seed)
    } else {
        CutScenarioConfig::paper(seed)
    };
    let m: usize = args.num("switches", cfg.switches)?;
    if m < 3 {
        return Err("--switches must be ≥ 3".into());
    }
    if m != cfg.switches {
        cfg.switches = m;
        cfg.background_pairs = (m / 2).max(4);
    }
    let timeline: usize = args.num("timeline", 40)?;

    let (report, events, metrics) = ring_cut_scenario_traced(&cfg);
    println!(
        "{m}-switch mesh, fiber 0<->1 cut at {:.0} us (seed {seed}): {} events, {} metrics",
        cfg.cut_at.ns() as f64 / 1e3,
        events.len(),
        metrics.len()
    );
    println!(
        "  generated {} / delivered {} / dropped {}; reconvergence {}",
        report.generated,
        report.delivered,
        report.dropped,
        match report.reconvergence_ns {
            Some(ns) => format!("{:.1} us", ns as f64 / 1e3),
            None => "never".to_string(),
        }
    );
    println!();
    print!("{}", quartz_obs::timeline::render(&events, timeline));

    if let Some(out) = args.get("out") {
        let mut body = quartz_obs::event::to_ndjson(&events);
        body.push_str(&metrics.to_ndjson());
        std::fs::write(out, body).map_err(|e| format!("writing {out}: {e}"))?;
        println!("\ntrace written: {out}");
    }
    Ok(())
}

/// `workload`: drive one of the four `quartz-workload` traffic kinds
/// over the Quartz-in-edge-and-core fabric and report per-size-bucket
/// FCT and slowdown. Deterministic at any `--jobs` width.
fn cmd_workload(args: &Args) -> Result<(), String> {
    use quartz_core::pool::unit_seed;
    use quartz_topology::builders::quartz_in_edge_and_core;
    use quartz_workload::{
        run_units, run_workload_traced, variant_by_name, WorkloadConfig, WorkloadSpec,
    };

    args.expect_only(&[
        "spec",
        "transport",
        "load",
        "bytes",
        "jitter-ns",
        "ranks",
        "rings",
        "switches",
        "hosts",
        "core",
        "window-us",
        "horizon-ms",
        "seed",
        "units",
        "jobs",
        "quick",
        "trace-out",
        "metrics-out",
    ])?;
    let quick: bool = args.num("quick", false)?;
    let rings: usize = args.num("rings", 2)?;
    let switches: usize = args.num("switches", if quick { 2 } else { 3 })?;
    let hosts_per_sw: usize = args.num("hosts", 2)?;
    let core: usize = args.num("core", 2)?;
    if rings < 1 || switches < 2 || hosts_per_sw < 1 || core < 2 {
        return Err("--rings ≥ 1, --switches ≥ 2, --hosts ≥ 1, --core ≥ 2".into());
    }
    let host_count = rings * switches * hosts_per_sw;
    if host_count < 2 {
        return Err("the fabric needs at least 2 hosts".into());
    }

    let spec_arg = args.get("spec").unwrap_or("websearch");
    let mut spec = WorkloadSpec::parse(spec_arg, host_count)?;
    // Optional per-kind overrides.
    match &mut spec {
        WorkloadSpec::Trace(_) => {}
        WorkloadSpec::Dist { load, .. } => {
            *load = args.num("load", *load)?;
            if !(*load > 0.0 && *load <= 1.0) {
                return Err("--load must be in (0,1]".into());
            }
        }
        WorkloadSpec::Incast {
            bytes, jitter_ns, ..
        } => {
            *bytes = args.num("bytes", *bytes)?;
            *jitter_ns = args.num("jitter-ns", *jitter_ns)?;
            if *bytes == 0 {
                return Err("--bytes must be ≥ 1".into());
            }
        }
        WorkloadSpec::AllReduce { ranks, bytes, .. } => {
            *ranks = args.num("ranks", *ranks)?;
            *bytes = args.num("bytes", *bytes)?;
            if *bytes == 0 {
                return Err("--bytes must be ≥ 1".into());
            }
        }
    }

    let transport = variant_by_name(args.get("transport").unwrap_or("dctcp"))?;
    let seed: u64 = args.num("seed", 42)?;
    let units: usize = args.num("units", 1)?;
    let jobs: usize = args.num("jobs", 0)?;
    if units == 0 {
        return Err("--units must be ≥ 1".into());
    }
    let window_us: u64 = args.num("window-us", if quick { 500 } else { 2_000 })?;
    let horizon_ms: u64 = args.num("horizon-ms", if quick { 40 } else { 80 })?;
    if window_us == 0 || horizon_ms == 0 {
        return Err("--window-us and --horizon-ms must be ≥ 1".into());
    }
    if horizon_ms * 1_000 < window_us {
        return Err("--horizon-ms must cover --window-us".into());
    }

    let mut cfg = WorkloadConfig::new(spec, transport, seed);
    cfg.window = SimTime::from_us(window_us);
    cfg.horizon = SimTime::from_ms(horizon_ms);

    let build = || {
        let c = quartz_in_edge_and_core(rings, switches, hosts_per_sw, core);
        (c.net, c.hosts)
    };
    println!(
        "workload {} over {} hosts ({rings} ring(s) x {switches} sw x {hosts_per_sw}), \
         {} transport, seed {seed}, {units} unit(s):",
        cfg.spec.name(),
        host_count,
        quartz_workload::variant_name(transport),
    );
    let reports = run_units(&cfg, units, &ThreadPool::new(jobs), build)?;
    for (u, r) in reports.iter().enumerate() {
        println!("unit {u} (seed {}):", r.seed);
        for line in r.render().lines() {
            println!("  {line}");
        }
    }

    if let Some(out) = args.get("metrics-out") {
        let mut m = quartz_obs::MetricsRegistry::new();
        for (u, r) in reports.iter().enumerate() {
            r.add_metrics(&mut m, &format!("workload.u{u}"));
        }
        std::fs::write(out, m.to_ndjson()).map_err(|e| format!("writing {out}: {e}"))?;
        println!("metrics written: {out}");
    }
    if let Some(out) = args.get("trace-out") {
        // One traced replay of unit 0 — independent of --jobs; the
        // trace carries the workload-level events (flow opens and
        // completions, collective step boundaries).
        let mut unit_cfg = cfg.clone();
        unit_cfg.seed = unit_seed(cfg.seed, 0);
        let (net, hosts) = build();
        let (_report, events) = run_workload_traced(net, &hosts, &unit_cfg)?;
        let mut body = String::new();
        for ev in &events {
            if matches!(ev.tag(), "flow_start" | "flow_complete" | "collective_step") {
                body.push_str(&ev.ndjson_line());
            }
        }
        std::fs::write(out, body).map_err(|e| format!("writing {out}: {e}"))?;
        println!("trace written: {out}");
    }
    Ok(())
}

/// Drives a Figure 15 Quartz-in-core composite through the sharded
/// engine. Everything on stdout is domain-count-invariant (the CI
/// smoke job diffs `--domains 1` against `--domains 4` byte for byte);
/// the partition diagnostics — domain count, lookahead bound,
/// per-domain event counts — go to stderr. No wall-clock time is
/// printed anywhere: the engine's injected clock stays at its frozen
/// default here.
fn cmd_shard(args: &Args) -> Result<(), String> {
    use quartz_netsim::shard::ShardedSim;
    use quartz_netsim::sim::{FlowKind, SimConfig};
    use quartz_netsim::transport::TcpVariant;
    use quartz_netsim::FaultPlan;
    use quartz_topology::builders::quartz_in_core;

    args.expect_only(&[
        "domains",
        "jobs",
        "pods",
        "tors",
        "hosts",
        "ring",
        "duration-ms",
        "cut-at-us",
        "seed",
        "quick",
        "trace-out",
        "metrics-out",
    ])?;
    let quick: bool = args.num("quick", false)?;
    let domains: usize = args.num("domains", 4)?;
    let jobs: usize = args.num("jobs", 0)?;
    let pods: usize = args.num("pods", 4)?;
    let tors: usize = args.num("tors", if quick { 2 } else { 3 })?;
    let hosts_per_tor: usize = args.num("hosts", 2)?;
    let ring: usize = args.num("ring", 4)?;
    let duration_ms: u64 = args.num("duration-ms", if quick { 2 } else { 4 })?;
    let cut_at_us: u64 = args.num("cut-at-us", 0)?;
    let seed: u64 = args.num("seed", 42)?;
    if domains == 0 || pods == 0 || tors == 0 || hosts_per_tor == 0 || ring < 2 {
        return Err("--domains/--pods/--tors/--hosts ≥ 1, --ring ≥ 2".into());
    }
    if duration_ms == 0 {
        return Err("--duration-ms must be ≥ 1".into());
    }
    if cut_at_us > 0 && cut_at_us >= duration_ms * 1_000 {
        return Err("--cut-at-us must fall inside --duration-ms".into());
    }

    let c = quartz_in_core(tors, pods, hosts_per_tor, ring);
    let cfg = SimConfig {
        seed,
        ecn_threshold_bytes: Some(50_000),
        reconvergence_ns: Some(50_000),
        ..SimConfig::default()
    };
    let mut sim = ShardedSim::new(c.net.clone(), cfg, domains);
    let n = c.hosts.len();
    println!(
        "shard: quartz-in-core {pods} pods x {tors} ToRs x {hosts_per_tor} hosts \
         ({n} hosts, {ring}-switch core ring), seed {seed}"
    );
    eprintln!(
        "partition: {} domain(s), lookahead {} ns",
        sim.domain_count(),
        sim.lookahead_ns()
    );

    // Pod-crossing traffic: RPC ping-pong, a Reno transfer, and a paced
    // file per triple of hosts.
    for i in 0..n {
        let src = c.hosts[i];
        let dst = c.hosts[(i + n / 2) % n];
        match i % 3 {
            0 => sim.add_flow(src, dst, 400, FlowKind::Rpc { count: 40 }, 0, SimTime::ZERO),
            1 => sim.add_flow(
                src,
                dst,
                1_000,
                FlowKind::Transport {
                    total_bytes: 60_000,
                    variant: TcpVariant::Reno,
                },
                1,
                SimTime::from_us(i as u64),
            ),
            _ => sim.add_flow(
                src,
                dst,
                1_000,
                FlowKind::FileTransfer {
                    total_bytes: 30_000,
                },
                2,
                SimTime::from_us(2 * i as u64),
            ),
        };
    }
    if cut_at_us > 0 {
        // Cut one core ring channel mid-run; the control plane
        // reconverges 50 µs later (a coordinator-timeline event, so the
        // outcome is domain-count-invariant).
        let l = c
            .net
            .links()
            .find(|l| c.uppers.contains(&l.a) && c.uppers.contains(&l.b))
            .ok_or("core ring has no channels")?
            .id;
        let mut plan = FaultPlan::new();
        plan.link_down(l, SimTime::from_us(cut_at_us));
        sim.apply_fault_plan(&plan);
        println!("fault: core channel cut at {cut_at_us} µs (reconverge +50 µs)");
    }

    let trace = args.get("trace-out").map(str::to_string);
    if trace.is_some() {
        sim.set_recorder(Box::new(quartz_obs::MemoryRecorder::new()));
    }
    sim.enable_metrics();
    sim.run(SimTime::from_ms(duration_ms), &ThreadPool::new(jobs));

    let s = sim.stats();
    println!(
        "packets: {} generated, {} delivered, {} dropped over {} ms",
        s.generated, s.delivered, s.dropped, duration_ms
    );
    for (tag, label) in [(0u32, "rpc"), (1, "reno-60k"), (2, "file-30k")] {
        let sum = s.summary(tag);
        if sum.count > 0 {
            println!(
                "  {label:<10} n={:<5} mean {:>9.1} ns  p50 {:>8} ns  p99 {:>8} ns  max {:>8} ns",
                sum.count, sum.mean_ns, sum.p50_ns, sum.p99_ns, sum.max_ns
            );
        }
    }
    println!("completions: {}", sim.flow_completions().len());
    for r in sim.fault_log() {
        println!(
            "fault at {} ns: reconverged {}, {} drops during outage",
            r.at.ns(),
            r.reconverged_at
                .map(|t| format!("at {} ns", t.ns()))
                .unwrap_or_else(|| "never".into()),
            r.drops_during_outage,
        );
    }
    let per_dom = sim.per_domain_events();
    eprintln!(
        "events: {} total across {} domain(s): {:?}",
        sim.events_processed(),
        per_dom.len(),
        per_dom
    );

    if let Some(out) = args.get("metrics-out") {
        let m = sim.take_metrics().ok_or("metrics were enabled")?;
        std::fs::write(out, m.to_ndjson()).map_err(|e| format!("writing {out}: {e}"))?;
        println!("metrics written: {out}");
    }
    if let Some(out) = trace {
        let events = sim.take_recorder().ok_or("recorder was attached")?.finish();
        use quartz_obs::Recorder;
        let mut nd = quartz_obs::NdjsonRecorder::new(Vec::new());
        for ev in &events {
            nd.record(ev);
        }
        std::fs::write(&out, nd.into_inner()).map_err(|e| format!("writing {out}: {e}"))?;
        println!("trace written: {out}");
    }
    Ok(())
}

fn cmd_power(args: &Args) -> Result<(), String> {
    args.expect_only(&["servers"])?;
    let servers: usize = args.num("servers", 10_000)?;
    use quartz_cost::bom::Design;
    use quartz_cost::power::PowerCatalog;
    let p = PowerCatalog::default();
    println!("network power draw for {servers} servers:");
    for d in [
        Design::TwoTierTree,
        Design::ThreeTierTree,
        Design::QuartzInEdge,
        Design::QuartzInCore,
        Design::QuartzInEdgeAndCore,
    ] {
        let w = p.watts_per_server(d, servers);
        println!(
            "  {:<26} {w:>6.2} W/server ({:.1} kW total)",
            d.name(),
            w * servers as f64 / 1000.0
        );
    }
    Ok(())
}
