//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
///
/// Options live in a `BTreeMap` so error reporting (e.g. which unknown
/// option [`Args::expect_only`] names first) is deterministic.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: Option<String>,
    opts: BTreeMap<String, String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn from_env() -> Result<Args, String> {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    pub fn parse<I: IntoIterator<Item = String>>(items: I) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = items.into_iter().peekable();
        while let Some(item) = it.next() {
            if let Some(key) = item.strip_prefix("--") {
                // Support both `--key value` and `--key=value`.
                let (key, value) = match key.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => {
                        let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                        (key.to_string(), v)
                    }
                };
                if args.opts.insert(key.clone(), value).is_some() {
                    return Err(format!("--{key} given twice"));
                }
            } else if args.command.is_none() {
                args.command = Some(item);
            } else {
                return Err(format!("unexpected argument '{item}'"));
            }
        }
        Ok(args)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// A parsed option with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.opts.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    /// Rejects unknown options (catches typos).
    pub fn expect_only(&self, known: &[&str]) -> Result<(), String> {
        for k in self.opts.keys() {
            if !known.contains(&k.as_str()) {
                return Err(format!(
                    "unknown option --{k} (expected one of: {})",
                    known.join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse("design --switches 33 --rate 10.0").unwrap();
        assert_eq!(a.command.as_deref(), Some("design"));
        assert_eq!(a.num("switches", 0usize).unwrap(), 33);
        assert_eq!(a.num("rate", 0.0f64).unwrap(), 10.0);
        assert_eq!(a.num("absent", 7usize).unwrap(), 7);
    }

    #[test]
    fn equals_form_works() {
        let a = parse("plan --switches=9").unwrap();
        assert_eq!(a.num("switches", 0usize).unwrap(), 9);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse("design --switches").is_err());
    }

    #[test]
    fn duplicate_option_is_an_error() {
        assert!(parse("x --a 1 --a 2").is_err());
    }

    #[test]
    fn unknown_option_detected() {
        let a = parse("design --swtches 33").unwrap();
        assert!(a.expect_only(&["switches"]).is_err());
    }

    #[test]
    fn stray_positional_is_an_error() {
        assert!(parse("design extra").is_err());
    }
}
