//! The workspace must lint clean against its own shipped (empty)
//! baseline — the same invariant CI enforces with
//! `cargo run -p quartz-lint`. Running it from `cargo test` means
//! tier-1 verification catches a determinism regression even before
//! the lint CI job does.

use std::path::Path;

#[test]
fn workspace_lints_clean_with_the_shipped_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let baseline =
        quartz_lint::baseline::load(&root.join("lint-baseline.toml")).expect("baseline parses");
    assert_eq!(
        baseline,
        quartz_lint::Baseline::default(),
        "the shipped baseline must stay empty — fix violations, don't baseline them"
    );
    let findings = quartz_lint::run(&root, &baseline).expect("lint runs");
    assert!(
        findings.is_empty(),
        "workspace must lint clean, found:\n{}",
        findings
            .iter()
            .map(|f| format!("  {}:{} {} {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn an_introduced_violation_is_caught() {
    // Sanity-check the end-to-end plumbing: the same engine must flag a
    // fixture workspace carrying one violation of each code rule.
    let dir = std::env::temp_dir().join("quartz-lint-e2e-fixture");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("src")).unwrap();
    std::fs::write(dir.join("Cargo.toml"), "[package]\nname = \"fixture\"\n").unwrap();
    std::fs::write(
        dir.join("src/lib.rs"),
        concat!(
            "//! fixture crate root (hygiene attrs deliberately missing)\n",
            "pub fn f() {\n",
            "    let m = HashMap::new();\n",
            "    for v in &m { drop(v); }\n",
            "    let t = std::time::Instant::now(); drop(t);\n",
            "    let r = StdRng::seed_from_u64(42); drop(r);\n",
            "}\n",
        ),
    )
    .unwrap();
    let findings = quartz_lint::run(&dir, &quartz_lint::Baseline::default()).unwrap();
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    for rule in [
        "hash-iter",
        "wall-clock",
        "seed-discipline",
        "crate-hygiene",
    ] {
        assert!(rules.contains(&rule), "missing {rule} in {findings:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
