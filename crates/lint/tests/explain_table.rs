//! DESIGN.md's lint-rule table (§11) is generated from
//! `quartz_lint::explain::design_table()` — the same data `--explain`
//! prints — so the prose cannot drift from the code. This test fails
//! with the expected block whenever the two diverge; paste the printed
//! table between the markers to resync.

use std::path::Path;

const BEGIN: &str = "<!-- lint-rule-table:begin -->";
const END: &str = "<!-- lint-rule-table:end -->";

#[test]
fn design_md_rule_table_matches_the_rule_catalog() {
    let design = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md");
    let text = std::fs::read_to_string(&design).expect("DESIGN.md reads");
    let lo = text
        .find(BEGIN)
        .expect("DESIGN.md carries the lint-rule-table:begin marker")
        + BEGIN.len();
    let hi = text
        .find(END)
        .expect("DESIGN.md carries the lint-rule-table:end marker");
    assert!(lo <= hi, "table markers out of order");
    let embedded = text[lo..hi].trim();
    let generated = quartz_lint::explain::design_table();
    assert_eq!(
        embedded,
        generated.trim(),
        "\nDESIGN.md rule table is stale; replace the block between the \
         markers with:\n\n{generated}"
    );
}
