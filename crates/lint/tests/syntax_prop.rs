//! Property tests for the syntax layer: on every real workspace file
//! — and on seeded random token streams sampled from them — the parsed
//! item tree must (a) round-trip to the exact token sequence (top-level
//! item spans plus the gaps between them tile `0..toks.len()` in
//! order), and (b) nest: children stay inside their parent's body,
//! siblings stay disjoint and ordered, bodies stay inside their item.
//!
//! The random streams are deliberately torn (brackets may not match,
//! items may be truncated); the parser must stay total and keep the
//! invariants anyway, because the rules trust its spans on whatever
//! source a contributor saves mid-edit.

use quartz_lint::lexer::scan;
use quartz_lint::syntax::{Item, Tree};
use std::path::{Path, PathBuf};

/// Deterministic 64-bit LCG (Knuth's MMIX constants) — the test must
/// not depend on an RNG crate or ambient entropy.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn workspace_rs_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    assert!(out.len() >= 20, "workspace walk found only {}", out.len());
    out
}

/// Asserts nesting: spans in bounds, bodies inside items, siblings
/// disjoint and ordered, children inside the parent's body.
fn check_nesting(items: &[Item], lo: usize, hi: usize, ctx: &str) {
    let mut cursor = lo;
    for it in items {
        assert!(
            it.span.lo >= cursor,
            "{ctx}: item `{}` span {:?} overlaps its predecessor (cursor {cursor})",
            it.name,
            it.span
        );
        assert!(
            it.span.lo <= it.span.hi && it.span.hi <= hi,
            "{ctx}: item `{}` span {:?} escapes region {lo}..{hi}",
            it.name,
            it.span
        );
        if let Some(b) = it.body {
            assert!(
                it.span.lo <= b.lo && b.hi <= it.span.hi,
                "{ctx}: item `{}` body {b:?} escapes span {:?}",
                it.name,
                it.span
            );
        }
        let inner = it.body.unwrap_or(it.span);
        check_nesting(&it.children, inner.lo, inner.hi, ctx);
        cursor = it.span.hi;
    }
}

/// Reconstructs the token-index sequence from the tree's top level:
/// gap, item span, gap, … — the round-trip under test.
fn round_trip(items: &[Item], len: usize) -> Vec<usize> {
    let mut seq = Vec::with_capacity(len);
    let mut cursor = 0;
    for it in items {
        seq.extend(cursor..it.span.lo);
        seq.extend(it.span.lo..it.span.hi);
        cursor = it.span.hi;
    }
    seq.extend(cursor..len);
    seq
}

fn check_source(src: &str, ctx: &str) {
    let (toks, comments) = scan(src);
    let tree = Tree::parse(&toks, &comments);
    check_nesting(&tree.items, 0, toks.len(), ctx);
    let rt = round_trip(&tree.items, toks.len());
    assert_eq!(
        rt,
        (0..toks.len()).collect::<Vec<_>>(),
        "{ctx}: tree does not round-trip to the token sequence"
    );
}

#[test]
fn every_workspace_file_round_trips_and_nests() {
    for path in workspace_rs_files() {
        let src = std::fs::read_to_string(&path).expect("workspace file reads");
        check_source(&src, &path.display().to_string());
    }
}

#[test]
fn seeded_random_token_streams_round_trip_and_nest() {
    // Sample token texts from real files so the streams are made of
    // the vocabulary the parser actually sees (fn/impl/mod keywords,
    // braces, attributes), then shuffle them into torn programs.
    let files = workspace_rs_files();
    let mut rng = Lcg(0x005e_ed0f_9a27);
    for path in files.iter().step_by(files.len() / 8) {
        let src = std::fs::read_to_string(path).expect("workspace file reads");
        let (pool, _) = scan(&src);
        if pool.is_empty() {
            continue;
        }
        for round in 0..40 {
            let len = 1 + rng.below(250);
            let mut synth = String::new();
            for _ in 0..len {
                synth.push_str(&pool[rng.below(pool.len())].text);
                // Newlines sometimes, so line-based logic (cfg ranges,
                // hot annotations) sees multi-line shapes.
                synth.push(if rng.below(4) == 0 { '\n' } else { ' ' });
            }
            check_source(&synth, &format!("{} round {round}", path.display()));
        }
    }
}
