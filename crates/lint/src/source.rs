//! A scanned source file plus the classifications rules need: test
//! regions, test-tree membership, and suppression directives.

use crate::lexer::{scan, Comment, Tok, TokKind};
use crate::syntax::Tree;

/// A `lint:allow` directive parsed from a plain `//` comment.
///
/// Syntax: `// lint:allow(rule-name) — justification`. The directive
/// suppresses findings of `rule` on its own line (trailing form) or on
/// the next line (standalone form). Doc comments (`///`, `//!`) never
/// carry directives, so documentation can quote the syntax.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// 1-based line of the comment.
    pub line: usize,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Whether a justification follows the closing parenthesis.
    pub justified: bool,
}

/// One scanned `.rs` file with everything the rules consume.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with forward slashes.
    pub rel: String,
    /// Token stream (strings and lifetimes already dropped).
    pub toks: Vec<Tok>,
    /// Comments, in order.
    pub comments: Vec<Comment>,
    /// Inclusive 1-based line ranges of `#[cfg(test)]` modules.
    pub test_ranges: Vec<(usize, usize)>,
    /// Whether the whole file is test collateral (`tests/` or
    /// `benches/` directory).
    pub in_test_tree: bool,
    /// Suppression directives parsed from plain comments.
    pub suppressions: Vec<Suppression>,
    /// The parsed item tree (fn/mod/impl spans, `lint:hot` marks).
    pub tree: Tree,
    /// Whether the file opts into the panic-freedom rule via a
    /// `// lint:panic-free` comment.
    pub panic_free: bool,
}

impl SourceFile {
    /// Scans `src` found at workspace-relative path `rel`.
    pub fn new(rel: String, src: &str) -> SourceFile {
        let (toks, comments) = scan(src);
        let test_ranges = cfg_test_ranges(&toks);
        let in_test_tree = rel.split('/').any(|seg| seg == "tests" || seg == "benches");
        let suppressions = parse_suppressions(&comments);
        let tree = Tree::parse(&toks, &comments);
        let panic_free = comments
            .iter()
            .any(|c| !c.doc && c.text.contains("lint:panic-free"));
        SourceFile {
            rel,
            toks,
            comments,
            test_ranges,
            in_test_tree,
            suppressions,
            tree,
            panic_free,
        }
    }

    /// Whether `line` sits in test code: a `tests/`/`benches/` file or
    /// inside a `#[cfg(test)]` module.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test_tree
            || self
                .test_ranges
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Convenience: token at `i` is an identifier with this exact text.
    pub fn ident_at(&self, i: usize, text: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
    }

    /// Convenience: token at `i` is this punctuation character.
    pub fn punct_at(&self, i: usize, ch: char) -> bool {
        self.toks.get(i).is_some_and(|t| {
            t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(ch)
        })
    }

    /// Whether the token sequence `pat` (matched on token text) occurs
    /// anywhere in the file.
    pub fn has_seq(&self, pat: &[&str]) -> bool {
        self.toks
            .windows(pat.len())
            .any(|w| w.iter().zip(pat).all(|(t, p)| t.text == *p))
    }
}

/// Finds the inclusive line spans of `#[cfg(test)] mod … { … }` blocks.
fn cfg_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let txt = |i: usize| toks.get(i).map(|t| t.text.as_str());
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // `# [ cfg ( test ) ]`
        let is_cfg_test = txt(i) == Some("#")
            && txt(i + 1) == Some("[")
            && txt(i + 2) == Some("cfg")
            && txt(i + 3) == Some("(")
            && txt(i + 4) == Some("test")
            && txt(i + 5) == Some(")")
            && txt(i + 6) == Some("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        // Scan forward for the `mod name {` this attribute decorates
        // (skipping further attributes). The search is bounded so a
        // `#[cfg(test)]` on a non-module item doesn't grab an unrelated
        // module further down the file.
        let mut j = i + 7;
        let bound = (i + 27).min(toks.len());
        while j < bound && txt(j) != Some("mod") {
            j += 1;
        }
        if txt(j) != Some("mod") {
            i += 7;
            continue;
        }
        // `mod name ;` (out-of-line test module) has no local span.
        let Some(open) = (j..toks.len()).find(|&k| txt(k) == Some("{") || txt(k) == Some(";"))
        else {
            break;
        };
        if txt(open) == Some(";") {
            i = open + 1;
            continue;
        }
        let mut depth = 0usize;
        let mut k = open;
        let end_line = loop {
            match txt(k) {
                Some("{") => depth += 1,
                Some("}") => {
                    depth -= 1;
                    if depth == 0 {
                        break toks[k].line;
                    }
                }
                None => break toks[toks.len() - 1].line,
                _ => {}
            }
            k += 1;
        };
        ranges.push((start_line, end_line));
        i = k + 1;
    }
    ranges
}

/// Extracts every `lint:allow(rule)` directive from plain comments.
fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            let after = &rest[pos + "lint:allow(".len()..];
            let Some(close) = after.find(')') else { break };
            let rule = after[..close].trim().to_string();
            let tail = after[close + 1..]
                .trim_start_matches([' ', '\t', '—', '–', '-', ':'])
                .trim();
            out.push(Suppression {
                line: c.line,
                rule,
                justified: tail.len() >= 10,
            });
            rest = &after[close + 1..];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_span_covers_the_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { if true {} }\n}\nfn c() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs".into(), src);
        assert_eq!(f.test_ranges, vec![(2, 5)]);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn tests_tree_files_are_all_test_code() {
        let f = SourceFile::new("crates/x/tests/it.rs".into(), "fn a() {}");
        assert!(f.is_test_line(1));
    }

    #[test]
    fn suppression_with_and_without_justification() {
        let src = "// lint:allow(hash-iter) — the result is sorted before printing\n\
                   // lint:allow(wall-clock)\n";
        let f = SourceFile::new("a.rs".into(), src);
        assert_eq!(f.suppressions.len(), 2);
        assert!(f.suppressions[0].justified);
        assert_eq!(f.suppressions[0].rule, "hash-iter");
        assert!(!f.suppressions[1].justified);
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let src = "/// syntax: lint:allow(hash-iter) — why order cannot escape\nfn a() {}\n";
        let f = SourceFile::new("a.rs".into(), src);
        assert!(f.suppressions.is_empty());
    }
}
