//! Per-rule documentation: rationale, example violation, and sanctioned
//! escape hatch.
//!
//! This module is the single source of truth for what each rule means.
//! The CLI's `--explain <rule>` subcommand prints one entry; the
//! DESIGN.md §11 table is generated from the same data (see
//! `tests/explain_table.rs`), so the docs cannot drift from the code.

use crate::rules;

/// Everything a developer needs to react to a finding.
#[derive(Clone, Copy, Debug)]
pub struct RuleDoc {
    /// Rule name (matches [`rules::ALL_RULES`]).
    pub name: &'static str,
    /// Why the rule exists, in one or two sentences.
    pub rationale: &'static str,
    /// A minimal violating snippet.
    pub example: &'static str,
    /// The sanctioned way out when the rule is wrong for a site.
    pub escape: &'static str,
}

/// One entry per rule, in [`rules::ALL_RULES`] order.
pub const RULE_DOCS: [RuleDoc; 10] = [
    RuleDoc {
        name: rules::HASH_ITER,
        rationale: "Hash iteration order is randomized per process; iterating a \
                    HashMap/HashSet lets that order leak into experiment output and \
                    break the bit-identity contract.",
        example: "for v in m.values() { emit(v); }  // m: HashMap<_, _>",
        escape: "Use BTreeMap/BTreeSet, or sort the entries first; a justified \
                 `lint:allow(hash-iter)` is accepted only where order provably folds \
                 into a commutative result.",
    },
    RuleDoc {
        name: rules::WALL_CLOCK,
        rationale: "Instant/SystemTime readings differ per run; any simulation or \
                    experiment decision based on them is nondeterministic.",
        example: "let t0 = std::time::Instant::now();",
        escape: "Route timing through quartz_bench::timing (the one sanctioned \
                 wall-clock module); simulation time comes from SimTime.",
    },
    RuleDoc {
        name: rules::STDOUT_DISCIPLINE,
        rationale: "Experiment bytes must flow through one sink (table::emit_line) so \
                    golden-output checks see every line; stray println! bypasses it.",
        example: "println!(\"rate {}\", r);  // in crates/*/src/ library code",
        escape: "Use quartz_bench::outln!, or return the data to the caller; binaries, \
                 tests, and the table/timing sinks keep direct access.",
    },
    RuleDoc {
        name: rules::SEED_DISCIPLINE,
        rationale: "A literal seed buried in library code silently decouples an \
                    experiment from its --seed parameter and from pool::unit_seed's \
                    per-unit schedule independence.",
        example: "let rng = StdRng::seed_from_u64(42);  // outside tests",
        escape: "Thread the seed in as a parameter or derive it with \
                 pool::unit_seed(seed, unit); literals stay legal in tests.",
    },
    RuleDoc {
        name: rules::CRATE_HYGIENE,
        rationale: "Every crate root must carry #![deny(missing_docs)] and \
                    #![forbid(unsafe_code)]: the determinism argument leans on 'no \
                    unsafe anywhere' and documented public surfaces.",
        example: "// src/lib.rs without #![forbid(unsafe_code)]",
        escape: "None — add the attributes. (Unsafe code has no sanctioned home in \
                 this workspace.)",
    },
    RuleDoc {
        name: rules::SUPPRESSION_AUDIT,
        rationale: "Escape hatches rot: an unjustified, unused, or uncounted \
                    lint:allow hides real violations. The lint-baseline.toml ratchet \
                    must equal the workspace count exactly and may only go down.",
        example: "// lint:allow(hash-iter)        <- no justification, or unused",
        escape: "Justify every directive (`— why the invariant cannot break here`), \
                 delete dead ones, and ratchet the baseline to the true count.",
    },
    RuleDoc {
        name: rules::CAST_SOUNDNESS,
        rationale: "Narrowing `as` casts truncate silently; in hot-crate library code \
                    (netsim/core/topology) a wrapped id or time corrupts the \
                    simulation without a panic. The range invariant must be stated \
                    next to the cast.",
        example: "let ser = ser_ns as u32;  // no guard in sight",
        escape: "Put `debug_assert!(x <= T::MAX as _)` (or try_from/try_into) within \
                 16 lines above the cast; bare literals and masked operands \
                 (`(x & 0xff) as u8`, `.min(cap) as u16`) are exempt.",
    },
    RuleDoc {
        name: rules::FLOAT_DETERMINISM,
        rationale: "Float addition is not associative and PartialOrd is not total: \
                    accumulating over unordered iteration, reducing inside par_map \
                    workers, or selecting with `partial_cmp().unwrap()` / bare `<` in \
                    comparator closures lets NaN handling or visit order become \
                    output bits.",
        example: "best.is_none_or(|(_, s)| share < s)  // float argmin via PartialOrd",
        escape: "Use f64::total_cmp for every float selection; accumulate over \
                 ordered containers or the unit-ordered Vec par_map returns.",
    },
    RuleDoc {
        name: rules::PANIC_FREEDOM,
        rationale: "Library panics in the hot crates tear down mid-simulation with \
                    the arena and wheel in arbitrary states. Modules that opt in with \
                    `// lint:panic-free` must handle absence explicitly.",
        example: "self.far_slots[id].take().expect(\"slot is live\")",
        escape: "Return the Option/Result (`?`, let-else); indexing is exempt in \
                 functions that state their bound with an assert-family macro.",
    },
    RuleDoc {
        name: rules::HOT_PATH_ALLOC,
        rationale: "Steady-state event processing must not touch the allocator: one \
                    format! per delivered packet costs more than the event dispatch \
                    it decorates. Functions annotated `// lint:hot` are the arena \
                    recycle path, scheduler drain, and forwarding fast path.",
        example: "format!(\"queue.link{:04}\", idx)  // inside a lint:hot fn",
        escape: "Preallocate in setup code (label caches, scratch buffers) or move \
                 the allocation to a cold, unannotated helper.",
    },
];

/// Looks up the documentation for `rule`.
pub fn rule_doc(rule: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.name == rule)
}

/// Renders one rule's documentation as the `--explain` text block.
pub fn render(doc: &RuleDoc) -> String {
    format!(
        "{name}\n{underline}\n\nWhy:\n  {rationale}\n\nExample violation:\n  {example}\n\n\
         Escape hatch:\n  {escape}\n",
        name = doc.name,
        underline = "=".repeat(doc.name.len()),
        rationale = doc.rationale,
        example = doc.example,
        escape = doc.escape,
    )
}

/// Renders the ten-rule markdown table embedded in DESIGN.md §11.
pub fn design_table() -> String {
    let mut out = String::from("| rule | why | escape hatch |\n|------|-----|--------------|\n");
    for d in &RULE_DOCS {
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            d.name,
            d.rationale.split_whitespace().collect::<Vec<_>>().join(" "),
            d.escape.split_whitespace().collect::<Vec<_>>().join(" "),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_a_doc_and_vice_versa() {
        let documented: Vec<&str> = RULE_DOCS.iter().map(|d| d.name).collect();
        assert_eq!(documented, rules::ALL_RULES.to_vec());
    }

    #[test]
    fn render_includes_all_three_sections() {
        let doc = rule_doc("cast-soundness").unwrap();
        let text = render(doc);
        assert!(text.contains("Why:"));
        assert!(text.contains("Example violation:"));
        assert!(text.contains("Escape hatch:"));
    }

    #[test]
    fn unknown_rules_have_no_doc() {
        assert!(rule_doc("no-such-rule").is_none());
    }

    #[test]
    fn design_table_has_one_row_per_rule() {
        let table = design_table();
        // Header + separator + 10 rules.
        assert_eq!(table.trim_end().lines().count(), 12);
        for rule in rules::ALL_RULES {
            assert!(table.contains(&format!("| `{rule}` |")), "{rule} missing");
        }
    }
}
