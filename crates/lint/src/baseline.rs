//! The `lint-baseline.toml` ratchet.
//!
//! The baseline records, per rule, how many `lint:allow` suppressions
//! the workspace is permitted to carry. The count may only go *down*:
//! adding a suppression without bumping the baseline fails the lint,
//! and removing one without lowering the baseline also fails (so the
//! checked-in file always states the true debt). An empty file — the
//! state this workspace ships in — permits no suppressions at all.
//!
//! Format (a tiny TOML subset parsed without dependencies):
//!
//! ```toml
//! [allow]
//! hash-iter = 2
//! wall-clock = 1
//! ```

use std::collections::BTreeMap;
use std::path::Path;

/// Parsed ratchet state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Permitted suppression count per rule name.
    pub allow: BTreeMap<String, usize>,
}

impl Baseline {
    /// Permitted suppressions for `rule` (0 when absent).
    pub fn allowed(&self, rule: &str) -> usize {
        self.allow.get(rule).copied().unwrap_or(0)
    }
}

/// Loads a baseline file; a missing file is the empty baseline.
pub fn load(path: &Path) -> Result<Baseline, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Parses the TOML subset described in the module docs.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut baseline = Baseline::default();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        if let Some(header) = line.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return Err(format!("line {lineno}: malformed section header"));
            };
            section = name.trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `rule = count`"));
        };
        let key = key.trim().trim_matches('"').to_string();
        let count: usize = value
            .trim()
            .parse()
            .map_err(|_| format!("line {lineno}: `{}` is not a count", value.trim()))?;
        match section.as_str() {
            "allow" => {
                if baseline.allow.insert(key.clone(), count).is_some() {
                    return Err(format!("line {lineno}: rule `{key}` listed twice"));
                }
            }
            "" => return Err(format!("line {lineno}: entry outside a section")),
            other => return Err(format!("line {lineno}: unknown section `[{other}]`")),
        }
    }
    Ok(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_comment_only_files_permit_nothing() {
        let b = parse("# ratchet\n\n").unwrap();
        assert_eq!(b, Baseline::default());
        assert_eq!(b.allowed("hash-iter"), 0);
    }

    #[test]
    fn counts_parse_per_rule() {
        let b = parse("[allow]\nhash-iter = 2\n\"wall-clock\" = 1 # trailing\n").unwrap();
        assert_eq!(b.allowed("hash-iter"), 2);
        assert_eq!(b.allowed("wall-clock"), 1);
        assert_eq!(b.allowed("seed-discipline"), 0);
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(parse("hash-iter = 2\n").is_err(), "entry outside section");
        assert!(parse("[allow]\nhash-iter = many\n").is_err());
        assert!(parse("[allow]\nhash-iter = 1\nhash-iter = 2\n").is_err());
        assert!(parse("[permit]\nx = 1\n").is_err());
    }
}
