//! The determinism rules.
//!
//! Every rule reports [`Finding`]s as `file:line rule message`. A
//! finding can be silenced with a justified suppression comment (see
//! [`crate::source::Suppression`]), which the `suppression-audit` rule
//! then counts against the `lint-baseline.toml` ratchet.
//!
//! | rule | invariant |
//! |------|-----------|
//! | `hash-iter` | no iteration over `HashMap`/`HashSet` anywhere — iteration order could leak into experiment output |
//! | `wall-clock` | `Instant`/`SystemTime` only in `crates/bench/src/timing.rs` |
//! | `stdout-discipline` | no `println!`/`eprintln!` in library code — experiment output flows through `quartz_bench::outln!` |
//! | `seed-discipline` | no literal-seeded RNG outside tests — seeds flow from parameters or `pool::unit_seed` |
//! | `crate-hygiene` | every crate root carries `#![deny(missing_docs)]` and `#![forbid(unsafe_code)]` |
//! | `suppression-audit` | every `lint:allow` is justified, used, and counted by the ratchet |
//! | `cast-soundness` | narrowing `as` casts in hot-crate library code sit next to a `debug_assert!`/`try_from` guard |
//! | `float-determinism` | no float accumulation over unordered iteration, `partial_cmp(..).unwrap()` comparators, bare float `<`/`>` in selection closures, or float reductions inside `par_map` |
//! | `panic-freedom` | no `unwrap`/`expect`/unguarded indexing in modules opted in via `// lint:panic-free` |
//! | `hot-path-alloc` | no allocation (`Vec::new`/`push`/`collect`/`format!`/`Box::new`) in functions annotated `// lint:hot` |

use crate::lexer::TokKind;
use crate::model::FileModel;
use crate::source::SourceFile;
use crate::syntax::{casts_in, method_calls_in, Span};
use std::collections::BTreeSet;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for whole-workspace findings).
    pub line: usize,
    /// Rule name.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// The `hash-iter` rule name.
pub const HASH_ITER: &str = "hash-iter";
/// The `wall-clock` rule name.
pub const WALL_CLOCK: &str = "wall-clock";
/// The `stdout-discipline` rule name.
pub const STDOUT_DISCIPLINE: &str = "stdout-discipline";
/// The `seed-discipline` rule name.
pub const SEED_DISCIPLINE: &str = "seed-discipline";
/// The `crate-hygiene` rule name.
pub const CRATE_HYGIENE: &str = "crate-hygiene";
/// The `suppression-audit` rule name.
pub const SUPPRESSION_AUDIT: &str = "suppression-audit";
/// The `cast-soundness` rule name.
pub const CAST_SOUNDNESS: &str = "cast-soundness";
/// The `float-determinism` rule name.
pub const FLOAT_DETERMINISM: &str = "float-determinism";
/// The `panic-freedom` rule name.
pub const PANIC_FREEDOM: &str = "panic-freedom";
/// The `hot-path-alloc` rule name.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";

/// Every rule name, in reporting order.
pub const ALL_RULES: [&str; 10] = [
    HASH_ITER,
    WALL_CLOCK,
    STDOUT_DISCIPLINE,
    SEED_DISCIPLINE,
    CRATE_HYGIENE,
    SUPPRESSION_AUDIT,
    CAST_SOUNDNESS,
    FLOAT_DETERMINISM,
    PANIC_FREEDOM,
    HOT_PATH_ALLOC,
];

/// Methods whose call on a hash container exposes iteration order.
const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// The only file allowed to touch the wall clock.
const WALL_CLOCK_SANCTUARY: &str = "crates/bench/src/timing.rs";

/// `hash-iter`: no iteration over `HashMap`/`HashSet`.
///
/// The detector is heuristic but deliberately conservative in what it
/// *tracks*: a name is considered hash-typed when it is bound or
/// declared with a `HashMap`/`HashSet` type or constructor in the same
/// file. Only *iteration* over a tracked name fires — key lookups,
/// `insert`, `contains`, and `len` are order-free and stay legal, which
/// is why e.g. duplicate-detection sets in tests pass untouched.
pub fn hash_iter(f: &SourceFile) -> Vec<Finding> {
    let names = tracked_hash_names(f);
    if names.is_empty() {
        return Vec::new();
    }
    let toks = &f.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name.iter()` and friends.
        if names.contains(&t.text)
            && f.punct_at(i + 1, '.')
            && toks.get(i + 2).is_some_and(|m| {
                m.kind == TokKind::Ident && ITER_METHODS.contains(&m.text.as_str())
            })
            && f.punct_at(i + 3, '(')
        {
            out.push(Finding {
                file: f.rel.clone(),
                line: t.line,
                rule: HASH_ITER,
                message: format!(
                    "iteration over hash container `{}` via `.{}()` — hash order is \
                     nondeterministic; use BTreeMap/BTreeSet or sort before iterating",
                    t.text,
                    toks[i + 2].text
                ),
            });
        }
        // `for x in &name {` / `for x in name {`.
        if t.text == "for" {
            let stop = (i + 60).min(toks.len());
            let mut j = i + 1;
            while j < stop && toks[j].text != "in" && toks[j].text != "{" {
                j += 1;
            }
            if j < stop && toks[j].text == "in" {
                let mut k = j + 1;
                while k < toks.len() && (toks[k].text == "&" || toks[k].text == "mut") {
                    k += 1;
                }
                if toks.get(k).is_some_and(|t| t.kind == TokKind::Ident)
                    && names.contains(&toks[k].text)
                    && f.punct_at(k + 1, '{')
                {
                    out.push(Finding {
                        file: f.rel.clone(),
                        line: toks[k].line,
                        rule: HASH_ITER,
                        message: format!(
                            "`for … in` over hash container `{}` — hash order is \
                             nondeterministic; use BTreeMap/BTreeSet or sort before iterating",
                            toks[k].text
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Names bound or declared with a `HashMap`/`HashSet` type in this file.
fn tracked_hash_names(f: &SourceFile) -> BTreeSet<String> {
    let toks = &f.toks;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Type position: `name: [&] [mut] path::to::Hash…`.
        let mut j = i;
        while j >= 3
            && toks[j - 1].text == ":"
            && toks[j - 2].text == ":"
            && toks[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        while j >= 1 && (toks[j - 1].text == "&" || toks[j - 1].text == "mut") {
            j -= 1;
        }
        if j >= 2
            && toks[j - 1].text == ":"
            && toks[j - 2].kind == TokKind::Ident
            && (j < 3 || toks[j - 3].text != ":")
        {
            names.insert(toks[j - 2].text.clone());
            continue;
        }
        // Constructor / collect position: the enclosing `let` binding.
        if let Some(name) = let_binding_before(f, i) {
            names.insert(name);
        }
    }
    names
}

/// The name bound by the `let` statement enclosing token `i`, if any.
fn let_binding_before(f: &SourceFile, i: usize) -> Option<String> {
    let toks = &f.toks;
    let mut j = i;
    while j > 0 {
        j -= 1;
        match toks[j].text.as_str() {
            ";" | "{" | "}" => return None,
            "let" => {
                let mut k = j + 1;
                if toks.get(k).is_some_and(|t| t.text == "mut") {
                    k += 1;
                }
                return toks
                    .get(k)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
            }
            _ => {}
        }
    }
    None
}

/// `wall-clock`: `Instant`/`SystemTime` confined to the timing module.
pub fn wall_clock(f: &SourceFile) -> Vec<Finding> {
    if f.rel == WALL_CLOCK_SANCTUARY {
        return Vec::new();
    }
    f.toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime"))
        .map(|t| Finding {
            file: f.rel.clone(),
            line: t.line,
            rule: WALL_CLOCK,
            message: format!(
                "`{}` outside {WALL_CLOCK_SANCTUARY} — wall-clock readings are \
                 nondeterministic; route timing through quartz_bench::timing",
                t.text
            ),
        })
        .collect()
}

/// Stdout macros that leak experiment output past the table sink.
const STDOUT_MACROS: [&str; 4] = ["println", "eprintln", "print", "eprint"];

/// Library files that *are* the sanctioned output sinks: the table
/// module (every `outln!` line funnels through its `emit_line`) and the
/// timing module (bench progress/JSON notes on stderr).
const STDOUT_SANCTUARIES: [&str; 2] = ["crates/bench/src/table.rs", "crates/bench/src/timing.rs"];

/// `stdout-discipline`: no `println!`/`eprintln!`/`print!`/`eprint!` in
/// library code.
///
/// Experiment output must flow through `quartz_bench::outln!` (and thus
/// `table::emit_line`) so there is exactly one place where simulation
/// results become bytes on stdout — the byte-identity golden checks
/// depend on that funnel. Binaries (`src/main.rs`, `src/bin/**`,
/// `examples/**`), test collateral, and the two sanctuary sinks keep
/// direct access.
pub fn stdout_discipline(f: &SourceFile) -> Vec<Finding> {
    if STDOUT_SANCTUARIES.contains(&f.rel.as_str())
        || f.rel.ends_with("src/main.rs")
        || f.rel.contains("/src/bin/")
        || f.rel.split('/').any(|seg| seg == "examples")
    {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in f.toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && STDOUT_MACROS.contains(&t.text.as_str())
            && f.punct_at(i + 1, '!')
            && !f.is_test_line(t.line)
        {
            out.push(Finding {
                file: f.rel.clone(),
                line: t.line,
                rule: STDOUT_DISCIPLINE,
                message: format!(
                    "`{}!` in library code — stdout/stderr writes belong to binaries \
                     and the table/timing sinks; route experiment lines through \
                     quartz_bench::outln! or return the data to the caller",
                    t.text
                ),
            });
        }
    }
    out
}

/// `seed-discipline`: RNG constructions must flow from a seed parameter
/// or `pool::unit_seed`; literal seeds are for tests only.
pub fn seed_discipline(f: &SourceFile) -> Vec<Finding> {
    let toks = &f.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "seed_from_u64"
            && f.punct_at(i + 1, '(')
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Num)
            && !f.is_test_line(toks[i].line)
        {
            out.push(Finding {
                file: f.rel.clone(),
                line: toks[i].line,
                rule: SEED_DISCIPLINE,
                message: format!(
                    "RNG seeded with the literal `{}` outside tests — derive the seed \
                     from an explicit parameter or pool::unit_seed",
                    toks[i + 2].text
                ),
            });
        }
    }
    out
}

/// `crate-hygiene`: crate roots must deny missing docs and forbid
/// `unsafe`.
pub fn crate_hygiene(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    if !f.has_seq(&["#", "!", "[", "deny", "(", "missing_docs", ")", "]"]) {
        out.push(Finding {
            file: f.rel.clone(),
            line: 1,
            rule: CRATE_HYGIENE,
            message: "crate root is missing `#![deny(missing_docs)]`".to_string(),
        });
    }
    if !f.has_seq(&["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"]) {
        out.push(Finding {
            file: f.rel.clone(),
            line: 1,
            rule: CRATE_HYGIENE,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    out
}

/// Narrowing cast targets: assigning a wider integer into one of these
/// truncates silently.
const NARROW_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Tokens that count as a range guard when they appear near a cast (or
/// make indexing self-documenting in panic-free modules).
const GUARD_TOKENS: [&str; 8] = [
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "assert",
    "assert_eq",
    "assert_ne",
    "try_from",
    "try_into",
];

/// How many lines above a cast a guard may sit and still count as
/// "adjacent".
const GUARD_WINDOW: usize = 16;

/// `cast-soundness`: narrowing `as` casts in non-test library code of
/// the hot crates must sit within [`GUARD_WINDOW`] lines *after* a
/// `debug_assert!`/`try_from` guard in the same function.
///
/// Bare literal operands (`7 as u8`) and parenthesized operands already
/// range-limited by a mask/`min`/`clamp`/`%` are self-guarding and
/// exempt — the rule targets PR 7-style field narrowings whose safety
/// is otherwise folklore.
pub fn cast_soundness(f: &SourceFile, m: &FileModel) -> Vec<Finding> {
    if !m.hot_crate_lib() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (item, in_test) in f.tree.fns() {
        if in_test {
            continue;
        }
        let Some(body) = item.body else { continue };
        for cast in casts_in(&f.toks, body) {
            if !NARROW_TARGETS.contains(&cast.target.as_str())
                || cast.operand_literal
                || cast.operand_masked
                || f.is_test_line(cast.line)
            {
                continue;
            }
            let guarded = f.toks[body.lo..body.hi.min(f.toks.len())].iter().any(|t| {
                t.kind == TokKind::Ident
                    && GUARD_TOKENS.contains(&t.text.as_str())
                    && t.line <= cast.line
                    && t.line + GUARD_WINDOW >= cast.line
            });
            if !guarded {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: cast.line,
                    rule: CAST_SOUNDNESS,
                    message: format!(
                        "narrowing cast `as {}` in `{}` without an adjacent \
                         debug_assert!/try_from guard — state the range invariant \
                         within {GUARD_WINDOW} lines above the cast",
                        cast.target, item.name
                    ),
                });
            }
        }
    }
    out
}

/// Selection/comparator methods whose closures must not compare floats
/// with the partial operators: a NaN (or a future refactor that admits
/// one) silently flips the selection.
const COMPARATOR_METHODS: [&str; 8] = [
    "sort_by",
    "sort_unstable_by",
    "min_by",
    "max_by",
    "binary_search_by",
    "is_none_or",
    "is_some_and",
    "map_or",
];

/// `float-determinism`: the bit-identity contract's blind spots.
///
/// Three detectors, all scoped to non-test code:
/// 1. float accumulation (`+=` on a float-tracked name) inside
///    iteration over a hash container, and float reductions inside
///    `par_map` worker closures (cross-thread merge order is not a
///    sequence the unit-order contract covers);
/// 2. `partial_cmp(..).unwrap()` / `.expect(..)` comparators — use
///    `total_cmp`, which is total over NaN and bit-identical for the
///    finite values the experiments produce;
/// 3. bare `<`/`>` on float-tracked operands inside selection closures
///    (`sort_by`, `min_by`, `is_none_or`, …) — argmin/argmax tie and
///    NaN behavior must come from `total_cmp`, not `PartialOrd`.
pub fn float_determinism(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let floats = tracked_float_names(f);
    let hashes = tracked_hash_names(f);
    let toks = &f.toks;
    let file_span = Span {
        lo: 0,
        hi: toks.len(),
    };

    // Detector 2: `partial_cmp(..).unwrap()`.
    for call in method_calls_in(toks, file_span) {
        if call.name != "partial_cmp" || f.is_test_line(call.line) {
            continue;
        }
        let chained = toks.get(call.after).is_some_and(|t| t.text == ".")
            && toks
                .get(call.after + 1)
                .is_some_and(|t| t.text == "unwrap" || t.text == "expect");
        if chained {
            out.push(Finding {
                file: f.rel.clone(),
                line: call.line,
                rule: FLOAT_DETERMINISM,
                message: "`partial_cmp(..).unwrap()` comparator — NaN panics and partial \
                          order is not a sort order; use `total_cmp`"
                    .to_string(),
            });
        }
    }

    // Detector 3: partial float comparison inside selection closures.
    for call in method_calls_in(toks, file_span) {
        if !COMPARATOR_METHODS.contains(&call.name.as_str()) || f.is_test_line(call.line) {
            continue;
        }
        for i in call.args.lo..call.args.hi.min(toks.len()) {
            let Some(name) = partial_float_compare_at(toks, i, &floats) else {
                continue;
            };
            out.push(Finding {
                file: f.rel.clone(),
                line: toks[i].line,
                rule: FLOAT_DETERMINISM,
                message: format!(
                    "float `{}` compared with a partial operator inside `.{}(..)` — \
                     selection order must come from `total_cmp`, not `PartialOrd`",
                    name, call.name
                ),
            });
        }
    }

    // Detector 1a: float `+=` inside `for … in` over a hash container.
    for i in 0..toks.len() {
        if toks[i].text != "for" || f.is_test_line(toks[i].line) {
            continue;
        }
        let stop = (i + 60).min(toks.len());
        let Some(j) = (i + 1..stop).find(|&j| toks[j].text == "in" || toks[j].text == "{") else {
            continue;
        };
        if toks[j].text != "in" {
            continue;
        }
        let mut k = j + 1;
        while k < toks.len() && (toks[k].text == "&" || toks[k].text == "mut") {
            k += 1;
        }
        let over_hash = toks.get(k).is_some_and(|t| t.kind == TokKind::Ident)
            && hashes.contains(&toks[k].text)
            && f.punct_at(k + 1, '{');
        if !over_hash {
            continue;
        }
        let close = crate::syntax::body_close(toks, k + 1);
        for acc in float_accumulations(
            toks,
            Span {
                lo: k + 2,
                hi: close,
            },
            &floats,
        ) {
            out.push(Finding {
                file: f.rel.clone(),
                line: toks[acc].line,
                rule: FLOAT_DETERMINISM,
                message: format!(
                    "float accumulation into `{}` inside iteration over hash container \
                     `{}` — float addition is not associative, so hash order becomes \
                     output bits; iterate a BTree or sort first",
                    toks[acc].text, toks[k].text
                ),
            });
        }
    }

    // Detector 1b: float reductions inside `par_map` worker closures.
    for call in method_calls_in(toks, file_span) {
        if !call.name.starts_with("par_map") || f.is_test_line(call.line) {
            continue;
        }
        for acc in float_accumulations(toks, call.args, &floats) {
            out.push(Finding {
                file: f.rel.clone(),
                line: toks[acc].line,
                rule: FLOAT_DETERMINISM,
                message: format!(
                    "float accumulation into `{}` inside a `{}` closure — reduce over \
                     the returned Vec in unit order instead",
                    toks[acc].text, call.name
                ),
            });
        }
    }

    out
}

/// Token indices of names receiving a float compound assignment
/// (`name += …`, `-=`, `*=`) inside `span`, restricted to float-tracked
/// names.
fn float_accumulations(
    toks: &[crate::lexer::Tok],
    span: Span,
    floats: &BTreeSet<String>,
) -> Vec<usize> {
    let mut out = Vec::new();
    for i in span.lo..span.hi.min(toks.len()).saturating_sub(2) {
        let op = &toks[i + 1].text;
        if (op == "+" || op == "-" || op == "*")
            && toks[i + 2].text == "="
            && toks[i].kind == TokKind::Ident
            && floats.contains(&toks[i].text)
        {
            out.push(i);
        }
    }
    out
}

/// If token `i` is a partial comparison operator (`<`, `>`, `<=`, `>=`)
/// with a float-tracked identifier operand, returns that name.
fn partial_float_compare_at(
    toks: &[crate::lexer::Tok],
    i: usize,
    floats: &BTreeSet<String>,
) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokKind::Punct || (t.text != "<" && t.text != ">") {
        return None;
    }
    let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
    let next = toks.get(i + 1).map(|t| t.text.as_str());
    // Not generics (`Vec<f64>`, turbofish), shifts, arrows, or `=>`.
    if matches!(
        prev,
        Some("<") | Some(">") | Some(":") | Some("-") | Some("=")
    ) || matches!(next, Some("<") | Some(">"))
    {
        return None;
    }
    let left = i
        .checked_sub(1)
        .map(|p| &toks[p])
        .filter(|t| t.kind == TokKind::Ident);
    // Skip the `=` of `<=`/`>=`, then unary `&`/`-`, to the operand.
    let mut r = i + 1;
    if toks.get(r).is_some_and(|t| t.text == "=") {
        r += 1;
    }
    while toks.get(r).is_some_and(|t| t.text == "&" || t.text == "-") {
        r += 1;
    }
    let right = toks.get(r).filter(|t| t.kind == TokKind::Ident);
    for side in [left, right].into_iter().flatten() {
        if floats.contains(&side.text) {
            // `Vec<f64>` never reaches here: `<` after an ident with a
            // type name on the right is filtered by tracking (type
            // names are not bindings).
            return Some(side.text.clone());
        }
    }
    None
}

/// Names bound or declared with an `f32`/`f64` type in this file:
/// type-position annotations (params, fields, let-with-type, including
/// through `&`, `Vec<…>`, and slice wrappers), float-literal `let`
/// initializers, and one propagation pass through `let` chains.
fn tracked_float_names(f: &SourceFile) -> BTreeSet<String> {
    let toks = &f.toks;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && (t.text == "f64" || t.text == "f32") {
            // Walk back out of wrappers: `Vec <`, `[`, `&`, `mut`.
            let mut j = i;
            loop {
                if j >= 2 && toks[j - 1].text == "<" && toks[j - 2].kind == TokKind::Ident {
                    j -= 2;
                } else if j >= 1
                    && (toks[j - 1].text == "["
                        || toks[j - 1].text == "&"
                        || toks[j - 1].text == "mut")
                {
                    j -= 1;
                } else {
                    break;
                }
            }
            if j >= 2
                && toks[j - 1].text == ":"
                && toks[j - 2].kind == TokKind::Ident
                && (j < 3 || toks[j - 3].text != ":")
            {
                names.insert(toks[j - 2].text.clone());
            }
        }
        // `let name = 0.0…`-style float-literal initializers.
        if t.kind == TokKind::Num && is_float_literal(&t.text) {
            if let Some(name) = let_binding_before(f, i) {
                names.insert(name);
            }
        }
    }
    // One propagation pass: `let derived = …tracked…;`.
    let mut derived = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && names.contains(&t.text)
            && let_binding_before(f, i).is_some_and(|n| !names.contains(&n))
        {
            if let Some(n) = let_binding_before(f, i) {
                derived.push(n);
            }
        }
    }
    names.extend(derived);
    names
}

/// Whether a `Num` token is a float literal (`1.5`, `0.0f64`, `1e9`).
fn is_float_literal(text: &str) -> bool {
    text.contains('.')
        || text.ends_with("f64")
        || text.ends_with("f32")
        || (text.contains(['e', 'E']) && !text.starts_with("0x") && !text.starts_with("0X"))
}

/// `panic-freedom`: in files opted in with `// lint:panic-free`, no
/// `unwrap`/`expect` and no unguarded indexing in non-test functions.
///
/// Indexing is exempt inside functions that state their invariant with
/// an assert-family macro (the arena's `live_bits` checks, the wheel's
/// slot asserts) — the point is that every potential panic site either
/// cannot fire or says *why* it cannot, next to the code.
pub fn panic_freedom(f: &SourceFile) -> Vec<Finding> {
    if !f.panic_free {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (item, in_test) in f.tree.fns() {
        if in_test {
            continue;
        }
        let Some(body) = item.body else { continue };
        for call in method_calls_in(&f.toks, body) {
            if (call.name == "unwrap" || call.name == "expect") && !f.is_test_line(call.line) {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: call.line,
                    rule: PANIC_FREEDOM,
                    message: format!(
                        "`.{}(..)` in panic-free module (fn `{}`) — return the Option/\
                         Result, use `?`, or restructure with let-else",
                        call.name, item.name
                    ),
                });
            }
        }
        let has_assert = f.toks[body.lo..body.hi.min(f.toks.len())]
            .iter()
            .any(|t| t.kind == TokKind::Ident && GUARD_TOKENS.contains(&t.text.as_str()));
        if has_assert {
            continue;
        }
        for i in body.lo..body.hi.min(f.toks.len()) {
            if f.toks[i].text != "[" {
                continue;
            }
            let indexes = i > 0
                && (f.toks[i - 1].kind == TokKind::Ident
                    || f.toks[i - 1].text == "]"
                    || f.toks[i - 1].text == ")");
            if indexes && !f.is_test_line(f.toks[i].line) {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: f.toks[i].line,
                    rule: PANIC_FREEDOM,
                    message: format!(
                        "direct indexing in panic-free fn `{}` with no stated invariant — \
                         add a debug_assert! for the bound or use `.get(..)`",
                        item.name
                    ),
                });
            }
        }
    }
    out
}

/// Allocation constructs banned in `// lint:hot` functions, as token
/// sequences (`.` `push` `(` is handled via method calls).
const HOT_ALLOC_SEQS: [(&[&str], &str); 5] = [
    (&["Vec", ":", ":", "new"], "Vec::new"),
    (&["Vec", ":", ":", "with_capacity"], "Vec::with_capacity"),
    (&["vec", "!"], "vec!"),
    (&["format", "!"], "format!"),
    (&["Box", ":", ":", "new"], "Box::new"),
];

/// Allocating method calls banned in `// lint:hot` functions.
const HOT_ALLOC_METHODS: [&str; 4] = ["push", "collect", "to_string", "to_vec"];

/// `hot-path-alloc`: functions annotated `// lint:hot` must not
/// allocate. The annotation seeds the contract on the arena recycle
/// path, the scheduler drain, and the forwarding fast path: steady-state
/// event processing touches no allocator, so throughput is a property
/// of the data layout, not of malloc.
pub fn hot_path_alloc(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (item, _) in f.tree.fns() {
        if !item.hot {
            continue;
        }
        let Some(body) = item.body else { continue };
        let hi = body.hi.min(f.toks.len());
        for i in body.lo..hi {
            for (seq, label) in HOT_ALLOC_SEQS {
                if seq.len() <= hi - i
                    && f.toks[i..i + seq.len()]
                        .iter()
                        .zip(seq)
                        .all(|(t, p)| t.text == *p)
                {
                    out.push(Finding {
                        file: f.rel.clone(),
                        line: f.toks[i].line,
                        rule: HOT_PATH_ALLOC,
                        message: format!(
                            "`{label}` in `// lint:hot` fn `{}` — hot-path functions must \
                             not allocate; preallocate in setup code or reuse scratch",
                            item.name
                        ),
                    });
                }
            }
        }
        for call in method_calls_in(&f.toks, body) {
            if HOT_ALLOC_METHODS.contains(&call.name.as_str()) {
                out.push(Finding {
                    file: f.rel.clone(),
                    line: call.line,
                    rule: HOT_PATH_ALLOC,
                    message: format!(
                        "`.{}(..)` in `// lint:hot` fn `{}` — hot-path functions must \
                         not allocate; preallocate in setup code or reuse scratch",
                        call.name, item.name
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::new(rel.to_string(), src)
    }

    // ---- hash-iter ----

    #[test]
    fn hash_iter_flags_values_iteration() {
        let f = file(
            "crates/x/src/a.rs",
            "fn f() { let mut m = HashMap::new(); m.insert(1, 2); for v in m.values() { use_(v); } }",
        );
        let hits = hash_iter(&f);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, HASH_ITER);
        assert!(hits[0].message.contains("values"));
    }

    #[test]
    fn hash_iter_flags_for_over_reference() {
        let f = file(
            "a.rs",
            "fn f(m: &HashMap<u32, u32>) { for (k, v) in &m { use_(k, v); } }",
        );
        assert_eq!(hash_iter(&f).len(), 1);
    }

    #[test]
    fn hash_iter_flags_struct_field_drain() {
        let f = file(
            "a.rs",
            "struct S { dead: HashSet<u32> }\nimpl S { fn f(&mut self) { self.dead.drain(); } }",
        );
        let hits = hash_iter(&f);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("drain"));
    }

    #[test]
    fn hash_iter_ignores_order_free_use() {
        // insert/contains/get/len never observe iteration order.
        let f = file(
            "a.rs",
            "fn f() { let mut s = HashSet::new(); s.insert(3); assert!(s.contains(&3)); s.len(); }",
        );
        assert!(hash_iter(&f).is_empty());
    }

    #[test]
    fn hash_iter_ignores_btree_iteration() {
        let f = file(
            "a.rs",
            "fn f() { let mut m = BTreeMap::new(); m.insert(1, 2); for v in m.values() { use_(v); } }",
        );
        assert!(hash_iter(&f).is_empty());
    }

    #[test]
    fn hash_iter_ignores_code_in_strings_and_docs() {
        let f = file(
            "a.rs",
            "/// let m = HashMap::new(); m.iter();\nfn f() { let s = \"HashMap.iter()\"; drop(s); }",
        );
        assert!(hash_iter(&f).is_empty());
    }

    // ---- wall-clock ----

    #[test]
    fn wall_clock_flags_instant_elsewhere() {
        let f = file(
            "crates/netsim/src/sim.rs",
            "fn f() { let t = std::time::Instant::now(); drop(t); }",
        );
        let hits = wall_clock(&f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, WALL_CLOCK);
    }

    #[test]
    fn wall_clock_allows_the_timing_module() {
        let f = file(
            "crates/bench/src/timing.rs",
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); drop((t, s)); }",
        );
        assert!(wall_clock(&f).is_empty());
    }

    // ---- stdout-discipline ----

    #[test]
    fn stdout_discipline_flags_library_println() {
        let f = file(
            "crates/netsim/src/sim.rs",
            "fn f() { println!(\"queue {}\", 3); eprintln!(\"warn\"); }",
        );
        let hits = stdout_discipline(&f);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|h| h.rule == STDOUT_DISCIPLINE));
        assert!(hits[0].message.contains("println"));
        assert!(hits[1].message.contains("eprintln"));
    }

    #[test]
    fn stdout_discipline_exempts_binaries() {
        let main = file("crates/cli/src/main.rs", "fn main() { println!(\"hi\"); }");
        assert!(stdout_discipline(&main).is_empty());
        let bin = file(
            "crates/bench/src/bin/fig06_fault_tolerance.rs",
            "fn main() { print!(\"hi\"); }",
        );
        assert!(stdout_discipline(&bin).is_empty());
        let example = file("examples/quickstart.rs", "fn main() { println!(\"hi\"); }");
        assert!(stdout_discipline(&example).is_empty());
    }

    #[test]
    fn stdout_discipline_exempts_test_code() {
        let it = file(
            "crates/x/tests/it.rs",
            "fn f() { println!(\"debugging a failure\"); }",
        );
        assert!(stdout_discipline(&it).is_empty());
        let unit = file(
            "crates/x/src/a.rs",
            "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn g() { println!(\"{}\", 1); }\n}",
        );
        assert!(stdout_discipline(&unit).is_empty());
    }

    #[test]
    fn stdout_discipline_allows_the_sanctioned_sinks() {
        for rel in super::STDOUT_SANCTUARIES {
            let f = file(rel, "fn f() { println!(\"line\"); eprintln!(\"note\"); }");
            assert!(stdout_discipline(&f).is_empty(), "{rel} should be exempt");
        }
    }

    #[test]
    fn stdout_discipline_ignores_quoted_and_doc_mentions() {
        let f = file(
            "crates/x/src/a.rs",
            "/// never call println! here\nfn f() { let s = \"println!(hi)\"; drop(s); }",
        );
        assert!(stdout_discipline(&f).is_empty());
    }

    // ---- seed-discipline ----

    #[test]
    fn seed_discipline_flags_literal_seed_in_src() {
        let f = file(
            "crates/x/src/a.rs",
            "fn f() { let rng = StdRng::seed_from_u64(42); drop(rng); }",
        );
        let hits = seed_discipline(&f);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("42"));
    }

    #[test]
    fn seed_discipline_allows_parameters_and_unit_seed() {
        let f = file(
            "crates/x/src/a.rs",
            "fn f(seed: u64, i: u64) {\n  let a = StdRng::seed_from_u64(seed);\n  let b = StdRng::seed_from_u64(unit_seed(seed, i));\n  drop((a, b));\n}",
        );
        assert!(seed_discipline(&f).is_empty());
    }

    #[test]
    fn seed_discipline_allows_literals_in_tests() {
        let cfg = "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn g() { let r = StdRng::seed_from_u64(7); drop(r); }\n}";
        assert!(seed_discipline(&file("crates/x/src/a.rs", cfg)).is_empty());
        let it = "fn g() { let r = StdRng::seed_from_u64(7); drop(r); }";
        assert!(seed_discipline(&file("crates/x/tests/it.rs", it)).is_empty());
    }

    // ---- crate-hygiene ----

    #[test]
    fn crate_hygiene_requires_both_attributes() {
        let f = file("crates/x/src/lib.rs", "//! docs\npub fn f() {}\n");
        let hits = crate_hygiene(&f);
        assert_eq!(hits.len(), 2);
        let clean = file(
            "crates/x/src/lib.rs",
            "//! docs\n#![deny(missing_docs)]\n#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        assert!(crate_hygiene(&clean).is_empty());
    }

    // ---- cast-soundness ----

    use crate::model::Role;

    fn hot_lib() -> FileModel {
        FileModel {
            crate_dir: "crates/netsim".into(),
            crate_name: "quartz-netsim".into(),
            role: Role::Lib,
        }
    }

    #[test]
    fn cast_soundness_flags_unguarded_narrowing() {
        // The shape this rule caught for real: `self.created.len() as
        // PacketId`-style id narrowings (fixed with the guard now at
        // crates/netsim/src/arena.rs:175, and likewise sched.rs:352).
        let f = file(
            "crates/netsim/src/arena.rs",
            "fn grow(&mut self) -> u32 {\n  let id = self.created.len() as u32;\n  id\n}",
        );
        let hits = cast_soundness(&f, &hot_lib());
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, CAST_SOUNDNESS);
        assert!(hits[0].message.contains("as u32"));
    }

    #[test]
    fn cast_soundness_guard_must_be_within_window() {
        // A guard 20 lines up is documentation, not adjacency.
        let src = format!(
            "fn f(n: usize) -> u32 {{\n  debug_assert!(n < 10);\n{}  n as u32\n}}",
            "  let _pad = 0;\n".repeat(GUARD_WINDOW + 3)
        );
        let f = file("crates/netsim/src/a.rs", &src);
        assert_eq!(cast_soundness(&f, &hot_lib()).len(), 1);
    }

    #[test]
    fn cast_soundness_accepts_adjacent_guard() {
        let f = file(
            "crates/netsim/src/a.rs",
            "fn f(n: usize) -> u32 {\n  debug_assert!(n <= u32::MAX as usize);\n  n as u32\n}",
        );
        assert!(cast_soundness(&f, &hot_lib()).is_empty());
    }

    #[test]
    fn cast_soundness_exempts_self_guarding_operands() {
        // Literals and mask/min/clamp-limited operands carry their own
        // range proof.
        let f = file(
            "crates/netsim/src/a.rs",
            "fn f(x: u64) -> u8 {\n  let a = 7 as u8;\n  let b = (x & 0xff) as u8;\n  let c = (x % 251) as u8;\n  a + b + c\n}",
        );
        assert!(cast_soundness(&f, &hot_lib()).is_empty());
    }

    #[test]
    fn cast_soundness_scopes_to_hot_crate_library_code() {
        let src = "fn f(n: usize) -> u32 { n as u32 }";
        let bench = FileModel {
            crate_dir: "crates/bench".into(),
            crate_name: "quartz-bench".into(),
            role: Role::Lib,
        };
        assert!(cast_soundness(&file("crates/bench/src/a.rs", src), &bench).is_empty());
        let test_role = FileModel {
            crate_dir: "crates/netsim".into(),
            crate_name: "quartz-netsim".into(),
            role: Role::Test,
        };
        assert!(cast_soundness(&file("crates/netsim/tests/it.rs", src), &test_role).is_empty());
    }

    // ---- float-determinism ----

    #[test]
    fn float_determinism_flags_partial_cmp_unwrap_comparator() {
        let f = file(
            "crates/x/src/a.rs",
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
        );
        let hits = float_determinism(&f);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("total_cmp"));
    }

    #[test]
    fn float_determinism_flags_partial_compare_in_selection_closure() {
        // The real violation this caught: the argmin update in
        // crates/flowsim/src/waterfill.rs:138 (and the argmax twin at
        // throughput.rs:73) compared shares with bare `<` inside
        // `is_none_or`; both now go through `total_cmp`.
        let f = file(
            "crates/x/src/a.rs",
            "fn f(share: f64, best: Option<(usize, f64)>) -> bool {\n  best.is_none_or(|(_, s)| share < s)\n}",
        );
        let hits = float_determinism(&f);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("share"));
    }

    #[test]
    fn float_determinism_flags_accumulation_over_hash_iteration() {
        let f = file(
            "crates/x/src/a.rs",
            "fn f() -> f64 {\n  let mut m = HashMap::new();\n  m.insert(1, 2.0);\n  let mut total = 0.0;\n  for (_k, v) in &m { total += v; }\n  total\n}",
        );
        let hits = float_determinism(&f);
        assert!(hits.iter().any(|h| h.message.contains("total")), "{hits:?}");
    }

    #[test]
    fn float_determinism_accepts_total_cmp_selection() {
        let f = file(
            "crates/x/src/a.rs",
            "fn f(share: f64, best: Option<(usize, f64)>) -> bool {\n  best.is_none_or(|(_, s)| share.total_cmp(&s).is_lt())\n}",
        );
        assert!(float_determinism(&f).is_empty());
    }

    #[test]
    fn float_determinism_ignores_integer_selection_and_ordered_reduction() {
        let f = file(
            "crates/x/src/a.rs",
            "fn f(n: usize, best: Option<usize>, xs: &[f64]) -> f64 {\n  let keep = best.is_none_or(|b| n < b);\n  let mut total = 0.0;\n  for x in xs { total += x; }\n  if keep { total } else { 0.0 }\n}",
        );
        assert!(float_determinism(&f).is_empty());
    }

    // ---- panic-freedom ----

    #[test]
    fn panic_freedom_flags_expect_in_opted_in_module() {
        // Mirrors the scheduler's old `.expect(\"slot is live\")` far-slot
        // take (now the let-else at crates/netsim/src/sched.rs:276).
        let f = file(
            "crates/x/src/a.rs",
            "// lint:panic-free\nfn f(x: Option<u32>) -> u32 { x.expect(\"slot is live\") }",
        );
        let hits = panic_freedom(&f);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, PANIC_FREEDOM);
        assert!(hits[0].message.contains("expect"));
    }

    #[test]
    fn panic_freedom_flags_unguarded_indexing() {
        let f = file(
            "crates/x/src/a.rs",
            "// lint:panic-free\nfn g(v: &[u32], i: usize) -> u32 { v[i] }",
        );
        let hits = panic_freedom(&f);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("indexing"));
    }

    #[test]
    fn panic_freedom_is_opt_in() {
        let f = file(
            "crates/x/src/a.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        );
        assert!(panic_freedom(&f).is_empty());
    }

    #[test]
    fn panic_freedom_accepts_asserted_indexing_and_test_code() {
        // A debug_assert! states the bound, making the indexing a
        // checked invariant rather than a latent panic.
        let f = file(
            "crates/x/src/a.rs",
            "// lint:panic-free\nfn g(v: &[u32], i: usize) -> u32 {\n  debug_assert!(i < v.len());\n  v[i]\n}\n#[cfg(test)]\nmod tests {\n  fn t() { Some(1).unwrap(); }\n}",
        );
        assert!(panic_freedom(&f).is_empty());
    }

    // ---- hot-path-alloc ----

    #[test]
    fn hot_path_alloc_flags_format_in_hot_fn() {
        // Mirrors the forwarding path's old per-packet metric labels
        // (`format!(\"switch.{:03}.forwarded\", ..)`), replaced by the
        // cached `MetricLabels` strings at crates/netsim/src/sim.rs:484.
        let f = file(
            "crates/x/src/a.rs",
            "// lint:hot\nfn f(at: u32) -> String { format!(\"switch.forwarded\") }",
        );
        let hits = hot_path_alloc(&f);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, HOT_PATH_ALLOC);
        assert!(hits[0].message.contains("format!"));
    }

    #[test]
    fn hot_path_alloc_flags_push_and_vec_new() {
        let f = file(
            "crates/x/src/a.rs",
            "// lint:hot\nfn f(v: &mut Vec<u32>) {\n  let mut w = Vec::new();\n  w.push(1);\n  v.push(2);\n}",
        );
        let hits = hot_path_alloc(&f);
        assert_eq!(hits.len(), 3, "{hits:?}");
    }

    #[test]
    fn hot_path_alloc_only_applies_to_annotated_fns() {
        let f = file(
            "crates/x/src/a.rs",
            "fn cold(v: &mut Vec<u32>) { v.push(1); }\n// lint:hot\nfn hot(v: &mut [u32]) { v[0] = 1; }",
        );
        assert!(hot_path_alloc(&f).is_empty());
    }

    #[test]
    fn hot_path_alloc_accepts_allocation_free_bodies() {
        // Column stores, arithmetic, and calls into cold helpers (the
        // arena rewrite/grow split) are all fine.
        let f = file(
            "crates/x/src/a.rs",
            "// lint:hot\nfn rewrite(&mut self, i: usize, v: u32) {\n  debug_assert!(i < self.col.len());\n  self.col[i] = v;\n  self.schedule(v);\n}",
        );
        assert!(hot_path_alloc(&f).is_empty());
    }
}
