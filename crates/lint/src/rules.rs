//! The determinism rules.
//!
//! Every rule reports [`Finding`]s as `file:line rule message`. A
//! finding can be silenced with a justified suppression comment (see
//! [`crate::source::Suppression`]), which the `suppression-audit` rule
//! then counts against the `lint-baseline.toml` ratchet.
//!
//! | rule | invariant |
//! |------|-----------|
//! | `hash-iter` | no iteration over `HashMap`/`HashSet` anywhere — iteration order could leak into experiment output |
//! | `wall-clock` | `Instant`/`SystemTime` only in `crates/bench/src/timing.rs` |
//! | `stdout-discipline` | no `println!`/`eprintln!` in library code — experiment output flows through `quartz_bench::outln!` |
//! | `seed-discipline` | no literal-seeded RNG outside tests — seeds flow from parameters or `pool::unit_seed` |
//! | `crate-hygiene` | every crate root carries `#![deny(missing_docs)]` and `#![forbid(unsafe_code)]` |
//! | `suppression-audit` | every `lint:allow` is justified, used, and counted by the ratchet |

use crate::lexer::TokKind;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for whole-workspace findings).
    pub line: usize,
    /// Rule name.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// The `hash-iter` rule name.
pub const HASH_ITER: &str = "hash-iter";
/// The `wall-clock` rule name.
pub const WALL_CLOCK: &str = "wall-clock";
/// The `stdout-discipline` rule name.
pub const STDOUT_DISCIPLINE: &str = "stdout-discipline";
/// The `seed-discipline` rule name.
pub const SEED_DISCIPLINE: &str = "seed-discipline";
/// The `crate-hygiene` rule name.
pub const CRATE_HYGIENE: &str = "crate-hygiene";
/// The `suppression-audit` rule name.
pub const SUPPRESSION_AUDIT: &str = "suppression-audit";

/// Every rule name, in reporting order.
pub const ALL_RULES: [&str; 6] = [
    HASH_ITER,
    WALL_CLOCK,
    STDOUT_DISCIPLINE,
    SEED_DISCIPLINE,
    CRATE_HYGIENE,
    SUPPRESSION_AUDIT,
];

/// Methods whose call on a hash container exposes iteration order.
const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// The only file allowed to touch the wall clock.
const WALL_CLOCK_SANCTUARY: &str = "crates/bench/src/timing.rs";

/// `hash-iter`: no iteration over `HashMap`/`HashSet`.
///
/// The detector is heuristic but deliberately conservative in what it
/// *tracks*: a name is considered hash-typed when it is bound or
/// declared with a `HashMap`/`HashSet` type or constructor in the same
/// file. Only *iteration* over a tracked name fires — key lookups,
/// `insert`, `contains`, and `len` are order-free and stay legal, which
/// is why e.g. duplicate-detection sets in tests pass untouched.
pub fn hash_iter(f: &SourceFile) -> Vec<Finding> {
    let names = tracked_hash_names(f);
    if names.is_empty() {
        return Vec::new();
    }
    let toks = &f.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name.iter()` and friends.
        if names.contains(&t.text)
            && f.punct_at(i + 1, '.')
            && toks.get(i + 2).is_some_and(|m| {
                m.kind == TokKind::Ident && ITER_METHODS.contains(&m.text.as_str())
            })
            && f.punct_at(i + 3, '(')
        {
            out.push(Finding {
                file: f.rel.clone(),
                line: t.line,
                rule: HASH_ITER,
                message: format!(
                    "iteration over hash container `{}` via `.{}()` — hash order is \
                     nondeterministic; use BTreeMap/BTreeSet or sort before iterating",
                    t.text,
                    toks[i + 2].text
                ),
            });
        }
        // `for x in &name {` / `for x in name {`.
        if t.text == "for" {
            let stop = (i + 60).min(toks.len());
            let mut j = i + 1;
            while j < stop && toks[j].text != "in" && toks[j].text != "{" {
                j += 1;
            }
            if j < stop && toks[j].text == "in" {
                let mut k = j + 1;
                while k < toks.len() && (toks[k].text == "&" || toks[k].text == "mut") {
                    k += 1;
                }
                if toks.get(k).is_some_and(|t| t.kind == TokKind::Ident)
                    && names.contains(&toks[k].text)
                    && f.punct_at(k + 1, '{')
                {
                    out.push(Finding {
                        file: f.rel.clone(),
                        line: toks[k].line,
                        rule: HASH_ITER,
                        message: format!(
                            "`for … in` over hash container `{}` — hash order is \
                             nondeterministic; use BTreeMap/BTreeSet or sort before iterating",
                            toks[k].text
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Names bound or declared with a `HashMap`/`HashSet` type in this file.
fn tracked_hash_names(f: &SourceFile) -> BTreeSet<String> {
    let toks = &f.toks;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Type position: `name: [&] [mut] path::to::Hash…`.
        let mut j = i;
        while j >= 3
            && toks[j - 1].text == ":"
            && toks[j - 2].text == ":"
            && toks[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        while j >= 1 && (toks[j - 1].text == "&" || toks[j - 1].text == "mut") {
            j -= 1;
        }
        if j >= 2
            && toks[j - 1].text == ":"
            && toks[j - 2].kind == TokKind::Ident
            && (j < 3 || toks[j - 3].text != ":")
        {
            names.insert(toks[j - 2].text.clone());
            continue;
        }
        // Constructor / collect position: the enclosing `let` binding.
        if let Some(name) = let_binding_before(f, i) {
            names.insert(name);
        }
    }
    names
}

/// The name bound by the `let` statement enclosing token `i`, if any.
fn let_binding_before(f: &SourceFile, i: usize) -> Option<String> {
    let toks = &f.toks;
    let mut j = i;
    while j > 0 {
        j -= 1;
        match toks[j].text.as_str() {
            ";" | "{" | "}" => return None,
            "let" => {
                let mut k = j + 1;
                if toks.get(k).is_some_and(|t| t.text == "mut") {
                    k += 1;
                }
                return toks
                    .get(k)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
            }
            _ => {}
        }
    }
    None
}

/// `wall-clock`: `Instant`/`SystemTime` confined to the timing module.
pub fn wall_clock(f: &SourceFile) -> Vec<Finding> {
    if f.rel == WALL_CLOCK_SANCTUARY {
        return Vec::new();
    }
    f.toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime"))
        .map(|t| Finding {
            file: f.rel.clone(),
            line: t.line,
            rule: WALL_CLOCK,
            message: format!(
                "`{}` outside {WALL_CLOCK_SANCTUARY} — wall-clock readings are \
                 nondeterministic; route timing through quartz_bench::timing",
                t.text
            ),
        })
        .collect()
}

/// Stdout macros that leak experiment output past the table sink.
const STDOUT_MACROS: [&str; 4] = ["println", "eprintln", "print", "eprint"];

/// Library files that *are* the sanctioned output sinks: the table
/// module (every `outln!` line funnels through its `emit_line`) and the
/// timing module (bench progress/JSON notes on stderr).
const STDOUT_SANCTUARIES: [&str; 2] = ["crates/bench/src/table.rs", "crates/bench/src/timing.rs"];

/// `stdout-discipline`: no `println!`/`eprintln!`/`print!`/`eprint!` in
/// library code.
///
/// Experiment output must flow through `quartz_bench::outln!` (and thus
/// `table::emit_line`) so there is exactly one place where simulation
/// results become bytes on stdout — the byte-identity golden checks
/// depend on that funnel. Binaries (`src/main.rs`, `src/bin/**`,
/// `examples/**`), test collateral, and the two sanctuary sinks keep
/// direct access.
pub fn stdout_discipline(f: &SourceFile) -> Vec<Finding> {
    if STDOUT_SANCTUARIES.contains(&f.rel.as_str())
        || f.rel.ends_with("src/main.rs")
        || f.rel.contains("/src/bin/")
        || f.rel.split('/').any(|seg| seg == "examples")
    {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in f.toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && STDOUT_MACROS.contains(&t.text.as_str())
            && f.punct_at(i + 1, '!')
            && !f.is_test_line(t.line)
        {
            out.push(Finding {
                file: f.rel.clone(),
                line: t.line,
                rule: STDOUT_DISCIPLINE,
                message: format!(
                    "`{}!` in library code — stdout/stderr writes belong to binaries \
                     and the table/timing sinks; route experiment lines through \
                     quartz_bench::outln! or return the data to the caller",
                    t.text
                ),
            });
        }
    }
    out
}

/// `seed-discipline`: RNG constructions must flow from a seed parameter
/// or `pool::unit_seed`; literal seeds are for tests only.
pub fn seed_discipline(f: &SourceFile) -> Vec<Finding> {
    let toks = &f.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "seed_from_u64"
            && f.punct_at(i + 1, '(')
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Num)
            && !f.is_test_line(toks[i].line)
        {
            out.push(Finding {
                file: f.rel.clone(),
                line: toks[i].line,
                rule: SEED_DISCIPLINE,
                message: format!(
                    "RNG seeded with the literal `{}` outside tests — derive the seed \
                     from an explicit parameter or pool::unit_seed",
                    toks[i + 2].text
                ),
            });
        }
    }
    out
}

/// `crate-hygiene`: crate roots must deny missing docs and forbid
/// `unsafe`.
pub fn crate_hygiene(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    if !f.has_seq(&["#", "!", "[", "deny", "(", "missing_docs", ")", "]"]) {
        out.push(Finding {
            file: f.rel.clone(),
            line: 1,
            rule: CRATE_HYGIENE,
            message: "crate root is missing `#![deny(missing_docs)]`".to_string(),
        });
    }
    if !f.has_seq(&["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"]) {
        out.push(Finding {
            file: f.rel.clone(),
            line: 1,
            rule: CRATE_HYGIENE,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::new(rel.to_string(), src)
    }

    // ---- hash-iter ----

    #[test]
    fn hash_iter_flags_values_iteration() {
        let f = file(
            "crates/x/src/a.rs",
            "fn f() { let mut m = HashMap::new(); m.insert(1, 2); for v in m.values() { use_(v); } }",
        );
        let hits = hash_iter(&f);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, HASH_ITER);
        assert!(hits[0].message.contains("values"));
    }

    #[test]
    fn hash_iter_flags_for_over_reference() {
        let f = file(
            "a.rs",
            "fn f(m: &HashMap<u32, u32>) { for (k, v) in &m { use_(k, v); } }",
        );
        assert_eq!(hash_iter(&f).len(), 1);
    }

    #[test]
    fn hash_iter_flags_struct_field_drain() {
        let f = file(
            "a.rs",
            "struct S { dead: HashSet<u32> }\nimpl S { fn f(&mut self) { self.dead.drain(); } }",
        );
        let hits = hash_iter(&f);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("drain"));
    }

    #[test]
    fn hash_iter_ignores_order_free_use() {
        // insert/contains/get/len never observe iteration order.
        let f = file(
            "a.rs",
            "fn f() { let mut s = HashSet::new(); s.insert(3); assert!(s.contains(&3)); s.len(); }",
        );
        assert!(hash_iter(&f).is_empty());
    }

    #[test]
    fn hash_iter_ignores_btree_iteration() {
        let f = file(
            "a.rs",
            "fn f() { let mut m = BTreeMap::new(); m.insert(1, 2); for v in m.values() { use_(v); } }",
        );
        assert!(hash_iter(&f).is_empty());
    }

    #[test]
    fn hash_iter_ignores_code_in_strings_and_docs() {
        let f = file(
            "a.rs",
            "/// let m = HashMap::new(); m.iter();\nfn f() { let s = \"HashMap.iter()\"; drop(s); }",
        );
        assert!(hash_iter(&f).is_empty());
    }

    // ---- wall-clock ----

    #[test]
    fn wall_clock_flags_instant_elsewhere() {
        let f = file(
            "crates/netsim/src/sim.rs",
            "fn f() { let t = std::time::Instant::now(); drop(t); }",
        );
        let hits = wall_clock(&f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, WALL_CLOCK);
    }

    #[test]
    fn wall_clock_allows_the_timing_module() {
        let f = file(
            "crates/bench/src/timing.rs",
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); drop((t, s)); }",
        );
        assert!(wall_clock(&f).is_empty());
    }

    // ---- stdout-discipline ----

    #[test]
    fn stdout_discipline_flags_library_println() {
        let f = file(
            "crates/netsim/src/sim.rs",
            "fn f() { println!(\"queue {}\", 3); eprintln!(\"warn\"); }",
        );
        let hits = stdout_discipline(&f);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|h| h.rule == STDOUT_DISCIPLINE));
        assert!(hits[0].message.contains("println"));
        assert!(hits[1].message.contains("eprintln"));
    }

    #[test]
    fn stdout_discipline_exempts_binaries() {
        let main = file("crates/cli/src/main.rs", "fn main() { println!(\"hi\"); }");
        assert!(stdout_discipline(&main).is_empty());
        let bin = file(
            "crates/bench/src/bin/fig06_fault_tolerance.rs",
            "fn main() { print!(\"hi\"); }",
        );
        assert!(stdout_discipline(&bin).is_empty());
        let example = file("examples/quickstart.rs", "fn main() { println!(\"hi\"); }");
        assert!(stdout_discipline(&example).is_empty());
    }

    #[test]
    fn stdout_discipline_exempts_test_code() {
        let it = file(
            "crates/x/tests/it.rs",
            "fn f() { println!(\"debugging a failure\"); }",
        );
        assert!(stdout_discipline(&it).is_empty());
        let unit = file(
            "crates/x/src/a.rs",
            "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn g() { println!(\"{}\", 1); }\n}",
        );
        assert!(stdout_discipline(&unit).is_empty());
    }

    #[test]
    fn stdout_discipline_allows_the_sanctioned_sinks() {
        for rel in super::STDOUT_SANCTUARIES {
            let f = file(rel, "fn f() { println!(\"line\"); eprintln!(\"note\"); }");
            assert!(stdout_discipline(&f).is_empty(), "{rel} should be exempt");
        }
    }

    #[test]
    fn stdout_discipline_ignores_quoted_and_doc_mentions() {
        let f = file(
            "crates/x/src/a.rs",
            "/// never call println! here\nfn f() { let s = \"println!(hi)\"; drop(s); }",
        );
        assert!(stdout_discipline(&f).is_empty());
    }

    // ---- seed-discipline ----

    #[test]
    fn seed_discipline_flags_literal_seed_in_src() {
        let f = file(
            "crates/x/src/a.rs",
            "fn f() { let rng = StdRng::seed_from_u64(42); drop(rng); }",
        );
        let hits = seed_discipline(&f);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("42"));
    }

    #[test]
    fn seed_discipline_allows_parameters_and_unit_seed() {
        let f = file(
            "crates/x/src/a.rs",
            "fn f(seed: u64, i: u64) {\n  let a = StdRng::seed_from_u64(seed);\n  let b = StdRng::seed_from_u64(unit_seed(seed, i));\n  drop((a, b));\n}",
        );
        assert!(seed_discipline(&f).is_empty());
    }

    #[test]
    fn seed_discipline_allows_literals_in_tests() {
        let cfg = "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn g() { let r = StdRng::seed_from_u64(7); drop(r); }\n}";
        assert!(seed_discipline(&file("crates/x/src/a.rs", cfg)).is_empty());
        let it = "fn g() { let r = StdRng::seed_from_u64(7); drop(r); }";
        assert!(seed_discipline(&file("crates/x/tests/it.rs", it)).is_empty());
    }

    // ---- crate-hygiene ----

    #[test]
    fn crate_hygiene_requires_both_attributes() {
        let f = file("crates/x/src/lib.rs", "//! docs\npub fn f() {}\n");
        let hits = crate_hygiene(&f);
        assert_eq!(hits.len(), 2);
        let clean = file(
            "crates/x/src/lib.rs",
            "//! docs\n#![deny(missing_docs)]\n#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        assert!(crate_hygiene(&clean).is_empty());
    }
}
