//! A minimal Rust source scanner for the lint rules.
//!
//! The scanner is not a full lexer: it produces the identifier, number,
//! and punctuation tokens the rules match on, and it collects comments
//! (which carry suppression directives). String literals (including raw
//! and byte strings), character literals, and lifetimes are consumed
//! and *dropped* — no rule should ever fire on text inside a string or
//! a doc example, so the token stream simply never contains it.

/// What kind of token a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// An integer or float literal (including `0x…` forms and suffixes).
    Num,
    /// A single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: usize,
    /// Token kind.
    pub kind: TokKind,
    /// Token text (one char for punctuation).
    pub text: String,
}

/// One comment with its 1-based source line.
///
/// `doc` distinguishes `///` / `//!` documentation from plain `//`
/// comments: suppression directives are only honored in plain comments,
/// so documentation may *mention* the directive syntax freely.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment body (text after the `//` or inside `/* … */`).
    pub text: String,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub doc: bool,
}

/// Scans `src`, returning `(tokens, comments)`.
pub fn scan(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start_line = line;
                let doc = matches!(b.get(i + 2), Some('/') | Some('!'))
                    // `////…` dividers are plain comments, not docs.
                    && b.get(i + 3) != Some(&'/');
                let mut text = String::new();
                i += 2;
                while i < b.len() && b[i] != '\n' {
                    text.push(b[i]);
                    i += 1;
                }
                comments.push(Comment {
                    line: start_line,
                    text,
                    doc,
                });
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let start_line = line;
                let doc = matches!(b.get(i + 2), Some('*') | Some('!'));
                let mut depth = 1;
                let mut text = String::new();
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        text.push(b[i]);
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    text,
                    doc,
                });
            }
            '"' => i = skip_string(&b, i, &mut line),
            'r' | 'b' if is_raw_or_byte_string(&b, i) => i = skip_raw_or_byte(&b, i, &mut line),
            // Raw identifier `r#type`: one Ident token, text kept
            // verbatim (the `#` must not leak as attribute punctuation).
            'r' if b.get(i + 1) == Some(&'#')
                && b.get(i + 2).is_some_and(|c| c.is_alphabetic() || *c == '_') =>
            {
                let start = i;
                i += 2;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    line,
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                });
            }
            '\'' => i = skip_char_or_lifetime(&b, i, &mut line),
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    line,
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_alphanumeric() || d == '_' {
                        i += 1;
                    } else if d == '.' && b.get(i + 1).is_some_and(char::is_ascii_digit) {
                        // `1.5` continues the number; `0..n` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    line,
                    kind: TokKind::Num,
                    text: b[start..i].iter().collect(),
                });
            }
            c => {
                toks.push(Tok {
                    line,
                    kind: TokKind::Punct,
                    text: c.to_string(),
                });
                i += 1;
            }
        }
    }
    (toks, comments)
}

/// Whether position `i` starts a raw string (`r"`, `r#"`), byte string
/// (`b"`), or raw byte string (`br#"`).
fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
    }
    j > i && b.get(j) == Some(&'"')
}

/// Consumes a raw/byte string starting at `i`; returns the index past it.
fn skip_raw_or_byte(b: &[char], mut i: usize, line: &mut usize) -> usize {
    if b[i] == 'b' {
        i += 1;
    }
    let raw = b.get(i) == Some(&'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0;
    while b.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(b.get(i), Some(&'"'));
    if !raw {
        return skip_string(b, i, line);
    }
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
        }
        if b[i] == '"' {
            let mut k = 0;
            while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Consumes a normal (escaped) string literal starting at the quote.
fn skip_string(b: &[char], mut i: usize, line: &mut usize) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

/// Consumes a char literal or a lifetime starting at the `'`.
fn skip_char_or_lifetime(b: &[char], i: usize, line: &mut usize) -> usize {
    // Raw lifetime `'r#ident` (Rust 2021+): consume the `r#` prefix and
    // the whole identifier — without this, the `#` leaks into the token
    // stream and reads as attribute punctuation.
    if b.get(i + 1) == Some(&'r')
        && b.get(i + 2) == Some(&'#')
        && b.get(i + 3).is_some_and(|c| c.is_alphabetic() || *c == '_')
    {
        let mut j = i + 3;
        while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
            j += 1;
        }
        return j;
    }
    // Lifetime: `'ident` not closed by a quote (`'a'` is a char).
    if b.get(i + 1).is_some_and(|c| c.is_alphabetic() || *c == '_') && b.get(i + 2) != Some(&'\'') {
        let mut j = i + 1;
        while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
            j += 1;
        }
        return j;
    }
    // Char literal, possibly escaped: `'x'`, `'\n'`, `'\u{1F600}'`.
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                j += 1;
            }
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_chars_vanish_from_the_stream() {
        let src = r##"let x = "HashMap.iter()"; let c = 'h'; let r = r#"Instant"#;"##;
        assert_eq!(idents(src), vec!["let", "x", "let", "c", "let", "r"]);
    }

    #[test]
    fn lifetimes_do_not_eat_following_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        assert!(idents(src).contains(&"str".to_string()));
    }

    #[test]
    fn comments_collected_with_doc_flag() {
        let src = "// plain\n/// doc\n//! inner doc\nfn main() {}\n";
        let (_, comments) = scan(src);
        assert_eq!(comments.len(), 3);
        assert!(!comments[0].doc);
        assert!(comments[1].doc);
        assert!(comments[2].doc);
        assert_eq!(comments[0].line, 1);
        assert_eq!(comments[2].line, 3);
    }

    #[test]
    fn code_inside_comments_is_not_tokenized() {
        let src = "//! let m = HashMap::new();\nfn f() {}\n";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn ranges_are_not_floats() {
        let (toks, _) = scan("for i in 0..10 { }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10"]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let s = \"a\nb\";\nlet t = 1;\n";
        let (toks, _) = scan(src);
        let t = toks.iter().find(|t| t.text == "t").unwrap();
        assert_eq!(t.line, 3);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still */ fn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn raw_identifiers_are_single_tokens() {
        // `r#type` must not decay into `r` + `#` + `type`: the parser
        // would read the `#` as the start of an attribute.
        let src = "fn r#type() { let r#fn = 1; drop(r#fn); }";
        let (toks, _) = scan(src);
        assert_eq!(
            idents(src),
            vec!["fn", "r#type", "let", "r#fn", "drop", "r#fn"]
        );
        assert!(toks.iter().all(|t| t.text != "#"));
    }

    #[test]
    fn raw_identifier_is_not_confused_with_raw_string() {
        let src = "let a = r#\"HashMap\"#; let r#b = 2;";
        assert_eq!(idents(src), vec!["let", "a", "let", "r#b"]);
    }

    #[test]
    fn nested_block_comment_line_counting_survives_cfg_test_ranges() {
        // Newlines inside a nested block comment must advance the line
        // counter so the `#[cfg(test)]` span lands on the right lines.
        let src = "/* line1\n /* line2\n line3 */\n line4 */\nfn a() {}\n#[cfg(test)]\nmod tests {\n fn b() {}\n}\n";
        let (toks, comments) = scan(src);
        assert_eq!(comments.len(), 1);
        let a = toks.iter().find(|t| t.text == "a").unwrap();
        assert_eq!(a.line, 5);
        let cfg = toks.iter().find(|t| t.text == "cfg").unwrap();
        assert_eq!(cfg.line, 6);
    }

    #[test]
    fn multi_char_lifetimes_do_not_eat_code() {
        let src = "fn f<'topo, 'net>(x: &'topo str, y: &'net str) -> &'topo str { x }";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "f", "x", "str", "y", "str", "str", "x"]);
    }

    #[test]
    fn raw_lifetimes_are_consumed_whole() {
        // `'r#if` (a raw lifetime) must not leak `#` + `if` tokens.
        let src = "fn f<'r#if>(x: &'r#if u8) -> u8 { *x }";
        let (toks, _) = scan(src);
        assert!(toks.iter().all(|t| t.text != "#"));
        assert!(idents(src).iter().all(|t| t != "if"));
    }

    #[test]
    fn lifetime_labels_on_loops_lex_cleanly() {
        let src = "fn f() { 'outer: loop { break 'outer; } }";
        assert_eq!(idents(src), vec!["fn", "f", "loop", "break"]);
    }
}
