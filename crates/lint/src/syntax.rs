//! A bracket-matched item/expression tree over the lexed token stream.
//!
//! This is deliberately *not* a Rust parser: it recovers just enough
//! structure for semantic lint rules — `fn`/`mod`/`impl`/`trait` items
//! with token-index spans, `#[cfg(test)]` attachment, the `// lint:hot`
//! function annotation, and expression-level `as`-cast and method-call
//! nodes inside any span. Everything it does not understand is kept as
//! loose tokens between items, which is what makes the round-trip
//! invariant (checked by `tests/syntax_prop.rs`) cheap to state: item
//! spans are disjoint, ordered, nested strictly inside their parents,
//! and together with the gaps they tile the original token sequence
//! exactly.

use crate::lexer::{Comment, Tok, TokKind};

/// A half-open token-index range `[lo, hi)` into a file's token stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// First token index covered.
    pub lo: usize,
    /// One past the last token index covered.
    pub hi: usize,
}

impl Span {
    /// Whether `other` lies strictly inside `self`.
    pub fn contains(&self, other: &Span) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }
}

/// What kind of item an [`Item`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// A function (leaf; nested functions are not split out).
    Fn,
    /// An inline module (`mod x { … }`).
    Mod,
    /// An `impl` block.
    Impl,
    /// A trait definition (default method bodies live inside).
    Trait,
}

/// One parsed item with its span and lint-relevant annotations.
#[derive(Clone, Debug)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Declared name (for `impl`, the first type name after the
    /// keyword; empty if none could be recovered).
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: usize,
    /// Tokens from the first attribute/modifier through the closing
    /// brace or semicolon.
    pub span: Span,
    /// Tokens strictly inside the braces, if the item has a body.
    pub body: Option<Span>,
    /// Whether the item carries `#[cfg(test)]` directly.
    pub cfg_test: bool,
    /// Whether a `// lint:hot` comment sits immediately above the item
    /// (only meaningful for functions).
    pub hot: bool,
    /// Child items (for `mod`/`impl`/`trait` bodies).
    pub children: Vec<Item>,
}

/// The parsed item tree of one file.
#[derive(Clone, Debug, Default)]
pub struct Tree {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Tree {
    /// Parses the token stream; `comments` supply `lint:hot` markers.
    pub fn parse(toks: &[Tok], comments: &[Comment]) -> Tree {
        let hot_lines: Vec<usize> = comments
            .iter()
            .filter(|c| !c.doc && c.text.contains("lint:hot"))
            .map(|c| c.line)
            .collect();
        let mut items = Vec::new();
        parse_items(toks, &hot_lines, 0, toks.len(), &mut items);
        Tree { items }
    }

    /// Every function item, flattened, with test-ness inherited from
    /// enclosing `#[cfg(test)]` modules.
    pub fn fns(&self) -> Vec<(&Item, bool)> {
        let mut out = Vec::new();
        fn walk<'t>(items: &'t [Item], in_test: bool, out: &mut Vec<(&'t Item, bool)>) {
            for item in items {
                let test = in_test || item.cfg_test;
                if item.kind == ItemKind::Fn {
                    out.push((item, test));
                } else {
                    walk(&item.children, test, out);
                }
            }
        }
        walk(&self.items, false, &mut out);
        out
    }
}

/// Keywords that introduce an item we model.
const MODELED: [&str; 4] = ["fn", "mod", "impl", "trait"];

/// Keywords that introduce an item we skip wholesale (to its `;` or
/// matched `{ … }`), so their bodies never masquerade as loose braces.
const SKIPPED: [&str; 7] = [
    "struct",
    "enum",
    "union",
    "static",
    "use",
    "type",
    "macro_rules",
];

/// Item modifiers that may precede the keyword.
const MODIFIERS: [&str; 7] = [
    "pub", "unsafe", "const", "async", "extern", "default", "crate",
];

fn parse_items(toks: &[Tok], hot_lines: &[usize], lo: usize, hi: usize, out: &mut Vec<Item>) {
    let txt = |i: usize| toks.get(i).filter(|_| i < hi).map(|t| t.text.as_str());
    let mut i = lo;
    while i < hi {
        // Attributes: `# [ … ]` (outer only; inner `#![…]` stays loose).
        let item_start = i;
        let mut cfg_test = false;
        let mut saw_attr = false;
        while txt(i) == Some("#") && txt(i + 1) == Some("[") {
            let close = matching(toks, i + 1, "[", "]", hi);
            cfg_test |= attr_is_cfg_test(toks, i + 2, close);
            i = close + 1;
            saw_attr = true;
        }
        // Modifiers: `pub (crate)`, `unsafe`, `const`, `async`, …
        let mut j = i;
        loop {
            match txt(j) {
                Some(m) if MODIFIERS.contains(&m) => {
                    j += 1;
                    if txt(j) == Some("(") {
                        j = matching(toks, j, "(", ")", hi) + 1;
                    }
                }
                _ => break,
            }
        }
        let Some(kw) = txt(j) else { break };
        if MODELED.contains(&kw) {
            let kind = match kw {
                "fn" => ItemKind::Fn,
                "mod" => ItemKind::Mod,
                "impl" => ItemKind::Impl,
                _ => ItemKind::Trait,
            };
            let name = item_name(toks, j, hi, kind);
            let line = toks[j].line;
            match body_open(toks, j + 1, hi) {
                // `mod x;` / trait fn signature: item ends at the `;`.
                Some((semi, false)) => {
                    let span = Span {
                        lo: item_start,
                        hi: semi + 1,
                    };
                    out.push(Item {
                        kind,
                        name,
                        line,
                        span,
                        body: None,
                        cfg_test,
                        hot: is_hot(toks, hot_lines, item_start),
                        children: Vec::new(),
                    });
                    i = semi + 1;
                }
                Some((open, true)) => {
                    let close = matching(toks, open, "{", "}", hi);
                    let span = Span {
                        lo: item_start,
                        hi: close + 1,
                    };
                    let body = Span {
                        lo: open + 1,
                        hi: close,
                    };
                    let mut children = Vec::new();
                    if kind != ItemKind::Fn {
                        parse_items(toks, hot_lines, body.lo, body.hi, &mut children);
                    }
                    out.push(Item {
                        kind,
                        name,
                        line,
                        span,
                        body: Some(body),
                        cfg_test,
                        hot: is_hot(toks, hot_lines, item_start),
                        children,
                    });
                    i = close + 1;
                }
                None => break,
            }
        } else if SKIPPED.contains(&kw) {
            // Skip to the terminating `;` or past the matched braces,
            // so `enum E { … }` bodies never look like loose blocks.
            match body_open(toks, j + 1, hi) {
                Some((semi, false)) => i = semi + 1,
                Some((open, true)) => {
                    let close = matching(toks, open, "{", "}", hi);
                    // `struct S { … }` is done; `static X: T = { … };`
                    // still has its `;` — consume it if present.
                    i = close + 1;
                    if txt(i) == Some(";") {
                        i += 1;
                    }
                }
                None => break,
            }
        } else if saw_attr || j > i {
            // An attribute/modifier run that decorates something we
            // don't model (e.g. `pub use`): fall through token-wise.
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }
}

/// Whether the attribute tokens in `[lo, hi)` are exactly `cfg(test)`
/// or a `cfg(…)` predicate mentioning `test` (e.g. `cfg(all(test, …))`).
fn attr_is_cfg_test(toks: &[Tok], lo: usize, hi: usize) -> bool {
    if toks.get(lo).is_none_or(|t| t.text != "cfg") {
        return false;
    }
    toks[lo..hi.min(toks.len())]
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "test")
}

/// The declared name following the item keyword at `kw`.
fn item_name(toks: &[Tok], kw: usize, hi: usize, kind: ItemKind) -> String {
    let mut i = kw + 1;
    // `impl<T> Name` / `impl Trait for Name`: skip the generic list,
    // then take the first type identifier.
    if kind == ItemKind::Impl && toks.get(i).is_some_and(|t| t.text == "<") {
        let mut depth = 0usize;
        while i < hi {
            match toks[i].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident && i < hi)
        .map(|t| t.text.clone())
        .unwrap_or_default()
}

/// Finds where the item's body starts: `Some((idx, true))` for a `{` at
/// paren/bracket depth zero, `Some((idx, false))` for a terminating
/// `;`, `None` if the range ends first.
fn body_open(toks: &[Tok], from: usize, hi: usize) -> Option<(usize, bool)> {
    let mut depth = 0usize;
    let mut i = from;
    while i < hi {
        match toks[i].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => return Some((i, true)),
            ";" if depth == 0 => return Some((i, false)),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Index of the token matching the opener at `open`; clamped to
/// `hi - 1` if the stream ends unbalanced (never panics on torn input).
fn matching(toks: &[Tok], open: usize, open_ch: &str, close_ch: &str, hi: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < hi {
        let t = toks[i].text.as_str();
        if t == open_ch {
            depth += 1;
        } else if t == close_ch {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    hi.saturating_sub(1).max(open)
}

/// Whether a `// lint:hot` comment sits directly above the item whose
/// first token is at `start` (same line, or the line before the
/// attributes/keyword).
fn is_hot(toks: &[Tok], hot_lines: &[usize], start: usize) -> bool {
    let Some(first) = toks.get(start) else {
        return false;
    };
    hot_lines
        .iter()
        .any(|&l| l + 1 == first.line || l == first.line)
}

/// Index of the `}` matching the `{` at `open` — public for rules that
/// need ad-hoc block spans (e.g. `for`-loop bodies).
pub fn body_close(toks: &[Tok], open: usize) -> usize {
    matching(toks, open, "{", "}", toks.len())
}

/// One `as` cast found inside a span.
#[derive(Clone, Debug)]
pub struct Cast {
    /// Token index of the `as` keyword.
    pub idx: usize,
    /// 1-based source line.
    pub line: usize,
    /// The target type name (`u32`, `usize`, …).
    pub target: String,
    /// Whether the operand is a bare numeric literal (`7 as u8`).
    pub operand_literal: bool,
    /// Whether the operand is a parenthesized expression containing a
    /// range-limiting operator (`&` mask, `%`, `min`, `clamp`) — a
    /// self-guarding cast.
    pub operand_masked: bool,
}

/// Every `expr as Type` cast inside `span` (casts in `use … as …`
/// renames are excluded).
pub fn casts_in(toks: &[Tok], span: Span) -> Vec<Cast> {
    let mut out = Vec::new();
    for i in span.lo..span.hi.min(toks.len()) {
        if toks[i].kind != TokKind::Ident || toks[i].text != "as" {
            continue;
        }
        let Some(target) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        if stmt_is_use(toks, span.lo, i) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        let operand_literal = prev.is_some_and(|t| t.kind == TokKind::Num);
        let operand_masked = prev.is_some_and(|t| t.text == ")") && {
            let close = i - 1;
            let open = matching_back(toks, close, span.lo);
            toks[open..close].iter().any(|t| {
                t.text == "&"
                    || t.text == "%"
                    || (t.kind == TokKind::Ident
                        && matches!(t.text.as_str(), "min" | "clamp" | "rem_euclid"))
            })
        };
        out.push(Cast {
            idx: i,
            line: toks[i].line,
            target: target.text.clone(),
            operand_literal,
            operand_masked,
        });
    }
    out
}

/// Whether the statement containing token `i` starts with `use`.
fn stmt_is_use(toks: &[Tok], lo: usize, i: usize) -> bool {
    let mut j = i;
    while j > lo {
        j -= 1;
        match toks[j].text.as_str() {
            ";" | "{" | "}" => {
                return toks.get(j + 1).is_some_and(|t| t.text == "use");
            }
            _ => {}
        }
    }
    toks.get(lo).is_some_and(|t| t.text == "use")
}

/// Index of the `(` matching the `)` at `close`, scanning backwards.
fn matching_back(toks: &[Tok], close: usize, lo: usize) -> usize {
    let mut depth = 0usize;
    let mut i = close;
    loop {
        match toks[i].text.as_str() {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        if i == lo {
            return lo;
        }
        i -= 1;
    }
}

/// One `.name(…)` method call found inside a span.
#[derive(Clone, Debug)]
pub struct MethodCall {
    /// Token index of the method name.
    pub idx: usize,
    /// 1-based source line.
    pub line: usize,
    /// Method name.
    pub name: String,
    /// Tokens strictly inside the argument parentheses.
    pub args: Span,
    /// Token index just past the closing parenthesis (for chain
    /// detection: `.partial_cmp(x).unwrap()`).
    pub after: usize,
}

/// Every `.name(…)` call inside `span`, in source order.
pub fn method_calls_in(toks: &[Tok], span: Span) -> Vec<MethodCall> {
    let hi = span.hi.min(toks.len());
    let mut out = Vec::new();
    for i in span.lo..hi {
        if toks[i].text != "." {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        // Allow a turbofish between name and parens: `.collect::<V>()`.
        let mut open = i + 2;
        if toks.get(open).is_some_and(|t| t.text == ":")
            && toks.get(open + 1).is_some_and(|t| t.text == ":")
            && toks.get(open + 2).is_some_and(|t| t.text == "<")
        {
            let mut depth = 0usize;
            let mut k = open + 2;
            while k < hi {
                match toks[k].text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            open = k + 1;
        }
        if toks.get(open).is_none_or(|t| t.text != "(") {
            continue;
        }
        let close = matching(toks, open, "(", ")", hi);
        out.push(MethodCall {
            idx: i + 1,
            line: name.line,
            name: name.text.clone(),
            args: Span {
                lo: open + 1,
                hi: close,
            },
            after: close + 1,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn tree(src: &str) -> Tree {
        let (toks, comments) = scan(src);
        Tree::parse(&toks, &comments)
    }

    #[test]
    fn items_and_bodies_are_found() {
        let src = "struct S { a: u32 }\n\
                   pub fn top(x: u32) -> u32 { x + 1 }\n\
                   mod inner {\n  fn nested() {}\n}\n\
                   impl S {\n  pub(crate) fn method(&self) {}\n}\n";
        let t = tree(src);
        assert_eq!(t.items.len(), 3);
        assert_eq!(t.items[0].kind, ItemKind::Fn);
        assert_eq!(t.items[0].name, "top");
        assert_eq!(t.items[1].kind, ItemKind::Mod);
        assert_eq!(t.items[1].children.len(), 1);
        assert_eq!(t.items[1].children[0].name, "nested");
        assert_eq!(t.items[2].kind, ItemKind::Impl);
        assert_eq!(t.items[2].name, "S");
        assert_eq!(t.items[2].children[0].name, "method");
        let fns = t.fns();
        assert_eq!(fns.len(), 3);
    }

    #[test]
    fn cfg_test_propagates_to_nested_fns() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() {}\n}\n";
        let t = tree(src);
        let fns = t.fns();
        let lib = fns.iter().find(|(f, _)| f.name == "lib").unwrap();
        let test = fns.iter().find(|(f, _)| f.name == "t").unwrap();
        assert!(!lib.1);
        assert!(test.1);
    }

    #[test]
    fn lint_hot_comment_marks_the_function() {
        let src = "// lint:hot\nfn fast() {}\nfn slow() {}\n\
                   // lint:hot\n#[inline]\nfn attr_fast() {}\n";
        let t = tree(src);
        let fns = t.fns();
        assert!(fns.iter().find(|(f, _)| f.name == "fast").unwrap().0.hot);
        assert!(!fns.iter().find(|(f, _)| f.name == "slow").unwrap().0.hot);
        assert!(
            fns.iter()
                .find(|(f, _)| f.name == "attr_fast")
                .unwrap()
                .0
                .hot
        );
    }

    #[test]
    fn generic_impl_names_resolve_past_the_generics() {
        let src = "impl<T: Ord, const N: usize> Wheel<T, N> { fn f(&self) {} }";
        let t = tree(src);
        assert_eq!(t.items[0].name, "Wheel");
        assert_eq!(t.items[0].children.len(), 1);
    }

    #[test]
    fn trait_default_bodies_are_children() {
        let src = "trait T {\n  fn sig(&self);\n  fn dflt(&self) -> u32 { 0 }\n}\n";
        let t = tree(src);
        assert_eq!(t.items[0].kind, ItemKind::Trait);
        let kids = &t.items[0].children;
        assert_eq!(kids.len(), 2);
        assert!(kids[0].body.is_none());
        assert!(kids[1].body.is_some());
    }

    #[test]
    fn fn_bodies_with_braces_do_not_break_sibling_spans() {
        let src = "fn a() { if x { y() } else { z() } match q { _ => {} } }\nfn b() {}\n";
        let t = tree(src);
        assert_eq!(t.items.len(), 2);
        assert!(t.items[0].span.hi <= t.items[1].span.lo);
    }

    #[test]
    fn casts_report_target_and_literal_operands() {
        let (toks, _) = scan(
            "fn f(x: u64) -> u8 { let a = 7 as u8; let b = x as u8; (x & 0xff) as u8; a + b }",
        );
        let t = Tree::parse(&toks, &[]);
        let body = t.items[0].body.unwrap();
        let casts = casts_in(&toks, body);
        assert_eq!(casts.len(), 3);
        assert!(casts[0].operand_literal);
        assert!(!casts[1].operand_literal);
        assert!(casts[2].operand_masked);
        assert!(casts.iter().all(|c| c.target == "u8"));
    }

    #[test]
    fn use_renames_are_not_casts() {
        let (toks, _) = scan("fn f() { use std::fmt::Result as FmtResult; }");
        let t = Tree::parse(&toks, &[]);
        let casts = casts_in(&toks, t.items[0].body.unwrap());
        assert!(casts.is_empty(), "{casts:?}");
    }

    #[test]
    fn method_calls_capture_args_and_chains() {
        let (toks, _) = scan("fn f() { a.partial_cmp(&b).unwrap(); v.collect::<Vec<u32>>(); }");
        let t = Tree::parse(&toks, &[]);
        let calls = method_calls_in(&toks, t.items[0].body.unwrap());
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["partial_cmp", "unwrap", "collect"]);
        let pc = &calls[0];
        assert!(toks.get(pc.after).is_some_and(|t| t.text == "."));
        assert!(toks.get(pc.after + 1).is_some_and(|t| t.text == "unwrap"));
    }

    #[test]
    fn spans_nest_and_stay_disjoint() {
        let src = "mod m {\n  impl S {\n    fn a() {}\n    fn b() {}\n  }\n}\nfn c() {}\n";
        let (toks, comments) = scan(src);
        let t = Tree::parse(&toks, &comments);
        fn check(items: &[Item], parent: Span) {
            let mut last = parent.lo;
            for it in items {
                assert!(it.span.lo >= last, "sibling overlap");
                assert!(parent.contains(&it.span), "child escapes parent");
                if let Some(b) = it.body {
                    assert!(it.span.contains(&b));
                    check(&it.children, b);
                }
                last = it.span.hi;
            }
        }
        check(
            &t.items,
            Span {
                lo: 0,
                hi: toks.len(),
            },
        );
    }
}
