//! `quartz-lint` — the determinism lint CLI.
//!
//! ```text
//! cargo run -p quartz-lint [-- --format json] [--root DIR] [--baseline FILE]
//! ```
//!
//! Exit status: 0 when the workspace is clean, 1 on any unbaselined
//! finding, 2 on usage or I/O errors.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

use std::path::PathBuf;

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--format" => match take("--format") {
                Ok(v) if v == "text" || v == "json" => format = v,
                Ok(v) => return usage(&format!("unknown format `{v}`")),
                Err(e) => return usage(&e),
            },
            "--root" => match take("--root") {
                Ok(v) => root = Some(PathBuf::from(v)),
                Err(e) => return usage(&e),
            },
            "--baseline" => match take("--baseline") {
                Ok(v) => baseline_path = Some(PathBuf::from(v)),
                Err(e) => return usage(&e),
            },
            "--explain" => {
                return match take("--explain") {
                    Ok(rule) => explain(&rule),
                    Err(_) => {
                        // Bare `--explain` lists every rule.
                        for doc in &quartz_lint::explain::RULE_DOCS {
                            println!("{}", quartz_lint::explain::render(doc));
                        }
                        0
                    }
                };
            }
            "--help" | "-h" => {
                print!("{}", HELP);
                return 0;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Default root: the workspace this binary was built from.
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let root = match root.canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: root {}: {e}", root.display());
            return 2;
        }
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.toml"));

    let baseline = match quartz_lint::baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: baseline {e}");
            return 2;
        }
    };
    let findings = match quartz_lint::run(&root, &baseline) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };

    if format == "json" {
        println!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{}:{} {} {}", f.file, f.line, f.rule, f.message);
        }
        eprintln!(
            "quartz-lint: {} finding(s) across {} rule(s)",
            findings.len(),
            quartz_lint::rules::ALL_RULES.len()
        );
    }
    if findings.is_empty() {
        0
    } else {
        1
    }
}

fn usage(err: &str) -> i32 {
    eprintln!("error: {err}\n\n{HELP}");
    2
}

/// Prints the documentation for `rule` (0) or an error listing the
/// known rules (2).
fn explain(rule: &str) -> i32 {
    match quartz_lint::explain::rule_doc(rule) {
        Some(doc) => {
            println!("{}", quartz_lint::explain::render(doc));
            0
        }
        None => {
            eprintln!(
                "error: unknown rule `{rule}` (known: {})",
                quartz_lint::rules::ALL_RULES.join(", ")
            );
            2
        }
    }
}

const HELP: &str = "quartz-lint — determinism lint for the Quartz workspace

USAGE:
    cargo run -p quartz-lint [-- OPTIONS]

OPTIONS:
    --format text|json   output format (default: text)
    --root DIR           workspace root (default: this workspace)
    --baseline FILE      ratchet file (default: <root>/lint-baseline.toml)
    --explain [RULE]     print a rule's rationale, example, and escape
                         hatch (omit RULE to print all ten)
    --help               this message

Rules: hash-iter, wall-clock, stdout-discipline, seed-discipline,
crate-hygiene, suppression-audit, cast-soundness, float-determinism,
panic-freedom, hot-path-alloc. Suppress one finding with a justified
comment, `// lint:allow(rule) - why the invariant cannot break here`,
and record it in lint-baseline.toml (counts may only decrease).
";

/// Serializes findings as a stable JSON document (no dependencies).
fn to_json(findings: &[quartz_lint::Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            esc(&f.file),
            f.line,
            esc(f.rule),
            esc(&f.message),
            if i + 1 < findings.len() { "," } else { "" },
        ));
    }
    out.push_str(&format!("  ],\n  \"count\": {}\n}}", findings.len()));
    out
}

/// Escapes a JSON string body.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
