//! Workspace model: maps each `.rs` file to its owning crate and its
//! bin/lib role, so rules can scope themselves ("library code of hot
//! crates") instead of pattern-matching paths inline.

use std::path::{Path, PathBuf};

/// What a `.rs` file compiles into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Library code (`src/**` minus binary targets).
    Lib,
    /// A binary target (`src/main.rs`, `src/bin/**`).
    Bin,
    /// An example (`examples/**`).
    Example,
    /// Integration-test collateral (`tests/**`).
    Test,
    /// Bench collateral (`benches/**`).
    Bench,
}

/// One file's place in the workspace.
#[derive(Clone, Debug)]
pub struct FileModel {
    /// Workspace-relative directory of the owning crate (e.g.
    /// `crates/netsim`), or empty if the file belongs to no package.
    pub crate_dir: String,
    /// Package name from the crate's manifest (e.g. `quartz-netsim`).
    pub crate_name: String,
    /// The file's compilation role.
    pub role: Role,
}

impl FileModel {
    /// Whether the file is non-test library code of a determinism-hot
    /// crate — the scope of the cast-soundness and panic-freedom rules.
    pub fn hot_crate_lib(&self) -> bool {
        self.role == Role::Lib && HOT_CRATES.contains(&self.crate_dir.as_str())
    }
}

/// Crates whose library code sits on the simulator hot path: panics or
/// unsound narrowing there corrupt every experiment downstream.
pub const HOT_CRATES: [&str; 3] = ["crates/netsim", "crates/core", "crates/topology"];

/// The parsed workspace: package directories and names.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    /// `(workspace-relative dir, package name)`, longest dirs first so
    /// nested packages shadow their parents during lookup.
    packages: Vec<(String, String)>,
}

impl Workspace {
    /// Builds the model from the manifests found under `root`.
    pub fn new(root: &Path, manifests: &[PathBuf]) -> Result<Workspace, String> {
        let mut packages = Vec::new();
        for manifest in manifests {
            let text = std::fs::read_to_string(manifest)
                .map_err(|e| format!("{}: {e}", manifest.display()))?;
            let Some(name) = package_name(&text) else {
                continue; // virtual workspace manifest
            };
            let dir = manifest.parent().unwrap_or(Path::new(""));
            let rel = dir
                .strip_prefix(root)
                .unwrap_or(dir)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            packages.push((rel, name));
        }
        packages.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
        Ok(Workspace { packages })
    }

    /// Classifies a workspace-relative `.rs` path.
    pub fn classify(&self, rel: &str) -> FileModel {
        let (crate_dir, crate_name) = self
            .packages
            .iter()
            .find(|(dir, _)| {
                dir.is_empty() || rel.starts_with(&format!("{dir}/")) || rel == dir.as_str()
            })
            .cloned()
            .unwrap_or_default();
        let inside = rel
            .strip_prefix(&crate_dir)
            .unwrap_or(rel)
            .trim_start_matches('/');
        let role = if inside.starts_with("tests/") {
            Role::Test
        } else if inside.starts_with("benches/") {
            Role::Bench
        } else if inside.starts_with("examples/") {
            Role::Example
        } else if inside == "src/main.rs" || inside.starts_with("src/bin/") {
            Role::Bin
        } else {
            Role::Lib
        };
        FileModel {
            crate_dir,
            crate_name,
            role,
        }
    }
}

/// Extracts `name = "…"` from a manifest's `[package]` section.
fn package_name(text: &str) -> Option<String> {
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return Some(rest.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws() -> Workspace {
        Workspace {
            packages: vec![
                ("crates/netsim".into(), "quartz-netsim".into()),
                ("crates/bench".into(), "quartz-bench".into()),
            ],
        }
    }

    #[test]
    fn roles_from_paths() {
        let w = ws();
        assert_eq!(w.classify("crates/netsim/src/sim.rs").role, Role::Lib);
        assert_eq!(w.classify("crates/netsim/tests/it.rs").role, Role::Test);
        assert_eq!(
            w.classify("crates/bench/benches/scheduler.rs").role,
            Role::Bench
        );
        assert_eq!(w.classify("crates/bench/src/bin/fig06.rs").role, Role::Bin);
        assert_eq!(w.classify("crates/bench/src/main.rs").role, Role::Bin);
    }

    #[test]
    fn hot_crate_lib_scopes_to_library_code_of_hot_crates() {
        let w = ws();
        assert!(w.classify("crates/netsim/src/sched.rs").hot_crate_lib());
        assert!(!w.classify("crates/netsim/tests/it.rs").hot_crate_lib());
        assert!(!w.classify("crates/bench/src/table.rs").hot_crate_lib());
    }

    #[test]
    fn package_name_parses_package_sections_only() {
        assert_eq!(
            package_name("[package]\nname = \"quartz-core\"\nversion = \"0.1.0\"\n"),
            Some("quartz-core".into())
        );
        assert_eq!(
            package_name("[workspace]\nmembers = [\"crates/*\"]\n"),
            None
        );
        // A dependency named `name` must not fool the parser.
        assert_eq!(package_name("[dependencies]\nname = \"nope\"\n"), None);
    }
}
