//! Workspace walking, rule orchestration, suppression application, and
//! the suppression-audit ratchet check.

use crate::baseline::Baseline;
use crate::model::Workspace;
use crate::rules::{self, Finding};
use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];

/// Lints every `.rs` file under `root` against `baseline`; returns the
/// surviving findings sorted by `(file, line, rule)`.
pub fn run(root: &Path, baseline: &Baseline) -> Result<Vec<Finding>, String> {
    let mut rs_files = Vec::new();
    let mut manifests = Vec::new();
    walk(root, &mut rs_files, &mut manifests)?;
    rs_files.sort();
    manifests.sort();

    let crate_roots = crate_roots(&manifests)?;
    let workspace = Workspace::new(root, &manifests)?;

    let mut findings = Vec::new();
    // Suppression directives across the workspace, with a usage mark.
    let mut directives: Vec<(SourceFile, usize, bool)> = Vec::new();

    for path in &rs_files {
        let rel = relpath(root, path);
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let model = workspace.classify(&rel);
        let file = SourceFile::new(rel, &text);

        let mut raw = Vec::new();
        raw.extend(rules::hash_iter(&file));
        raw.extend(rules::wall_clock(&file));
        raw.extend(rules::stdout_discipline(&file));
        raw.extend(rules::seed_discipline(&file));
        raw.extend(rules::cast_soundness(&file, &model));
        raw.extend(rules::float_determinism(&file));
        raw.extend(rules::panic_freedom(&file));
        raw.extend(rules::hot_path_alloc(&file));
        if crate_roots.contains(path) {
            raw.extend(rules::crate_hygiene(&file));
        }

        // A directive on line L silences matching findings on L
        // (trailing comment) and L+1 (comment directly above).
        let mut used = vec![false; file.suppressions.len()];
        for finding in raw {
            let silenced = file.suppressions.iter().enumerate().find(|(_, s)| {
                s.rule == finding.rule && (s.line == finding.line || s.line + 1 == finding.line)
            });
            match silenced {
                Some((idx, _)) => used[idx] = true,
                None => findings.push(finding),
            }
        }
        for (idx, was_used) in used.into_iter().enumerate() {
            directives.push((file.clone(), idx, was_used));
        }
    }

    findings.extend(audit(&directives, baseline));
    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// The `suppression-audit` rule: justification, liveness, rule-name
/// validity, and the baseline ratchet.
fn audit(directives: &[(SourceFile, usize, bool)], baseline: &Baseline) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for (file, idx, used) in directives {
        let s = &file.suppressions[*idx];
        *counts.entry(s.rule.clone()).or_insert(0) += 1;
        if !rules::ALL_RULES.contains(&s.rule.as_str()) {
            out.push(Finding {
                file: file.rel.clone(),
                line: s.line,
                rule: rules::SUPPRESSION_AUDIT,
                message: format!(
                    "lint:allow({}) names no rule (known: {})",
                    s.rule,
                    rules::ALL_RULES.join(", ")
                ),
            });
            continue;
        }
        if !s.justified {
            out.push(Finding {
                file: file.rel.clone(),
                line: s.line,
                rule: rules::SUPPRESSION_AUDIT,
                message: format!(
                    "lint:allow({}) carries no justification — write \
                     `lint:allow({}) — <why the invariant cannot break here>`",
                    s.rule, s.rule
                ),
            });
        }
        if !used {
            out.push(Finding {
                file: file.rel.clone(),
                line: s.line,
                rule: rules::SUPPRESSION_AUDIT,
                message: format!(
                    "lint:allow({}) suppresses nothing on this or the next line — remove it",
                    s.rule
                ),
            });
        }
    }
    // Ratchet: the workspace count must equal the baselined count in
    // both directions, so the checked-in file always states the truth.
    for rule in rules::ALL_RULES {
        let have = counts.get(rule).copied().unwrap_or(0);
        let allowed = baseline.allowed(rule);
        if have > allowed {
            out.push(Finding {
                file: "lint-baseline.toml".to_string(),
                line: 0,
                rule: rules::SUPPRESSION_AUDIT,
                message: format!(
                    "{have} lint:allow({rule}) suppression(s) in the workspace but the \
                     ratchet permits {allowed} — fix the violations instead of suppressing"
                ),
            });
        } else if have < allowed {
            out.push(Finding {
                file: "lint-baseline.toml".to_string(),
                line: 0,
                rule: rules::SUPPRESSION_AUDIT,
                message: format!(
                    "the ratchet permits {allowed} lint:allow({rule}) suppression(s) but \
                     only {have} remain — ratchet the baseline down to {have}"
                ),
            });
        }
    }
    out
}

/// Recursively collects `.rs` files and `Cargo.toml` manifests.
fn walk(
    dir: &Path,
    rs_files: &mut Vec<PathBuf>,
    manifests: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, rs_files, manifests)?;
        } else if name.ends_with(".rs") {
            rs_files.push(path);
        } else if name == "Cargo.toml" {
            manifests.push(path);
        }
    }
    Ok(())
}

/// Maps each `[package]` manifest to its crate root (`src/lib.rs`,
/// falling back to `src/main.rs`).
fn crate_roots(manifests: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut roots = Vec::new();
    for manifest in manifests {
        let text = std::fs::read_to_string(manifest)
            .map_err(|e| format!("{}: {e}", manifest.display()))?;
        if !text.lines().any(|l| l.trim() == "[package]") {
            continue; // virtual workspace manifest
        }
        let dir = manifest.parent().expect("manifest has a directory");
        let lib = dir.join("src/lib.rs");
        let main = dir.join("src/main.rs");
        if lib.is_file() {
            roots.push(lib);
        } else if main.is_file() {
            roots.push(main);
        }
    }
    Ok(roots)
}

/// `path` relative to `root`, with forward slashes.
fn relpath(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a throwaway workspace in target/-adjacent temp space.
    struct TempWs(PathBuf);

    impl TempWs {
        fn new(tag: &str, files: &[(&str, &str)]) -> TempWs {
            let dir = std::env::temp_dir().join(format!("quartz-lint-test-{tag}"));
            let _ = std::fs::remove_dir_all(&dir);
            for (rel, text) in files {
                let path = dir.join(rel);
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(path, text).unwrap();
            }
            TempWs(dir)
        }
    }

    impl Drop for TempWs {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    const CLEAN_ROOT: &str =
        "//! docs\n#![deny(missing_docs)]\n#![forbid(unsafe_code)]\npub fn f() {}\n";

    #[test]
    fn clean_workspace_yields_no_findings() {
        let ws = TempWs::new(
            "clean",
            &[
                ("Cargo.toml", "[package]\nname = \"x\"\n"),
                ("src/lib.rs", CLEAN_ROOT),
            ],
        );
        let findings = run(&ws.0, &Baseline::default()).unwrap();
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn violation_is_reported_with_file_line_rule() {
        let ws = TempWs::new(
            "hit",
            &[
                ("Cargo.toml", "[package]\nname = \"x\"\n"),
                (
                    "src/lib.rs",
                    "//! docs\n#![deny(missing_docs)]\n#![forbid(unsafe_code)]\n\
                     /// doc\npub fn f() { let m = HashMap::new(); for v in &m { drop(v); } }\n",
                ),
            ],
        );
        let findings = run(&ws.0, &Baseline::default()).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].file, "src/lib.rs");
        assert_eq!(findings[0].line, 5);
        assert_eq!(findings[0].rule, rules::HASH_ITER);
    }

    #[test]
    fn justified_suppression_silences_but_must_be_baselined() {
        let src = "//! docs\n#![deny(missing_docs)]\n#![forbid(unsafe_code)]\n\
                   /// doc\npub fn f() { let m = HashMap::new();\n\
                   // lint:allow(hash-iter) — order folds into a commutative sum below\n\
                   for v in &m { drop(v); } }\n";
        let ws = TempWs::new(
            "suppr",
            &[
                ("Cargo.toml", "[package]\nname = \"x\"\n"),
                ("src/lib.rs", src),
            ],
        );
        // Empty baseline: the suppression itself trips the ratchet.
        let findings = run(&ws.0, &Baseline::default()).unwrap();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, rules::SUPPRESSION_AUDIT);
        assert!(findings[0].message.contains("permits 0"));
        // Baseline of 1: fully clean.
        let baseline = crate::baseline::parse("[allow]\nhash-iter = 1\n").unwrap();
        assert!(run(&ws.0, &baseline).unwrap().is_empty());
    }

    #[test]
    fn unjustified_and_unused_suppressions_are_findings() {
        let src = "//! docs\n#![deny(missing_docs)]\n#![forbid(unsafe_code)]\n\
                   /// doc\npub fn f() { let m = HashMap::new();\n\
                   // lint:allow(hash-iter)\n\
                   for v in &m { drop(v); }\n\
                   // lint:allow(wall-clock) — nothing here actually reads a clock\n\
                   let x = 1; drop(x); }\n";
        let ws = TempWs::new(
            "audit",
            &[
                ("Cargo.toml", "[package]\nname = \"x\"\n"),
                ("src/lib.rs", src),
            ],
        );
        let baseline = crate::baseline::parse("[allow]\nhash-iter = 1\nwall-clock = 1\n").unwrap();
        let findings = run(&ws.0, &baseline).unwrap();
        let audit: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == rules::SUPPRESSION_AUDIT)
            .collect();
        assert_eq!(audit.len(), 2, "{findings:?}");
        assert!(audit.iter().any(|f| f.message.contains("no justification")));
        assert!(audit
            .iter()
            .any(|f| f.message.contains("suppresses nothing")));
    }

    #[test]
    fn stale_baseline_must_ratchet_down() {
        let ws = TempWs::new(
            "ratchet",
            &[
                ("Cargo.toml", "[package]\nname = \"x\"\n"),
                ("src/lib.rs", CLEAN_ROOT),
            ],
        );
        let baseline = crate::baseline::parse("[allow]\nhash-iter = 3\n").unwrap();
        let findings = run(&ws.0, &baseline).unwrap();
        assert_eq!(findings.len(), 1);
        assert!(findings[0]
            .message
            .contains("ratchet the baseline down to 0"));
    }

    #[test]
    fn missing_hygiene_attrs_reported_for_crate_roots_only() {
        let ws = TempWs::new(
            "hygiene",
            &[
                ("Cargo.toml", "[package]\nname = \"x\"\n"),
                ("src/lib.rs", "//! docs\npub mod helper;\n"),
                ("src/helper.rs", "//! module, not a crate root\n"),
            ],
        );
        let findings = run(&ws.0, &Baseline::default()).unwrap();
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().all(|f| f.file == "src/lib.rs"));
    }
}
