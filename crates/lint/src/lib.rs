//! # quartz-lint
//!
//! An in-tree, dependency-free static-analysis engine that turns the
//! workspace's determinism contract from convention into a checked
//! property. PR 2 made every experiment binary bit-identical at any
//! `--jobs` count; this crate *enforces* the invariants that proof
//! rests on, as named, individually suppressible rules:
//!
//! * `hash-iter` — no iteration over `HashMap`/`HashSet` anywhere in
//!   the workspace (hash iteration order could silently leak into
//!   fig06/fig10/fig17 output); use `BTreeMap`/`BTreeSet` or sort
//!   first. Order-free operations (`insert`, `get`, `contains`, `len`)
//!   remain legal.
//! * `wall-clock` — `Instant`/`SystemTime` are confined to
//!   `crates/bench/src/timing.rs`.
//! * `stdout-discipline` — no `println!`/`eprintln!` in library code:
//!   experiment output funnels through `quartz_bench::outln!` into the
//!   single `table::emit_line` sink (binaries, tests, and the
//!   table/timing modules keep direct access).
//! * `seed-discipline` — no literal-seeded RNG outside tests: seeds
//!   flow from explicit parameters or `quartz_core::pool::unit_seed`.
//! * `crate-hygiene` — every crate root carries
//!   `#![deny(missing_docs)]` and `#![forbid(unsafe_code)]`.
//! * `suppression-audit` — every `lint:allow(rule) — justification`
//!   escape hatch must be justified, must actually suppress something,
//!   and is counted against the `lint-baseline.toml` ratchet, whose
//!   numbers may only go down.
//! * `cast-soundness` — narrowing `as` casts in hot-crate library code
//!   (netsim/core/topology) must sit within 16 lines after a
//!   `debug_assert!`/`try_from` guard in the same function; literals
//!   and masked operands are self-guarding.
//! * `float-determinism` — no float accumulation over unordered
//!   iteration or inside `par_map` worker closures, and no
//!   `partial_cmp(..).unwrap()` / bare `<`/`>` float comparisons in
//!   selection closures; use `f64::total_cmp`.
//! * `panic-freedom` — files opting in with `// lint:panic-free` carry
//!   no `unwrap`/`expect` in non-test code, and direct indexing only in
//!   functions that state their bound with an assert-family macro.
//! * `hot-path-alloc` — functions annotated `// lint:hot` (the arena
//!   recycle path, the scheduler drain, the forwarding fast path)
//!   never allocate: no `Vec::new`/`vec!`/`format!`/`Box::new`/
//!   `.push`/`.collect`/`.to_string`/`.to_vec`.
//!
//! The engine tokenizes each `.rs` file (dropping strings and doc
//! comments, so quoted code never trips a rule), parses a
//! bracket-matched item/expression tree over the tokens ([`syntax`]),
//! classifies the file's crate and bin/lib role ([`model`]), applies
//! the rules, and reports findings as `file:line rule message` (or
//! JSON with `--format json`), exiting nonzero on any unbaselined
//! finding. Run it with `cargo run -p quartz-lint`; CI runs it on every
//! push. `--explain <rule>` prints any rule's rationale, example
//! violation, and escape hatch ([`explain`]).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod engine;
pub mod explain;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod source;
pub mod syntax;

pub use baseline::Baseline;
pub use engine::run;
pub use rules::Finding;
