//! Bills of materials for the §4 designs.
//!
//! All designs use 64-port switches split 32 servers / 32 uplinks at the
//! edge (the paper's flagship split). Sizing conventions, documented once
//! here and used consistently:
//!
//! * **Two-tier tree** — full-bisection: every ToR drives 32 uplinks into
//!   an aggregation tier of 64-port switches.
//! * **Three-tier tree** — 8:1 oversubscribed at the edge (4 uplinks per
//!   ToR, standard for large DCs), 64-port aggregation, 768-port core
//!   switches.
//! * **Single Quartz ring** — one switch per rack, ring sized to the rack
//!   count (≤ 35, §3.1).
//! * **Quartz in edge** — ToR+aggregation replaced by rings of
//!   [`EDGE_RING_SIZE`] switches, uplinked straight to the core ("groups
//!   nearby racks into a single Quartz ring", §4.1).
//! * **Quartz in core** — each 768-port core switch replaced by a
//!   33-switch Quartz ring (1056 ports, §3.2).

use crate::catalog::PriceCatalog;
use quartz_core::channel::greedy;
use quartz_optics::ring::RingOpticalPlan;

/// Servers per edge switch in every design.
pub const SERVERS_PER_TOR: usize = 32;

/// Racks grouped into one edge Quartz ring (§4.1's "localized traffic
/// that span multiple racks can be grouped into a single Quartz ring").
pub const EDGE_RING_SIZE: usize = 6;

/// Switches per core Quartz ring — the §3.2 flagship 1056-port element.
pub const CORE_RING_SIZE: usize = 33;

/// Component counts for a whole datacenter network (servers excluded, as
/// in Table 8: "the prices include all the hardware expenses except for
/// the cost of the servers").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BillOfMaterials {
    /// 64-port cut-through switches.
    pub ull_switches: usize,
    /// High-port-density core switches.
    pub core_switches: usize,
    /// 80-channel DWDM mux/demuxes.
    pub dwdm_mux_80ch: usize,
    /// Small (≤ 8 channel) muxes.
    pub mux_small: usize,
    /// DWDM transceivers.
    pub transceivers: usize,
    /// EDFA amplifiers.
    pub amplifiers: usize,
    /// Fixed attenuators.
    pub attenuators: usize,
    /// Cable runs (server and inter-switch).
    pub cables: usize,
}

impl BillOfMaterials {
    /// Total price under `c`.
    pub fn cost(&self, c: &PriceCatalog) -> f64 {
        self.ull_switches as f64 * c.ull_switch
            + self.core_switches as f64 * c.core_switch
            + self.dwdm_mux_80ch as f64 * c.dwdm_mux_80ch
            + self.mux_small as f64 * c.mux_small
            + self.transceivers as f64 * c.dwdm_transceiver
            + self.amplifiers as f64 * c.amplifier
            + self.attenuators as f64 * c.attenuator
            + self.cables as f64 * c.cable
    }

    fn scale(self, n: usize) -> BillOfMaterials {
        BillOfMaterials {
            ull_switches: self.ull_switches * n,
            core_switches: self.core_switches * n,
            dwdm_mux_80ch: self.dwdm_mux_80ch * n,
            mux_small: self.mux_small * n,
            transceivers: self.transceivers * n,
            amplifiers: self.amplifiers * n,
            attenuators: self.attenuators * n,
            cables: self.cables * n,
        }
    }

    fn add(self, other: BillOfMaterials) -> BillOfMaterials {
        BillOfMaterials {
            ull_switches: self.ull_switches + other.ull_switches,
            core_switches: self.core_switches + other.core_switches,
            dwdm_mux_80ch: self.dwdm_mux_80ch + other.dwdm_mux_80ch,
            mux_small: self.mux_small + other.mux_small,
            transceivers: self.transceivers + other.transceivers,
            amplifiers: self.amplifiers + other.amplifiers,
            attenuators: self.attenuators + other.attenuators,
            cables: self.cables + other.cables,
        }
    }
}

/// The network designs Table 8 prices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Design {
    /// Full-bisection two-tier tree.
    TwoTierTree,
    /// Oversubscribed three-tier tree.
    ThreeTierTree,
    /// One Quartz ring as the whole network (small DCs).
    SingleQuartzRing,
    /// Three-tier with the edge (ToR+agg) replaced by Quartz rings.
    QuartzInEdge,
    /// Three-tier with the core replaced by Quartz rings.
    QuartzInCore,
    /// Both replacements.
    QuartzInEdgeAndCore,
}

impl Design {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Design::TwoTierTree => "Two-tier tree",
            Design::ThreeTierTree => "Three-tier tree",
            Design::SingleQuartzRing => "Single Quartz ring",
            Design::QuartzInEdge => "Quartz in edge",
            Design::QuartzInCore => "Quartz in core",
            Design::QuartzInEdgeAndCore => "Quartz in edge and core",
        }
    }

    /// Bill of materials for `servers` servers.
    ///
    /// # Panics
    /// Panics if `SingleQuartzRing` is asked for more racks than one ring
    /// carries (use the composite designs instead), or `servers == 0`.
    pub fn bom(&self, servers: usize) -> BillOfMaterials {
        assert!(servers > 0);
        let tors = servers.div_ceil(SERVERS_PER_TOR);
        match self {
            Design::TwoTierTree => {
                let uplinks = tors * 32;
                let aggs = uplinks.div_ceil(64);
                BillOfMaterials {
                    ull_switches: tors + aggs,
                    cables: servers + uplinks,
                    ..Default::default()
                }
            }
            Design::ThreeTierTree => {
                let (aggs, cores, cables) = three_tier_upper(tors, servers);
                BillOfMaterials {
                    ull_switches: tors + aggs,
                    core_switches: cores,
                    cables,
                    ..Default::default()
                }
            }
            Design::SingleQuartzRing => {
                assert!(
                    tors <= 35,
                    "a single ring carries at most 35 switches (§3.1); got {tors}"
                );
                let ring = ring_bom(tors.max(2));
                BillOfMaterials {
                    cables: servers + 2 * tors, // two ring fibers/switch
                    ..ring
                }
            }
            Design::QuartzInEdge => {
                let edge = edge_rings_bom(tors);
                // Ring switches uplink straight to the core: 4 uplinks
                // per switch, 768-port cores.
                let uplinks = tors * 4;
                let cores = uplinks.div_ceil(768).max(2);
                edge.add(BillOfMaterials {
                    core_switches: cores,
                    cables: servers + uplinks + 2 * tors,
                    ..Default::default()
                })
            }
            Design::QuartzInCore => {
                let (aggs, cores, cables) = three_tier_upper(tors, servers);
                let core_rings = core_rings_bom(cores);
                BillOfMaterials {
                    ull_switches: tors + aggs,
                    cables: cables + 2 * cores * CORE_RING_SIZE,
                    ..Default::default()
                }
                .add(core_rings)
            }
            Design::QuartzInEdgeAndCore => {
                let edge = edge_rings_bom(tors);
                let uplinks = tors * 4;
                let cores = uplinks.div_ceil(768).max(2);
                let core_rings = core_rings_bom(cores);
                edge.add(core_rings).add(BillOfMaterials {
                    cables: servers + uplinks + 2 * tors + 2 * cores * CORE_RING_SIZE,
                    ..Default::default()
                })
            }
        }
    }

    /// Cost per server under `c`.
    ///
    /// # Examples
    ///
    /// ```
    /// use quartz_cost::bom::Design;
    /// use quartz_cost::catalog::PriceCatalog;
    ///
    /// let catalog = PriceCatalog::era_2014();
    /// let tree = Design::TwoTierTree.cost_per_server(500, &catalog);
    /// let ring = Design::SingleQuartzRing.cost_per_server(500, &catalog);
    /// let premium = ring / tree - 1.0;
    /// assert!(premium > 0.0 && premium < 0.15); // Table 8's small-DC row
    /// ```
    pub fn cost_per_server(&self, servers: usize, c: &PriceCatalog) -> f64 {
        self.bom(servers).cost(c) / servers as f64
    }
}

/// Aggregation/core sizing shared by the three-tier variants: 4 uplinks
/// per ToR, 64-port aggregation (32 down / 32 up), 768-port cores.
fn three_tier_upper(tors: usize, servers: usize) -> (usize, usize, usize) {
    let tor_uplinks = tors * 4;
    let aggs = tor_uplinks.div_ceil(32).max(2);
    let agg_uplinks = aggs * 32;
    let cores = agg_uplinks.div_ceil(768).max(2);
    let cables = servers + tor_uplinks + agg_uplinks;
    (aggs, cores, cables)
}

/// The optical+switch bill for one Quartz ring of `m` switches.
fn ring_bom(m: usize) -> BillOfMaterials {
    let wavelengths = greedy::wavelengths_required(m);
    let plan = RingOpticalPlan::paper_plan(m).expect("paper parts plan all ring sizes");
    let (mux80, small) = if wavelengths <= 8 {
        (0, m)
    } else {
        (m * wavelengths.div_ceil(80), 0)
    };
    BillOfMaterials {
        ull_switches: m,
        dwdm_mux_80ch: mux80,
        mux_small: small,
        transceivers: m * (m - 1),
        amplifiers: plan.amplifier_count(),
        attenuators: m * (m - 1),
        ..Default::default()
    }
}

/// Edge tier built from rings of [`EDGE_RING_SIZE`].
fn edge_rings_bom(tors: usize) -> BillOfMaterials {
    let full = tors / EDGE_RING_SIZE;
    let rem = tors % EDGE_RING_SIZE;
    let mut bom = ring_bom(EDGE_RING_SIZE).scale(full);
    if rem >= 2 {
        bom = bom.add(ring_bom(rem));
    } else if rem == 1 {
        // A lone leftover rack still needs its switch.
        bom.ull_switches += 1;
    }
    bom
}

/// Core tier: one 33-switch ring per replaced core switch.
fn core_rings_bom(cores: usize) -> BillOfMaterials {
    ring_bom(CORE_RING_SIZE).scale(cores)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cps(d: Design, servers: usize) -> f64 {
        d.cost_per_server(servers, &PriceCatalog::default())
    }

    #[test]
    fn small_dc_ring_premium_is_modest() {
        // Table 8, small: two-tier $589 vs single ring $633 (+7 %). Our
        // catalog lands in the same band: a single-digit-percent premium.
        let tree = cps(Design::TwoTierTree, 500);
        let ring = cps(Design::SingleQuartzRing, 500);
        assert!(
            ring > tree,
            "ring {ring} should carry a premium over {tree}"
        );
        let premium = ring / tree - 1.0;
        assert!(
            (0.0..0.15).contains(&premium),
            "premium {premium:.3} out of band (tree {tree:.0}, ring {ring:.0})"
        );
        // Absolute scale sanity: hundreds of dollars per server.
        assert!((400.0..900.0).contains(&tree), "{tree}");
    }

    #[test]
    fn medium_dc_edge_premium_in_teens() {
        // Table 8, medium: three-tier $544 vs Quartz-in-edge $612 (+13 %).
        let tree = cps(Design::ThreeTierTree, 10_000);
        let edge = cps(Design::QuartzInEdge, 10_000);
        let premium = edge / tree - 1.0;
        assert!(
            (0.02..0.30).contains(&premium),
            "premium {premium:.3} (tree {tree:.0}, edge {edge:.0})"
        );
    }

    #[test]
    fn large_dc_core_swap_is_roughly_free() {
        // Table 8, large: "using Quartz at the core layer does not
        // increase cost per server since the three-tier tree requires a
        // high port density switch" — $525 vs $525.
        let tree = cps(Design::ThreeTierTree, 100_000);
        let core = cps(Design::QuartzInCore, 100_000);
        let delta = (core / tree - 1.0).abs();
        assert!(
            delta < 0.06,
            "core swap should be near-free: {delta:.3} (tree {tree:.0}, core {core:.0})"
        );
    }

    #[test]
    fn large_dc_edge_and_core_premium_under_quarter() {
        // Table 8, large/high: $525 → $614 (+17 %).
        let tree = cps(Design::ThreeTierTree, 100_000);
        let both = cps(Design::QuartzInEdgeAndCore, 100_000);
        let premium = both / tree - 1.0;
        assert!(
            (0.05..0.25).contains(&premium),
            "premium {premium:.3} (tree {tree:.0}, both {both:.0})"
        );
    }

    #[test]
    fn economies_of_scale_for_trees() {
        // Cost/server falls (or at least does not rise) with size.
        let small = cps(Design::ThreeTierTree, 10_000);
        let large = cps(Design::ThreeTierTree, 100_000);
        assert!(large <= small * 1.02, "{large} vs {small}");
    }

    #[test]
    fn wdm_cost_decline_shrinks_the_premium() {
        // Figure 1's argument: as WDM prices fall, Quartz's premium
        // evaporates.
        let now = PriceCatalog::default();
        let future = now.with_wdm_scale(0.25);
        let premium = |c: &PriceCatalog| {
            Design::SingleQuartzRing.cost_per_server(500, c)
                / Design::TwoTierTree.cost_per_server(500, c)
                - 1.0
        };
        assert!(premium(&future) < premium(&now));
    }

    #[test]
    fn ring_bom_counts_are_consistent() {
        let b = ring_bom(33);
        assert_eq!(b.ull_switches, 33);
        assert_eq!(b.transceivers, 33 * 32);
        // 137 wavelengths → two 80-channel muxes per switch.
        assert_eq!(b.dwdm_mux_80ch, 66);
        assert!(b.amplifiers >= 16);
    }

    #[test]
    fn tiny_ring_uses_small_muxes() {
        let b = ring_bom(4);
        assert_eq!(b.mux_small, 4);
        assert_eq!(b.dwdm_mux_80ch, 0);
        assert_eq!(b.amplifiers, 0);
    }

    #[test]
    #[should_panic(expected = "at most 35")]
    fn single_ring_caps_at_35_racks() {
        let _ = Design::SingleQuartzRing.bom(36 * 32);
    }

    #[test]
    fn all_designs_price_positive() {
        let c = PriceCatalog::default();
        for d in [
            Design::TwoTierTree,
            Design::ThreeTierTree,
            Design::SingleQuartzRing,
            Design::QuartzInEdge,
            Design::QuartzInCore,
            Design::QuartzInEdgeAndCore,
        ] {
            let servers = if d == Design::SingleQuartzRing {
                1_000
            } else {
                10_000
            };
            assert!(d.cost_per_server(servers, &c) > 0.0, "{d:?}");
        }
    }
}
