//! The §4.4 configurator — Table 8.
//!
//! "Datacenter providers must balance the gain from reducing end-to-end
//! latency with the cost of using low-latency hardware." For each
//! datacenter size and utilization level the configurator recommends the
//! design the paper considers, its cost per server under the current
//! catalog, and the expected latency reduction.
//!
//! The latency-reduction column uses a small analytic model (uncongested
//! switch-hop latency plus a per-congestion-point queueing term that
//! grows with utilization) calibrated against our packet-level
//! simulations (Figures 17/18 benches) and the paper's reported ranges.

use crate::bom::Design;
use crate::catalog::PriceCatalog;

/// Datacenter scale, per Table 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatacenterSize {
    /// ~500 servers.
    Small,
    /// ~10,000 servers.
    Medium,
    /// ~100,000 servers.
    Large,
}

impl DatacenterSize {
    /// Server count the configurator prices.
    pub fn servers(&self) -> usize {
        match self {
            DatacenterSize::Small => 500,
            DatacenterSize::Medium => 10_000,
            DatacenterSize::Large => 100_000,
        }
    }
}

/// Network utilization level: "'high' corresponds to a mean link
/// utilization of 70%, and 'low' … 50%."
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Utilization {
    /// ~50 % mean link utilization.
    Low,
    /// ~70 % mean link utilization.
    High,
}

/// One Table 8 row: a baseline and its Quartz alternative.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Datacenter size.
    pub size: DatacenterSize,
    /// Utilization level.
    pub utilization: Utilization,
    /// The conventional design.
    pub baseline: Design,
    /// The recommended Quartz design.
    pub quartz: Design,
    /// Baseline cost per server, USD.
    pub baseline_cost: f64,
    /// Quartz cost per server, USD.
    pub quartz_cost: f64,
    /// Estimated end-to-end latency reduction, 0..1.
    pub latency_reduction: f64,
}

/// Mean one-way latency of a design's worst-case path under the analytic
/// model, ns. Hop structure: edge switches at 500 ns (Table 9's
/// arithmetic), cores at 6 µs; each *shared* tier above the ToR is a
/// congestion point contributing queueing that grows with utilization
/// (the 50 µs-scale effects of Table 2, scaled down to the per-point
/// averages our simulations show).
fn model_latency_ns(design: Design, size: DatacenterSize, u: Utilization) -> f64 {
    const EDGE: f64 = 500.0;
    const CORE: f64 = 6_000.0;
    // Mean queueing per congestion point (ns): at 50% utilization a
    // moderate queue, at 70% a heavy one (M/M/1-style blowup). Values
    // calibrated against the cross-traffic behaviour our Figure 17
    // benches show at the corresponding loads.
    let q = match u {
        Utilization::Low => 200.0,
        Utilization::High => 900.0,
    };
    match (design, size) {
        // Small DCs: two-tier (3 edge hops, 1 shared tier) vs one mesh
        // (2 edge hops, no shared tier).
        (Design::TwoTierTree, _) => 3.0 * EDGE + q,
        (Design::SingleQuartzRing, _) => 2.0 * EDGE,
        // Three-tier: 4 edge + 1 core hop, 2 shared tiers.
        (Design::ThreeTierTree, _) => 4.0 * EDGE + CORE + 2.0 * q,
        // Quartz in edge keeps the core: 2 ring hops + core, 1 shared
        // tier.
        (Design::QuartzInEdge, _) => 2.0 * EDGE + CORE + q,
        // Quartz in core keeps the edge: 4 edge hops + 2 ring-core hops,
        // 1 shared tier (the aggregation).
        (Design::QuartzInCore, _) => 4.0 * EDGE + 2.0 * EDGE + q,
        // Both: all cut-through hops, no shared tier.
        (Design::QuartzInEdgeAndCore, _) => 2.0 * EDGE + 2.0 * EDGE,
    }
}

/// Builds the full Table 8: six rows (3 sizes × 2 utilizations).
pub fn configure(catalog: &PriceCatalog) -> Vec<Row> {
    let mut rows = Vec::with_capacity(6);
    for size in [
        DatacenterSize::Small,
        DatacenterSize::Medium,
        DatacenterSize::Large,
    ] {
        for utilization in [Utilization::Low, Utilization::High] {
            let (baseline, quartz) = match (size, utilization) {
                (DatacenterSize::Small, _) => (Design::TwoTierTree, Design::SingleQuartzRing),
                (DatacenterSize::Medium, _) => (Design::ThreeTierTree, Design::QuartzInEdge),
                (DatacenterSize::Large, Utilization::Low) => {
                    (Design::ThreeTierTree, Design::QuartzInCore)
                }
                (DatacenterSize::Large, Utilization::High) => {
                    (Design::ThreeTierTree, Design::QuartzInEdgeAndCore)
                }
            };
            let servers = size.servers();
            let base_lat = model_latency_ns(baseline, size, utilization);
            let quartz_lat = model_latency_ns(quartz, size, utilization);
            rows.push(Row {
                size,
                utilization,
                baseline,
                quartz,
                baseline_cost: baseline.cost_per_server(servers, catalog),
                quartz_cost: quartz.cost_per_server(servers, catalog),
                latency_reduction: 1.0 - quartz_lat / base_lat,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        configure(&PriceCatalog::default())
    }

    #[test]
    fn produces_all_six_rows() {
        assert_eq!(rows().len(), 6);
    }

    #[test]
    fn quartz_always_reduces_latency() {
        for r in rows() {
            assert!(
                r.latency_reduction > 0.0 && r.latency_reduction < 1.0,
                "{r:?}"
            );
        }
    }

    #[test]
    fn small_dc_reductions_bracket_paper_values() {
        // Table 8: 33 % (low) and 50 % (high) for the small DC.
        let rs = rows();
        let low = rs[0].latency_reduction;
        let high = rs[1].latency_reduction;
        assert!((0.25..0.45).contains(&low), "low {low}");
        assert!((0.40..0.60).contains(&high), "high {high}");
        assert!(high > low, "more utilization, more benefit");
    }

    #[test]
    fn large_dc_reductions_are_biggest() {
        // Table 8: 70 % (core swap, low) and 74 % (edge+core, high).
        let rs = rows();
        let low = rs[4].latency_reduction;
        let high = rs[5].latency_reduction;
        assert!((0.55..0.80).contains(&low), "low {low}");
        assert!((0.60..0.85).contains(&high), "high {high}");
    }

    #[test]
    fn premiums_match_paper_structure() {
        // Small +single digits %, medium +teens, large-low ≈ 0, large-high
        // +double digits.
        let rs = rows();
        let prem = |r: &Row| r.quartz_cost / r.baseline_cost - 1.0;
        assert!(
            (0.0..0.15).contains(&prem(&rs[0])),
            "small: {}",
            prem(&rs[0])
        );
        assert!(
            (0.02..0.30).contains(&prem(&rs[2])),
            "medium: {}",
            prem(&rs[2])
        );
        assert!(prem(&rs[4]).abs() < 0.06, "large low: {}", prem(&rs[4]));
        assert!(
            (0.05..0.25).contains(&prem(&rs[5])),
            "large high: {}",
            prem(&rs[5])
        );
    }

    #[test]
    fn high_utilization_never_cheaper_benefitwise() {
        let rs = rows();
        for pair in rs.chunks(2) {
            assert!(pair[1].latency_reduction >= pair[0].latency_reduction);
        }
    }
}
