//! The Figure 1 backbone-DWDM cost decline.
//!
//! Figure 1 (reproduced from Berthold, *Optical Networking for Data
//! Center Interconnects Across Wide Area Networks*, Hot Interconnects
//! 2009) shows per-bit, per-km DWDM transport cost falling exponentially
//! since 1993, driven by rising channel rates and counts — the paper's
//! argument that "Quartz will only become more cost-competitive over
//! time".
//!
//! The series below digitizes the figure's trend as a relative cost
//! index (1993 = 1.0), one point per technology generation; the decline
//! is roughly 10× every five years (~37 %/year).

/// `(year, relative per-bit·km cost, label)` — the DWDM generations of
/// Berthold's figure.
pub const DWDM_TREND: [(u32, f64, &str); 6] = [
    (1993, 1.0, "2.5G, 4ch"),
    (1996, 0.25, "2.5G, 16ch"),
    (1999, 0.05, "10G, 32ch"),
    (2002, 0.012, "10G, 80ch"),
    (2006, 0.003, "40G, 80ch"),
    (2009, 0.0008, "100G, 80ch"),
];

/// Fitted relative cost index for `year`, extrapolating the exponential
/// trend (least-squares on log cost).
pub fn dwdm_cost_index(year: u32) -> f64 {
    // Least-squares fit of ln(cost) = a + b·(year − 1993).
    let n = DWDM_TREND.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(y, c, _) in &DWDM_TREND {
        let x = (y - 1993) as f64;
        let ly = c.ln();
        sx += x;
        sy += ly;
        sxx += x * x;
        sxy += x * ly;
    }
    let b = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let a = (sy - b * sx) / n;
    (a + b * (year as f64 - 1993.0)).exp()
}

/// The fitted annual cost-decline factor (e.g. 0.64 means −36 %/year).
pub fn annual_decline_factor() -> f64 {
    dwdm_cost_index(2001) / dwdm_cost_index(2000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_strictly_decreasing() {
        for w in DWDM_TREND.windows(2) {
            assert!(w[1].1 < w[0].1, "{w:?}");
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn three_orders_of_magnitude_over_the_figure() {
        // Figure 1 spans ≳3 decades of cost from 1993 to 2009.
        let first = DWDM_TREND[0].1;
        let last = DWDM_TREND.last().unwrap().1;
        assert!(first / last >= 1_000.0);
    }

    #[test]
    fn fit_interpolates_the_anchors() {
        // The fit should pass within 2× of every data point (it is a
        // straight line in log space through noisy generations).
        for &(y, c, _) in &DWDM_TREND {
            let f = dwdm_cost_index(y);
            let ratio = (f / c).max(c / f);
            assert!(ratio < 2.0, "year {y}: fit {f} vs {c}");
        }
    }

    #[test]
    fn decline_rate_is_steep() {
        let f = annual_decline_factor();
        assert!(f < 0.75 && f > 0.5, "annual factor {f}");
    }

    #[test]
    fn extrapolation_keeps_falling() {
        assert!(dwdm_cost_index(2014) < dwdm_cost_index(2009));
    }
}
