//! # quartz-cost
//!
//! The hardware price catalog and the §4.4 configurator for the Quartz
//! reproduction.
//!
//! The paper's Table 8 is a "'best-effort' attempt to quantify the
//! cost-benefit tradeoff of using Quartz": cost per server and latency
//! reduction for small (500), medium (10 k) and large (100 k) server
//! datacenters under low and high network utilization. Its vendor quotes
//! were bit.ly links that have long since rotted; [`catalog`] documents
//! era-appropriate prices for every part, and the table's *structure* —
//! which designs cost more, by roughly what fraction, and where Quartz is
//! free — is what [`configurator`] reproduces.
//!
//! * [`catalog`] — unit prices for switches, WDM gear, amplifiers, and
//!   cabling.
//! * [`bom`] — bills of materials for each §4 design: two/three-tier
//!   trees, a single Quartz ring, Quartz in the edge, core, or both.
//! * [`configurator`] — the Table 8 generator.
//! * [`trend`] — the Figure 1 backbone-DWDM cost-decline series.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod bom;
pub mod catalog;
pub mod configurator;
pub mod power;
pub mod trend;

pub use bom::{BillOfMaterials, Design};
pub use catalog::PriceCatalog;
pub use configurator::{configure, DatacenterSize, Row, Utilization};
pub use power::PowerCatalog;
pub use trend::{dwdm_cost_index, DWDM_TREND};
