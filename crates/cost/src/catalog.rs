//! Unit prices for every component the §4.4 analysis buys.
//!
//! The paper cites street prices via now-dead bit.ly links (\[2, 4, 6–10,
//! 12]). The defaults here are era-appropriate (2014) estimates chosen so
//! that the reproduced Table 8 lands near the paper's cost-per-server
//! figures; each entry documents what it stands for. Callers can build a
//! custom catalog to study price sensitivity (the DWDM entries are the
//! ones Figure 1 predicts will keep falling).

/// Unit prices in US dollars.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PriceCatalog {
    /// 64-port low-latency cut-through switch (Arista 7150S class, \[4\]).
    pub ull_switch: f64,
    /// High-port-density store-and-forward core switch (Cisco Nexus 7700
    /// class, ~768 × 10 G with chassis and line cards, \[9\]).
    pub core_switch: f64,
    /// 80-channel athermal AWG DWDM mux/demux, 2RU (\[8\]).
    pub dwdm_mux_80ch: f64,
    /// Small (≤ 8 channel) CWDM/DWDM mux for little rings.
    pub mux_small: f64,
    /// 10 G DWDM SFP+ transceiver, 40 km (\[7\]).
    pub dwdm_transceiver: f64,
    /// 80-channel EDFA line amplifier (\[12\]).
    pub amplifier: f64,
    /// Fixed fiber attenuator (\[10\]) — "simple passive devices that do
    /// not meaningfully affect the cost of the network" (§3.3).
    pub attenuator: f64,
    /// One installed cable run with its pair of standard optics.
    pub cable: f64,
}

impl Default for PriceCatalog {
    fn default() -> Self {
        PriceCatalog {
            ull_switch: 11_000.0,
            core_switch: 800_000.0,
            dwdm_mux_80ch: 2_000.0,
            mux_small: 600.0,
            dwdm_transceiver: 300.0,
            amplifier: 3_000.0,
            attenuator: 25.0,
            cable: 50.0,
        }
    }
}

impl PriceCatalog {
    /// The default 2014-era catalog.
    pub fn era_2014() -> Self {
        Self::default()
    }

    /// A catalog with WDM parts scaled by `factor` — models Figure 1's
    /// cost decline ("we expect the cost of our solution to diminish over
    /// time as WDM shipping volumes rise").
    pub fn with_wdm_scale(self, factor: f64) -> Self {
        assert!(factor > 0.0);
        PriceCatalog {
            dwdm_mux_80ch: self.dwdm_mux_80ch * factor,
            mux_small: self.mux_small * factor,
            dwdm_transceiver: self.dwdm_transceiver * factor,
            amplifier: self.amplifier * factor,
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_switch_dwarfs_everything() {
        // §4.2: core switches "are generally very expensive, with a
        // significant portion of the cost being the large chassis".
        let c = PriceCatalog::default();
        assert!(c.core_switch > 20.0 * c.ull_switch);
    }

    #[test]
    fn optical_parts_are_commodity_priced() {
        let c = PriceCatalog::default();
        assert!(c.dwdm_transceiver < 1_000.0);
        assert!(c.dwdm_mux_80ch < c.ull_switch);
        assert!(c.attenuator < 100.0);
    }

    #[test]
    fn wdm_scaling_touches_only_wdm() {
        let base = PriceCatalog::default();
        let half = base.with_wdm_scale(0.5);
        assert_eq!(half.ull_switch, base.ull_switch);
        assert_eq!(half.core_switch, base.core_switch);
        assert_eq!(half.cable, base.cable);
        assert_eq!(half.dwdm_transceiver, base.dwdm_transceiver / 2.0);
        assert_eq!(half.amplifier, base.amplifier / 2.0);
    }
}
