//! Power consumption of the §4 designs.
//!
//! The paper's footnote 1 notes that ToR switches already use optical
//! transceivers "due to their lower power consumption and higher signal
//! quality"; operators weigh watts alongside dollars. This module prices
//! each [`crate::bom::BillOfMaterials`] in watts using
//! era-typical draws, so the configurator's designs can be compared on
//! operating cost too.

use crate::bom::{BillOfMaterials, Design};

/// Typical per-device power draw, watts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerCatalog {
    /// 64-port cut-through switch (Arista 7150S class: ~2 W/port).
    pub ull_switch_w: f64,
    /// Fully loaded high-density core chassis.
    pub core_switch_w: f64,
    /// DWDM SFP+ transceiver.
    pub transceiver_w: f64,
    /// EDFA line amplifier.
    pub amplifier_w: f64,
    /// Passive devices (mux/demux, attenuators) draw nothing; athermal
    /// AWGs need no temperature control — part of why Quartz's optical
    /// layer is cheap to run.
    pub passive_w: f64,
}

impl Default for PowerCatalog {
    fn default() -> Self {
        PowerCatalog {
            ull_switch_w: 130.0,
            core_switch_w: 8_000.0,
            transceiver_w: 1.5,
            amplifier_w: 20.0,
            passive_w: 0.0,
        }
    }
}

impl PowerCatalog {
    /// Total draw of a bill of materials, watts.
    pub fn watts(&self, bom: &BillOfMaterials) -> f64 {
        bom.ull_switches as f64 * self.ull_switch_w
            + bom.core_switches as f64 * self.core_switch_w
            + bom.transceivers as f64 * self.transceiver_w
            + bom.amplifiers as f64 * self.amplifier_w
            + (bom.dwdm_mux_80ch + bom.mux_small + bom.attenuators) as f64 * self.passive_w
    }

    /// Network power per server, watts.
    pub fn watts_per_server(&self, design: Design, servers: usize) -> f64 {
        self.watts(&design.bom(servers)) / servers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_optics_cost_no_power() {
        let p = PowerCatalog::default();
        let only_optics = BillOfMaterials {
            dwdm_mux_80ch: 66,
            mux_small: 10,
            attenuators: 1000,
            ..Default::default()
        };
        assert_eq!(p.watts(&only_optics), 0.0);
    }

    #[test]
    fn quartz_core_swap_saves_power() {
        // Replacing an 8 kW chassis with a ring of 130 W switches plus
        // milliwatt-class optics cuts core power even before cooling.
        let p = PowerCatalog::default();
        let tree = p.watts_per_server(Design::ThreeTierTree, 100_000);
        let quartz = p.watts_per_server(Design::QuartzInCore, 100_000);
        assert!(
            quartz < tree * 1.05,
            "quartz core {quartz:.2} W vs tree {tree:.2} W per server"
        );
    }

    #[test]
    fn single_ring_power_is_switch_dominated() {
        let p = PowerCatalog::default();
        let bom = Design::SingleQuartzRing.bom(500);
        let total = p.watts(&bom);
        let switches = bom.ull_switches as f64 * p.ull_switch_w;
        assert!(switches / total > 0.7, "optics must stay a minor term");
    }

    #[test]
    fn per_server_power_is_single_digit_watts() {
        // Sanity scale: network gear is a few watts per server in
        // commodity designs.
        let p = PowerCatalog::default();
        for d in [
            Design::TwoTierTree,
            Design::ThreeTierTree,
            Design::QuartzInEdge,
        ] {
            let w = p.watts_per_server(d, 10_000);
            assert!((1.0..30.0).contains(&w), "{d:?}: {w:.1} W/server");
        }
    }
}
