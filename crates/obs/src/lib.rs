//! `quartz-obs` — deterministic observability for the Quartz stack.
//!
//! Tracing, metrics, and profiling keyed to **simulated time, never wall
//! clock**. The subsystem is std-only and dependency-free (it sits below
//! every other workspace crate), and it is built around one invariant:
//!
//! > Observation must not perturb the experiment. With the default
//! > [`NullRecorder`] the simulator's RNG draws, event ordering, and
//! > printed output are bit-identical to a build without the subsystem;
//! > with any real recorder the captured trace is bit-identical at every
//! > `--jobs` worker count.
//!
//! The pieces:
//!
//! - [`Event`] — typed spans for the packet lifecycle (generation →
//!   enqueue → cut-through decision → transmit → deliver/drop), VLB
//!   detour choices, and fault/reroute transitions. Every event carries
//!   a simulated-time `t_ns`; none carries a wall-clock reading.
//! - [`Recorder`] — the sink trait. [`NullRecorder`] is the inlined
//!   no-op default; [`MemoryRecorder`] buffers events for in-process
//!   inspection; [`NdjsonRecorder`] streams one JSON object per line to
//!   any [`std::io::Write`].
//! - [`MetricsRegistry`] — BTreeMap-ordered counters, gauges, and
//!   sim-time-bucketed histograms. BTreeMap (not HashMap) so every
//!   rendering iterates in a deterministic order, and [`MetricsRegistry::merge`]
//!   folds per-unit registries in unit-index order so parallel runs
//!   aggregate identically at any worker count.
//! - [`Phases`] — a wall-clock-free *accumulator* for profiling: the
//!   bench harness (the one sanctioned wall-clock site) measures phase
//!   durations and deposits them here for folding into `BENCH_*.json`.
//! - [`timeline`] — renders a recorded event stream as a human-readable
//!   text timeline.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod timeline;

pub use event::{DropReason, Event};
pub use metrics::{BucketStats, MetricsRegistry, TimeHistogram};
pub use profile::Phases;
pub use recorder::{MemoryRecorder, NdjsonRecorder, NullRecorder, Recorder};
