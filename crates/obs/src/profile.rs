//! Named-phase profiling accumulator.
//!
//! This crate never reads a clock (that would trip the workspace
//! wall-clock lint, and rightly so). Instead, the one sanctioned
//! wall-clock site — `quartz-bench`'s `timing` module — measures phase
//! durations and deposits them here; [`Phases`] just accumulates and
//! renders. Phase order is first-appearance order, which is
//! deterministic because phases are entered from straight-line harness
//! code, not from worker threads.

use std::fmt::Write as _;

/// One named phase's accumulated wall time.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// Phase name, e.g. `"fig06.dynamic"`.
    pub name: String,
    /// Total nanoseconds attributed to this phase.
    pub total_ns: f64,
    /// Number of times the phase was entered.
    pub calls: u64,
}

/// An append-only set of named phases.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Phases {
    entries: Vec<Phase>,
}

impl Phases {
    /// An empty accumulator (usable in `static` initializers).
    pub const fn new() -> Phases {
        Phases {
            entries: Vec::new(),
        }
    }

    /// Adds `ns` nanoseconds to phase `name`, creating it on first use.
    pub fn add(&mut self, name: &str, ns: f64) {
        if let Some(p) = self.entries.iter_mut().find(|p| p.name == name) {
            p.total_ns += ns;
            p.calls += 1;
        } else {
            self.entries.push(Phase {
                name: name.to_string(),
                total_ns: ns,
                calls: 1,
            });
        }
    }

    /// The phases, in first-appearance order.
    pub fn entries(&self) -> &[Phase] {
        &self.entries
    }

    /// Whether no phase has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drains the accumulator, returning the recorded phases.
    pub fn take(&mut self) -> Vec<Phase> {
        std::mem::take(&mut self.entries)
    }

    /// Renders a compact text breakdown (one line per phase).
    pub fn render_text(&self) -> String {
        let total: f64 = self.entries.iter().map(|p| p.total_ns).sum();
        let mut out = String::new();
        for p in &self.entries {
            let share = if total > 0.0 {
                100.0 * p.total_ns / total
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<24} {:>12.1} us  {:>5.1}%  ({} call{})",
                p.name,
                p.total_ns / 1_000.0,
                share,
                p.calls,
                if p.calls == 1 { "" } else { "s" }
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_first_appearance_order() {
        let mut p = Phases::new();
        assert!(p.is_empty());
        p.add("b", 10.0);
        p.add("a", 5.0);
        p.add("b", 2.5);
        let e = p.entries();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].name, "b");
        assert_eq!(e[0].total_ns, 12.5);
        assert_eq!(e[0].calls, 2);
        assert_eq!(e[1].name, "a");
        assert_eq!(e[1].calls, 1);
        let text = p.render_text();
        assert!(text.contains("2 calls"));
        let drained = p.take();
        assert_eq!(drained.len(), 2);
        assert!(p.is_empty());
    }
}
