//! Text rendering of a recorded event stream.
//!
//! Turns a `&[Event]` (as returned by `MemoryRecorder::finish`) into a
//! fixed-width timeline: one line per event, simulated time in
//! microseconds on the left, a short tag, and a human-readable detail
//! column. Used by the CLI `trace` subcommand.

use std::fmt::Write as _;

use crate::event::Event;

/// Renders up to `max_lines` events as a text timeline. When the
/// stream is longer, the head is shown and a trailing line reports how
/// many events were elided. `max_lines == 0` means no limit.
pub fn render(events: &[Event], max_lines: usize) -> String {
    let shown = if max_lines == 0 {
        events.len()
    } else {
        events.len().min(max_lines)
    };
    let mut out = String::with_capacity(shown * 64 + 64);
    let _ = writeln!(out, "{:>12}  {:<8}  detail", "t (us)", "event");
    for ev in &events[..shown] {
        let _ = writeln!(
            out,
            "{:>12.3}  {:<8}  {}",
            ev.t_ns() as f64 / 1_000.0,
            ev.tag(),
            describe(ev)
        );
    }
    if shown < events.len() {
        let _ = writeln!(out, "… {} more event(s)", events.len() - shown);
    }
    out
}

/// One-line human-readable description of an event's payload.
fn describe(ev: &Event) -> String {
    match *ev {
        Event::Gen {
            flow,
            size_bytes,
            response,
            ..
        } => format!(
            "flow {flow} injects {size_bytes} B{}",
            if response { " (response)" } else { "" }
        ),
        Event::Forward {
            node,
            flow,
            cut_through,
            latency_ns,
            ..
        } => format!(
            "node {node} {} flow {flow} (+{latency_ns} ns)",
            if cut_through {
                "cuts through"
            } else {
                "stores-and-forwards"
            }
        ),
        Event::Enqueue {
            node,
            link,
            to_b,
            flow,
            queue_bytes,
            ..
        } => format!(
            "node {node} queues flow {flow} on link {link}{} ({queue_bytes} B backlog)",
            dir(to_b)
        ),
        Event::Transmit {
            link,
            to_b,
            flow,
            serialize_ns,
            ..
        } => format!(
            "link {link}{} serializes flow {flow} for {serialize_ns} ns",
            dir(to_b)
        ),
        Event::Deliver {
            node,
            flow,
            latency_ns,
            hops,
            ..
        } => format!("host {node} receives flow {flow}: {latency_ns} ns over {hops} hop(s)"),
        Event::Drop {
            node, flow, reason, ..
        } => format!("node {node} drops flow {flow}: {}", reason.as_str()),
        Event::Vlb {
            node, flow, via, ..
        } => format!("node {node} detours flow {flow} via switch {via}"),
        Event::Fault { kind, element, .. } => format!("{kind} element {element}"),
        Event::Reroute { resolved, .. } => {
            format!("routing reconverged ({resolved} fault(s) absorbed)")
        }
        Event::RwaResolve {
            trigger,
            fiber,
            outcome,
            moved,
            restored,
            torn_down,
            unroutable,
            channels,
            fresh_channels,
            ..
        } => format!(
            "rwa {outcome} on fiber {fiber} {trigger}: {moved} moved, {restored} relit, \
             {torn_down} torn down, {unroutable} dark ({channels} ch vs {fresh_channels} fresh)"
        ),
        Event::FlowStart {
            flow,
            src,
            dst,
            bytes,
            ..
        } => format!("flow {flow} opens {src} → {dst} ({bytes} B)"),
        Event::FlowComplete {
            flow,
            fct_ns,
            bytes,
            ..
        } => format!("flow {flow} completes {bytes} B in {fct_ns} ns"),
        Event::CollectiveStep {
            algo,
            step,
            of,
            elapsed_ns,
            ..
        } => format!("{algo} all-reduce step {step}/{of} done in {elapsed_ns} ns"),
        Event::Retune {
            a,
            b,
            from_ch,
            to_ch,
            dark_ns,
            ..
        } => format!("pair ({a},{b}) retunes ch {from_ch} → {to_ch}, dark {dark_ns} ns"),
    }
}

fn dir(to_b: bool) -> &'static str {
    if to_b {
        "→"
    } else {
        "←"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropReason;

    fn sample() -> Vec<Event> {
        vec![
            Event::Gen {
                t_ns: 0,
                flow: 1,
                size_bytes: 1500,
                response: false,
            },
            Event::Vlb {
                t_ns: 10,
                node: 2,
                flow: 1,
                via: 9,
            },
            Event::Drop {
                t_ns: 2_500,
                node: 4,
                flow: 1,
                reason: DropReason::QueueFull,
            },
        ]
    }

    #[test]
    fn timeline_shows_every_event_without_limit() {
        let text = render(&sample(), 0);
        assert_eq!(text.lines().count(), 4); // header + 3 events
        assert!(text.contains("queue_full"));
        assert!(text.contains("via switch 9"));
        assert!(text.contains("2.500"));
    }

    #[test]
    fn timeline_elides_beyond_max_lines() {
        let text = render(&sample(), 2);
        assert!(text.contains("… 1 more event(s)"));
    }
}
