//! Event sinks: the [`Recorder`] trait and its three backends.
//!
//! The simulator holds an `Option<Box<dyn Recorder>>` that defaults to
//! `None`; the disabled path is a single branch per emission site, so a
//! build that never attaches a recorder pays (measurably) nothing. The
//! trait requires `Send` so a recorder can ride inside a work unit on
//! the thread pool.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::event::Event;

/// A sink for [`Event`]s.
///
/// Implementations must be order-preserving and side-effect-free with
/// respect to the simulation: a recorder may never feed information
/// back into the run that produced the events.
pub trait Recorder: Send {
    /// Accepts one event. Called in simulation order.
    fn record(&mut self, ev: &Event);

    /// Flushes the sink and returns any buffered events.
    ///
    /// Streaming backends flush and return an empty vec; the in-memory
    /// backend hands its buffer back for timeline rendering.
    fn finish(self: Box<Self>) -> Vec<Event> {
        Vec::new()
    }
}

/// The default no-op sink. `record` is inlined away, so the cost of an
/// *attached-but-null* recorder is one virtual call per event and the
/// cost of no recorder at all is one `Option` branch.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn record(&mut self, _ev: &Event) {}
}

/// Buffers every event in memory, in arrival order.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Vec<Event>,
}

impl MemoryRecorder {
    /// An empty buffer.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    /// The events recorded so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Recorder for MemoryRecorder {
    fn record(&mut self, ev: &Event) {
        self.events.push(ev.clone());
    }

    fn finish(self: Box<Self>) -> Vec<Event> {
        self.events
    }
}

/// Streams events as newline-delimited JSON to any writer.
///
/// The encoding is byte-stable (fixed key order, integer/bool values),
/// so two runs that record the same events produce byte-identical
/// output — the property the trace-determinism tests assert across
/// `--jobs` counts.
///
/// I/O errors are latched rather than panicking mid-simulation; check
/// [`NdjsonRecorder::io_error`] (or the flush in `finish`) afterwards.
#[derive(Debug)]
pub struct NdjsonRecorder<W: Write + Send> {
    out: W,
    written: u64,
    io_error: Option<io::ErrorKind>,
}

impl<W: Write + Send> NdjsonRecorder<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> NdjsonRecorder<W> {
        NdjsonRecorder {
            out,
            written: 0,
            io_error: None,
        }
    }

    /// Number of event lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first I/O error encountered, if any.
    pub fn io_error(&self) -> Option<io::ErrorKind> {
        self.io_error
    }

    /// Unwraps the inner writer (without flushing).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl NdjsonRecorder<BufWriter<File>> {
    /// Opens (truncates) `path` for buffered ndjson output.
    pub fn create(path: &Path) -> io::Result<NdjsonRecorder<BufWriter<File>>> {
        Ok(NdjsonRecorder::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> Recorder for NdjsonRecorder<W> {
    fn record(&mut self, ev: &Event) {
        if self.io_error.is_some() {
            return;
        }
        let line = ev.ndjson_line();
        match self.out.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(e) => self.io_error = Some(e.kind()),
        }
    }

    fn finish(mut self: Box<Self>) -> Vec<Event> {
        let _ = self.out.flush();
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropReason;

    fn sample() -> [Event; 2] {
        [
            Event::Gen {
                t_ns: 1,
                flow: 2,
                size_bytes: 64,
                response: true,
            },
            Event::Drop {
                t_ns: 5,
                node: 0,
                flow: 2,
                reason: DropReason::NoRoute,
            },
        ]
    }

    #[test]
    fn memory_recorder_round_trips() {
        let mut rec = Box::new(MemoryRecorder::new());
        for ev in &sample() {
            rec.record(ev);
        }
        assert_eq!(rec.len(), 2);
        assert!(!rec.is_empty());
        assert_eq!(rec.events()[1].tag(), "drop");
        let events = (rec as Box<dyn Recorder>).finish();
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn ndjson_recorder_streams_lines() {
        let mut rec = NdjsonRecorder::new(Vec::new());
        for ev in &sample() {
            rec.record(ev);
        }
        assert_eq!(rec.written(), 2);
        assert_eq!(rec.io_error(), None);
        let bytes = rec.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text, crate::event::to_ndjson(&sample()));
    }

    #[test]
    fn null_recorder_buffers_nothing() {
        let mut rec = NullRecorder;
        for ev in &sample() {
            rec.record(ev);
        }
        assert!((Box::new(rec) as Box<dyn Recorder>).finish().is_empty());
    }
}
