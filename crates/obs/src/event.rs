//! Typed observability events keyed to simulated time.
//!
//! Every variant carries `t_ns`, the simulated-time nanosecond at which
//! the observation holds. Node, link, and flow identities are plain
//! integers so this crate stays dependency-free; the emitting layer
//! (`quartz-netsim`) owns the typed ids and unwraps them at the
//! emission site.

use std::fmt::Write as _;

/// Why the simulator discarded a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The packet arrived at a failed switch.
    DeadSwitch,
    /// The chosen output link is administratively down.
    DeadLink,
    /// The forwarding table has no entry toward the destination.
    NoRoute,
    /// The output queue exceeded its byte cap.
    QueueFull,
}

impl DropReason {
    /// Stable lower-snake name used in the ndjson encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::DeadSwitch => "dead_switch",
            DropReason::DeadLink => "dead_link",
            DropReason::NoRoute => "no_route",
            DropReason::QueueFull => "queue_full",
        }
    }
}

/// One observation from the simulated network.
///
/// The packet lifecycle reads `Gen` → (`Vlb`)? → per hop: `Forward`
/// (the cut-through decision) → `Enqueue` → `Transmit` → finally
/// `Deliver` or `Drop`. `Fault` and `Reroute` mark control-plane
/// transitions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A flow generated (injected) one packet at its source host.
    Gen {
        /// Simulated time of injection, ns.
        t_ns: u64,
        /// Flow index.
        flow: u32,
        /// Packet size in bytes.
        size_bytes: u32,
        /// Whether this is a response packet of a request/response flow.
        response: bool,
    },
    /// A switch (or host NIC) decided how to forward a frame.
    Forward {
        /// Simulated arrival time of the frame head, ns.
        t_ns: u64,
        /// Node making the decision.
        node: u32,
        /// Flow index.
        flow: u32,
        /// `true` for cut-through, `false` for store-and-forward.
        cut_through: bool,
        /// The node's forwarding latency contribution, ns.
        latency_ns: u64,
    },
    /// A frame joined an output-link queue.
    Enqueue {
        /// Simulated time the frame became eligible to transmit, ns.
        t_ns: u64,
        /// Node that owns the queue.
        node: u32,
        /// Undirected link index.
        link: u32,
        /// Direction: `true` = a→b, `false` = b→a.
        to_b: bool,
        /// Flow index.
        flow: u32,
        /// Queue backlog in bytes after this frame joined.
        queue_bytes: u64,
    },
    /// A frame began serializing onto the wire.
    Transmit {
        /// Simulated transmission start, ns.
        t_ns: u64,
        /// Undirected link index.
        link: u32,
        /// Direction: `true` = a→b, `false` = b→a.
        to_b: bool,
        /// Flow index.
        flow: u32,
        /// Serialization time on this link, ns.
        serialize_ns: u64,
    },
    /// A packet reached its destination host.
    Deliver {
        /// Simulated delivery time (tail received), ns.
        t_ns: u64,
        /// Destination node.
        node: u32,
        /// Flow index.
        flow: u32,
        /// End-to-end latency, ns.
        latency_ns: u64,
        /// Switch hops traversed.
        hops: u32,
    },
    /// A packet was discarded.
    Drop {
        /// Simulated time of the discard, ns.
        t_ns: u64,
        /// Node at which the discard happened.
        node: u32,
        /// Flow index.
        flow: u32,
        /// Why.
        reason: DropReason,
    },
    /// Valiant load balancing chose a detour switch for a packet.
    Vlb {
        /// Simulated time of the choice, ns.
        t_ns: u64,
        /// Node making the choice (the ingress switch).
        node: u32,
        /// Flow index.
        flow: u32,
        /// The intermediate switch the packet will bounce through.
        via: u32,
    },
    /// A fault-plan transition fired (link/switch down or up).
    Fault {
        /// Simulated time of the transition, ns.
        t_ns: u64,
        /// `"link_down"`, `"link_up"`, `"switch_down"`, or `"switch_up"`.
        kind: &'static str,
        /// Failed/restored element id (link or node index).
        element: u32,
    },
    /// Routing reconverged after the configured holddown.
    Reroute {
        /// Simulated time routing became consistent again, ns.
        t_ns: u64,
        /// Number of fault transitions folded into the new tables.
        resolved: u32,
    },
    /// The online RWA control plane re-solved the wavelength plan.
    RwaResolve {
        /// Simulated time the new plan was adopted, ns.
        t_ns: u64,
        /// `"cut"` or `"repair"`.
        trigger: &'static str,
        /// The ring fiber the triggering delta touched.
        fiber: u32,
        /// `"warm_start"`, `"budget_fallback"`, or `"fresh_solve"`.
        outcome: &'static str,
        /// Live pairs whose tuning changed.
        moved: u32,
        /// Previously dark pairs relit.
        restored: u32,
        /// Pairs that lost their lightpath to this delta.
        torn_down: u32,
        /// Pairs still dark after the re-solve.
        unroutable: u32,
        /// Channels the adopted plan uses.
        channels: u32,
        /// Channels a from-scratch greedy solve would use.
        fresh_channels: u32,
    },
    /// A workload-managed flow opened (first byte handed to the
    /// transport or pacing layer).
    FlowStart {
        /// Simulated time the flow opened, ns.
        t_ns: u64,
        /// Flow index.
        flow: u32,
        /// Source host node.
        src: u32,
        /// Destination host node.
        dst: u32,
        /// Total flow size in bytes.
        bytes: u64,
    },
    /// A workload-managed flow delivered its last byte.
    FlowComplete {
        /// Simulated time of the final delivery, ns.
        t_ns: u64,
        /// Flow index.
        flow: u32,
        /// Flow completion time (open → last byte), ns.
        fct_ns: u64,
        /// Total flow size in bytes.
        bytes: u64,
    },
    /// A collective schedule finished one bulk-synchronous step.
    CollectiveStep {
        /// Simulated time the step's last transfer completed, ns.
        t_ns: u64,
        /// `"ring"` or `"tree"`.
        algo: &'static str,
        /// Zero-based step index.
        step: u32,
        /// Total steps in the schedule.
        of: u32,
        /// Wall (simulated) duration of this step, ns.
        elapsed_ns: u64,
    },
    /// A pair's transceivers began re-tuning to a new grid slot.
    Retune {
        /// Simulated time the retune started (lightpath goes dark), ns.
        t_ns: u64,
        /// Lower switch of the pair.
        a: u32,
        /// Higher switch of the pair.
        b: u32,
        /// Channel before.
        from_ch: u16,
        /// Channel after.
        to_ch: u16,
        /// How long the lightpath is dark, ns.
        dark_ns: u64,
    },
}

impl Event {
    /// The simulated time this event is keyed to, in nanoseconds.
    pub fn t_ns(&self) -> u64 {
        match *self {
            Event::Gen { t_ns, .. }
            | Event::Forward { t_ns, .. }
            | Event::Enqueue { t_ns, .. }
            | Event::Transmit { t_ns, .. }
            | Event::Deliver { t_ns, .. }
            | Event::Drop { t_ns, .. }
            | Event::Vlb { t_ns, .. }
            | Event::Fault { t_ns, .. }
            | Event::Reroute { t_ns, .. }
            | Event::RwaResolve { t_ns, .. }
            | Event::FlowStart { t_ns, .. }
            | Event::FlowComplete { t_ns, .. }
            | Event::CollectiveStep { t_ns, .. }
            | Event::Retune { t_ns, .. } => t_ns,
        }
    }

    /// Stable short tag used as the `"ev"` field of the ndjson encoding.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::Gen { .. } => "gen",
            Event::Forward { .. } => "forward",
            Event::Enqueue { .. } => "enqueue",
            Event::Transmit { .. } => "transmit",
            Event::Deliver { .. } => "deliver",
            Event::Drop { .. } => "drop",
            Event::Vlb { .. } => "vlb",
            Event::Fault { .. } => "fault",
            Event::Reroute { .. } => "reroute",
            Event::RwaResolve { .. } => "rwa_resolve",
            Event::FlowStart { .. } => "flow_start",
            Event::FlowComplete { .. } => "flow_complete",
            Event::CollectiveStep { .. } => "collective_step",
            Event::Retune { .. } => "retune",
        }
    }

    /// Appends the event's single-line JSON object (no trailing newline)
    /// to `out`. Key order is fixed, all values are integers, booleans,
    /// or the fixed tag strings, so the encoding is byte-stable.
    pub fn write_ndjson(&self, out: &mut String) {
        // Infallible: `fmt::Write` for `String` never errors.
        let _ = match *self {
            Event::Gen {
                t_ns,
                flow,
                size_bytes,
                response,
            } => write!(
                out,
                "{{\"ev\":\"gen\",\"t\":{t_ns},\"flow\":{flow},\"size\":{size_bytes},\"response\":{response}}}"
            ),
            Event::Forward {
                t_ns,
                node,
                flow,
                cut_through,
                latency_ns,
            } => write!(
                out,
                "{{\"ev\":\"forward\",\"t\":{t_ns},\"node\":{node},\"flow\":{flow},\"cut\":{cut_through},\"lat\":{latency_ns}}}"
            ),
            Event::Enqueue {
                t_ns,
                node,
                link,
                to_b,
                flow,
                queue_bytes,
            } => write!(
                out,
                "{{\"ev\":\"enqueue\",\"t\":{t_ns},\"node\":{node},\"link\":{link},\"to_b\":{to_b},\"flow\":{flow},\"queue\":{queue_bytes}}}"
            ),
            Event::Transmit {
                t_ns,
                link,
                to_b,
                flow,
                serialize_ns,
            } => write!(
                out,
                "{{\"ev\":\"transmit\",\"t\":{t_ns},\"link\":{link},\"to_b\":{to_b},\"flow\":{flow},\"ser\":{serialize_ns}}}"
            ),
            Event::Deliver {
                t_ns,
                node,
                flow,
                latency_ns,
                hops,
            } => write!(
                out,
                "{{\"ev\":\"deliver\",\"t\":{t_ns},\"node\":{node},\"flow\":{flow},\"lat\":{latency_ns},\"hops\":{hops}}}"
            ),
            Event::Drop {
                t_ns,
                node,
                flow,
                reason,
            } => write!(
                out,
                "{{\"ev\":\"drop\",\"t\":{t_ns},\"node\":{node},\"flow\":{flow},\"reason\":\"{}\"}}",
                reason.as_str()
            ),
            Event::Vlb {
                t_ns,
                node,
                flow,
                via,
            } => write!(
                out,
                "{{\"ev\":\"vlb\",\"t\":{t_ns},\"node\":{node},\"flow\":{flow},\"via\":{via}}}"
            ),
            Event::Fault {
                t_ns,
                kind,
                element,
            } => write!(
                out,
                "{{\"ev\":\"fault\",\"t\":{t_ns},\"kind\":\"{kind}\",\"element\":{element}}}"
            ),
            Event::Reroute { t_ns, resolved } => write!(
                out,
                "{{\"ev\":\"reroute\",\"t\":{t_ns},\"resolved\":{resolved}}}"
            ),
            Event::RwaResolve {
                t_ns,
                trigger,
                fiber,
                outcome,
                moved,
                restored,
                torn_down,
                unroutable,
                channels,
                fresh_channels,
            } => write!(
                out,
                "{{\"ev\":\"rwa_resolve\",\"t\":{t_ns},\"trigger\":\"{trigger}\",\"fiber\":{fiber},\"outcome\":\"{outcome}\",\"moved\":{moved},\"restored\":{restored},\"torn\":{torn_down},\"unroutable\":{unroutable},\"channels\":{channels},\"fresh\":{fresh_channels}}}"
            ),
            Event::FlowStart {
                t_ns,
                flow,
                src,
                dst,
                bytes,
            } => write!(
                out,
                "{{\"ev\":\"flow_start\",\"t\":{t_ns},\"flow\":{flow},\"src\":{src},\"dst\":{dst},\"bytes\":{bytes}}}"
            ),
            Event::FlowComplete {
                t_ns,
                flow,
                fct_ns,
                bytes,
            } => write!(
                out,
                "{{\"ev\":\"flow_complete\",\"t\":{t_ns},\"flow\":{flow},\"fct\":{fct_ns},\"bytes\":{bytes}}}"
            ),
            Event::CollectiveStep {
                t_ns,
                algo,
                step,
                of,
                elapsed_ns,
            } => write!(
                out,
                "{{\"ev\":\"collective_step\",\"t\":{t_ns},\"algo\":\"{algo}\",\"step\":{step},\"of\":{of},\"elapsed\":{elapsed_ns}}}"
            ),
            Event::Retune {
                t_ns,
                a,
                b,
                from_ch,
                to_ch,
                dark_ns,
            } => write!(
                out,
                "{{\"ev\":\"retune\",\"t\":{t_ns},\"a\":{a},\"b\":{b},\"from\":{from_ch},\"to\":{to_ch},\"dark\":{dark_ns}}}"
            ),
        };
    }

    /// The event as one ndjson line, newline included.
    pub fn ndjson_line(&self) -> String {
        let mut s = String::with_capacity(96);
        self.write_ndjson(&mut s);
        s.push('\n');
        s
    }
}

/// Renders a slice of events as ndjson, one line per event.
pub fn to_ndjson(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        ev.write_ndjson(&mut out);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndjson_encoding_is_stable() {
        let ev = Event::Forward {
            t_ns: 1_500,
            node: 3,
            flow: 7,
            cut_through: true,
            latency_ns: 380,
        };
        assert_eq!(
            ev.ndjson_line(),
            "{\"ev\":\"forward\",\"t\":1500,\"node\":3,\"flow\":7,\"cut\":true,\"lat\":380}\n"
        );
        assert_eq!(ev.t_ns(), 1_500);
        assert_eq!(ev.tag(), "forward");
    }

    #[test]
    fn drop_reasons_have_distinct_names() {
        let all = [
            DropReason::DeadSwitch,
            DropReason::DeadLink,
            DropReason::NoRoute,
            DropReason::QueueFull,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.as_str(), b.as_str());
            }
        }
    }

    #[test]
    fn rwa_event_encodings_are_stable() {
        let ev = Event::RwaResolve {
            t_ns: 520_000,
            trigger: "cut",
            fiber: 3,
            outcome: "warm_start",
            moved: 2,
            restored: 0,
            torn_down: 5,
            unroutable: 1,
            channels: 11,
            fresh_channels: 11,
        };
        assert_eq!(
            ev.ndjson_line(),
            "{\"ev\":\"rwa_resolve\",\"t\":520000,\"trigger\":\"cut\",\"fiber\":3,\"outcome\":\"warm_start\",\"moved\":2,\"restored\":0,\"torn\":5,\"unroutable\":1,\"channels\":11,\"fresh\":11}\n"
        );
        assert_eq!(ev.tag(), "rwa_resolve");
        let ev = Event::Retune {
            t_ns: 520_000,
            a: 1,
            b: 6,
            from_ch: 4,
            to_ch: 9,
            dark_ns: 52_500,
        };
        assert_eq!(
            ev.ndjson_line(),
            "{\"ev\":\"retune\",\"t\":520000,\"a\":1,\"b\":6,\"from\":4,\"to\":9,\"dark\":52500}\n"
        );
        assert_eq!(ev.t_ns(), 520_000);
        assert_eq!(ev.tag(), "retune");
    }

    #[test]
    fn workload_event_encodings_are_stable() {
        let ev = Event::FlowStart {
            t_ns: 1_000,
            flow: 42,
            src: 3,
            dst: 17,
            bytes: 1_048_576,
        };
        assert_eq!(
            ev.ndjson_line(),
            "{\"ev\":\"flow_start\",\"t\":1000,\"flow\":42,\"src\":3,\"dst\":17,\"bytes\":1048576}\n"
        );
        assert_eq!(ev.t_ns(), 1_000);
        assert_eq!(ev.tag(), "flow_start");
        let ev = Event::FlowComplete {
            t_ns: 9_500,
            flow: 42,
            fct_ns: 8_500,
            bytes: 1_048_576,
        };
        assert_eq!(
            ev.ndjson_line(),
            "{\"ev\":\"flow_complete\",\"t\":9500,\"flow\":42,\"fct\":8500,\"bytes\":1048576}\n"
        );
        assert_eq!(ev.tag(), "flow_complete");
        let ev = Event::CollectiveStep {
            t_ns: 77_000,
            algo: "ring",
            step: 3,
            of: 14,
            elapsed_ns: 11_000,
        };
        assert_eq!(
            ev.ndjson_line(),
            "{\"ev\":\"collective_step\",\"t\":77000,\"algo\":\"ring\",\"step\":3,\"of\":14,\"elapsed\":11000}\n"
        );
        assert_eq!(ev.t_ns(), 77_000);
        assert_eq!(ev.tag(), "collective_step");
    }

    #[test]
    fn to_ndjson_joins_lines() {
        let evs = [
            Event::Gen {
                t_ns: 0,
                flow: 0,
                size_bytes: 1500,
                response: false,
            },
            Event::Reroute {
                t_ns: 9,
                resolved: 1,
            },
        ];
        let s = to_ndjson(&evs);
        assert_eq!(s.lines().count(), 2);
        assert!(s.ends_with('\n'));
    }
}
