//! A deterministic metrics registry: counters, gauges, and sim-time
//! bucketed histograms.
//!
//! Everything is stored in `BTreeMap`s so iteration (and therefore the
//! rendered output) is ordered by name and bucket, never by hash state.
//! Parallel runs give each work unit its own registry and fold them
//! with [`MetricsRegistry::merge`] in unit-index order, which keeps the
//! aggregate bit-identical at any worker count.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default histogram bucket width: 100 µs of simulated time.
pub const DEFAULT_BUCKET_NS: u64 = 100_000;

/// Aggregate statistics of the samples that landed in one time bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of sample values.
    pub sum: u64,
    /// Smallest sample value.
    pub min: u64,
    /// Largest sample value.
    pub max: u64,
}

impl BucketStats {
    fn one(value: u64) -> BucketStats {
        BucketStats {
            count: 1,
            sum: value,
            min: value,
            max: value,
        }
    }

    fn absorb(&mut self, other: BucketStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram over simulated time: samples are bucketed by the
/// sim-time nanosecond at which they were observed, and each bucket
/// keeps count/sum/min/max of the observed values.
///
/// This is the shape behind "queue depth over time" and "link
/// utilization over time": the bucket key is *when*, the stats are
/// *what was seen then*.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimeHistogram {
    bucket_ns: u64,
    buckets: BTreeMap<u64, BucketStats>,
}

impl TimeHistogram {
    /// An empty histogram with the given bucket width (ns of sim time).
    pub fn new(bucket_ns: u64) -> TimeHistogram {
        TimeHistogram {
            bucket_ns: bucket_ns.max(1),
            buckets: BTreeMap::new(),
        }
    }

    /// Bucket width in nanoseconds of simulated time.
    pub fn bucket_ns(&self) -> u64 {
        self.bucket_ns
    }

    /// Records `value` observed at sim time `t_ns`.
    pub fn observe(&mut self, t_ns: u64, value: u64) {
        let key = t_ns / self.bucket_ns * self.bucket_ns;
        self.buckets
            .entry(key)
            .and_modify(|b| b.absorb(BucketStats::one(value)))
            .or_insert_with(|| BucketStats::one(value));
    }

    /// The buckets, ordered by start time.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, &BucketStats)> + '_ {
        self.buckets.iter().map(|(&k, v)| (k, v))
    }

    /// Total sample count across all buckets.
    pub fn count(&self) -> u64 {
        self.buckets.values().map(|b| b.count).sum()
    }

    /// Folds `other` into `self`. If the widths differ, `other`'s
    /// buckets are re-bucketed by their start time into `self`'s width.
    pub fn merge(&mut self, other: &TimeHistogram) {
        for (&start, stats) in &other.buckets {
            let key = start / self.bucket_ns * self.bucket_ns;
            self.buckets
                .entry(key)
                .and_modify(|b| b.absorb(*stats))
                .or_insert(*stats);
        }
    }
}

/// Named counters, gauges, and sim-time histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, TimeHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `by` to the counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        match self.counters.get_mut(name) {
            Some(v) => *v += by,
            None => {
                self.counters.insert(name.to_string(), by);
            }
        }
    }

    /// Reads a counter (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Creates the histogram `name` with an explicit bucket width if it
    /// does not exist yet. Without this, the first `observe` uses
    /// [`DEFAULT_BUCKET_NS`].
    pub fn declare_histogram(&mut self, name: &str, bucket_ns: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| TimeHistogram::new(bucket_ns));
    }

    /// Records `value` at sim time `t_ns` into the histogram `name`.
    pub fn observe(&mut self, name: &str, t_ns: u64, value: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(t_ns, value),
            None => {
                let mut h = TimeHistogram::new(DEFAULT_BUCKET_NS);
                h.observe(t_ns, value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&TimeHistogram> {
        self.histograms.get(name)
    }

    /// Whether the registry holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Total number of named metrics.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Folds `other` into `self`: counters add, gauges take `other`'s
    /// value (last write wins), histograms merge bucket-wise.
    ///
    /// Merging per-unit registries **in unit-index order** is the
    /// determinism contract: addition over `u64` is associative and the
    /// fixed fold order pins the gauge last-writer, so the aggregate is
    /// independent of which worker ran which unit.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &v) in &other.counters {
            self.inc(name, v);
        }
        for (name, &v) in &other.gauges {
            self.set_gauge(name, v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Renders every metric as ndjson, one JSON object per line,
    /// ordered counters → gauges → histograms, each by name. The
    /// encoding is byte-stable.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"metric\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}"
            );
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"metric\":\"gauge\",\"name\":\"{name}\",\"value\":{}}}",
                fmt_f64(*v)
            );
        }
        for (name, h) in &self.histograms {
            let _ = write!(
                out,
                "{{\"metric\":\"histogram\",\"name\":\"{name}\",\"bucket_ns\":{},\"buckets\":[",
                h.bucket_ns()
            );
            for (i, (start, b)) in h.buckets().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"t\":{start},\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                    if i == 0 { "" } else { "," },
                    b.count,
                    b.sum,
                    b.min,
                    b.max
                );
            }
            out.push_str("]}\n");
        }
        out
    }
}

/// Formats a gauge value deterministically: Rust's shortest round-trip
/// float formatting, with non-finite values mapped to `null` (JSON has
/// no NaN/Inf literals).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut m = MetricsRegistry::new();
        assert!(m.is_empty());
        m.inc("a", 2);
        m.inc("a", 3);
        m.set_gauge("g", 0.5);
        m.set_gauge("g", 0.25);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), Some(0.25));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn histogram_buckets_by_sim_time() {
        let mut h = TimeHistogram::new(100);
        h.observe(0, 10);
        h.observe(99, 30);
        h.observe(100, 7);
        let buckets: Vec<_> = h.buckets().map(|(t, b)| (t, *b)).collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].0, 0);
        assert_eq!(buckets[0].1.count, 2);
        assert_eq!(buckets[0].1.sum, 40);
        assert_eq!(buckets[0].1.min, 10);
        assert_eq!(buckets[0].1.max, 30);
        assert_eq!(buckets[1].0, 100);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn merge_is_order_sensitive_only_for_gauges() {
        let mut a = MetricsRegistry::new();
        a.inc("n", 1);
        a.observe("h", 50, 5);
        a.set_gauge("g", 1.0);
        let mut b = MetricsRegistry::new();
        b.inc("n", 2);
        b.observe("h", 60, 7);
        b.set_gauge("g", 2.0);

        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.counter("n"), 3);
        assert_eq!(ab.gauge("g"), Some(2.0));
        assert_eq!(ab.histogram("h").unwrap().count(), 2);

        // Counters and histograms commute; the fixed unit-index fold
        // order is what pins the gauge winner.
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ba.counter("n"), ab.counter("n"));
        assert_eq!(
            ba.histogram("h").unwrap().count(),
            ab.histogram("h").unwrap().count()
        );
        assert_eq!(ba.gauge("g"), Some(1.0));
    }

    #[test]
    fn ndjson_is_name_ordered_and_stable() {
        let mut m = MetricsRegistry::new();
        m.inc("z.count", 1);
        m.inc("a.count", 2);
        m.set_gauge("mid", 0.5);
        m.declare_histogram("h", 100);
        m.observe("h", 150, 3);
        let s = m.to_ndjson();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(
            lines,
            vec![
                "{\"metric\":\"counter\",\"name\":\"a.count\",\"value\":2}",
                "{\"metric\":\"counter\",\"name\":\"z.count\",\"value\":1}",
                "{\"metric\":\"gauge\",\"name\":\"mid\",\"value\":0.5}",
                "{\"metric\":\"histogram\",\"name\":\"h\",\"bucket_ns\":100,\"buckets\":[{\"t\":100,\"count\":1,\"sum\":3,\"min\":3,\"max\":3}]}",
            ]
        );
    }

    #[test]
    fn width_mismatch_rebuckets_by_start() {
        let mut wide = TimeHistogram::new(1_000);
        let mut narrow = TimeHistogram::new(10);
        narrow.observe(1_005, 1);
        narrow.observe(15, 2);
        wide.merge(&narrow);
        let buckets: Vec<_> = wide.buckets().map(|(t, b)| (t, b.count)).collect();
        assert_eq!(buckets, vec![(0, 1), (1_000, 1)]);
    }
}
