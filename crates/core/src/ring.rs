//! The [`QuartzRing`] design type: §3's parameters and §3.2's scalability
//! arithmetic.
//!
//! A Quartz switch has `n` server-facing ports and `k` optical
//! transceivers toward the ring; `n : k` is the server-to-switch ratio and
//! `n + k` the switch port density. A full mesh of `m` switches needs a
//! dedicated channel — hence a dedicated transceiver — per peer, so
//! `k ≥ m − 1`.
//!
//! The paper's flagship configuration: 64-port low-latency cut-through
//! switches split 32/32, 33 switches — "this configuration mimics a 1056
//! (32 × 33) port switch". Dual-ToR scaling (two switches per rack, every
//! server dual-homed) reaches "2080 (32 × 65) ports at the cost of an
//! additional switch per rack".

use crate::channel::{greedy, ChannelPlan, PlanMethod};
use quartz_optics::ring::{RingOpticalPlan, RingPlanError};
use quartz_optics::wavelength::Grid;
use std::fmt;

/// Errors from constructing a Quartz design.
#[derive(Clone, Debug, PartialEq)]
pub enum DesignError {
    /// Rings need at least two switches.
    TooSmall(usize),
    /// A full mesh of `m` switches needs `k ≥ m − 1` transceivers.
    NotEnoughTrunkPorts {
        /// Switches in the ring.
        switches: usize,
        /// Trunk ports offered per switch.
        trunk_ports: usize,
    },
    /// The wavelength plan exceeds what a fiber can carry (§3.1: 160
    /// channels at 10 Gb/s).
    FiberCapacityExceeded {
        /// Wavelengths the design needs.
        needed: usize,
        /// The fiber ceiling.
        capacity: usize,
    },
    /// The optical power budget cannot be satisfied.
    Optical(RingPlanError),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::TooSmall(m) => write!(f, "a Quartz ring needs ≥ 2 switches, got {m}"),
            DesignError::NotEnoughTrunkPorts {
                switches,
                trunk_ports,
            } => write!(
                f,
                "{switches}-switch mesh needs ≥ {} trunk ports, switch has {trunk_ports}",
                switches - 1
            ),
            DesignError::FiberCapacityExceeded { needed, capacity } => write!(
                f,
                "design needs {needed} wavelengths; fiber carries {capacity}"
            ),
            DesignError::Optical(e) => write!(f, "optical plan failed: {e}"),
        }
    }
}

impl std::error::Error for DesignError {}

/// Fiber ceiling the paper assumes: "current technology can only multiplex
/// 160 channels in an optical fiber" (§3.1).
pub const FIBER_CHANNEL_CAPACITY: usize = 160;

/// Channels a commodity WDM mux/demux supports: "commodity Wavelength
/// Division Multiplexers can only support about 80 channels" (§3.1).
pub const WDM_MUX_CHANNELS: usize = 80;

/// A Quartz ring design: `m` switches in a logical full mesh on a physical
/// WDM ring.
///
/// # Examples
///
/// ```
/// use quartz_core::QuartzRing;
///
/// // The paper's flagship: 33 × 64-port switches = a 1056-port element.
/// let ring = QuartzRing::paper_config(33).unwrap();
/// assert_eq!(ring.server_ports(), 1056);
/// assert_eq!(ring.max_switch_hops(), 2);
/// assert_eq!(ring.physical_rings(), 2); // 137+ channels ⇒ two 80ch WDMs
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QuartzRing {
    switches: usize,
    server_ports_per_switch: usize,
    trunk_ports_per_switch: usize,
    link_rate_gbps: f64,
}

impl QuartzRing {
    /// Creates a design and checks its structural feasibility (mesh port
    /// requirement and fiber channel capacity).
    pub fn new(
        switches: usize,
        server_ports_per_switch: usize,
        trunk_ports_per_switch: usize,
        link_rate_gbps: f64,
    ) -> Result<Self, DesignError> {
        if switches < 2 {
            return Err(DesignError::TooSmall(switches));
        }
        if trunk_ports_per_switch < switches - 1 {
            return Err(DesignError::NotEnoughTrunkPorts {
                switches,
                trunk_ports: trunk_ports_per_switch,
            });
        }
        let ring = QuartzRing {
            switches,
            server_ports_per_switch,
            trunk_ports_per_switch,
            link_rate_gbps,
        };
        let needed = ring.wavelengths_required();
        if needed > FIBER_CHANNEL_CAPACITY {
            return Err(DesignError::FiberCapacityExceeded {
                needed,
                capacity: FIBER_CHANNEL_CAPACITY,
            });
        }
        Ok(ring)
    }

    /// The paper's flagship configuration: `m` 64-port low-latency
    /// switches split 32 server / 32 trunk, 10 Gb/s ports.
    pub fn paper_config(switches: usize) -> Result<Self, DesignError> {
        QuartzRing::new(switches, 32, 32, 10.0)
    }

    /// Number of switches (racks) in the ring.
    pub fn switches(&self) -> usize {
        self.switches
    }

    /// Server-facing ports per switch (`n`).
    pub fn server_ports_per_switch(&self) -> usize {
        self.server_ports_per_switch
    }

    /// Ring-facing transceivers per switch (`k`).
    pub fn trunk_ports_per_switch(&self) -> usize {
        self.trunk_ports_per_switch
    }

    /// Port rate in Gb/s.
    pub fn link_rate_gbps(&self) -> f64 {
        self.link_rate_gbps
    }

    /// Total server ports the ring offers — the port count of the big
    /// switch the mesh "mimics" (§3.2: 32 × 33 = 1056).
    pub fn server_ports(&self) -> usize {
        self.switches * self.server_ports_per_switch
    }

    /// Rack-to-rack bandwidth oversubscription under direct (ECMP)
    /// routing: `n` servers share the single channel toward each peer
    /// rack, so §3.4's example gives 32:1.
    pub fn oversubscription(&self) -> f64 {
        self.server_ports_per_switch as f64
    }

    /// Wavelengths the design needs (greedy planner, best start offset).
    pub fn wavelengths_required(&self) -> usize {
        greedy::wavelengths_required(self.switches)
    }

    /// WDM mux/demux devices per switch: `⌈wavelengths / 80⌉`. A
    /// 33-switch ring needs 137 channels, hence two 80-channel devices —
    /// and two physical fiber rings (§3.5).
    pub fn muxes_per_switch(&self) -> usize {
        self.wavelengths_required().div_ceil(WDM_MUX_CHANNELS)
    }

    /// Physical fiber rings the design uses (one per WDM device tier).
    pub fn physical_rings(&self) -> usize {
        self.muxes_per_switch()
    }

    /// Runs the greedy wavelength planner and returns the channel plan on
    /// the DWDM grid sized for this design.
    pub fn assign_channels(&self) -> ChannelPlan {
        let assignment = greedy::assign_best(self.switches);
        let grid = if assignment.channels_used() > WDM_MUX_CHANNELS {
            Grid::dwdm_50ghz_160ch()
        } else {
            Grid::dwdm_100ghz_80ch()
        };
        ChannelPlan {
            assignment,
            method: PlanMethod::Greedy,
            grid,
        }
    }

    /// Plans the optical layer (amplifier/attenuator placement) with the
    /// paper's §3.3 parts.
    pub fn optical_plan(&self) -> Result<RingOpticalPlan, DesignError> {
        RingOpticalPlan::paper_plan(self.switches).map_err(DesignError::Optical)
    }

    /// Latency of the longest server-to-server path inside the ring, in
    /// switch hops: always 2 — the defining property of the mesh.
    pub fn max_switch_hops(&self) -> usize {
        2
    }
}

/// A dual-homed scaled design (§3.2): `switches_per_rack` ToR switches per
/// rack, every server connected to all of them, and each rack directly
/// connected to every other rack through *some* switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaledDesign {
    /// Number of racks.
    pub racks: usize,
    /// ToR switches in each rack.
    pub switches_per_rack: usize,
    /// Server ports per rack (bounded by NIC count × servers; the paper
    /// uses 32).
    pub server_ports_per_rack: usize,
    /// Trunk ports per switch.
    pub trunk_ports_per_switch: usize,
}

impl ScaledDesign {
    /// The paper's 2080-port example: 65 racks × 2 switches, 32 server
    /// ports per rack, 64-port switches.
    pub fn paper_dual_tor() -> Self {
        ScaledDesign {
            racks: 65,
            switches_per_rack: 2,
            server_ports_per_rack: 32,
            trunk_ports_per_switch: 32,
        }
    }

    /// Total server ports: the paper's 32 × 65 = 2080.
    pub fn server_ports(&self) -> usize {
        self.racks * self.server_ports_per_rack
    }

    /// Whether each rack can reach every other rack directly: the rack's
    /// pooled trunk ports must cover `racks − 1` peers.
    pub fn is_full_mesh(&self) -> bool {
        self.switches_per_rack * self.trunk_ports_per_switch >= self.racks - 1
    }

    /// Longest server-to-server path in switch hops (2 when the rack-level
    /// mesh holds: ToR → peer ToR).
    pub fn max_switch_hops(&self) -> usize {
        if self.is_full_mesh() {
            2
        } else {
            3
        }
    }

    /// Total switches across all racks.
    pub fn total_switches(&self) -> usize {
        self.racks * self.switches_per_rack
    }

    /// Number of physical optical rings required. Wavelength restrictions
    /// limit a single ring to 35 switches (§3.1–3.2), and each ring of
    /// `m ≤ 35` switches needs `⌈channels/80⌉` fibers; the design
    /// partitions its switches into `⌈switches/35⌉` rings at minimum.
    pub fn min_optical_rings(&self) -> usize {
        self.total_switches().div_ceil(35)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_1056_port_design() {
        // §3.2: 64-port switches, 32 trunk, 33 switches → 1056 ports.
        let ring = QuartzRing::paper_config(33).unwrap();
        assert_eq!(ring.server_ports(), 1056);
        assert_eq!(ring.oversubscription(), 32.0);
        assert_eq!(ring.max_switch_hops(), 2);
    }

    #[test]
    fn ring_33_needs_two_wdm_devices() {
        // §3.5: "a Quartz network with 33 switches requires 137 channels,
        // we can use two 80-channel WDM muxes/demuxes".
        let ring = QuartzRing::paper_config(33).unwrap();
        let w = ring.wavelengths_required();
        assert!(w > 80 && w <= 160, "33-ring wavelengths: {w}");
        assert_eq!(ring.muxes_per_switch(), 2);
        assert_eq!(ring.physical_rings(), 2);
    }

    #[test]
    fn mesh_needs_one_trunk_port_per_peer() {
        match QuartzRing::paper_config(34) {
            Err(DesignError::NotEnoughTrunkPorts { switches: 34, .. }) => {}
            other => panic!("expected NotEnoughTrunkPorts, got {other:?}"),
        }
    }

    #[test]
    fn fiber_capacity_caps_ring_size() {
        // A hypothetical switch with plenty of trunk ports still cannot
        // exceed the 160-channel fiber: size 36 needs > 160 wavelengths.
        match QuartzRing::new(36, 16, 48, 10.0) {
            Err(DesignError::FiberCapacityExceeded { .. }) => {}
            other => panic!("expected FiberCapacityExceeded, got {other:?}"),
        }
        // 35 fits (§3.1's maximum ring size).
        assert!(QuartzRing::new(35, 16, 48, 10.0).is_ok());
    }

    #[test]
    fn degenerate_sizes_rejected() {
        assert!(matches!(
            QuartzRing::new(1, 32, 32, 10.0),
            Err(DesignError::TooSmall(1))
        ));
    }

    #[test]
    fn channel_plan_is_valid_and_fits_grid() {
        let ring = QuartzRing::paper_config(9).unwrap();
        let plan = ring.assign_channels();
        plan.validate().unwrap();
        assert_eq!(plan.method, PlanMethod::Greedy);
        assert!(plan.wavelengths_used() <= 80);
    }

    #[test]
    fn channel_plan_33_uses_160ch_grid() {
        let ring = QuartzRing::paper_config(33).unwrap();
        let plan = ring.assign_channels();
        plan.validate().unwrap();
        assert_eq!(plan.grid.channel_count(), 160);
    }

    #[test]
    fn optical_plan_succeeds_for_paper_sizes() {
        for m in [4, 9, 24, 33] {
            let ring = QuartzRing::paper_config(m.min(33)).unwrap();
            ring.optical_plan().unwrap();
        }
    }

    #[test]
    fn dual_tor_reaches_2080_ports() {
        // §3.2: "This configuration can support up to 2080 (32 × 65)
        // ports at the cost of an additional switch per rack".
        let d = ScaledDesign::paper_dual_tor();
        assert_eq!(d.server_ports(), 2080);
        assert!(d.is_full_mesh());
        assert_eq!(d.max_switch_hops(), 2);
        assert_eq!(d.total_switches(), 130);
        assert!(d.min_optical_rings() >= 2);
    }

    #[test]
    fn undersized_dual_tor_loses_mesh_property() {
        let d = ScaledDesign {
            racks: 100,
            switches_per_rack: 2,
            server_ports_per_rack: 32,
            trunk_ports_per_switch: 32,
        };
        assert!(!d.is_full_mesh());
        assert_eq!(d.max_switch_hops(), 3);
    }
}
