//! Routing policy inside a Quartz mesh — §3.4 of the paper.
//!
//! With a full mesh there is a single shortest (one-hop) path between any
//! two switches, so **ECMP always picks the direct path**, minimizing hop
//! count and cross-traffic interference. For workloads that concentrate
//! traffic between two racks, **Valiant load balancing** (VLB) sprays a
//! configurable fraction of the traffic over the `m − 2` two-hop detours,
//! trading a small latency increase for up to `(m − 1)×` the direct
//! bandwidth.

use std::fmt;

/// A routing policy for traffic between two switches of a Quartz mesh.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RoutingPolicy {
    /// ECMP over shortest paths. In a full mesh this is exactly the
    /// single direct hop.
    EcmpDirect,
    /// Valiant load balancing: send `indirect_fraction` of the traffic
    /// over two-hop detours (spread evenly across all `m − 2`
    /// intermediates) and the rest over the direct path.
    Vlb {
        /// Fraction of traffic detoured, `0.0 ..= 1.0`.
        indirect_fraction: f64,
    },
}

impl RoutingPolicy {
    /// A VLB policy, validating the fraction.
    ///
    /// # Panics
    /// Panics if `fraction` is outside `0.0..=1.0`.
    pub fn vlb(fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "indirect fraction must be in 0..=1, got {fraction}"
        );
        RoutingPolicy::Vlb {
            indirect_fraction: fraction,
        }
    }

    /// Fraction of traffic on the direct path.
    pub fn direct_fraction(&self) -> f64 {
        match self {
            RoutingPolicy::EcmpDirect => 1.0,
            RoutingPolicy::Vlb { indirect_fraction } => 1.0 - indirect_fraction,
        }
    }

    /// Mean switch hops a packet takes between two switches under this
    /// policy (1 direct, 2 via a detour).
    pub fn mean_switch_hops(&self) -> f64 {
        match self {
            RoutingPolicy::EcmpDirect => 1.0,
            RoutingPolicy::Vlb { indirect_fraction } => {
                1.0 * (1.0 - indirect_fraction) + 2.0 * indirect_fraction
            }
        }
    }
}

impl fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingPolicy::EcmpDirect => write!(f, "ECMP (direct)"),
            RoutingPolicy::Vlb { indirect_fraction } => {
                write!(f, "VLB (k = {indirect_fraction:.2})")
            }
        }
    }
}

/// The set of two-hop detours between a switch pair in an `m`-switch mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoHopPaths {
    /// Mesh size.
    pub m: usize,
    /// Source switch.
    pub src: usize,
    /// Destination switch.
    pub dst: usize,
}

impl TwoHopPaths {
    /// Creates the detour set for `src → dst`.
    ///
    /// # Panics
    /// Panics if `src == dst` or either is out of range.
    pub fn new(m: usize, src: usize, dst: usize) -> Self {
        assert!(src < m && dst < m && src != dst);
        TwoHopPaths { m, src, dst }
    }

    /// Number of two-hop detours: `m − 2`.
    pub fn count(&self) -> usize {
        self.m - 2
    }

    /// Iterates the intermediate switches.
    pub fn intermediates(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.m).filter(move |&v| v != self.src && v != self.dst)
    }
}

/// Maximum achievable `src → dst` throughput (in units of one channel's
/// rate) when only this pair is active, under the given policy.
///
/// Direct path contributes its full channel; each detour is limited by its
/// two channels, contributing up to one channel each — so VLB can reach
/// `1 + (m − 2)` channels, which is how Figure 20's VLB curve stays flat
/// past the 40 Gb/s direct-link saturation point.
pub fn pair_capacity_channels(m: usize, policy: RoutingPolicy) -> f64 {
    match policy {
        RoutingPolicy::EcmpDirect => 1.0,
        RoutingPolicy::Vlb { .. } => 1.0 + (m - 2) as f64,
    }
}

/// The fraction of one pair's offered load each *detour channel* carries
/// under VLB with detour fraction `k`: `k / (m − 2)` per §3.4's "send k
/// fraction of the traffic through the n − 2 two-hop paths".
pub fn detour_share(m: usize, indirect_fraction: f64) -> f64 {
    assert!(m > 2, "detours need at least 3 switches");
    indirect_fraction / (m - 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecmp_is_all_direct() {
        let p = RoutingPolicy::EcmpDirect;
        assert_eq!(p.direct_fraction(), 1.0);
        assert_eq!(p.mean_switch_hops(), 1.0);
    }

    #[test]
    fn vlb_hop_count_interpolates() {
        let p = RoutingPolicy::vlb(0.5);
        assert_eq!(p.direct_fraction(), 0.5);
        assert!((p.mean_switch_hops() - 1.5).abs() < 1e-12);
        assert_eq!(RoutingPolicy::vlb(1.0).mean_switch_hops(), 2.0);
    }

    #[test]
    #[should_panic(expected = "indirect fraction")]
    fn vlb_fraction_validated() {
        let _ = RoutingPolicy::vlb(1.5);
    }

    #[test]
    fn two_hop_paths_exclude_endpoints() {
        let t = TwoHopPaths::new(6, 5, 2);
        assert_eq!(t.count(), 4);
        let v: Vec<_> = t.intermediates().collect();
        assert_eq!(v, vec![0, 1, 3, 4]);
    }

    #[test]
    fn paper_fig7_example() {
        // Figure 7(b): traffic from rack 6 to rack 3 detours through
        // racks 1, 2, 4 and 5 — all four other racks.
        let t = TwoHopPaths::new(6, 5, 2); // 0-indexed racks 6 and 3
        assert_eq!(t.count(), 4);
    }

    #[test]
    fn vlb_unlocks_mesh_capacity() {
        // A 4-switch 40 GbE ring (Fig 19/20): direct ECMP caps at one
        // 40 Gb/s channel; VLB reaches 3 channels = 120 Gb/s, which is why
        // 50 Gb/s of pathological traffic doesn't hurt VLB.
        assert_eq!(pair_capacity_channels(4, RoutingPolicy::EcmpDirect), 1.0);
        assert_eq!(pair_capacity_channels(4, RoutingPolicy::vlb(0.5)), 3.0);
    }

    #[test]
    fn detour_share_splits_evenly() {
        assert!((detour_share(6, 0.8) - 0.2).abs() < 1e-12);
    }
}
