//! Scalability and incremental deployment analysis — §3.2 and §8.
//!
//! Two questions a deployment planner asks:
//!
//! 1. *How big can a Quartz element get?* Bounded by both the switch
//!    port split (`k ≥ m − 1` transceivers) and the fiber's channel
//!    budget (160 channels ⇒ ring size ≤ 35). "If port count of
//!    low-latency cut-through switches increase, Quartz becomes more
//!    scalable" (§8) — [`max_mesh_server_ports`] quantifies exactly how.
//! 2. *What does growing a ring cost?* Quartz "can be incrementally
//!    deployed as needed" (§8); [`expansion_step`] compares the
//!    wavelength plans of consecutive ring sizes and counts how many
//!    existing lightpaths must be re-tuned versus freshly added.

use crate::channel::greedy;
use crate::ring::FIBER_CHANNEL_CAPACITY;
use quartz_optics::retune::{RetuneModel, FAST_TUNABLE_SFP};
use quartz_optics::wavelength::ChannelId;

/// Largest ring size whose greedy wavelength plan fits in `channels`
/// fiber channels.
///
/// With the paper's 160-channel ceiling this is 35 (§3.1).
pub fn max_ring_size_for_channels(channels: usize) -> usize {
    let mut best = 0;
    for m in 2.. {
        // The load bound grows ~m²/8; once it exceeds the budget no
        // larger size can fit either.
        if crate::channel::bounds::load_lower_bound(m) > channels {
            break;
        }
        if greedy::wavelengths_required(m) <= channels {
            best = m;
        }
    }
    best
}

/// Maximum server ports of a single Quartz element built from
/// `port_count`-port cut-through switches split half servers / half
/// trunks, under the fiber channel ceiling.
pub fn max_mesh_server_ports(port_count: usize) -> usize {
    assert!(port_count >= 4, "need at least a 2/2 split");
    let half = port_count / 2;
    // A mesh of m switches needs m − 1 trunk ports, and the ring is
    // capped by the wavelength budget.
    let m = (half + 1).min(max_ring_size_for_channels(FIBER_CHANNEL_CAPACITY));
    half * m
}

/// The cost of growing a ring from `from` to `from + 1` switches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpansionStep {
    /// Original ring size.
    pub from: usize,
    /// New ring size (`from + 1`).
    pub to: usize,
    /// Existing switch pairs whose channel or direction changes (each
    /// means re-tuning two transceivers).
    pub retuned: usize,
    /// Brand-new pairs (the new switch's `from` channels).
    pub added: usize,
    /// Wavelengths used before and after.
    pub wavelengths: (usize, usize),
    /// Total transceiver dark time across all retunes (serial sum; two
    /// transceivers per pair retune concurrently, so this counts each
    /// pair's window once).
    pub retune_total_ns: u64,
    /// The single longest retune window — the expansion's critical path
    /// if every pair retunes in parallel.
    pub retune_max_ns: u64,
}

/// Computes the [`ExpansionStep`] from ring size `m` to `m + 1` under the
/// greedy planner. Wavelength planning is per-size ("we can use a fixed
/// wavelength plan for all Quartz rings of the same size", §3.1), so
/// growth means diffing two plans.
///
/// # Examples
///
/// ```
/// use quartz_core::scalability::expansion_step;
///
/// let step = expansion_step(8);
/// assert_eq!(step.added, 8);         // the new switch's 8 channels
/// assert!(step.retuned <= 28);       // bounded by the old pair count
/// ```
pub fn expansion_step(m: usize) -> ExpansionStep {
    expansion_step_with(m, &FAST_TUNABLE_SFP)
}

/// [`expansion_step`] under an explicit [`RetuneModel`]: each re-tuned
/// pair's dark window is the model's latency for its channel move (or
/// the bare re-lock window when only the arc direction flips).
pub fn expansion_step_with(m: usize, model: &RetuneModel) -> ExpansionStep {
    assert!(m >= 2);
    let before = greedy::assign_best(m);
    let after = greedy::assign_best(m + 1);
    let mut retuned = 0;
    let mut added = 0;
    let mut retune_total_ns = 0u64;
    let mut retune_max_ns = 0u64;
    for (pair, dir, ch) in after.entries() {
        // In the grown ring the new switch has index m; pairs touching
        // it are new.
        if pair.b == m {
            added += 1;
            continue;
        }
        match before.lookup(*pair) {
            Some((d0, c0)) if d0 == *dir && c0 == *ch => {}
            Some((_, c0)) => {
                retuned += 1;
                let dark = if c0 == *ch {
                    model.base_ns // direction-only change: re-lock, no laser move
                } else {
                    model.latency_ns(ChannelId(c0), ChannelId(*ch))
                };
                retune_total_ns += dark;
                retune_max_ns = retune_max_ns.max(dark);
            }
            None => unreachable!("old plan covers every pre-existing pair"),
        }
    }
    ExpansionStep {
        from: m,
        to: m + 1,
        retuned,
        added,
        wavelengths: (before.channels_used(), after.channels_used()),
        retune_total_ns,
        retune_max_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fiber_budget_gives_ring_of_35() {
        assert_eq!(max_ring_size_for_channels(160), 35);
        // An 80-channel WDM alone caps the ring earlier.
        let m80 = max_ring_size_for_channels(80);
        assert!((24..=26).contains(&m80), "80 channels → ring of {m80}");
    }

    #[test]
    fn paper_64_port_element_is_1056_ports() {
        assert_eq!(max_mesh_server_ports(64), 32 * 33);
    }

    #[test]
    fn bigger_switches_mean_bigger_elements_until_fiber_caps() {
        // 128-port switches: 64 trunks would allow a 65-ring, but the
        // fiber caps it at 35 → 64 × 35 = 2240 ports.
        assert_eq!(max_mesh_server_ports(128), 64 * 35);
        // Monotone in port count.
        let mut prev = 0;
        for p in [8usize, 16, 32, 64, 128, 256] {
            let ports = max_mesh_server_ports(p);
            assert!(ports >= prev, "p={p}");
            prev = ports;
        }
    }

    #[test]
    fn expansion_adds_m_new_pairs() {
        for m in [4usize, 6, 9] {
            let step = expansion_step(m);
            assert_eq!(step.added, m, "growing to {} adds {} pairs", m + 1, m);
            assert!(step.wavelengths.1 >= step.wavelengths.0);
            // Sanity: retuning never exceeds the number of old pairs.
            assert!(step.retuned <= m * (m - 1) / 2);
        }
    }

    #[test]
    fn expansion_reports_are_deterministic() {
        assert_eq!(expansion_step(7), expansion_step(7));
    }

    #[test]
    fn retune_latency_tracks_the_model() {
        use quartz_optics::retune::{RetuneModel, THERMAL_TUNABLE_SFP};
        for m in [5usize, 8, 12] {
            let fast = expansion_step_with(m, &FAST_TUNABLE_SFP);
            let instant = expansion_step_with(m, &RetuneModel::instant());
            // Same plan diff regardless of model.
            assert_eq!(fast.retuned, instant.retuned);
            assert_eq!(instant.retune_total_ns, 0);
            assert_eq!(instant.retune_max_ns, 0);
            if fast.retuned > 0 {
                // Every retune pays at least the base window.
                assert!(fast.retune_total_ns >= fast.retuned as u64 * FAST_TUNABLE_SFP.base_ns);
                assert!(fast.retune_max_ns >= FAST_TUNABLE_SFP.base_ns);
                assert!(fast.retune_max_ns <= fast.retune_total_ns);
                // Thermal parts are strictly slower.
                let thermal = expansion_step_with(m, &THERMAL_TUNABLE_SFP);
                assert!(thermal.retune_total_ns > fast.retune_total_ns);
            }
        }
    }
}
