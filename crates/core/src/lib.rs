//! # quartz-core
//!
//! The Quartz design element (Liu et al., SIGCOMM 2014): a logical full
//! mesh of low-latency top-of-rack switches implemented as a physical
//! optical ring using commodity wavelength-division multiplexing.
//!
//! The crate covers everything §3 of the paper specifies:
//!
//! * [`ring`] — the [`QuartzRing`] design type: `M` switches with an
//!   `(n, k)` server/trunk port split, oversubscription, and the paper's
//!   scalability arithmetic (a 33-switch ring of 64-port switches mimics a
//!   1056-port switch; dual-ToR designs reach 2080 ports).
//! * [`channel`] — wavelength (channel) assignment on the ring: the
//!   paper's greedy longest-path-first heuristic, an exact
//!   branch-and-bound solver equivalent to the paper's ILP, and certified
//!   lower bounds. Regenerates Figure 5.
//! * [`routing`] — the routing policies §3.4 defines: ECMP over the
//!   single direct hop, and Valiant load balancing over the `n − 2`
//!   two-hop detours.
//! * [`fault`] — the §3.5 fault model: Monte-Carlo bandwidth loss and
//!   partition probability under random fiber-link failures with one to
//!   four physical rings. Regenerates Figure 6.
//!
//! A [`QuartzRing`] ties the pieces together: it checks that a design is
//! feasible (channel count within fiber capacity, optical power budget
//! satisfiable) and exposes the channel plan and optical plan to the
//! topology/simulation layers.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod channel;
pub mod fault;
pub mod multiring;
pub mod pool;
pub mod ring;
pub mod rng;
pub mod routing;
pub mod scalability;

pub use channel::{Arc, Assignment, ChannelPlan, Direction, Pair};
pub use fault::{FailureModel, FaultReport};
pub use multiring::{MultiRingError, MultiRingPlan};
pub use pool::{available_parallelism, unit_seed, ThreadPool};
pub use ring::{DesignError, QuartzRing, ScaledDesign};
pub use routing::{RoutingPolicy, TwoHopPaths};
pub use scalability::{expansion_step, max_mesh_server_ports, ExpansionStep};
