//! Fault tolerance of Quartz rings — §3.5 and Figure 6 of the paper.
//!
//! A single physical ring partitions after two cable cuts; Quartz designs
//! therefore spread their channels across multiple physical fiber rings
//! (a 33-switch ring needs 137 channels, hence two 80-channel WDM devices
//! and two fibers anyway). This module reproduces the paper's simulation:
//! random fiber-link failures, measuring
//!
//! * **bandwidth loss** — the fraction of switch pairs whose dedicated
//!   channel crossed a broken segment (their direct capacity is gone even
//!   though packets can still detour through intermediate switches), and
//! * **partition probability** — whether the surviving direct channels
//!   still connect all switches (checked with union–find).
//!
//! Failure events hit a uniformly random fiber segment of a uniformly
//! random ring, independently (so two events *can* hit the same segment —
//! this matches the paper's "more than 90 %" rather than exactly 100 %
//! partition probability for two failures on a single ring).

use crate::channel::{greedy, Arc, Pair};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fault model for an `m`-switch Quartz network whose channels are
/// spread over `rings` physical fiber rings.
///
/// # Examples
///
/// ```
/// use quartz_core::fault::FailureModel;
///
/// // §3.5: with two physical rings, even four simultaneous cuts almost
/// // never partition a 33-switch network.
/// let model = FailureModel::new(33, 2);
/// let report = model.monte_carlo(4, 1_000, 42);
/// assert!(report.partition_probability < 0.02);
/// ```
#[derive(Clone, Debug)]
pub struct FailureModel {
    m: usize,
    rings: usize,
    /// `(pair, arc, ring)` for every switch pair: the links its channel
    /// occupies and the physical ring carrying it.
    paths: Vec<(Pair, Arc, usize)>,
}

/// Outcome of one failure trial.
#[derive(Clone, Debug, PartialEq)]
pub struct TrialOutcome {
    /// Pairs whose direct channel was severed.
    pub lost_pairs: usize,
    /// Total pairs.
    pub total_pairs: usize,
    /// Whether the surviving direct-channel graph is disconnected.
    pub partitioned: bool,
}

impl TrialOutcome {
    /// Fraction of pairwise direct capacity lost.
    pub fn bandwidth_loss(&self) -> f64 {
        self.lost_pairs as f64 / self.total_pairs as f64
    }
}

/// Aggregated Monte-Carlo results (one cell of Figure 6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultReport {
    /// Number of simultaneous fiber-link failures per trial.
    pub failures: usize,
    /// Physical rings in the design.
    pub rings: usize,
    /// Trials run.
    pub trials: usize,
    /// Mean fraction of pairwise direct bandwidth lost.
    pub mean_bandwidth_loss: f64,
    /// Fraction of trials in which the network partitioned.
    pub partition_probability: f64,
}

impl FailureModel {
    /// Builds the model: runs the greedy wavelength planner for `m` and
    /// spreads channels across `rings` fibers round-robin by channel index
    /// (balanced, and consistent with "two 80-channel WDM muxes/demuxes
    /// instead of a single mux/demux at each switch").
    ///
    /// # Panics
    /// Panics if `m < 3` or `rings == 0`.
    pub fn new(m: usize, rings: usize) -> Self {
        assert!(m >= 3, "fault analysis needs ≥ 3 switches");
        assert!(rings >= 1, "at least one physical ring");
        let assignment = greedy::assign_best(m);
        let paths = assignment
            .entries()
            .iter()
            .map(|(pair, dir, ch)| (*pair, Arc::of(*pair, *dir, m), usize::from(*ch) % rings))
            .collect();
        FailureModel { m, rings, paths }
    }

    /// Number of switches.
    pub fn switches(&self) -> usize {
        self.m
    }

    /// Number of physical rings.
    pub fn rings(&self) -> usize {
        self.rings
    }

    /// Evaluates one failure set: `broken` lists `(ring, link)` segments.
    pub fn trial(&self, broken: &[(usize, usize)]) -> TrialOutcome {
        let total_pairs = self.paths.len();
        let mut lost_pairs = 0;
        let mut dsu = DisjointSet::new(self.m);
        for (pair, arc, ring) in &self.paths {
            let severed = broken.iter().any(|(r, l)| r == ring && arc.covers(*l));
            if severed {
                lost_pairs += 1;
            } else {
                dsu.union(pair.a, pair.b);
            }
        }
        TrialOutcome {
            lost_pairs,
            total_pairs,
            partitioned: dsu.components() > 1,
        }
    }

    /// Runs `trials` independent trials of `failures` random fiber-link
    /// failures each and aggregates the Figure 6 statistics.
    pub fn monte_carlo(&self, failures: usize, trials: usize, seed: u64) -> FaultReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut loss_sum = 0.0;
        let mut partitions = 0usize;
        let mut broken = Vec::with_capacity(failures);
        for _ in 0..trials {
            broken.clear();
            for _ in 0..failures {
                broken.push((rng.random_range(0..self.rings), rng.random_range(0..self.m)));
            }
            let t = self.trial(&broken);
            loss_sum += t.bandwidth_loss();
            partitions += usize::from(t.partitioned);
        }
        FaultReport {
            failures,
            rings: self.rings,
            trials,
            mean_bandwidth_loss: loss_sum / trials as f64,
            partition_probability: partitions as f64 / trials as f64,
        }
    }
}

/// Minimal union–find for the partition check.
struct DisjointSet {
    parent: Vec<usize>,
    count: usize,
}

impl DisjointSet {
    fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
            count: n,
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
            self.count -= 1;
        }
    }

    fn components(&mut self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_failures_no_loss() {
        let fm = FailureModel::new(9, 1);
        let t = fm.trial(&[]);
        assert_eq!(t.lost_pairs, 0);
        assert!(!t.partitioned);
    }

    #[test]
    fn single_ring_one_failure_loses_roughly_a_quarter() {
        // 33 switches: each link carries ~136 of 528 channels ⇒ ~26 %
        // direct-bandwidth loss per cut (the paper reports ~20 % with its
        // assignment; the shape is what matters).
        let fm = FailureModel::new(33, 1);
        let r = fm.monte_carlo(1, 500, 42);
        assert!(
            (0.15..0.35).contains(&r.mean_bandwidth_loss),
            "loss {}",
            r.mean_bandwidth_loss
        );
        // One cut never partitions a full mesh: every pair still has
        // multi-hop connectivity through surviving direct channels.
        assert_eq!(r.partition_probability, 0.0);
    }

    #[test]
    fn single_ring_two_distinct_failures_partition() {
        let fm = FailureModel::new(12, 1);
        // Cut links 2 and 7: switches 3..=7 split from the rest.
        let t = fm.trial(&[(0, 2), (0, 7)]);
        assert!(t.partitioned);
        // Same segment twice: no partition.
        let t = fm.trial(&[(0, 2), (0, 2)]);
        assert!(!t.partitioned);
    }

    #[test]
    fn single_ring_two_random_failures_mostly_partition() {
        // §3.5: "more than 90%" — misses only when both events hit the
        // same segment.
        let fm = FailureModel::new(33, 1);
        let r = fm.monte_carlo(2, 1000, 7);
        assert!(r.partition_probability > 0.9, "{}", r.partition_probability);
        assert!(r.partition_probability < 1.0);
    }

    #[test]
    fn second_ring_makes_partition_rare() {
        // §3.5: "by adding a single additional physical ring, the
        // probability of the network partitioning is less than 0.24% even
        // when four physical links fail".
        let fm = FailureModel::new(33, 2);
        let r = fm.monte_carlo(4, 4000, 11);
        assert!(
            r.partition_probability < 0.02,
            "partition probability {} too high",
            r.partition_probability
        );
    }

    #[test]
    fn more_rings_less_bandwidth_loss() {
        // Figure 6 top: loss falls roughly as 1/rings (20% → 6% from one
        // ring to four in the paper).
        let loss = |rings| {
            FailureModel::new(33, rings)
                .monte_carlo(1, 400, 3)
                .mean_bandwidth_loss
        };
        let l1 = loss(1);
        let l2 = loss(2);
        let l4 = loss(4);
        assert!(l1 > l2 && l2 > l4, "{l1} {l2} {l4}");
        assert!(
            l4 < l1 / 2.5,
            "four rings should cut loss ~4x: {l1} vs {l4}"
        );
    }

    #[test]
    fn trial_is_deterministic_and_report_reproducible() {
        let fm = FailureModel::new(15, 2);
        let a = fm.monte_carlo(3, 200, 99);
        let b = fm.monte_carlo(3, 200, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn losses_bounded() {
        let fm = FailureModel::new(9, 1);
        for f in 1..=4 {
            let r = fm.monte_carlo(f, 100, f as u64);
            assert!((0.0..=1.0).contains(&r.mean_bandwidth_loss));
            assert!((0.0..=1.0).contains(&r.partition_probability));
        }
    }
}
