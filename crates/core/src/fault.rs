//! Fault tolerance of Quartz rings — §3.5 and Figure 6 of the paper.
//!
//! A single physical ring partitions after two cable cuts; Quartz designs
//! therefore spread their channels across multiple physical fiber rings
//! (a 33-switch ring needs 137 channels, hence two 80-channel WDM devices
//! and two fibers anyway). This module reproduces the paper's simulation:
//! random fiber-link failures, measuring
//!
//! * **bandwidth loss** — the fraction of switch pairs whose dedicated
//!   channel crossed a broken segment (their direct capacity is gone even
//!   though packets can still detour through intermediate switches), and
//! * **partition probability** — whether the surviving direct channels
//!   still connect all switches (checked with union–find).
//!
//! Failure events hit a uniformly random fiber segment of a uniformly
//! random ring, independently (so two events *can* hit the same segment —
//! this matches the paper's "more than 90 %" rather than exactly 100 %
//! partition probability for two failures on a single ring).

use crate::channel::{greedy, Arc, Pair};
use crate::pool::ThreadPool;
use crate::rng::StdRng;

/// The fault model for an `m`-switch Quartz network whose channels are
/// spread over `rings` physical fiber rings.
///
/// # Examples
///
/// ```
/// use quartz_core::fault::FailureModel;
///
/// // §3.5: with two physical rings, even four simultaneous cuts almost
/// // never partition a 33-switch network.
/// let model = FailureModel::new(33, 2);
/// let report = model.monte_carlo(4, 1_000, 42);
/// assert!(report.partition_probability < 0.02);
/// ```
#[derive(Clone, Debug)]
pub struct FailureModel {
    m: usize,
    rings: usize,
    /// `(pair, arc, ring)` for every switch pair: the links its channel
    /// occupies and the physical ring carrying it.
    paths: Vec<(Pair, Arc, usize)>,
}

/// Outcome of one failure trial.
#[derive(Clone, Debug, PartialEq)]
pub struct TrialOutcome {
    /// Pairs whose direct channel was severed.
    pub lost_pairs: usize,
    /// Total pairs.
    pub total_pairs: usize,
    /// Whether the surviving direct-channel graph is disconnected.
    pub partitioned: bool,
}

impl TrialOutcome {
    /// Fraction of pairwise direct capacity lost.
    pub fn bandwidth_loss(&self) -> f64 {
        self.lost_pairs as f64 / self.total_pairs as f64
    }
}

/// Aggregated Monte-Carlo results (one cell of Figure 6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultReport {
    /// Number of simultaneous fiber-link failures per trial.
    pub failures: usize,
    /// Physical rings in the design.
    pub rings: usize,
    /// Trials run.
    pub trials: usize,
    /// Mean fraction of pairwise direct bandwidth lost.
    pub mean_bandwidth_loss: f64,
    /// Fraction of trials in which the network partitioned.
    pub partition_probability: f64,
    /// Mean hop count of the shortest surviving detour, over severed
    /// pairs that stayed connected (1.0 = nothing severed: every pair
    /// kept its direct channel). Sampled on a deterministic subset of
    /// trials (see [`FailureModel::monte_carlo`]).
    pub mean_detour_stretch: f64,
    /// Mean shortest-path hop count over *all* still-connected pairs
    /// after the failures (1.0 in an intact mesh). Same sampling.
    pub mean_post_failure_hops: f64,
}

/// Connectivity detail of one failure trial: where the severed pairs'
/// traffic can detour over the surviving direct channels, and how the
/// whole mesh's hop-count distribution degrades.
#[derive(Clone, Debug, PartialEq)]
pub struct DetourOutcome {
    /// The basic severed/partitioned outcome of the same trial.
    pub outcome: TrialOutcome,
    /// Shortest surviving detour length, in channel hops, for each
    /// severed pair (`None` if that pair is disconnected entirely).
    pub detour_hops: Vec<Option<usize>>,
    /// `hop_histogram[h]` = number of connected pairs whose shortest
    /// surviving path uses `h` channel hops (index 0 unused).
    pub hop_histogram: Vec<usize>,
}

impl DetourOutcome {
    /// Mean detour length over severed-but-still-connected pairs;
    /// 1.0 when nothing was severed (no pair is stretched).
    pub fn mean_stretch(&self) -> f64 {
        let reachable: Vec<usize> = self.detour_hops.iter().filter_map(|h| *h).collect();
        if reachable.is_empty() {
            1.0
        } else {
            reachable.iter().sum::<usize>() as f64 / reachable.len() as f64
        }
    }

    /// Longest detour any severed pair must take (`None` if nothing was
    /// severed or nothing severed is reachable).
    pub fn max_detour_hops(&self) -> Option<usize> {
        self.detour_hops.iter().filter_map(|h| *h).max()
    }

    /// Mean hops over all connected pairs (severed pairs included via
    /// their detours).
    pub fn mean_hops(&self) -> f64 {
        let (mut pairs, mut hops) = (0usize, 0usize);
        for (h, &count) in self.hop_histogram.iter().enumerate() {
            pairs += count;
            hops += h * count;
        }
        if pairs == 0 {
            0.0
        } else {
            hops as f64 / pairs as f64
        }
    }
}

impl FailureModel {
    /// Builds the model: runs the greedy wavelength planner for `m` and
    /// spreads channels across `rings` fibers round-robin by channel index
    /// (balanced, and consistent with "two 80-channel WDM muxes/demuxes
    /// instead of a single mux/demux at each switch").
    ///
    /// # Panics
    /// Panics if `m < 3` or `rings == 0`.
    pub fn new(m: usize, rings: usize) -> Self {
        assert!(m >= 3, "fault analysis needs ≥ 3 switches");
        assert!(rings >= 1, "at least one physical ring");
        let assignment = greedy::assign_best(m);
        let paths = assignment
            .entries()
            .iter()
            .map(|(pair, dir, ch)| (*pair, Arc::of(*pair, *dir, m), usize::from(*ch) % rings))
            .collect();
        FailureModel { m, rings, paths }
    }

    /// Number of switches.
    pub fn switches(&self) -> usize {
        self.m
    }

    /// Number of physical rings.
    pub fn rings(&self) -> usize {
        self.rings
    }

    /// Evaluates one failure set: `broken` lists `(ring, link)` segments.
    pub fn trial(&self, broken: &[(usize, usize)]) -> TrialOutcome {
        let total_pairs = self.paths.len();
        let mut lost_pairs = 0;
        let mut dsu = DisjointSet::new(self.m);
        for (pair, arc, ring) in &self.paths {
            let severed = broken.iter().any(|(r, l)| r == ring && arc.covers(*l));
            if severed {
                lost_pairs += 1;
            } else {
                dsu.union(pair.a, pair.b);
            }
        }
        TrialOutcome {
            lost_pairs,
            total_pairs,
            partitioned: dsu.components() > 1,
        }
    }

    /// The switch pairs whose direct channel a failure set severs
    /// (normalized `a < b`) — the input a degraded capacity model (e.g.
    /// `quartz_flowsim`'s waterfiller) needs.
    pub fn severed_pairs(&self, broken: &[(usize, usize)]) -> Vec<(usize, usize)> {
        self.paths
            .iter()
            .filter(|(_, arc, ring)| broken.iter().any(|(r, l)| r == ring && arc.covers(*l)))
            .map(|(pair, _, _)| (pair.a.min(pair.b), pair.a.max(pair.b)))
            .collect()
    }

    /// Evaluates one failure set in full: on top of [`FailureModel::trial`],
    /// computes every severed pair's shortest surviving detour and the
    /// post-failure hop-count distribution of the whole mesh (BFS over
    /// the surviving direct-channel graph).
    pub fn trial_detours(&self, broken: &[(usize, usize)]) -> DetourOutcome {
        let outcome = self.trial(broken);
        // Surviving channel adjacency.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.m];
        let mut severed = Vec::new();
        for (pair, arc, ring) in &self.paths {
            if broken.iter().any(|(r, l)| r == ring && arc.covers(*l)) {
                severed.push(*pair);
            } else {
                adj[pair.a].push(pair.b);
                adj[pair.b].push(pair.a);
            }
        }
        // All-pairs hops by BFS from every switch.
        let mut dist = vec![vec![usize::MAX; self.m]; self.m];
        for s in 0..self.m {
            let d = &mut dist[s];
            d[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if d[v] == usize::MAX {
                        d[v] = d[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        let detour_hops = severed
            .iter()
            .map(|p| {
                let d = dist[p.a][p.b];
                (d != usize::MAX).then_some(d)
            })
            .collect();
        let mut hop_histogram = vec![0usize; self.m];
        for (a, row) in dist.iter().enumerate() {
            for &d in row.iter().skip(a + 1) {
                if d != usize::MAX {
                    hop_histogram[d] += 1;
                }
            }
        }
        DetourOutcome {
            outcome,
            detour_hops,
            hop_histogram,
        }
    }

    /// Runs `trials` independent trials of `failures` random fiber-link
    /// failures each and aggregates the Figure 6 statistics.
    ///
    /// The O(m²) detour analysis runs on a deterministic sample of at
    /// most 200 evenly spaced trials (the loss/partition statistics use
    /// every trial), keeping large Monte-Carlo sweeps cheap.
    pub fn monte_carlo(&self, failures: usize, trials: usize, seed: u64) -> FaultReport {
        self.monte_carlo_with(failures, trials, seed, &ThreadPool::sequential())
    }

    /// The same statistics as [`FailureModel::monte_carlo`], with the
    /// per-trial evaluations spread over `pool`.
    ///
    /// All failure locations are drawn up front from one sequential RNG
    /// stream (identical to the stream `monte_carlo` consumes) and the
    /// per-trial results fold in trial order, so the report is
    /// bit-identical at any worker count.
    pub fn monte_carlo_with(
        &self,
        failures: usize,
        trials: usize,
        seed: u64,
        pool: &ThreadPool,
    ) -> FaultReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let draws: Vec<Vec<(usize, usize)>> = (0..trials)
            .map(|_| {
                (0..failures)
                    .map(|_| (rng.random_range(0..self.rings), rng.random_range(0..self.m)))
                    .collect()
            })
            .collect();
        let stride = trials.div_ceil(200).max(1);
        // `(loss, partitioned, Some((stretch, hops)))` for sampled trials.
        let cells = pool.par_map(trials, |trial| {
            let broken = &draws[trial];
            if trial % stride == 0 {
                let d = self.trial_detours(broken);
                (
                    d.outcome.bandwidth_loss(),
                    d.outcome.partitioned,
                    Some((d.mean_stretch(), d.mean_hops())),
                )
            } else {
                let t = self.trial(broken);
                (t.bandwidth_loss(), t.partitioned, None)
            }
        });
        let mut loss_sum = 0.0;
        let mut partitions = 0usize;
        let mut stretch_sum = 0.0;
        let mut hops_sum = 0.0;
        let mut sampled = 0usize;
        for (loss, partitioned, detours) in cells {
            loss_sum += loss;
            partitions += usize::from(partitioned);
            if let Some((stretch, hops)) = detours {
                stretch_sum += stretch;
                hops_sum += hops;
                sampled += 1;
            }
        }
        FaultReport {
            failures,
            rings: self.rings,
            trials,
            mean_bandwidth_loss: loss_sum / trials as f64,
            partition_probability: partitions as f64 / trials as f64,
            mean_detour_stretch: stretch_sum / sampled as f64,
            mean_post_failure_hops: hops_sum / sampled as f64,
        }
    }
}

/// Minimal union–find for the partition check: iterative path-halving
/// find (no recursion, so arbitrarily deep parent chains cannot blow the
/// stack) plus union by rank (which keeps chains logarithmic anyway).
struct DisjointSet {
    parent: Vec<usize>,
    rank: Vec<u8>,
    count: usize,
}

impl DisjointSet {
    fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
            rank: vec![0; n],
            count: n,
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (child, root) = if self.rank[ra] < self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[child] = root;
        if self.rank[child] == self.rank[root] {
            self.rank[root] += 1;
        }
        self.count -= 1;
    }

    fn components(&mut self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_failures_no_loss() {
        let fm = FailureModel::new(9, 1);
        let t = fm.trial(&[]);
        assert_eq!(t.lost_pairs, 0);
        assert!(!t.partitioned);
    }

    #[test]
    fn single_ring_one_failure_loses_roughly_a_quarter() {
        // 33 switches: each link carries ~136 of 528 channels ⇒ ~26 %
        // direct-bandwidth loss per cut (the paper reports ~20 % with its
        // assignment; the shape is what matters).
        let fm = FailureModel::new(33, 1);
        let r = fm.monte_carlo(1, 500, 42);
        assert!(
            (0.15..0.35).contains(&r.mean_bandwidth_loss),
            "loss {}",
            r.mean_bandwidth_loss
        );
        // One cut never partitions a full mesh: every pair still has
        // multi-hop connectivity through surviving direct channels.
        assert_eq!(r.partition_probability, 0.0);
    }

    #[test]
    fn single_ring_two_distinct_failures_partition() {
        let fm = FailureModel::new(12, 1);
        // Cut links 2 and 7: switches 3..=7 split from the rest.
        let t = fm.trial(&[(0, 2), (0, 7)]);
        assert!(t.partitioned);
        // Same segment twice: no partition.
        let t = fm.trial(&[(0, 2), (0, 2)]);
        assert!(!t.partitioned);
    }

    #[test]
    fn single_ring_two_random_failures_mostly_partition() {
        // §3.5: "more than 90%" — misses only when both events hit the
        // same segment.
        let fm = FailureModel::new(33, 1);
        let r = fm.monte_carlo(2, 1000, 7);
        assert!(r.partition_probability > 0.9, "{}", r.partition_probability);
        assert!(r.partition_probability < 1.0);
    }

    #[test]
    fn second_ring_makes_partition_rare() {
        // §3.5: "by adding a single additional physical ring, the
        // probability of the network partitioning is less than 0.24% even
        // when four physical links fail".
        let fm = FailureModel::new(33, 2);
        let r = fm.monte_carlo(4, 4000, 11);
        assert!(
            r.partition_probability < 0.02,
            "partition probability {} too high",
            r.partition_probability
        );
    }

    #[test]
    fn more_rings_less_bandwidth_loss() {
        // Figure 6 top: loss falls roughly as 1/rings (20% → 6% from one
        // ring to four in the paper).
        let loss = |rings| {
            FailureModel::new(33, rings)
                .monte_carlo(1, 400, 3)
                .mean_bandwidth_loss
        };
        let l1 = loss(1);
        let l2 = loss(2);
        let l4 = loss(4);
        assert!(l1 > l2 && l2 > l4, "{l1} {l2} {l4}");
        assert!(
            l4 < l1 / 2.5,
            "four rings should cut loss ~4x: {l1} vs {l4}"
        );
    }

    #[test]
    fn union_find_survives_very_deep_chains() {
        // Regression: `find` used to recurse once per parent-chain link,
        // so a long sequential union chain could exhaust the stack. The
        // iterative path-halving version (with union by rank) must not.
        let n = 1_000_000;
        let mut dsu = DisjointSet::new(n);
        for i in 0..n - 1 {
            dsu.union(i, i + 1);
        }
        assert_eq!(dsu.components(), 1);
        assert_eq!(dsu.find(0), dsu.find(n - 1));
        // Disjoint halves stay disjoint.
        let mut dsu = DisjointSet::new(10);
        for i in 0..4 {
            dsu.union(i, i + 1);
            dsu.union(5 + i, 6 + i);
        }
        assert_eq!(dsu.components(), 2);
        assert_ne!(dsu.find(2), dsu.find(7));
    }

    #[test]
    fn detours_stretch_severed_pairs_to_two_hops() {
        // One cut on a single-ring mesh: severed pairs detour over the
        // surviving channels, almost always in exactly two hops (the
        // mesh's path diversity, §3.5 "routing protocols can route
        // around failed links").
        let fm = FailureModel::new(12, 1);
        let d = fm.trial_detours(&[(0, 3)]);
        assert!(d.outcome.lost_pairs > 0);
        assert!(!d.outcome.partitioned);
        // Every severed pair is still reachable, at ≥ 2 hops.
        for h in &d.detour_hops {
            assert!(h.unwrap() >= 2);
        }
        assert!(d.mean_stretch() >= 2.0);
        // Histogram covers all pairs: none lost to disconnection.
        let pairs: usize = d.hop_histogram.iter().sum();
        assert_eq!(pairs, 12 * 11 / 2);
        // Direct pairs (1 hop) plus the severed detours account for all.
        assert_eq!(d.hop_histogram[1], pairs - d.outcome.lost_pairs);
        assert!(d.mean_hops() > 1.0);
    }

    #[test]
    fn intact_mesh_reports_unit_stretch() {
        let fm = FailureModel::new(9, 2);
        let d = fm.trial_detours(&[]);
        assert_eq!(d.mean_stretch(), 1.0);
        assert_eq!(d.mean_hops(), 1.0);
        assert_eq!(d.max_detour_hops(), None);
        assert!(fm.severed_pairs(&[]).is_empty());
    }

    #[test]
    fn severed_pairs_match_trial_count() {
        let fm = FailureModel::new(15, 2);
        let broken = [(0, 4), (1, 9)];
        let severed = fm.severed_pairs(&broken);
        assert_eq!(severed.len(), fm.trial(&broken).lost_pairs);
        for &(a, b) in &severed {
            assert!(a < b && b < 15);
        }
    }

    #[test]
    fn partitioned_trial_reports_unreachable_detours() {
        // Two distinct cuts on one ring split the mesh: some severed
        // pairs have no surviving path at all.
        let fm = FailureModel::new(12, 1);
        let d = fm.trial_detours(&[(0, 2), (0, 7)]);
        assert!(d.outcome.partitioned);
        assert!(d.detour_hops.iter().any(|h| h.is_none()));
        // The histogram only counts connected pairs now.
        assert!(d.hop_histogram.iter().sum::<usize>() < 12 * 11 / 2);
    }

    #[test]
    fn trial_is_deterministic_and_report_reproducible() {
        let fm = FailureModel::new(15, 2);
        let a = fm.monte_carlo(3, 200, 99);
        let b = fm.monte_carlo(3, 200, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn losses_bounded() {
        let fm = FailureModel::new(9, 1);
        for f in 1..=4 {
            let r = fm.monte_carlo(f, 100, f as u64);
            assert!((0.0..=1.0).contains(&r.mean_bandwidth_loss));
            assert!((0.0..=1.0).contains(&r.partition_probability));
        }
    }
}
