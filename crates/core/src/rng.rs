//! A small, in-tree, deterministic PRNG — no external dependency.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded through
//! **splitmix64** so that similar seeds land in unrelated regions of the
//! state space. Both algorithms are public-domain reference designs.
//!
//! The API mirrors the subset of `rand` the workspace used, so call
//! sites only change an import line:
//!
//! ```
//! use quartz_core::rng::{SliceRandom, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: u64 = rng.random();
//! let f: f64 = rng.random(); // uniform in [0, 1)
//! let i = rng.random_range(0..10);
//! let mut v = vec![1, 2, 3];
//! v.shuffle(&mut rng);
//! # let _ = (x, f, i);
//! ```
//!
//! Determinism is load-bearing across the workspace (same seed ⇒
//! bit-identical simulations), so the exact output sequence of this
//! module is pinned by tests below.

/// One splitmix64 step: advances `state` and returns the next output.
/// Used for seeding; also a fine standalone 64-bit mixer.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded xoshiro256++ generator. The name matches the `rand` type it
/// replaces so existing call sites read naturally.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Builds a generator whose full 256-bit state is expanded from
    /// `seed` with splitmix64 (the construction xoshiro's authors
    /// recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// The next raw 64-bit output (xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample of type `T` (`u64` over its full range, `f64`
    /// over `[0, 1)` with 53 random mantissa bits).
    pub fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform index in `range` via Lemire's widening-multiply
    /// rejection method (unbiased).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn random_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "cannot sample an empty range");
        let span = (range.end - range.start) as u64;
        // Rejection zone keeps the multiply unbiased.
        let zone = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(span);
            if (m as u64) >= zone {
                return range.start + (m >> 64) as usize;
            }
        }
    }
}

/// Types [`StdRng::random`] can produce.
pub trait Sample {
    /// Draws one uniform value from `rng`.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Sample for f64 {
    fn sample(rng: &mut StdRng) -> Self {
        // 53 high bits → the uniform dyadic rationals in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// In-place uniform shuffling for slices (Fisher–Yates).
pub trait SliceRandom {
    /// Shuffles the slice uniformly at random using `rng`.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vector() {
        // Reference sequence for seed 1234567 (from the public-domain
        // splitmix64.c test vectors).
        let mut s = 1234567u64;
        let got: Vec<u64> = (0..3).map(|_| splitmix64(&mut s)).collect();
        assert_eq!(got[0], 6457827717110365317);
        assert_eq!(got[1], 3203168211198807973);
        assert_eq!(got[2], 9817491932198370423);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn range_respects_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let i = rng.random_range(3..13);
            assert!((3..13).contains(&i));
            seen[i - 3] = true;
        }
        assert!(seen.iter().all(|&b| b), "all values hit in 1k draws");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        rng.random_range(4..4);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "seed 11 moves something");
    }

    #[test]
    fn shuffle_is_deterministic() {
        let shuffle_once = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<usize> = (0..20).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(shuffle_once(8), shuffle_once(8));
    }
}
