//! Wavelength (channel) assignment for a Quartz ring — §3.1 of the paper.
//!
//! Communication between switches `s` and `t` requires exclusive ownership
//! of a channel `λst` along every fiber link of the chosen arc between
//! them. The assignment problem is: give every unordered switch pair a
//! *direction* (clockwise or counter-clockwise arc) and a *channel* such
//! that no channel is used twice on any fiber link, minimizing the number
//! of distinct channels.
//!
//! Three solvers live in the submodules:
//!
//! * [`greedy`] — the paper's longest-path-first greedy heuristic,
//! * [`exact`] — an exact iterative-deepening branch-and-bound search
//!   (the same optimum the paper's ILP computes),
//! * [`bounds`] — the aggregate-load lower bound used both to certify
//!   optimality and to seed the exact search.
//!
//! [`online`] relaxes the offline assumption: it keeps a plan live while
//! ring fibers are cut and repaired, warm-starting each re-solve from
//! the incumbent and falling back to the greedy under a node budget.
//!
//! Conventions: the ring has `m` switches `0..m`. Fiber link `i` connects
//! switch `i` to switch `(i+1) % m`. The clockwise arc from `a` covers
//! links `a, a+1, …`; pairs are stored normalized with `a < b`.

pub mod bounds;
pub mod exact;
pub mod greedy;
pub mod ilp;
pub mod online;

use quartz_optics::wavelength::{ChannelId, Grid};
use std::fmt;

/// An unordered switch pair, normalized so `a < b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pair {
    /// Lower switch index.
    pub a: usize,
    /// Higher switch index.
    pub b: usize,
}

impl Pair {
    /// Creates a normalized pair.
    ///
    /// # Panics
    /// Panics if `x == y`.
    pub fn new(x: usize, y: usize) -> Self {
        assert_ne!(x, y, "a pair needs two distinct switches");
        Pair {
            a: x.min(y),
            b: x.max(y),
        }
    }

    /// Clockwise hop distance from `a` to `b` on a ring of `m`.
    pub fn cw_len(&self, _m: usize) -> usize {
        self.b - self.a
    }

    /// Counter-clockwise hop distance from `a` to `b` (i.e. the arc
    /// through the wrap-around point).
    pub fn ccw_len(&self, m: usize) -> usize {
        m - (self.b - self.a)
    }

    /// Length of the shorter arc.
    pub fn min_len(&self, m: usize) -> usize {
        self.cw_len(m).min(self.ccw_len(m))
    }
}

impl fmt::Display for Pair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.a, self.b)
    }
}

/// All unordered pairs of a ring of `m` switches, in `(a, b)` order.
pub fn all_pairs(m: usize) -> Vec<Pair> {
    let mut v = Vec::with_capacity(m * (m - 1) / 2);
    for a in 0..m {
        for b in (a + 1)..m {
            v.push(Pair { a, b });
        }
    }
    v
}

/// Which way around the ring a pair's lightpath travels, viewed from the
/// pair's lower endpoint `a`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The arc from `a` increasing: links `a .. b`.
    Cw,
    /// The arc from `a` decreasing through the wrap-around: links
    /// `b .. a+m`.
    Ccw,
}

/// A contiguous run of fiber links on the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arc {
    /// First link index.
    pub start: usize,
    /// Number of links covered.
    pub len: usize,
    /// Ring size (number of links == number of switches).
    pub m: usize,
}

impl Arc {
    /// The arc a pair occupies for a given direction.
    pub fn of(pair: Pair, dir: Direction, m: usize) -> Arc {
        debug_assert!(pair.b < m);
        match dir {
            Direction::Cw => Arc {
                start: pair.a,
                len: pair.cw_len(m),
                m,
            },
            Direction::Ccw => Arc {
                start: pair.b,
                len: pair.ccw_len(m),
                m,
            },
        }
    }

    /// Iterates the link indices the arc covers.
    pub fn links(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).map(move |i| (self.start + i) % self.m)
    }

    /// Whether the arc covers fiber link `link`.
    pub fn covers(&self, link: usize) -> bool {
        let rel = (link + self.m - self.start) % self.m;
        rel < self.len
    }
}

/// Why an [`Assignment`] fails validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssignmentError {
    /// Two lightpaths share a channel on a fiber link.
    Conflict {
        /// The fiber link where the clash occurs.
        link: usize,
        /// The clashing channel index.
        channel: u16,
        /// The two offending pairs.
        pairs: (Pair, Pair),
    },
    /// A switch pair has no channel assigned.
    MissingPair(Pair),
    /// A pair appears more than once.
    DuplicatePair(Pair),
}

impl fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignmentError::Conflict {
                link,
                channel,
                pairs,
            } => write!(
                f,
                "channel {channel} used twice on link {link} by {} and {}",
                pairs.0, pairs.1
            ),
            AssignmentError::MissingPair(p) => write!(f, "pair {p} has no channel"),
            AssignmentError::DuplicatePair(p) => write!(f, "pair {p} assigned twice"),
        }
    }
}

impl std::error::Error for AssignmentError {}

/// A complete channel assignment for a ring of `m` switches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    m: usize,
    /// `(pair, direction, channel)` triples, one per unordered pair.
    entries: Vec<(Pair, Direction, u16)>,
}

impl Assignment {
    /// Builds an assignment from raw entries (validated lazily via
    /// [`Assignment::validate`]).
    pub fn from_entries(m: usize, entries: Vec<(Pair, Direction, u16)>) -> Self {
        Assignment { m, entries }
    }

    /// Ring size.
    pub fn ring_size(&self) -> usize {
        self.m
    }

    /// The raw `(pair, direction, channel)` triples.
    pub fn entries(&self) -> &[(Pair, Direction, u16)] {
        &self.entries
    }

    /// Number of distinct channels used.
    pub fn channels_used(&self) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for (_, _, c) in &self.entries {
            seen.insert(*c);
        }
        seen.len()
    }

    /// The entry for a given pair, if assigned.
    pub fn lookup(&self, pair: Pair) -> Option<(Direction, u16)> {
        self.entries
            .iter()
            .find(|(p, _, _)| *p == pair)
            .map(|(_, d, c)| (*d, *c))
    }

    /// Per-link lightpath counts (the "load" each fiber link carries).
    pub fn link_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.m];
        for (pair, dir, _) in &self.entries {
            for l in Arc::of(*pair, *dir, self.m).links() {
                loads[l] += 1;
            }
        }
        loads
    }

    /// Checks the two §3.1 invariants: every pair has exactly one channel,
    /// and no channel repeats on any link.
    pub fn validate(&self) -> Result<(), AssignmentError> {
        // Completeness and uniqueness.
        let mut seen = std::collections::BTreeSet::new();
        for (pair, _, _) in &self.entries {
            if !seen.insert(*pair) {
                return Err(AssignmentError::DuplicatePair(*pair));
            }
        }
        for pair in all_pairs(self.m) {
            if !seen.contains(&pair) {
                return Err(AssignmentError::MissingPair(pair));
            }
        }
        // Conflict-freedom: per (link, channel) at most one occupant.
        let mut occupant: std::collections::BTreeMap<(usize, u16), Pair> =
            std::collections::BTreeMap::new();
        for (pair, dir, ch) in &self.entries {
            for link in Arc::of(*pair, *dir, self.m).links() {
                if let Some(prev) = occupant.insert((link, *ch), *pair) {
                    return Err(AssignmentError::Conflict {
                        link,
                        channel: *ch,
                        pairs: (prev, *pair),
                    });
                }
            }
        }
        Ok(())
    }
}

/// How a [`ChannelPlan`] was computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanMethod {
    /// The paper's greedy heuristic (best over all ring start offsets).
    Greedy,
    /// The exact branch-and-bound solver (provably minimal).
    Exact,
}

/// A finished wavelength plan: assignment plus its mapping onto a physical
/// WDM grid.
///
/// "Wavelength planning is a one-time event that is done at design time.
/// Quartz does not need to dynamically reassign wavelengths at runtime."
/// (§3.1)
#[derive(Clone, Debug)]
pub struct ChannelPlan {
    /// The logical assignment.
    pub assignment: Assignment,
    /// How it was produced.
    pub method: PlanMethod,
    /// The WDM grid the channel indices map onto.
    pub grid: Grid,
}

impl ChannelPlan {
    /// Number of distinct wavelengths the plan consumes.
    pub fn wavelengths_used(&self) -> usize {
        self.assignment.channels_used()
    }

    /// Number of WDM mux/demux devices each switch needs, given a
    /// per-device channel capacity (80 for the paper's DWDM part).
    pub fn muxes_per_switch(&self, mux_channels: u16) -> usize {
        self.wavelengths_used().div_ceil(usize::from(mux_channels))
    }

    /// The physical wavelength of a pair's channel, if the plan fits the
    /// grid.
    pub fn wavelength_of(&self, pair: Pair) -> Option<quartz_optics::wavelength::Wavelength> {
        let (_, ch) = self.assignment.lookup(pair)?;
        self.grid.wavelength(ChannelId(ch))
    }

    /// The per-switch transceiver tuning sheet — the artifact §3.1 says
    /// the device manufacturer consumes: "wavelength planning and switch
    /// to DWDM cabling can be performed by the device manufacturer at
    /// the factory. Since we can use a fixed wavelength plan for all
    /// Quartz rings of the same size", this sheet *is* the ring's SKU.
    ///
    /// Returns one entry per switch listing `(peer, channel,
    /// wavelength)` for each of its transceivers, peer-sorted.
    pub fn tuning_sheet(&self) -> Vec<SwitchTuning> {
        let m = self.assignment.ring_size();
        let mut sheet: Vec<SwitchTuning> = (0..m)
            .map(|switch| SwitchTuning {
                switch,
                transceivers: Vec::with_capacity(m - 1),
            })
            .collect();
        for (pair, _, ch) in self.assignment.entries() {
            let w = self.grid.wavelength(ChannelId(*ch));
            sheet[pair.a].transceivers.push((pair.b, *ch, w));
            sheet[pair.b].transceivers.push((pair.a, *ch, w));
        }
        for s in &mut sheet {
            s.transceivers.sort_by_key(|&(peer, _, _)| peer);
        }
        sheet
    }

    /// Renders [`ChannelPlan::tuning_sheet`] as fixed-width text, one
    /// block per switch.
    pub fn tuning_sheet_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for s in self.tuning_sheet() {
            let _ = writeln!(out, "switch {}:", s.switch);
            for (peer, ch, w) in &s.transceivers {
                match w {
                    Some(w) => {
                        let _ = writeln!(out, "  -> peer {peer:>3}  channel {ch:>3}  {w}");
                    }
                    None => {
                        let _ = writeln!(out, "  -> peer {peer:>3}  channel {ch:>3}  (off-grid)");
                    }
                }
            }
        }
        out
    }

    /// Validates the assignment and that it fits within the grid capacity.
    pub fn validate(&self) -> Result<(), PlanError> {
        self.assignment.validate().map_err(PlanError::Assignment)?;
        let used = self.wavelengths_used();
        let cap = usize::from(self.grid.channel_count());
        if used > cap {
            return Err(PlanError::GridExceeded { used, cap });
        }
        Ok(())
    }
}

/// One switch's transceiver tuning list (see
/// [`ChannelPlan::tuning_sheet`]).
#[derive(Clone, Debug, PartialEq)]
pub struct SwitchTuning {
    /// The switch index on the ring.
    pub switch: usize,
    /// `(peer switch, channel index, wavelength)` per transceiver.
    pub transceivers: Vec<(usize, u16, Option<quartz_optics::wavelength::Wavelength>)>,
}

/// Errors from validating a [`ChannelPlan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The underlying assignment is invalid.
    Assignment(AssignmentError),
    /// More wavelengths are needed than the grid offers.
    GridExceeded {
        /// Wavelengths the assignment uses.
        used: usize,
        /// Channels available on the grid.
        cap: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Assignment(e) => write!(f, "invalid assignment: {e}"),
            PlanError::GridExceeded { used, cap } => {
                write!(f, "plan needs {used} wavelengths but the grid has {cap}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_normalizes_and_measures_arcs() {
        let p = Pair::new(7, 2);
        assert_eq!((p.a, p.b), (2, 7));
        assert_eq!(p.cw_len(10), 5);
        assert_eq!(p.ccw_len(10), 5);
        assert_eq!(Pair::new(0, 1).min_len(10), 1);
        assert_eq!(Pair::new(0, 9).min_len(10), 1);
    }

    #[test]
    #[should_panic(expected = "two distinct switches")]
    fn self_pair_panics() {
        let _ = Pair::new(3, 3);
    }

    #[test]
    fn all_pairs_counts() {
        assert_eq!(all_pairs(6).len(), 15);
        assert_eq!(all_pairs(33).len(), 528);
    }

    #[test]
    fn cw_arc_links() {
        let a = Arc::of(Pair::new(2, 5), Direction::Cw, 8);
        assert_eq!(a.links().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert!(a.covers(3));
        assert!(!a.covers(5));
    }

    #[test]
    fn ccw_arc_wraps() {
        let a = Arc::of(Pair::new(2, 5), Direction::Ccw, 8);
        assert_eq!(a.links().collect::<Vec<_>>(), vec![5, 6, 7, 0, 1]);
        assert!(a.covers(0));
        assert!(!a.covers(2));
    }

    #[test]
    fn arcs_of_both_directions_partition_the_ring() {
        let m = 9;
        let p = Pair::new(1, 6);
        let cw: std::collections::BTreeSet<_> = Arc::of(p, Direction::Cw, m).links().collect();
        let ccw: std::collections::BTreeSet<_> = Arc::of(p, Direction::Ccw, m).links().collect();
        assert!(cw.is_disjoint(&ccw));
        assert_eq!(cw.len() + ccw.len(), m);
    }

    #[test]
    fn validate_catches_conflict() {
        let m = 6;
        let mut entries = Vec::new();
        for pair in all_pairs(m) {
            entries.push((pair, Direction::Cw, 0u16)); // everyone on ch0
        }
        let a = Assignment::from_entries(m, entries);
        match a.validate() {
            Err(AssignmentError::Conflict { channel: 0, .. }) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn validate_catches_missing_and_duplicate() {
        let m = 4;
        let a = Assignment::from_entries(m, vec![(Pair::new(0, 1), Direction::Cw, 0)]);
        assert!(matches!(a.validate(), Err(AssignmentError::MissingPair(_))));
        let mut entries: Vec<_> = all_pairs(m)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, Direction::Cw, i as u16))
            .collect();
        entries.push((Pair::new(0, 1), Direction::Ccw, 99));
        let a = Assignment::from_entries(m, entries);
        assert!(matches!(
            a.validate(),
            Err(AssignmentError::DuplicatePair(_))
        ));
    }

    #[test]
    fn trivially_valid_assignment_passes() {
        // Give every pair its own channel: always conflict-free.
        let m = 5;
        let entries: Vec<_> = all_pairs(m)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, Direction::Cw, i as u16))
            .collect();
        let a = Assignment::from_entries(m, entries);
        assert!(a.validate().is_ok());
        assert_eq!(a.channels_used(), 10);
    }

    #[test]
    fn link_loads_sum_to_total_hops() {
        let m = 7;
        let entries: Vec<_> = all_pairs(m)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, Direction::Cw, i as u16))
            .collect();
        let a = Assignment::from_entries(m, entries);
        let total: usize = a.link_loads().iter().sum();
        let expect: usize = all_pairs(m).iter().map(|p| p.cw_len(m)).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn tuning_sheet_covers_every_transceiver() {
        use crate::ring::QuartzRing;
        let ring = QuartzRing::paper_config(9).unwrap();
        let plan = ring.assign_channels();
        let sheet = plan.tuning_sheet();
        assert_eq!(sheet.len(), 9);
        for s in &sheet {
            // A full mesh: one transceiver per peer.
            assert_eq!(s.transceivers.len(), 8, "switch {}", s.switch);
            // Peers sorted, no self-entries, every wavelength on-grid.
            let peers: Vec<usize> = s.transceivers.iter().map(|t| t.0).collect();
            let mut sorted = peers.clone();
            sorted.sort_unstable();
            assert_eq!(peers, sorted);
            assert!(!peers.contains(&s.switch));
            assert!(s.transceivers.iter().all(|t| t.2.is_some()));
        }
    }

    #[test]
    fn tuning_sheet_is_symmetric() {
        use crate::ring::QuartzRing;
        let plan = QuartzRing::paper_config(6).unwrap().assign_channels();
        let sheet = plan.tuning_sheet();
        // The channel switch a lists for peer b equals the one b lists
        // for a — both transceivers tune to the same λab.
        for s in &sheet {
            for &(peer, ch, _) in &s.transceivers {
                let back = sheet[peer]
                    .transceivers
                    .iter()
                    .find(|t| t.0 == s.switch)
                    .expect("symmetric entry");
                assert_eq!(back.1, ch);
            }
        }
    }

    #[test]
    fn tuning_sheet_text_renders() {
        use crate::ring::QuartzRing;
        let plan = QuartzRing::paper_config(4).unwrap().assign_channels();
        let text = plan.tuning_sheet_text();
        assert!(text.contains("switch 0:"));
        assert!(text.contains("switch 3:"));
        assert!(text.contains("nm"));
        assert_eq!(text.matches("-> peer").count(), 4 * 3);
    }
}
