//! Online (incremental) routing-and-wavelength assignment under churn.
//!
//! The offline solvers in [`greedy`](super::greedy) and
//! [`exact`](super::exact) assume an intact ring. This module keeps a
//! wavelength plan *live* while ring fibers are cut and repaired:
//!
//! * [`assign_degraded`] / [`assign_best_degraded`] — the paper's greedy
//!   heuristic generalized to a ring with dead fibers. A pair whose two
//!   arcs both cross dead fibers is *unroutable* and reported as such
//!   rather than failing the solve.
//! * [`OnlineRwa`] — the incremental controller. On each
//!   [`RingDelta`] it warm-starts from the incumbent plan: entries whose
//!   arcs survive are kept verbatim, only displaced or newly routable
//!   pairs are re-placed, and a budgeted branch-and-bound repack (fixed
//!   incumbent occupancy, bounded to the affected pairs) closes the gap
//!   to the from-scratch greedy count when first-fit overshoots. If the
//!   node budget runs out anywhere, the controller *falls back* to the
//!   fresh greedy plan — the plan degrades (a retune storm), never the
//!   solve.
//!
//! Invariant, enforced by construction and pinned by the differential
//! tests: after every delta the adopted plan is valid on the degraded
//! ring and uses **no more channels than a from-scratch greedy solve**
//! of the same degraded ring.
//!
//! Fiber `i` is the physical ring segment between switches `i` and
//! `(i+1) % m`; dead fibers are a `u64` bitmask (hence `m ≤ 64`, same
//! ceiling as the exact solver).

use super::{all_pairs, greedy, Arc, Assignment, Direction, Pair};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Bitmask of the fiber links an arc crosses.
fn arc_mask(arc: &Arc) -> u64 {
    let mut m = 0u64;
    for l in arc.links() {
        m |= 1 << l;
    }
    m
}

/// The candidate arcs of `pair` that avoid every dead fiber, shorter
/// arc first (clockwise on ties) — the same preference order as the
/// offline greedy.
fn allowed_arcs(pair: Pair, m: usize, dead: u64) -> Vec<(Direction, u64, usize)> {
    let cw = Arc::of(pair, Direction::Cw, m);
    let ccw = Arc::of(pair, Direction::Ccw, m);
    let ordered: [(Direction, Arc); 2] = if cw.len <= ccw.len {
        [(Direction::Cw, cw), (Direction::Ccw, ccw)]
    } else {
        [(Direction::Ccw, ccw), (Direction::Cw, cw)]
    };
    ordered
        .into_iter()
        .map(|(d, a)| (d, arc_mask(&a), a.len))
        .filter(|(_, mask, _)| mask & dead == 0)
        .collect()
}

/// Whether `pair` has at least one arc avoiding the dead fibers.
pub fn routable(pair: Pair, m: usize, dead: u64) -> bool {
    !allowed_arcs(pair, m, dead).is_empty()
}

/// Why a [`DegradedAssignment`] fails validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DegradedError {
    /// A pair appears in neither the entries nor the unroutable list.
    MissingPair(Pair),
    /// A pair appears more than once across the two lists.
    DuplicatePair(Pair),
    /// An entry's arc crosses a dead fiber.
    DeadFiber {
        /// The offending pair.
        pair: Pair,
        /// The dead fiber its arc crosses.
        link: usize,
    },
    /// A pair is listed unroutable but has a surviving arc.
    SpuriousUnroutable(Pair),
    /// Two lightpaths share a channel on a fiber link.
    Conflict {
        /// The fiber link where the clash occurs.
        link: usize,
        /// The clashing channel index.
        channel: u16,
        /// The two offending pairs.
        pairs: (Pair, Pair),
    },
}

impl fmt::Display for DegradedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradedError::MissingPair(p) => write!(f, "pair {p} is unaccounted for"),
            DegradedError::DuplicatePair(p) => write!(f, "pair {p} appears twice"),
            DegradedError::DeadFiber { pair, link } => {
                write!(f, "pair {pair} routed over dead fiber {link}")
            }
            DegradedError::SpuriousUnroutable(p) => {
                write!(f, "pair {p} marked unroutable but has a live arc")
            }
            DegradedError::Conflict {
                link,
                channel,
                pairs,
            } => write!(
                f,
                "channel {channel} used twice on link {link} by {} and {}",
                pairs.0, pairs.1
            ),
        }
    }
}

impl std::error::Error for DegradedError {}

/// A channel assignment for a ring with dead fibers: every pair is
/// either routed (entry with direction + channel) or explicitly
/// unroutable (both arcs cross dead fibers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradedAssignment {
    m: usize,
    entries: Vec<(Pair, Direction, u16)>,
    unroutable: Vec<Pair>,
}

impl DegradedAssignment {
    /// Ring size.
    pub fn ring_size(&self) -> usize {
        self.m
    }

    /// The routed `(pair, direction, channel)` triples.
    pub fn entries(&self) -> &[(Pair, Direction, u16)] {
        &self.entries
    }

    /// Pairs with no surviving arc, sorted.
    pub fn unroutable(&self) -> &[Pair] {
        &self.unroutable
    }

    /// Number of distinct channels used by the routed pairs.
    pub fn channels_used(&self) -> usize {
        let mut seen = BTreeSet::new();
        for (_, _, c) in &self.entries {
            seen.insert(*c);
        }
        seen.len()
    }

    /// The entry for a given pair, if routed.
    pub fn lookup(&self, pair: Pair) -> Option<(Direction, u16)> {
        self.entries
            .iter()
            .find(|(p, _, _)| *p == pair)
            .map(|(_, d, c)| (*d, *c))
    }

    /// Converts into a complete [`Assignment`] — only possible when no
    /// pair is unroutable (i.e. the ring has healed).
    pub fn into_assignment(self) -> Option<Assignment> {
        if self.unroutable.is_empty() {
            Some(Assignment::from_entries(self.m, self.entries))
        } else {
            None
        }
    }

    /// Checks the degraded-ring invariants against `dead`: every pair
    /// accounted for exactly once, no routed arc over a dead fiber, the
    /// unroutable list honest, and no channel reused on any link.
    pub fn validate(&self, dead: u64) -> Result<(), DegradedError> {
        let mut seen = BTreeSet::new();
        for (pair, _, _) in &self.entries {
            if !seen.insert(*pair) {
                return Err(DegradedError::DuplicatePair(*pair));
            }
        }
        for pair in &self.unroutable {
            if !seen.insert(*pair) {
                return Err(DegradedError::DuplicatePair(*pair));
            }
        }
        for pair in all_pairs(self.m) {
            if !seen.contains(&pair) {
                return Err(DegradedError::MissingPair(pair));
            }
        }
        for pair in &self.unroutable {
            if routable(*pair, self.m, dead) {
                return Err(DegradedError::SpuriousUnroutable(*pair));
            }
        }
        let mut occupant: BTreeMap<(usize, u16), Pair> = BTreeMap::new();
        for (pair, dir, ch) in &self.entries {
            let arc = Arc::of(*pair, *dir, self.m);
            for link in arc.links() {
                if dead & (1 << link) != 0 {
                    return Err(DegradedError::DeadFiber { pair: *pair, link });
                }
                if let Some(prev) = occupant.insert((link, *ch), *pair) {
                    return Err(DegradedError::Conflict {
                        link,
                        channel: *ch,
                        pairs: (prev, *pair),
                    });
                }
            }
        }
        Ok(())
    }
}

/// The paper's greedy heuristic on a ring with dead fibers, fixed scan
/// offset. Longest paths first; each routable pair takes its lowest
/// free channel over the surviving arcs (shorter arc preferred, the
/// other direction only when it admits a strictly lower channel); pairs
/// with no surviving arc land in the unroutable list.
///
/// # Panics
/// Panics unless `2 ≤ m ≤ 64` (dead fibers are a 64-bit mask).
pub fn assign_degraded(m: usize, dead: u64, start: usize) -> DegradedAssignment {
    assert!(
        (2..=64).contains(&m),
        "degraded assignment supports 2..=64 switches"
    );
    // `used[c]` = bitmask of links occupied on channel `c`.
    let mut used: Vec<u64> = Vec::new();
    let mut entries = Vec::with_capacity(m * (m - 1) / 2);
    let mut unroutable = Vec::new();

    let max_d = m / 2;
    for d in (1..=max_d).rev() {
        let count = if m.is_multiple_of(2) && d == m / 2 {
            m / 2
        } else {
            m
        };
        for idx in 0..count {
            let i = (start + idx) % m;
            let pair = Pair::new(i, (i + d) % m);
            let candidates = allowed_arcs(pair, m, dead);
            if candidates.is_empty() {
                unroutable.push(pair);
                continue;
            }
            let mut best: Option<(Direction, u64, usize)> = None;
            for (dir, mask, _) in candidates {
                let ch = (0..)
                    .find(|&c| used.get(c).is_none_or(|links| links & mask == 0))
                    .expect("an unopened channel is always free");
                let better = match &best {
                    None => true,
                    Some((_, _, best_ch)) => ch < *best_ch,
                };
                if better {
                    best = Some((dir, mask, ch));
                }
            }
            let (dir, mask, ch) = best.expect("at least one candidate");
            debug_assert!(ch <= u16::MAX as usize, "channel ids fit u16");
            while used.len() <= ch {
                used.push(0);
            }
            used[ch] |= mask;
            entries.push((pair, dir, ch as u16));
        }
    }
    unroutable.sort_unstable();
    DegradedAssignment {
        m,
        entries,
        unroutable,
    }
}

/// [`assign_degraded`] over every scan offset, keeping the result with
/// the fewest channels (ties: lowest offset) — the from-scratch
/// baseline the online controller must never exceed.
pub fn assign_best_degraded(m: usize, dead: u64) -> DegradedAssignment {
    (0..m)
        .map(|s| assign_degraded(m, dead, s))
        .min_by_key(|a| a.channels_used())
        .expect("m >= 2 yields at least one offset")
}

/// One topology transition the control plane reacts to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingDelta {
    /// Ring fiber `i` (between switches `i` and `i+1 mod m`) is cut.
    FiberCut(usize),
    /// Ring fiber `i` is spliced back.
    FiberRepair(usize),
}

impl RingDelta {
    /// The fiber index the delta touches.
    pub fn fiber(self) -> usize {
        match self {
            RingDelta::FiberCut(i) | RingDelta::FiberRepair(i) => i,
        }
    }

    /// Stable lower-snake name (`"cut"` / `"repair"`).
    pub fn as_str(self) -> &'static str {
        match self {
            RingDelta::FiberCut(_) => "cut",
            RingDelta::FiberRepair(_) => "repair",
        }
    }
}

/// How a re-solve concluded (the observable half of the
/// graceful-degradation contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolveOutcome {
    /// The incumbent-warm-started plan was adopted: surviving entries
    /// untouched, displaced pairs re-placed within the fresh greedy
    /// channel count.
    WarmStart,
    /// The node budget ran out mid-placement or mid-repack; the fresh
    /// greedy plan was adopted instead (more retunes, never a failure).
    BudgetFallback,
    /// The repack proved no warm-started completion could match the
    /// fresh greedy count, so the fresh plan was adopted.
    FreshSolve,
}

impl ResolveOutcome {
    /// Stable lower-snake name used in events and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            ResolveOutcome::WarmStart => "warm_start",
            ResolveOutcome::BudgetFallback => "budget_fallback",
            ResolveOutcome::FreshSolve => "fresh_solve",
        }
    }
}

/// A pair whose transceiver tuning changes: `(direction, channel)`
/// before and after the re-solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetuneOp {
    /// The affected switch pair.
    pub pair: Pair,
    /// Tuning before the re-solve.
    pub from: (Direction, u16),
    /// Tuning after the re-solve.
    pub to: (Direction, u16),
}

impl RetuneOp {
    /// How long the pair's lightpath is dark under `model`: the laser
    /// retune time when the channel moves, the bare re-lock window when
    /// only the arc direction flips, zero when nothing changed.
    pub fn dark_ns(&self, model: &quartz_optics::retune::RetuneModel) -> u64 {
        use quartz_optics::wavelength::ChannelId;
        if self.from.1 != self.to.1 {
            model.latency_ns(ChannelId(self.from.1), ChannelId(self.to.1))
        } else if self.from.0 != self.to.0 {
            model.base_ns
        } else {
            0
        }
    }
}

/// What one [`OnlineRwa::apply`] call did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolveReport {
    /// The delta that triggered the re-solve.
    pub trigger: RingDelta,
    /// How the solve concluded.
    pub outcome: ResolveOutcome,
    /// Channels used by the adopted plan.
    pub channels: usize,
    /// Channels a from-scratch greedy solve of the same degraded ring
    /// uses (always ≥ `channels` is *not* guaranteed — the invariant is
    /// `channels ≤ fresh_channels`).
    pub fresh_channels: usize,
    /// Pairs live before and after whose tuning changed.
    pub moved: Vec<RetuneOp>,
    /// Previously dark pairs now lit (`from` is their last tuning).
    pub restored: Vec<RetuneOp>,
    /// Pairs that lost their lightpath to this delta (dark from the
    /// moment of the cut).
    pub torn_down: Vec<Pair>,
    /// Pairs still dark after the re-solve.
    pub unroutable: usize,
    /// Search nodes spent (placement probes + repack nodes).
    pub nodes_used: u64,
}

impl ResolveReport {
    /// Total pairs whose transceivers retune (moved + restored-with-
    /// tuning-change).
    pub fn retune_count(&self) -> usize {
        self.moved.len() + self.restored.iter().filter(|op| op.from != op.to).count()
    }
}

/// Outcome of the budgeted warm placement + repack.
enum WarmOutcome {
    /// Placement (and repack, if needed) finished within budget.
    Done(Vec<(Pair, Direction, u16)>),
    /// Could not match the fresh channel count (proven).
    Overshoot,
    /// Node budget ran out.
    Budget,
}

/// The live RWA controller: incumbent plan + dead-fiber mask.
///
/// Apply a [`RingDelta`] per topology transition; read the adopted plan
/// back via [`OnlineRwa::plan`]. Deterministic: no randomness, and the
/// adopted plan is a pure function of the delta sequence.
#[derive(Clone, Debug)]
pub struct OnlineRwa {
    m: usize,
    dead: u64,
    node_budget: u64,
    plan: DegradedAssignment,
    /// Last tuning of every currently-unroutable pair, so a later
    /// restoration knows where its lasers are parked.
    parked: BTreeMap<Pair, (Direction, u16)>,
}

impl OnlineRwa {
    /// A controller for an intact ring of `m`, seeded with the offline
    /// greedy plan. `node_budget` bounds the incremental work per delta
    /// (0 forces [`ResolveOutcome::BudgetFallback`] on every delta).
    ///
    /// # Panics
    /// Panics unless `2 ≤ m ≤ 64`.
    pub fn new(m: usize, node_budget: u64) -> Self {
        assert!((2..=64).contains(&m), "online RWA supports 2..=64 switches");
        let seed_plan = greedy::assign_best(m);
        OnlineRwa {
            m,
            dead: 0,
            node_budget,
            plan: DegradedAssignment {
                m,
                entries: seed_plan.entries().to_vec(),
                unroutable: Vec::new(),
            },
            parked: BTreeMap::new(),
        }
    }

    /// Ring size.
    pub fn ring_size(&self) -> usize {
        self.m
    }

    /// Bitmask of currently dead fibers.
    pub fn dead_mask(&self) -> u64 {
        self.dead
    }

    /// The incumbent (currently adopted) plan.
    pub fn plan(&self) -> &DegradedAssignment {
        &self.plan
    }

    /// Per-delta search budget.
    pub fn node_budget(&self) -> u64 {
        self.node_budget
    }

    /// Reacts to one topology transition: updates the dead mask,
    /// re-solves incrementally (warm start → budgeted repack → fresh
    /// greedy fallback), adopts the winning plan, and reports every
    /// tuning change.
    ///
    /// # Panics
    /// Panics if the delta is redundant (cutting a dead fiber,
    /// repairing a live one) or names a fiber outside `0..m` — a caller
    /// bug that would otherwise silently desynchronize plans.
    pub fn apply(&mut self, delta: RingDelta) -> ResolveReport {
        let fiber = delta.fiber();
        assert!(fiber < self.m, "fiber {fiber} outside ring of {}", self.m);
        let bit = 1u64 << fiber;
        match delta {
            RingDelta::FiberCut(_) => {
                assert_eq!(self.dead & bit, 0, "fiber {fiber} already cut");
                self.dead |= bit;
            }
            RingDelta::FiberRepair(_) => {
                assert_ne!(self.dead & bit, 0, "fiber {fiber} not cut");
                self.dead &= !bit;
            }
        }
        let dead = self.dead;

        // The from-scratch baseline: bound, fallback plan, and the
        // differential-test oracle, all in one solve.
        let fresh = assign_best_degraded(self.m, dead);
        let fresh_channels = fresh.channels_used();

        // Partition the incumbent: entries whose arcs survive are kept
        // verbatim; the rest are torn down (and parked).
        let mut kept: Vec<(Pair, Direction, u16)> = Vec::new();
        let mut torn_down: Vec<Pair> = Vec::new();
        for &(p, d, c) in &self.plan.entries {
            if arc_mask(&Arc::of(p, d, self.m)) & dead == 0 {
                kept.push((p, d, c));
            } else {
                torn_down.push(p);
            }
        }
        torn_down.sort_unstable();

        // Pairs needing placement: displaced-but-routable plus
        // previously-unroutable-now-routable.
        let mut to_place: Vec<Pair> = Vec::new();
        let mut still_dark: Vec<Pair> = Vec::new();
        for &p in torn_down.iter().chain(self.plan.unroutable.iter()) {
            if routable(p, self.m, dead) {
                to_place.push(p);
            } else {
                still_dark.push(p);
            }
        }
        // Most-constrained first (longest surviving arc requirement),
        // stable on pair order — mirrors the exact solver's ordering.
        to_place.sort_unstable();
        to_place.sort_by_key(|p| {
            std::cmp::Reverse(
                allowed_arcs(*p, self.m, dead)
                    .iter()
                    .map(|(_, _, len)| *len)
                    .min()
                    .expect("to_place pairs are routable"),
            )
        });
        still_dark.sort_unstable();

        let mut nodes_used = 0u64;
        let warm = self.warm_place(&kept, &to_place, fresh_channels, &mut nodes_used);

        let (outcome, new_entries, new_unroutable) = match warm {
            WarmOutcome::Done(entries) => (ResolveOutcome::WarmStart, entries, still_dark.clone()),
            WarmOutcome::Overshoot => (
                ResolveOutcome::FreshSolve,
                fresh.entries.clone(),
                fresh.unroutable.clone(),
            ),
            WarmOutcome::Budget => (
                ResolveOutcome::BudgetFallback,
                fresh.entries.clone(),
                fresh.unroutable.clone(),
            ),
        };
        debug_assert_eq!(
            new_unroutable, still_dark,
            "fresh and warm solves must agree on unroutable pairs"
        );

        // Diff old state (incumbent + parked) against the adopted plan.
        let old: BTreeMap<Pair, (Direction, u16)> = self
            .plan
            .entries
            .iter()
            .map(|&(p, d, c)| (p, (d, c)))
            .collect();
        let was_dark: BTreeSet<Pair> = torn_down
            .iter()
            .chain(self.plan.unroutable.iter())
            .copied()
            .collect();
        let mut moved = Vec::new();
        let mut restored = Vec::new();
        for &(p, d, c) in &new_entries {
            let from = *old
                .get(&p)
                .or_else(|| self.parked.get(&p))
                .expect("every pair has a prior tuning");
            if was_dark.contains(&p) {
                restored.push(RetuneOp {
                    pair: p,
                    from,
                    to: (d, c),
                });
            } else if from != (d, c) {
                moved.push(RetuneOp {
                    pair: p,
                    from,
                    to: (d, c),
                });
            }
        }
        moved.sort_by_key(|op| op.pair);
        restored.sort_by_key(|op| op.pair);

        // Park the newly dark pairs; unpark the restored ones.
        for &p in &torn_down {
            let tuning = old[&p];
            self.parked.insert(p, tuning);
        }
        for op in &restored {
            self.parked.remove(&op.pair);
        }
        debug_assert_eq!(
            self.parked.keys().copied().collect::<Vec<_>>(),
            still_dark,
            "parked set must mirror the unroutable set"
        );

        self.plan = DegradedAssignment {
            m: self.m,
            entries: new_entries,
            unroutable: still_dark.clone(),
        };
        debug_assert!(self.plan.validate(dead).is_ok());
        let channels = self.plan.channels_used();
        debug_assert!(channels <= fresh_channels);

        ResolveReport {
            trigger: delta,
            outcome,
            channels,
            fresh_channels,
            moved,
            restored,
            torn_down,
            unroutable: still_dark.len(),
            nodes_used,
        }
    }

    /// Budgeted warm placement: first-fit each displaced pair over the
    /// kept occupancy; if the resulting distinct-channel count exceeds
    /// the fresh greedy's, fall through to a bounded DFS repack of the
    /// displaced pairs only (kept entries never move). Every channel
    /// probe costs one node against the budget.
    fn warm_place(
        &self,
        kept: &[(Pair, Direction, u16)],
        to_place: &[Pair],
        fresh_channels: usize,
        nodes_used: &mut u64,
    ) -> WarmOutcome {
        let m = self.m;
        let dead = self.dead;
        let budget = self.node_budget;

        let mut used: Vec<u64> = Vec::new();
        let kept_set: BTreeSet<u16> = kept.iter().map(|&(_, _, c)| c).collect();
        for &(p, d, c) in kept {
            let mask = arc_mask(&Arc::of(p, d, m));
            while used.len() <= usize::from(c) {
                used.push(0);
            }
            used[usize::from(c)] |= mask;
        }

        // Phase 1: first-fit.
        let mut placed: Vec<(Pair, Direction, u16)> = Vec::with_capacity(to_place.len());
        let mut ff_used = used.clone();
        let mut exhausted = false;
        'pairs: for &p in to_place {
            let mut best: Option<(Direction, u64, usize)> = None;
            for (dir, mask, _) in allowed_arcs(p, m, dead) {
                for c in 0.. {
                    if *nodes_used >= budget {
                        exhausted = true;
                        break 'pairs;
                    }
                    *nodes_used += 1;
                    if ff_used.get(c).is_none_or(|links| links & mask == 0) {
                        let better = match &best {
                            None => true,
                            Some((_, _, best_ch)) => c < *best_ch,
                        };
                        if better {
                            best = Some((dir, mask, c));
                        }
                        break;
                    }
                }
            }
            let (dir, mask, ch) = best.expect("routable pair always places");
            debug_assert!(ch <= u16::MAX as usize, "channel ids fit u16");
            while ff_used.len() <= ch {
                ff_used.push(0);
            }
            ff_used[ch] |= mask;
            placed.push((p, dir, ch as u16));
        }
        if exhausted {
            return WarmOutcome::Budget;
        }

        let mut distinct = kept_set.clone();
        for &(_, _, c) in &placed {
            distinct.insert(c);
        }
        if distinct.len() <= fresh_channels {
            let mut entries = kept.to_vec();
            entries.extend(placed);
            return WarmOutcome::Done(entries);
        }

        // Phase 2: bounded repack. Kept occupancy is fixed; search for
        // a placement of the displaced pairs whose total distinct
        // channel count is ≤ fresh_channels. Channels already paid for
        // (kept) are tried first; brand-new channels are opened through
        // one canonical fresh index at a time (they are interchangeable
        // while empty), capped so the distinct count can never exceed
        // the target.
        if kept_set.len() > fresh_channels {
            // Even the untouched entries alone overshoot — no warm
            // completion can match the fresh count.
            return WarmOutcome::Overshoot;
        }
        let arcs_of: PlacedArcs = to_place
            .iter()
            .map(|&p| (p, allowed_arcs(p, m, dead)))
            .collect();
        let mut repack = Repack {
            arcs_of,
            used,
            open: kept_set.iter().copied().collect(),
            kept_open: kept_set.len(),
            max_open: fresh_channels,
            nodes: *nodes_used,
            budget,
            out: Vec::with_capacity(to_place.len()),
        };
        let outcome = repack.dfs(0);
        *nodes_used = repack.nodes;
        match outcome {
            RepackOutcome::Found => {
                let mut entries = kept.to_vec();
                entries.extend(repack.out);
                WarmOutcome::Done(entries)
            }
            RepackOutcome::Infeasible => WarmOutcome::Overshoot,
            RepackOutcome::Budget => WarmOutcome::Budget,
        }
    }
}

enum RepackOutcome {
    Found,
    Infeasible,
    Budget,
}

/// A displaced pair together with its surviving arc choices
/// (direction, fiber mask, length), shorter arc first.
type PlacedArcs = Vec<(Pair, Vec<(Direction, u64, usize)>)>;

/// DFS state of the bounded repack (see [`OnlineRwa::apply`]).
struct Repack {
    /// Displaced pairs with their surviving arcs, in placement order.
    arcs_of: PlacedArcs,
    /// Per-channel-index occupancy mask (kept + placed so far).
    used: Vec<u64>,
    /// Channel indices currently carrying at least one lightpath,
    /// ascending — the deterministic try order.
    open: Vec<u16>,
    /// How many of `open` came from kept entries (never closed).
    kept_open: usize,
    /// Distinct-channel ceiling (the fresh greedy count).
    max_open: usize,
    nodes: u64,
    budget: u64,
    out: Vec<(Pair, Direction, u16)>,
}

impl Repack {
    fn dfs(&mut self, idx: usize) -> RepackOutcome {
        if idx == self.arcs_of.len() {
            return RepackOutcome::Found;
        }
        let arcs = self.arcs_of[idx].1.clone();
        let pair = self.arcs_of[idx].0;
        let mut budget_hit = false;

        for (dir, mask, _) in arcs {
            // Try every open channel (ascending), then — if the ceiling
            // allows — the lowest unopened index as the canonical fresh
            // channel (empty channels are interchangeable).
            let mut candidates: Vec<u16> = self.open.clone();
            if self.open.len() < self.max_open {
                let fresh = (0u16..)
                    .find(|c| !self.open.contains(c))
                    .expect("u16 space");
                candidates.push(fresh);
            }
            for c in candidates {
                if self.nodes >= self.budget {
                    return RepackOutcome::Budget;
                }
                self.nodes += 1;
                let ci = usize::from(c);
                if self.used.get(ci).copied().unwrap_or(0) & mask != 0 {
                    continue;
                }
                while self.used.len() <= ci {
                    self.used.push(0);
                }
                let newly_open = !self.open.contains(&c);
                self.used[ci] |= mask;
                if newly_open {
                    let at = self.open.partition_point(|&o| o < c);
                    self.open.insert(at, c);
                }
                self.out.push((pair, dir, c));
                match self.dfs(idx + 1) {
                    RepackOutcome::Found => return RepackOutcome::Found,
                    RepackOutcome::Budget => budget_hit = true,
                    RepackOutcome::Infeasible => {}
                }
                self.out.pop();
                self.used[ci] &= !mask;
                if newly_open {
                    let at = self.open.partition_point(|&o| o < c);
                    self.open.remove(at);
                    debug_assert!(self.open.len() >= self.kept_open);
                }
                if budget_hit {
                    return RepackOutcome::Budget;
                }
            }
        }
        RepackOutcome::Infeasible
    }
}

/// Default per-delta node budget: generous enough that warm starts on
/// paper-scale rings (m ≤ 35) never trip it, small enough that a
/// pathological repack degrades in microseconds, not minutes.
pub const DEFAULT_NODE_BUDGET: u64 = 200_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_with_no_dead_fibers_matches_plain_greedy() {
        for m in [4usize, 7, 9, 12] {
            let degraded = assign_best_degraded(m, 0);
            assert!(degraded.unroutable().is_empty());
            assert_eq!(
                degraded.channels_used(),
                greedy::assign_best(m).channels_used(),
                "m={m}"
            );
            degraded.validate(0).unwrap();
        }
    }

    #[test]
    fn single_cut_keeps_every_pair_routable() {
        // One dead fiber leaves the ring a path: every pair still has
        // the all-the-way-around arc.
        for m in [5usize, 8, 11] {
            for fiber in 0..m {
                let dead = 1u64 << fiber;
                let a = assign_best_degraded(m, dead);
                assert!(a.unroutable().is_empty(), "m={m} fiber={fiber}");
                a.validate(dead).unwrap();
            }
        }
    }

    #[test]
    fn two_cuts_partition_exactly_the_cross_pairs() {
        // Cutting fibers 0 and 3 on a ring of 8 splits switches
        // {1,2,3} from {4,...,0}; pairs straddling the split are
        // unroutable.
        let m = 8;
        let dead = (1u64 << 0) | (1u64 << 3);
        let a = assign_best_degraded(m, dead);
        a.validate(dead).unwrap();
        for p in a.unroutable() {
            let side = |s: usize| (1..=3).contains(&s);
            assert_ne!(side(p.a), side(p.b), "pair {p} should straddle the cut");
        }
        assert_eq!(a.unroutable().len(), 3 * 5);
    }

    #[test]
    fn validate_catches_dead_fiber_use() {
        let m = 6;
        let dead = 1u64 << 2;
        let entries: Vec<_> = all_pairs(m)
            .into_iter()
            .enumerate()
            .map(|(i, pair)| (pair, Direction::Cw, i as u16))
            .collect();
        let a = DegradedAssignment {
            m,
            entries,
            unroutable: vec![],
        };
        assert!(matches!(
            a.validate(dead),
            Err(DegradedError::DeadFiber { link: 2, .. })
        ));
    }

    #[test]
    fn validate_catches_spurious_unroutable() {
        let m = 5;
        let mut a = assign_best_degraded(m, 0);
        let (p, _, _) = a.entries.pop().unwrap();
        a.unroutable.push(p);
        assert_eq!(a.validate(0), Err(DegradedError::SpuriousUnroutable(p)));
    }

    #[test]
    fn cut_then_repair_round_trips_to_a_complete_valid_plan() {
        for m in [6usize, 9, 13] {
            let mut rwa = OnlineRwa::new(m, DEFAULT_NODE_BUDGET);
            let baseline = rwa.plan().channels_used();
            let r1 = rwa.apply(RingDelta::FiberCut(1));
            assert!(r1.channels <= r1.fresh_channels);
            rwa.plan().validate(rwa.dead_mask()).unwrap();
            let r2 = rwa.apply(RingDelta::FiberRepair(1));
            assert!(r2.channels <= r2.fresh_channels);
            assert_eq!(rwa.dead_mask(), 0);
            let plan = rwa.plan().clone().into_assignment().expect("ring healed");
            plan.validate().unwrap();
            assert!(
                plan.channels_used() <= baseline,
                "m={m}: healed plan {} > baseline {baseline}",
                plan.channels_used()
            );
        }
    }

    #[test]
    fn warm_start_keeps_surviving_entries_verbatim() {
        let m = 9;
        let mut rwa = OnlineRwa::new(m, DEFAULT_NODE_BUDGET);
        let before: BTreeMap<Pair, (Direction, u16)> = rwa
            .plan()
            .entries()
            .iter()
            .map(|&(p, d, c)| (p, (d, c)))
            .collect();
        let r = rwa.apply(RingDelta::FiberCut(4));
        if r.outcome == ResolveOutcome::WarmStart {
            let touched: BTreeSet<Pair> = r
                .moved
                .iter()
                .chain(r.restored.iter())
                .map(|op| op.pair)
                .chain(r.torn_down.iter().copied())
                .collect();
            for &(p, d, c) in rwa.plan().entries() {
                if !touched.contains(&p) {
                    assert_eq!(before[&p], (d, c), "untouched pair {p} moved");
                }
            }
        }
    }

    #[test]
    fn zero_budget_always_falls_back_and_never_aborts() {
        // A delta that requires placement work must fall back under a
        // zero budget; a delta with nothing to place (e.g. a second cut,
        // which only darkens pairs — the displaced pair's other arc
        // always crosses the first cut) may warm-start for free. Either
        // way the run never aborts and never beats the fresh count.
        let m = 10;
        let mut rwa = OnlineRwa::new(m, 0);
        let deltas = [
            (RingDelta::FiberCut(0), true),    // displaces routable pairs
            (RingDelta::FiberCut(5), false),   // only darkens cross pairs
            (RingDelta::FiberRepair(5), true), // relights them
            (RingDelta::FiberRepair(0), false),
        ];
        for (delta, needs_placement) in deltas {
            let r = rwa.apply(delta);
            if needs_placement {
                assert_eq!(r.outcome, ResolveOutcome::BudgetFallback, "{delta:?}");
                assert_eq!(r.nodes_used, 0);
            }
            assert!(r.channels <= r.fresh_channels);
            rwa.plan().validate(rwa.dead_mask()).unwrap();
        }
    }

    #[test]
    fn incremental_matches_from_scratch_on_channel_count() {
        // The differential invariant over a cut/repair interleaving:
        // after every delta, the adopted plan is valid on the degraded
        // ring and never uses more channels than a from-scratch greedy.
        let m = 11;
        let mut rwa = OnlineRwa::new(m, DEFAULT_NODE_BUDGET);
        let deltas = [
            RingDelta::FiberCut(2),
            RingDelta::FiberCut(7),
            RingDelta::FiberRepair(2),
            RingDelta::FiberCut(0),
            RingDelta::FiberRepair(7),
            RingDelta::FiberRepair(0),
        ];
        for delta in deltas {
            let r = rwa.apply(delta);
            rwa.plan().validate(rwa.dead_mask()).unwrap();
            let scratch = assign_best_degraded(m, rwa.dead_mask());
            assert_eq!(r.fresh_channels, scratch.channels_used());
            assert!(
                r.channels <= scratch.channels_used(),
                "{delta:?}: incremental {} > scratch {}",
                r.channels,
                scratch.channels_used()
            );
            assert_eq!(rwa.plan().unroutable(), scratch.unroutable());
        }
    }

    #[test]
    fn torn_down_pairs_are_restored_with_their_parked_tuning() {
        let m = 8;
        let mut rwa = OnlineRwa::new(m, DEFAULT_NODE_BUDGET);
        // Two cuts isolate switches 1..=3; cross pairs go dark.
        let r1 = rwa.apply(RingDelta::FiberCut(0));
        let r2 = rwa.apply(RingDelta::FiberCut(3));
        let dark: BTreeSet<Pair> = rwa.plan().unroutable().iter().copied().collect();
        assert!(!dark.is_empty());
        let torn: BTreeSet<Pair> = r1
            .torn_down
            .iter()
            .chain(r2.torn_down.iter())
            .copied()
            .collect();
        assert!(dark.iter().all(|p| torn.contains(p)));
        // Repairing fiber 3 relights them; each restored op's `from`
        // must be a real previous tuning, and `to` must be live.
        let r3 = rwa.apply(RingDelta::FiberRepair(3));
        let relit: BTreeSet<Pair> = r3.restored.iter().map(|op| op.pair).collect();
        assert!(dark.iter().all(|p| relit.contains(p)));
        rwa.plan().validate(rwa.dead_mask()).unwrap();
        assert!(rwa.plan().unroutable().is_empty());
    }

    #[test]
    fn reports_are_deterministic() {
        let run = || {
            let mut rwa = OnlineRwa::new(9, DEFAULT_NODE_BUDGET);
            vec![
                rwa.apply(RingDelta::FiberCut(3)),
                rwa.apply(RingDelta::FiberCut(6)),
                rwa.apply(RingDelta::FiberRepair(3)),
            ]
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "already cut")]
    fn redundant_cut_panics() {
        let mut rwa = OnlineRwa::new(5, 1_000);
        rwa.apply(RingDelta::FiberCut(1));
        rwa.apply(RingDelta::FiberCut(1));
    }
}
