//! The paper's greedy channel-assignment heuristic (§3.1.1).
//!
//! > "For all the paths between switch pairs (s, t), they are first sorted
//! > by their length. […] Our heuristic is to give priority to long paths
//! > to avoid fragmenting the available channels on the ring. Shorter
//! > paths are assigned later because short paths are less constrained on
//! > channels that are available on consecutive links. In each iteration,
//! > starting from a random location, the channels are greedily assigned
//! > to the paths until all paths are assigned or the channels are used
//! > up."
//!
//! The implementation is deterministic: the "random location" is an
//! explicit `start` offset. [`assign_best`] tries every offset and keeps
//! the cheapest result, which is what a designer doing one-time wavelength
//! planning would do (§3.1: planning "only requires seconds … even for a
//! ring size of 35").

use super::{Arc, Assignment, Direction, Pair};

/// Tracks which channels are free on which links.
struct UsageTable {
    m: usize,
    /// `used[channel][link]`.
    used: Vec<Vec<bool>>,
}

impl UsageTable {
    fn new(m: usize) -> Self {
        UsageTable {
            m,
            used: Vec::new(),
        }
    }

    fn is_free(&self, channel: usize, arc: &Arc) -> bool {
        match self.used.get(channel) {
            None => true, // channel never touched yet
            Some(links) => arc.links().all(|l| !links[l]),
        }
    }

    fn occupy(&mut self, channel: usize, arc: &Arc) {
        while self.used.len() <= channel {
            self.used.push(vec![false; self.m]);
        }
        for l in arc.links() {
            self.used[channel][l] = true;
        }
    }

    fn channels_allocated(&self) -> usize {
        self.used.len()
    }
}

/// The order in which pairs are assigned — the design choice §3.1.1
/// motivates ("give priority to long paths to avoid fragmenting the
/// available channels"). The alternatives exist for ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// The paper's heuristic: longest paths first.
    LongestFirst,
    /// The reverse: shortest paths first (fragments channels).
    ShortestFirst,
}

/// Runs the paper's greedy heuristic with a fixed starting offset for the
/// per-iteration scan.
///
/// Paths are processed longest-first (distance `⌊m/2⌋` down to 1); within
/// a distance class the scan starts at switch `start % m`. Each path takes
/// the shorter arc (clockwise on ties) and the lowest-indexed channel free
/// on all of that arc's links; if the other direction admits a strictly
/// lower channel, it is preferred — a cheap local improvement that stays
/// within the paper's "greedily assign" description.
pub fn assign(m: usize, start: usize) -> Assignment {
    assign_with_order(m, start, Ordering::LongestFirst)
}

/// [`assign`] with an explicit pair ordering (see [`Ordering`]).
pub fn assign_with_order(m: usize, start: usize, order: Ordering) -> Assignment {
    assert!(m >= 2, "a ring needs at least 2 switches");
    let mut table = UsageTable::new(m);
    let mut entries = Vec::with_capacity(m * (m - 1) / 2);

    let max_d = m / 2;
    let distances: Vec<usize> = match order {
        Ordering::LongestFirst => (1..=max_d).rev().collect(),
        Ordering::ShortestFirst => (1..=max_d).collect(),
    };
    for d in distances {
        // Pairs at distance d: (i, i+d) for i in 0..m, except distance
        // exactly m/2 on even rings, where each pair appears once.
        let count = if m.is_multiple_of(2) && d == m / 2 {
            m / 2
        } else {
            m
        };
        for idx in 0..count {
            let i = (start + idx) % m;
            let pair = Pair::new(i, (i + d) % m);

            // Candidate arcs, shorter first; on equal length, cw first.
            let cw = Arc::of(pair, Direction::Cw, m);
            let ccw = Arc::of(pair, Direction::Ccw, m);
            let candidates: [(Direction, Arc); 2] = if cw.len <= ccw.len {
                [(Direction::Cw, cw), (Direction::Ccw, ccw)]
            } else {
                [(Direction::Ccw, ccw), (Direction::Cw, cw)]
            };

            let mut best: Option<(Direction, Arc, usize)> = None;
            for (dir, arc) in candidates {
                let ch = (0..).find(|&c| table.is_free(c, &arc)).unwrap();
                let better = match &best {
                    None => true,
                    Some((_, _, best_ch)) => ch < *best_ch,
                };
                if better {
                    best = Some((dir, arc, ch));
                }
            }
            let (dir, arc, ch) = best.expect("at least one candidate");
            debug_assert!(ch <= u16::MAX as usize, "channel ids fit u16");
            table.occupy(ch, &arc);
            entries.push((pair, dir, ch as u16));
        }
    }

    debug_assert_eq!(table.channels_allocated(), {
        let mut mx = 0;
        for (_, _, c) in &entries {
            mx = mx.max(*c as usize + 1);
        }
        mx
    });
    Assignment::from_entries(m, entries)
}

/// Runs [`assign`] for every starting offset and returns the assignment
/// using the fewest channels (ties: lowest offset).
///
/// # Examples
///
/// ```
/// use quartz_core::channel::greedy;
///
/// let plan = greedy::assign_best(9);
/// plan.validate().unwrap();           // conflict-free, complete
/// assert_eq!(plan.channels_used(), 10); // the (M²−1)/8 optimum
/// ```
pub fn assign_best(m: usize) -> Assignment {
    (0..m)
        .map(|s| assign(m, s))
        .min_by_key(|a| a.channels_used())
        .expect("m >= 2 yields at least one offset")
}

/// Number of channels the greedy heuristic needs for a ring of `m`
/// (best over starting offsets).
pub fn wavelengths_required(m: usize) -> usize {
    if m < 2 {
        return 0;
    }
    assign_best(m).channels_used()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::bounds::load_lower_bound;

    #[test]
    fn every_result_is_valid() {
        for m in 2..=20 {
            let a = assign(m, 0);
            a.validate().unwrap_or_else(|e| panic!("m={m}: {e}"));
            assert_eq!(a.entries().len(), m * (m - 1) / 2);
        }
    }

    #[test]
    fn all_start_offsets_are_valid() {
        let m = 11;
        for s in 0..m {
            assign(m, s).validate().unwrap();
        }
    }

    #[test]
    fn greedy_respects_lower_bound() {
        for m in 2..=24 {
            let g = wavelengths_required(m);
            let lb = load_lower_bound(m);
            assert!(g >= lb, "m={m}: greedy {g} below bound {lb}");
        }
    }

    #[test]
    fn greedy_is_near_optimal_small_rings() {
        // Figure 5 shows the greedy curve hugging the ILP curve. The load
        // bound itself can be off by a little (m=4's optimum is 3 vs a
        // bound of 2), so allow a small additive-plus-relative slack.
        for m in 2..=24 {
            let g = wavelengths_required(m);
            let lb = load_lower_bound(m);
            assert!(
                g <= lb + (lb / 4).max(2),
                "m={m}: greedy {g} too far above bound {lb}"
            );
        }
    }

    #[test]
    fn paper_ring_35_fits_160_channels() {
        // §3.1: "the maximum ring size is 35 since current fiber cables
        // can only support 160 channels".
        let g = wavelengths_required(35);
        assert!(g <= 160, "greedy needs {g} > 160 channels at m=35");
    }

    #[test]
    fn tiny_rings() {
        assert_eq!(wavelengths_required(2), 1);
        assert_eq!(wavelengths_required(3), 1);
        // m=4: the two distance-2 pairs have complementary 2-link arcs
        // that always intersect, so they need distinct channels, and the
        // distance-1 pairs cannot all pack into the leftovers: optimum is
        // 3, one above the load bound of 2.
        assert_eq!(wavelengths_required(4), 3);
    }

    #[test]
    fn deterministic_for_fixed_start() {
        let a = assign(13, 5);
        let b = assign(13, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn long_paths_get_low_channels() {
        // Longest-first means distance ⌊m/2⌋ paths are placed while the
        // table is empty, so at least one of them sits on channel 0.
        let m = 12;
        let a = assign(m, 0);
        let found = a
            .entries()
            .iter()
            .any(|(p, _, c)| p.min_len(m) == m / 2 && *c == 0);
        assert!(found);
    }

    #[test]
    fn longest_first_beats_shortest_first_on_average() {
        // The §3.1.1 design-choice ablation: assigning short paths first
        // fragments the channel space; longest-first never loses in
        // aggregate.
        let mut longest_total = 0usize;
        let mut shortest_total = 0usize;
        for m in 4..=20 {
            let l = (0..m)
                .map(|s| assign_with_order(m, s, Ordering::LongestFirst).channels_used())
                .min()
                .unwrap();
            let sf = (0..m)
                .map(|s| assign_with_order(m, s, Ordering::ShortestFirst).channels_used())
                .min()
                .unwrap();
            longest_total += l;
            shortest_total += sf;
        }
        assert!(
            longest_total <= shortest_total,
            "longest-first {longest_total} vs shortest-first {shortest_total}"
        );
    }

    #[test]
    fn shortest_first_is_still_valid() {
        for m in 3..=12 {
            assign_with_order(m, 0, Ordering::ShortestFirst)
                .validate()
                .unwrap();
        }
    }
}
