//! Exact minimum-wavelength assignment via iterative-deepening
//! branch-and-bound.
//!
//! The paper formulates channel assignment as an ILP (§3.1, equations
//! 1–6) and solves small rings with an ILP solver. No ILP solver is
//! available as an offline crate, so this module computes the *same
//! optimum* with a combinatorial search:
//!
//! 1. start from the certified [load lower bound](crate::channel::bounds);
//! 2. if the greedy heuristic already meets it, that is the optimum;
//! 3. otherwise run a depth-first search for a feasible assignment with
//!    exactly `C` channels, for `C = LB, LB+1, …`, with channel-symmetry
//!    breaking (a pair may only open the next unused channel index) and
//!    longest-path-first variable ordering.
//!
//! The first `C` admitting a feasible assignment is provably minimal —
//! exactly what the ILP would report. A node budget guards against
//! pathological instances; if it trips, the result degrades gracefully to
//! the best known assignment with `status = BudgetExhausted`.

use super::bounds::load_lower_bound;
use super::{all_pairs, greedy, Arc, Assignment, Direction, Pair};

/// Outcome quality of [`solve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExactStatus {
    /// The returned channel count is provably minimal.
    Optimal,
    /// The node budget ran out; the returned assignment is the best found
    /// (an upper bound on the optimum).
    BudgetExhausted,
}

/// Result of the exact solver.
#[derive(Clone, Debug)]
pub struct ExactResult {
    /// The assignment achieving [`ExactResult::channels`].
    pub assignment: Assignment,
    /// Channels used by the assignment.
    pub channels: usize,
    /// Whether optimality was proven.
    pub status: ExactStatus,
}

/// Per-pair precomputed candidate arcs as link bitmasks.
struct Candidate {
    pair: Pair,
    /// `(direction, mask)`, shorter arc first.
    arcs: [(Direction, u64); 2],
}

fn arc_mask(arc: &Arc) -> u64 {
    let mut m = 0u64;
    for l in arc.links() {
        m |= 1 << l;
    }
    m
}

struct Search {
    candidates: Vec<Candidate>,
    /// `used[c]` = bitmask of links occupied on channel `c`.
    used: Vec<u64>,
    /// Highest channel index opened so far + 1.
    opened: usize,
    nodes: u64,
    budget: u64,
    out: Vec<(Pair, Direction, u16)>,
    /// Total `(channel, link)` slots available: `channels × m`.
    total_slots: usize,
    /// Slots consumed by arcs placed so far.
    used_slots: usize,
    /// `suffix_min[idx]` = Σ over candidates `idx..` of shortest-arc
    /// length — the minimum slots the remaining pairs will consume.
    suffix_min: Vec<usize>,
}

enum SearchOutcome {
    Found,
    Infeasible,
    Budget,
}

impl Search {
    fn dfs(&mut self, idx: usize) -> SearchOutcome {
        if idx == self.candidates.len() {
            return SearchOutcome::Found;
        }
        if self.nodes >= self.budget {
            return SearchOutcome::Budget;
        }
        self.nodes += 1;

        let cand_arcs = self.candidates[idx].arcs;
        let pair = self.candidates[idx].pair;
        let limit = self.used.len();
        let mut budget_hit = false;

        for (dir, mask) in cand_arcs {
            // Aggregate-slack pruning: the remaining pairs consume at
            // least their shortest-arc lengths, and this arc consumes
            // `mask.count_ones()` slots; together they must fit in the
            // unused (channel, link) slots. Longer-arc branches die here
            // almost immediately when the channel count is load-tight.
            let arc_slots = mask.count_ones() as usize;
            if self.used_slots + arc_slots + self.suffix_min[idx + 1] > self.total_slots {
                continue;
            }
            // Symmetry breaking: channels above `opened` are
            // interchangeable, so only the first of them may be tried.
            let try_until = (self.opened + 1).min(limit);
            debug_assert!(try_until <= u16::MAX as usize + 1, "channel ids fit u16");
            for c in 0..try_until {
                if self.used[c] & mask != 0 {
                    continue;
                }
                let was_opened = self.opened;
                self.used[c] |= mask;
                self.used_slots += arc_slots;
                self.opened = self.opened.max(c + 1);
                self.out.push((pair, dir, c as u16));
                match self.dfs(idx + 1) {
                    SearchOutcome::Found => return SearchOutcome::Found,
                    SearchOutcome::Budget => budget_hit = true,
                    SearchOutcome::Infeasible => {}
                }
                self.out.pop();
                self.used[c] &= !mask;
                self.used_slots -= arc_slots;
                self.opened = was_opened;
                if budget_hit {
                    return SearchOutcome::Budget;
                }
            }
        }
        SearchOutcome::Infeasible
    }
}

/// Searches for an assignment of `m`'s pairs into exactly `channels`
/// channels. Returns `Ok(Some(_))` on success, `Ok(None)` on proven
/// infeasibility, `Err(())` if the node budget ran out.
fn search_with(m: usize, channels: usize, budget: u64) -> Result<Option<Assignment>, ()> {
    let mut pairs = all_pairs(m);
    // Longest (most constrained) first; stable tie-break on pair order.
    pairs.sort_by_key(|p| std::cmp::Reverse(p.min_len(m)));

    let candidates: Vec<Candidate> = pairs
        .into_iter()
        .map(|pair| {
            let cw = Arc::of(pair, Direction::Cw, m);
            let ccw = Arc::of(pair, Direction::Ccw, m);
            let arcs = if cw.len <= ccw.len {
                [
                    (Direction::Cw, arc_mask(&cw)),
                    (Direction::Ccw, arc_mask(&ccw)),
                ]
            } else {
                [
                    (Direction::Ccw, arc_mask(&ccw)),
                    (Direction::Cw, arc_mask(&cw)),
                ]
            };
            Candidate { pair, arcs }
        })
        .collect();

    let n_pairs = candidates.len();
    let mut suffix_min = vec![0usize; n_pairs + 1];
    for i in (0..n_pairs).rev() {
        suffix_min[i] = suffix_min[i + 1] + candidates[i].pair.min_len(m);
    }
    let mut s = Search {
        candidates,
        used: vec![0u64; channels],
        opened: 0,
        nodes: 0,
        budget,
        out: Vec::with_capacity(n_pairs),
        total_slots: channels * m,
        used_slots: 0,
        suffix_min,
    };
    match s.dfs(0) {
        SearchOutcome::Found => Ok(Some(Assignment::from_entries(m, s.out))),
        SearchOutcome::Infeasible => Ok(None),
        SearchOutcome::Budget => Err(()),
    }
}

/// Computes the provably minimal channel count for a ring of `m`
/// switches, within `node_budget` search nodes per deepening level.
///
/// # Panics
/// Panics if `m < 2` or `m > 64` (the search uses 64-bit link masks; the
/// paper's rings max out at 35).
pub fn solve(m: usize, node_budget: u64) -> ExactResult {
    assert!(
        (2..=64).contains(&m),
        "exact solver supports 2..=64 switches"
    );
    let lb = load_lower_bound(m);
    let greedy_best = greedy::assign_best(m);
    let ub = greedy_best.channels_used();

    if ub == lb {
        return ExactResult {
            assignment: greedy_best,
            channels: lb,
            status: ExactStatus::Optimal,
        };
    }

    // Deepen from the lower bound. If a level's infeasibility proof blows
    // the node budget, keep probing higher levels — a feasible assignment
    // found there still improves the upper bound, it just is no longer a
    // proof of optimality.
    let mut all_proven = true;
    for c in lb..ub {
        match search_with(m, c, node_budget) {
            Ok(Some(a)) => {
                debug_assert!(a.validate().is_ok());
                return ExactResult {
                    channels: a.channels_used(),
                    assignment: a,
                    status: if all_proven {
                        ExactStatus::Optimal
                    } else {
                        ExactStatus::BudgetExhausted
                    },
                };
            }
            Ok(None) => continue, // proven infeasible at c; deepen
            Err(()) => all_proven = false,
        }
    }

    // Nothing below the greedy count was found feasible. If every level
    // was fully exhausted, greedy is provably optimal.
    ExactResult {
        assignment: greedy_best,
        channels: ub,
        status: if all_proven {
            ExactStatus::Optimal
        } else {
            ExactStatus::BudgetExhausted
        },
    }
}

/// Default node budget per deepening level used by the Figure 5 bench.
pub const DEFAULT_NODE_BUDGET: u64 = 20_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_rings_exact() {
        assert_eq!(solve(2, 1_000).channels, 1);
        assert_eq!(solve(3, 1_000).channels, 1);
        // m=4's optimum is one above the load bound: the two distance-2
        // pairs always intersect (their arcs tile the ring in two ways
        // that share a link), forcing a third channel.
        assert_eq!(solve(4, 100_000).channels, 3);
        assert_eq!(solve(5, 100_000).channels, 3);
    }

    #[test]
    fn exact_results_are_valid_and_bounded() {
        for m in 2..=13 {
            let r = solve(m, 2_000_000);
            assert!(r.channels >= load_lower_bound(m));
            r.assignment.validate().unwrap();
            assert_eq!(r.channels, r.assignment.channels_used());
        }
    }

    #[test]
    fn odd_rings_match_known_closed_form() {
        // The minimum wavelength count for all-to-all traffic on an
        // odd bidirectional ring is (M² − 1)/8 — our solver proves each
        // of these optimally, which also certifies the search itself.
        for m in [3usize, 5, 7, 9, 11, 13, 15] {
            let r = solve(m, 20_000_000);
            assert_eq!(r.status, ExactStatus::Optimal, "m={m} not proven");
            assert_eq!(r.channels, (m * m - 1) / 8, "m={m}");
        }
    }

    #[test]
    fn small_even_rings_proven() {
        // Even rings have a parity obstruction pushing the optimum above
        // the load bound (m=4: 3 > 2; m=6: 5 > 5? no — proven here).
        for (m, expect) in [(2usize, 1usize), (4, 3), (6, 5), (8, 9)] {
            let r = solve(m, 50_000_000);
            assert_eq!(r.status, ExactStatus::Optimal, "m={m} not proven");
            assert_eq!(r.channels, expect, "m={m}");
        }
    }

    #[test]
    fn exact_never_beaten_by_greedy() {
        for m in 2..=13 {
            let e = solve(m, 2_000_000);
            let g = greedy::wavelengths_required(m);
            assert!(e.channels <= g, "m={m}: exact {} > greedy {g}", e.channels);
        }
    }

    #[test]
    fn budget_exhaustion_degrades_gracefully() {
        // A 1-node budget cannot even expand the root when a search is
        // required. Find a size where greedy > LB so a search happens.
        for m in 4..=20 {
            let lb = load_lower_bound(m);
            let g = greedy::wavelengths_required(m);
            if g > lb {
                let r = solve(m, 1);
                assert_eq!(r.status, ExactStatus::BudgetExhausted);
                assert_eq!(r.channels, g);
                r.assignment.validate().unwrap();
                return;
            }
        }
        // If greedy is optimal everywhere in range, nothing to assert.
    }

    #[test]
    #[should_panic(expected = "2..=64")]
    fn oversized_ring_rejected() {
        let _ = solve(65, 10);
    }
}
