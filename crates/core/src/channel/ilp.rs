//! The paper's ILP formulation of channel assignment (§3.1, Eqs. 1–6),
//! as an explicit, checkable model.
//!
//! The paper formulates wavelength assignment as an integer linear
//! program over variables `C_{s,t,i}` (pair `(s,t)` uses channel `i` on
//! its clockwise path; `C_{t,s,i}` is the counter-clockwise choice) and
//! `L_{s,t,i,m}` (that lightpath occupies link `m`):
//!
//! * **Eq. 2** — every unordered pair picks exactly one (direction,
//!   channel): `∀ s<t, Σᵢ C_{s,t,i} + Σᵢ C_{t,s,i} = 1`;
//! * **Eq. 3** — link occupancy follows from path membership:
//!   `L_{s,t,i,m} = P_{s,t,m} · C_{s,t,i}`;
//! * **Eq. 4** — no channel is reused on a link:
//!   `∀ m,i, Σ_{s,t} L_{s,t,i,m} ≤ 1`;
//! * **Eq. 5** — `λᵢ` flags channels in use; **Eq. 1** minimizes `Σ λᵢ`.
//!
//! No ILP solver exists as an offline crate, so this module does not
//! *solve* the program — [`super::exact`] computes the same optimum by
//! branch-and-bound. What this module provides is the **model itself**:
//! [`IlpModel`] materializes every constraint, [`IlpModel::check`]
//! verifies an assignment against them variable-by-variable, and the
//! test suite proves that an assignment satisfies the ILP **iff** it
//! passes [`Assignment::validate`] — certifying that our combinatorial
//! solvers optimize exactly the paper's program.

use super::{all_pairs, Assignment, Direction, Pair};

/// Static path-membership data `P_{s,t,m}`: whether the clockwise path
/// of ordered pair `(s, t)` crosses link `m`.
pub fn path_membership(m_ring: usize, s: usize, t: usize, link: usize) -> bool {
    debug_assert!(s != t && s < m_ring && t < m_ring);
    // Clockwise from s to t covers links s, s+1, …, t−1 (mod M).
    let len = (t + m_ring - s) % m_ring;
    let rel = (link + m_ring - s) % m_ring;
    rel < len
}

/// One violated constraint of the program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IlpViolation {
    /// Eq. 2: the pair selected zero or multiple (direction, channel)
    /// combinations.
    Selection {
        /// The pair.
        pair: Pair,
        /// Number of set `C` variables found.
        count: usize,
    },
    /// Eq. 4: two lightpaths share `(link, channel)`.
    LinkCapacity {
        /// The link.
        link: usize,
        /// The channel.
        channel: u16,
        /// How many lightpaths occupy it.
        occupants: usize,
    },
}

/// The materialized ILP instance for a ring of `m` switches and `lambda`
/// available channels.
#[derive(Clone, Debug)]
pub struct IlpModel {
    /// Ring size `M`.
    pub m: usize,
    /// Available channels `Λ`.
    pub lambda: usize,
}

impl IlpModel {
    /// Builds the model.
    pub fn new(m: usize, lambda: usize) -> Self {
        assert!(m >= 2 && lambda >= 1);
        IlpModel { m, lambda }
    }

    /// Total binary `C` variables: ordered pairs × channels.
    pub fn c_variable_count(&self) -> usize {
        self.m * (self.m - 1) * self.lambda
    }

    /// Total `L` variables: ordered pairs × channels × links.
    pub fn l_variable_count(&self) -> usize {
        self.c_variable_count() * self.m
    }

    /// Converts an [`Assignment`] into the `C` variable view: the list of
    /// set `C_{s,t,i}` (ordered pair, channel) triples.
    fn set_c_vars(&self, a: &Assignment) -> Vec<(usize, usize, u16)> {
        a.entries()
            .iter()
            .map(|(pair, dir, ch)| match dir {
                // Clockwise from the lower endpoint = ordered (a, b).
                Direction::Cw => (pair.a, pair.b, *ch),
                // Counter-clockwise from a = clockwise from b.
                Direction::Ccw => (pair.b, pair.a, *ch),
            })
            .collect()
    }

    /// Objective value Σ λᵢ (Eq. 1): distinct channels used.
    pub fn objective(&self, a: &Assignment) -> usize {
        a.channels_used()
    }

    /// Checks every constraint of the program; returns all violations.
    pub fn check(&self, a: &Assignment) -> Vec<IlpViolation> {
        let mut violations = Vec::new();
        let c_vars = self.set_c_vars(a);

        // Eq. 2: exactly one selection per unordered pair.
        for pair in all_pairs(self.m) {
            let count = c_vars
                .iter()
                .filter(|(s, t, _)| Pair::new(*s, *t) == pair)
                .count();
            if count != 1 {
                violations.push(IlpViolation::Selection { pair, count });
            }
        }

        // Eqs. 3 + 4: derive L from P·C and check per-(link, channel)
        // capacity.
        debug_assert!(self.lambda <= u16::MAX as usize, "channel counts fit u16");
        for link in 0..self.m {
            for ch in 0..self.lambda as u16 {
                let occupants = c_vars
                    .iter()
                    .filter(|(s, t, i)| *i == ch && path_membership(self.m, *s, *t, link))
                    .count();
                if occupants > 1 {
                    violations.push(IlpViolation::LinkCapacity {
                        link,
                        channel: ch,
                        occupants,
                    });
                }
            }
        }
        violations
    }

    /// Whether `a` is a feasible point of the program.
    pub fn is_feasible(&self, a: &Assignment) -> bool {
        a.channels_used() <= self.lambda && self.check(a).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{exact, greedy, Arc};

    #[test]
    fn path_membership_matches_arc() {
        let m = 9;
        for s in 0..m {
            for t in 0..m {
                if s == t {
                    continue;
                }
                // Ordered (s, t) clockwise corresponds to the Cw arc of
                // the normalized pair when s < t, else the Ccw arc.
                let pair = Pair::new(s, t);
                let dir = if s == pair.a {
                    Direction::Cw
                } else {
                    Direction::Ccw
                };
                let arc = Arc::of(pair, dir, m);
                for link in 0..m {
                    assert_eq!(
                        path_membership(m, s, t, link),
                        arc.covers(link),
                        "s={s} t={t} link={link}"
                    );
                }
            }
        }
    }

    #[test]
    fn greedy_solutions_are_ilp_feasible() {
        for m in 2..=14 {
            let a = greedy::assign_best(m);
            let model = IlpModel::new(m, a.channels_used());
            assert!(model.is_feasible(&a), "m={m}: {:?}", model.check(&a));
        }
    }

    #[test]
    fn exact_solutions_are_ilp_feasible_and_optimal_objective() {
        for m in [5usize, 7, 8, 9, 11] {
            let r = exact::solve(m, 50_000_000);
            let model = IlpModel::new(m, r.channels);
            assert!(model.is_feasible(&r.assignment), "m={m}");
            assert_eq!(model.objective(&r.assignment), r.channels);
        }
    }

    #[test]
    fn conflicting_assignment_violates_eq4() {
        // Put two overlapping distance-2 arcs on the same channel.
        let m = 4;
        let entries = vec![
            (Pair::new(0, 2), Direction::Cw, 0u16), // links 0,1
            (Pair::new(1, 3), Direction::Cw, 0u16), // links 1,2 — clash on 1
            (Pair::new(0, 1), Direction::Cw, 1),
            (Pair::new(1, 2), Direction::Cw, 2),
            (Pair::new(2, 3), Direction::Cw, 1),
            (Pair::new(0, 3), Direction::Ccw, 2),
        ];
        let a = Assignment::from_entries(m, entries);
        let model = IlpModel::new(m, 3);
        let v = model.check(&a);
        assert!(
            v.iter().any(|x| matches!(
                x,
                IlpViolation::LinkCapacity {
                    link: 1,
                    channel: 0,
                    occupants: 2
                }
            )),
            "{v:?}"
        );
    }

    #[test]
    fn missing_pair_violates_eq2() {
        let m = 4;
        let a = Assignment::from_entries(m, vec![(Pair::new(0, 1), Direction::Cw, 0)]);
        let model = IlpModel::new(m, 3);
        let v = model.check(&a);
        let missing = v
            .iter()
            .filter(|x| matches!(x, IlpViolation::Selection { count: 0, .. }))
            .count();
        assert_eq!(missing, 5); // the 5 unassigned pairs of K4
    }

    #[test]
    fn ilp_feasibility_equals_validate() {
        // The equivalence that certifies our solvers optimize the
        // paper's exact program.
        for m in 3..=10 {
            for start in 0..m {
                let a = greedy::assign(m, start);
                let model = IlpModel::new(m, a.channels_used());
                assert_eq!(model.is_feasible(&a), a.validate().is_ok(), "m={m}");
            }
        }
    }

    #[test]
    fn variable_counts_match_formulation() {
        let model = IlpModel::new(6, 10);
        assert_eq!(model.c_variable_count(), 6 * 5 * 10);
        assert_eq!(model.l_variable_count(), 6 * 5 * 10 * 6);
    }
}
