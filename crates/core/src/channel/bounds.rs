//! Lower bounds on the number of wavelengths a ring needs.
//!
//! Any assignment routes each pair over an arc at least as long as its
//! shorter arc, so the total link-crossings are at least the sum of
//! shortest-arc lengths; averaging over the `m` links gives a load bound,
//! and since a channel can appear at most once per link, the busiest link's
//! load lower-bounds the channel count.
//!
//! For the paper's numbers: `m = 33` gives a bound of 136 (the paper's ILP
//! finds 137), and `m = 35` gives 153 — under the 160-channel fiber
//! ceiling, which is why §3.1 concludes "the maximum ring size is 35".

use super::all_pairs;

/// Sum over all pairs of the shorter-arc length — the minimum possible
/// total number of (lightpath, link) crossings.
pub fn total_min_hops(m: usize) -> usize {
    all_pairs(m).iter().map(|p| p.min_len(m)).sum()
}

/// The aggregate-load lower bound on the number of wavelengths:
/// `⌈ total_min_hops / m ⌉`.
///
/// Valid because (a) every assignment's total crossings are at least
/// [`total_min_hops`], (b) crossings spread over `m` links, so some link
/// carries at least the average, and (c) each wavelength appears at most
/// once per link.
pub fn load_lower_bound(m: usize) -> usize {
    if m < 2 {
        return 0;
    }
    total_min_hops(m).div_ceil(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_enumeration() {
        // Odd m: every distance d ∈ 1..=(m−1)/2 occurs m times.
        // Even m: distances 1..m/2−1 occur m times, m/2 occurs m/2 times.
        for m in 2..60 {
            let expect = if m % 2 == 1 {
                let h = (m - 1) / 2;
                m * h * (h + 1) / 2
            } else {
                let h = m / 2;
                m * (h - 1) * h / 2 + h * h
            };
            assert_eq!(total_min_hops(m), expect, "m={m}");
        }
    }

    #[test]
    fn paper_bound_at_33_is_136() {
        // §3.5 says a 33-switch ring needs 137 channels; the load bound
        // is one below that.
        assert_eq!(load_lower_bound(33), 136);
    }

    #[test]
    fn paper_bound_at_35_fits_160_channel_fiber() {
        assert_eq!(load_lower_bound(35), 153);
        assert!(load_lower_bound(35) <= 160);
        // And 36 switches cannot fit:
        assert!(load_lower_bound(36) > 160);
    }

    #[test]
    fn bound_grows_quadratically() {
        // ~ m²/8 asymptotically.
        for m in [16, 24, 32, 40] {
            let b = load_lower_bound(m) as f64;
            let q = (m * m) as f64 / 8.0;
            assert!((b - q).abs() / q < 0.1, "m={m}: {b} vs {q}");
        }
    }

    #[test]
    fn degenerate_rings() {
        assert_eq!(load_lower_bound(0), 0);
        assert_eq!(load_lower_bound(1), 0);
        assert_eq!(load_lower_bound(2), 1);
        assert_eq!(load_lower_bound(3), 1);
    }
}
