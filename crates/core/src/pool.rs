//! A std-only scoped thread pool with work-stealing deques and a
//! determinism contract, for the embarrassingly parallel experiment
//! sweeps (seeds × workloads × scenario points).
//!
//! The workspace is deliberately hermetic — no rayon — so this module
//! implements the minimum that the evaluation harness needs:
//!
//! * [`ThreadPool::par_map`] maps a closure over `0..units` with the
//!   configured number of worker threads. Work is dealt out as
//!   contiguous chunks onto per-worker deques; a worker pops from the
//!   back of its own deque and, when empty, steals from the front of a
//!   victim's (the classic work-stealing discipline, here with plain
//!   mutexed deques rather than lock-free Chase–Lev ones — the units we
//!   schedule are whole simulations, so queue overhead is noise).
//! * Results are merged **in unit-index order**, whatever order the
//!   workers finished in.
//!
//! ## Determinism contract
//!
//! Parallel output must be bit-identical to sequential output. Two rules
//! make that hold across every caller:
//!
//! 1. a unit never shares mutable state with another unit — each derives
//!    any randomness it needs from [`unit_seed`]`(base_seed, unit_index)`
//!    (the `unit_index`-th output of the splitmix64 stream seeded with
//!    `base_seed`), so no RNG stream is ever split across threads;
//! 2. reductions over unit results (sums of floats, appends to result
//!    rows) happen on the caller's thread, in unit-index order, over the
//!    vector [`ThreadPool::par_map`] returns.
//!
//! Under those rules `ThreadPool::new(1)` (today's sequential behavior)
//! and `ThreadPool::new(n)` produce byte-identical experiment rows; the
//! integration tests assert exactly that.
//!
//! A worker panic is propagated to the caller after the scope joins, so
//! `par_map` never silently drops units.

use crate::rng::splitmix64;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard, PoisonError};

/// Number of hardware threads (1 if the platform won't say).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The seed for parallel unit `unit_index` under `base_seed`: the
/// `unit_index`-th output of the splitmix64 stream seeded with
/// `base_seed`.
///
/// splitmix64 advances its state by a fixed odd constant per step, so
/// the stream can be indexed randomly: jumping the state by
/// `unit_index` increments and mixing once yields exactly the value a
/// sequential caller would reach after `unit_index` draws. Units can
/// therefore be evaluated in any order — or on any thread — and still
/// see the seed a sequential loop would have handed them.
pub fn unit_seed(base_seed: u64, unit_index: u64) -> u64 {
    let mut state = base_seed.wrapping_add(unit_index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    splitmix64(&mut state)
}

/// A fixed-width scoped thread pool (see the module docs).
///
/// The pool holds no threads between calls: each [`ThreadPool::par_map`]
/// spawns its workers inside a [`std::thread::scope`], which lets the
/// mapped closure borrow from the caller's stack without `'static`
/// bounds — experiment runners pass borrowed unit tables directly.
///
/// # Examples
///
/// ```
/// use quartz_core::pool::{unit_seed, ThreadPool};
///
/// let pool = ThreadPool::new(4);
/// let squares = pool.par_map(10, |i| i * i);
/// assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
///
/// // Per-unit seeding: identical results at any thread count.
/// let seq = ThreadPool::new(1).par_map(8, |i| unit_seed(42, i as u64));
/// let par = pool.par_map(8, |i| unit_seed(42, i as u64));
/// assert_eq!(seq, par);
/// ```
#[derive(Clone, Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool of `threads` workers; `0` means [`available_parallelism`].
    pub fn new(threads: usize) -> ThreadPool {
        ThreadPool {
            threads: if threads == 0 {
                available_parallelism()
            } else {
                threads
            },
        }
    }

    /// The single-threaded pool: `par_map` runs every unit on the
    /// calling thread, in order — exactly the pre-pool behavior.
    pub fn sequential() -> ThreadPool {
        ThreadPool::new(1)
    }

    /// Worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `0..units` and returns the results in unit-index
    /// order, regardless of which worker ran which unit when.
    ///
    /// With one thread (or at most one unit) this is a plain sequential
    /// map on the calling thread. Otherwise `min(threads, units)`
    /// scoped workers split the index range into contiguous chunks and
    /// work-steal across them until every deque is drained.
    ///
    /// # Panics
    /// Re-raises the first worker panic after all workers have stopped,
    /// so a panicking unit behaves like it would in a sequential loop.
    pub fn par_map<T, F>(&self, units: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || units <= 1 {
            return (0..units).map(f).collect();
        }
        let workers = self.threads.min(units);
        let chunk = units.div_ceil(workers);
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(units);
                let hi = ((w + 1) * chunk).min(units);
                Mutex::new((lo..hi).collect())
            })
            .collect();

        let f = &f;
        let deques = &deques;
        let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut done = Vec::with_capacity(chunk);
                        loop {
                            // Own deque first (back), then steal from a
                            // victim's front. A poisoned lock just means
                            // some unit panicked; the queued indices are
                            // still valid, so keep draining — the panic
                            // is re-raised at join time.
                            let mut job = deques[w]
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .pop_back();
                            if job.is_none() {
                                for v in 1..workers {
                                    let victim = (w + v) % workers;
                                    job = deques[victim]
                                        .lock()
                                        .unwrap_or_else(PoisonError::into_inner)
                                        .pop_front();
                                    if job.is_some() {
                                        break;
                                    }
                                }
                            }
                            match job {
                                Some(i) => done.push((i, f(i))),
                                None => return done,
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(part) => part,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });

        let mut slots: Vec<Option<T>> = (0..units).map(|_| None).collect();
        for (i, v) in parts.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "unit {i} ran twice");
            slots[i] = Some(v);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every unit runs exactly once"))
            .collect()
    }

    /// [`ThreadPool::par_map`] with observability: each unit receives a
    /// private [`quartz_obs::MetricsRegistry`], and the per-unit
    /// registries are folded **in unit-index order** on the caller's
    /// thread after the scope joins.
    ///
    /// That fold order is the whole point: which *worker* ran a unit is
    /// timing-dependent and must never surface, so the pool meters work
    /// per *unit* (`pool.units_completed`, plus whatever the closure
    /// records) and the aggregate — like every other `par_map`
    /// reduction — is bit-identical at any thread count.
    pub fn par_map_observed<T, F>(
        &self,
        units: usize,
        f: F,
    ) -> (Vec<T>, quartz_obs::MetricsRegistry)
    where
        T: Send,
        F: Fn(usize, &mut quartz_obs::MetricsRegistry) -> T + Sync,
    {
        let pairs = self.par_map(units, |i| {
            let mut unit_metrics = quartz_obs::MetricsRegistry::new();
            let v = f(i, &mut unit_metrics);
            (v, unit_metrics)
        });
        let mut merged = quartz_obs::MetricsRegistry::new();
        merged.inc("pool.par_map_calls", 1);
        let mut out = Vec::with_capacity(units);
        for (v, unit_metrics) in pairs {
            merged.inc("pool.units_completed", 1);
            merged.merge(&unit_metrics);
            out.push(v);
        }
        (out, merged)
    }
}

/// Shared view of the domain set handed to the coordinator closure of
/// [`ThreadPool::step_domains`] between windows. While the coordinator
/// runs, every worker is parked at a barrier, so each `lock` is
/// uncontended — the mutexes exist for the *stepping* phase, where each
/// worker holds only the domains it owns.
pub struct DomainCells<'a, D> {
    cells: &'a [Mutex<D>],
}

impl<D> DomainCells<'_, D> {
    /// Number of domains.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the domain set is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Locks domain `i`. Poison is tolerated: a worker panic is re-raised
    /// by [`ThreadPool::step_domains`] itself, so the coordinator may
    /// still inspect state on its way out.
    pub fn lock(&self, i: usize) -> MutexGuard<'_, D> {
        self.cells[i].lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl ThreadPool {
    /// Repeatedly advances a set of stateful domains to coordinator-chosen
    /// bounds — the synchronization skeleton of a conservatively
    /// lookahead-windowed sharded simulation.
    ///
    /// Each round, `control` runs on the calling thread (every worker
    /// parked at a barrier) and either returns `Some(bound)` — upon which
    /// every worker calls `step(&mut domain, bound)` for each domain it
    /// owns — or `None`, which ends the loop and returns the domains.
    /// Domain `i` is pinned to worker `i % workers` for the whole call,
    /// so a domain's steps are totally ordered and its state never
    /// migrates mid-round.
    ///
    /// With one thread (or one domain) no workers are spawned: `control`
    /// and `step` alternate on the calling thread, in domain-index
    /// order — the reference schedule parallel runs must reproduce.
    ///
    /// # Panics
    /// Re-raises the first `step` panic after all workers have parked,
    /// like [`ThreadPool::par_map`]. A panicking worker keeps meeting the
    /// barriers (without stepping) so the others are never left waiting.
    pub fn step_domains<D, S, C>(&self, domains: Vec<D>, step: S, mut control: C) -> Vec<D>
    where
        D: Send,
        S: Fn(&mut D, u64) + Sync,
        C: FnMut(&DomainCells<'_, D>) -> Option<u64>,
    {
        let cells: Vec<Mutex<D>> = domains.into_iter().map(Mutex::new).collect();
        let view = DomainCells { cells: &cells };
        let workers = self.threads.min(cells.len());

        if workers <= 1 {
            while let Some(bound) = control(&view) {
                for cell in &cells {
                    step(
                        &mut cell.lock().unwrap_or_else(PoisonError::into_inner),
                        bound,
                    );
                }
            }
        } else {
            let bound = AtomicU64::new(0);
            let stop = AtomicBool::new(false);
            let start = Barrier::new(workers + 1);
            let done = Barrier::new(workers + 1);
            let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
            let (step, cells_ref) = (&step, &cells);
            let (bound_ref, stop_ref) = (&bound, &stop);
            let (start_ref, done_ref, panic_ref) = (&start, &done, &panic_slot);

            std::thread::scope(|scope| {
                for w in 0..workers {
                    scope.spawn(move || {
                        let mut poisoned = false;
                        loop {
                            start_ref.wait();
                            if stop_ref.load(Ordering::Acquire) {
                                return;
                            }
                            let b = bound_ref.load(Ordering::Acquire);
                            if !poisoned {
                                // Step owned domains; on panic, stash the
                                // payload and keep meeting barriers so no
                                // peer (or the coordinator) deadlocks.
                                let r = catch_unwind(AssertUnwindSafe(|| {
                                    for i in (w..cells_ref.len()).step_by(workers) {
                                        let mut d = cells_ref[i]
                                            .lock()
                                            .unwrap_or_else(PoisonError::into_inner);
                                        step(&mut d, b);
                                    }
                                }));
                                if let Err(payload) = r {
                                    poisoned = true;
                                    let mut slot =
                                        panic_ref.lock().unwrap_or_else(PoisonError::into_inner);
                                    slot.get_or_insert(payload);
                                }
                            }
                            done_ref.wait();
                        }
                    });
                }
                loop {
                    let next = if panic_ref
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .is_some()
                    {
                        None
                    } else {
                        control(&view)
                    };
                    match next {
                        Some(b) => {
                            bound.store(b, Ordering::Release);
                            start.wait();
                            done.wait();
                        }
                        None => {
                            stop.store(true, Ordering::Release);
                            start.wait();
                            break;
                        }
                    }
                }
            });
            let payload = panic_slot
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(p) = payload {
                std::panic::resume_unwind(p);
            }
        }

        cells
            .into_iter()
            .map(|c| c.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect()
    }
}

impl Default for ThreadPool {
    /// One worker per hardware thread.
    fn default() -> Self {
        ThreadPool::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn observed_map_aggregates_identically_at_any_thread_count() {
        let run = |threads: usize| {
            let (out, metrics) = ThreadPool::new(threads).par_map_observed(16, |i, m| {
                m.inc("unit.work", (i as u64 + 1) * 3);
                m.set_gauge("unit.last", i as f64);
                m.observe("unit.series", i as u64 * 1_000, i as u64);
                i * 2
            });
            (out, metrics.to_ndjson())
        };
        let (out1, ndjson1) = run(1);
        assert_eq!(out1, (0..16).map(|i| i * 2).collect::<Vec<_>>());
        for threads in [2, 4, 8] {
            let (out_n, ndjson_n) = run(threads);
            assert_eq!(out_n, out1, "{threads} threads");
            // The rendered registry — counters, the last-unit gauge,
            // histogram buckets — is byte-identical: worker identity
            // never leaks into the aggregate.
            assert_eq!(ndjson_n, ndjson1, "{threads} threads");
        }
        assert!(ndjson1.contains("\"name\":\"pool.units_completed\",\"value\":16"));
        assert!(ndjson1.contains("\"name\":\"unit.last\",\"value\":15"));
    }

    #[test]
    fn empty_range_yields_empty_vec() {
        for threads in [1, 4] {
            let out: Vec<u32> = ThreadPool::new(threads).par_map(0, |_| unreachable!());
            assert!(out.is_empty());
        }
    }

    #[test]
    fn pool_of_one_degenerates_to_sequential_in_order() {
        // With one thread the units must run on the calling thread in
        // strictly ascending order (pre-pool behavior, observable via
        // side effects).
        let order = Mutex::new(Vec::new());
        let out = ThreadPool::sequential().par_map(10, |i| {
            order.lock().unwrap().push(i);
            i * 3
        });
        assert_eq!(out, (0..10).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn more_units_than_threads_covers_every_unit_once() {
        let hits = AtomicUsize::new(0);
        let out = ThreadPool::new(3).par_map(257, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i * i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
        assert_eq!(out, (0..257).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_units_still_works() {
        let out = ThreadPool::new(16).par_map(3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn results_merge_in_index_order_under_skewed_work() {
        // Early units do far more work than late ones, so workers
        // finish out of order; the result vector must not care.
        let out = ThreadPool::new(4).par_map(64, |i| {
            let spin = if i < 8 { 20_000 } else { 10 };
            let mut acc = i as u64;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        for (i, &(unit, _)) in out.iter().enumerate() {
            assert_eq!(i, unit);
        }
    }

    #[test]
    fn panic_in_worker_propagates() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            ThreadPool::new(4).par_map(32, |i| {
                if i == 17 {
                    panic!("unit 17 exploded");
                }
                i
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(msg.contains("unit 17 exploded"), "payload: {msg}");
    }

    #[test]
    fn unit_seed_indexes_the_splitmix_stream() {
        // unit_seed(base, i) must equal the i-th sequential draw.
        let base = 0xDEAD_BEEF_u64;
        let mut state = base;
        for i in 0..100 {
            let sequential = splitmix64(&mut state);
            assert_eq!(unit_seed(base, i), sequential, "index {i}");
        }
    }

    #[test]
    fn unit_seeds_are_pairwise_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(unit_seed(7, i)), "collision at {i}");
        }
    }

    #[test]
    fn parallel_equals_sequential_for_seeded_units() {
        let work = |i: usize| {
            let mut rng = crate::rng::StdRng::seed_from_u64(unit_seed(99, i as u64));
            (0..50)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let seq = ThreadPool::sequential().par_map(40, work);
        for threads in [2, 4, 8] {
            assert_eq!(seq, ThreadPool::new(threads).par_map(40, work));
        }
    }

    #[test]
    fn zero_thread_request_uses_available_parallelism() {
        assert_eq!(ThreadPool::new(0).threads(), available_parallelism());
        assert_eq!(ThreadPool::default().threads(), available_parallelism());
    }

    /// A toy "simulation": each domain accumulates (bound − state) per
    /// window. Windows advance 0 → 10 → 20 → 30, then stop.
    fn toy_step(d: &mut (u64, u64), bound: u64) {
        d.1 += bound - d.0;
        d.0 = bound;
    }

    #[test]
    fn step_domains_parallel_matches_sequential() {
        let run = |threads: usize| {
            let domains = vec![(0u64, 0u64); 7];
            let mut next = 0u64;
            ThreadPool::new(threads).step_domains(domains, toy_step, |cells| {
                assert_eq!(cells.len(), 7);
                next += 10;
                (next <= 30).then_some(next)
            })
        };
        let seq = run(1);
        assert_eq!(seq, vec![(30, 30); 7]);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), seq, "{threads} threads");
        }
    }

    #[test]
    fn step_domains_coordinator_sees_worker_writes_between_windows() {
        // Every window doubles each domain's accumulator; the control
        // closure reads the updated values before choosing the next
        // bound — a data dependency across the barrier.
        let domains: Vec<u64> = (1..=4).collect();
        let mut rounds = 0;
        let out = ThreadPool::new(4).step_domains(
            domains,
            |d, _| *d *= 2,
            |cells| {
                if rounds > 0 {
                    for i in 0..cells.len() {
                        let v = *cells.lock(i);
                        assert_eq!(v, (i as u64 + 1) << rounds, "round {rounds}");
                    }
                }
                rounds += 1;
                (rounds <= 3).then_some(rounds)
            },
        );
        assert_eq!(out, vec![8, 16, 24, 32]);
    }

    #[test]
    fn step_domains_returns_domains_on_immediate_stop() {
        let out = ThreadPool::new(4).step_domains(vec![1u32, 2, 3], |_, _| {}, |_| None);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn step_domains_propagates_worker_panics() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut windows = 0;
            ThreadPool::new(4).step_domains(
                vec![0u64; 8],
                |d, b| {
                    *d = b;
                    if b == 2 {
                        panic!("domain stepping exploded");
                    }
                },
                |_| {
                    windows += 1;
                    (windows <= 5).then_some(windows)
                },
            )
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        assert!(msg.contains("domain stepping exploded"), "payload: {msg}");
    }
}
