//! Distributing one logical channel plan over multiple physical fiber
//! rings — §3.5 made concrete.
//!
//! "A Quartz network with 33 switches requires 137 channels, we can use
//! two 80-channel WDM muxes/demuxes instead of a single mux/demux at each
//! switch. In this configuration, there will be two optical links between
//! any two nearby racks, forming two optical rings, and link failures are
//! less likely to partition the network."
//!
//! [`MultiRingPlan`] assigns every channel of an [`Assignment`] to a
//! physical ring (round-robin by channel index — balanced by
//! construction), validates that no ring exceeds its WDM device's channel
//! capacity, and answers the queries the fault model and the bill of
//! materials need.

use crate::channel::Assignment;
use std::fmt;

/// A channel-to-physical-ring mapping.
#[derive(Clone, Debug)]
pub struct MultiRingPlan {
    rings: usize,
    wdm_capacity: usize,
    /// `per_ring[r]` = channels assigned to physical ring `r`.
    per_ring: Vec<usize>,
}

/// Errors from building a multi-ring plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultiRingError {
    /// Some ring would carry more channels than one WDM device supports.
    CapacityExceeded {
        /// The overloaded ring.
        ring: usize,
        /// Channels assigned to it.
        channels: usize,
        /// The device capacity.
        capacity: usize,
    },
}

impl fmt::Display for MultiRingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiRingError::CapacityExceeded {
                ring,
                channels,
                capacity,
            } => write!(
                f,
                "physical ring {ring} needs {channels} channels but its WDM carries {capacity}"
            ),
        }
    }
}

impl std::error::Error for MultiRingError {}

impl MultiRingPlan {
    /// Spreads `assignment`'s channels over `rings` physical rings of
    /// `wdm_capacity`-channel devices (round-robin by channel index).
    pub fn new(
        assignment: &Assignment,
        rings: usize,
        wdm_capacity: usize,
    ) -> Result<Self, MultiRingError> {
        assert!(rings >= 1 && wdm_capacity >= 1);
        let total = assignment.channels_used();
        let mut per_ring = vec![0usize; rings];
        for ch in 0..total {
            per_ring[ch % rings] += 1;
        }
        for (ring, &channels) in per_ring.iter().enumerate() {
            if channels > wdm_capacity {
                return Err(MultiRingError::CapacityExceeded {
                    ring,
                    channels,
                    capacity: wdm_capacity,
                });
            }
        }
        Ok(MultiRingPlan {
            rings,
            wdm_capacity,
            per_ring,
        })
    }

    /// The minimum number of rings an assignment needs with this WDM.
    pub fn min_rings(assignment: &Assignment, wdm_capacity: usize) -> usize {
        assignment.channels_used().div_ceil(wdm_capacity).max(1)
    }

    /// Which physical ring carries channel `ch`.
    pub fn ring_of(&self, ch: u16) -> usize {
        usize::from(ch) % self.rings
    }

    /// Number of physical rings.
    pub fn rings(&self) -> usize {
        self.rings
    }

    /// Channels carried by ring `r`.
    pub fn channels_on(&self, r: usize) -> usize {
        self.per_ring[r]
    }

    /// Spare channel slots on the fullest ring — growth headroom before
    /// another fiber ring is needed.
    pub fn headroom(&self) -> usize {
        self.wdm_capacity - self.per_ring.iter().copied().max().unwrap_or(0)
    }

    /// The plan is balanced: ring loads differ by at most one channel.
    pub fn is_balanced(&self) -> bool {
        let max = self.per_ring.iter().max().unwrap_or(&0);
        let min = self.per_ring.iter().min().unwrap_or(&0);
        max - min <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::greedy;

    #[test]
    fn paper_33_ring_needs_two_wdm_devices() {
        let a = greedy::assign_best(33);
        assert_eq!(MultiRingPlan::min_rings(&a, 80), 2);
        // One ring cannot carry it…
        assert!(MultiRingPlan::new(&a, 1, 80).is_err());
        // …two can, balanced.
        let plan = MultiRingPlan::new(&a, 2, 80).unwrap();
        assert!(plan.is_balanced());
        assert_eq!(plan.channels_on(0) + plan.channels_on(1), a.channels_used());
        assert!(plan.headroom() > 0);
    }

    #[test]
    fn small_rings_fit_one_device() {
        let a = greedy::assign_best(9);
        let plan = MultiRingPlan::new(&a, 1, 80).unwrap();
        assert_eq!(plan.rings(), 1);
        assert_eq!(plan.channels_on(0), a.channels_used());
    }

    #[test]
    fn extra_rings_add_headroom_for_fault_tolerance() {
        // §3.5's resilience configuration: four rings for a 33-switch
        // network leaves each WDM mostly empty.
        let a = greedy::assign_best(33);
        let plan = MultiRingPlan::new(&a, 4, 80).unwrap();
        assert!(plan.is_balanced());
        assert!(plan.headroom() >= 80 - 36);
    }

    #[test]
    fn ring_of_is_round_robin() {
        let a = greedy::assign_best(7);
        let plan = MultiRingPlan::new(&a, 3, 80).unwrap();
        for ch in 0..a.channels_used() as u16 {
            assert_eq!(plan.ring_of(ch), usize::from(ch) % 3);
        }
    }

    #[test]
    fn error_reports_the_overload() {
        let a = greedy::assign_best(20);
        match MultiRingPlan::new(&a, 1, 10) {
            Err(MultiRingError::CapacityExceeded {
                ring: 0,
                channels,
                capacity: 10,
            }) => assert_eq!(channels, a.channels_used()),
            other => panic!("expected overload, got {other:?}"),
        }
    }
}
