//! Schedule-perturbation stress test for the work-stealing pool.
//!
//! The determinism contract says pool output is a pure function of
//! `(base_seed, unit_index)` — never of which worker ran a unit or in
//! what order units were stolen. This test attacks that claim directly:
//! each round injects a different pattern of artificial per-unit delays
//! (derived from a round-mixed seed), which scrambles the steal schedule,
//! while the unit's *result* RNG stays keyed to the round-independent
//! `unit_seed(BASE, i)`. Any leak of scheduling into results shows up as
//! a mismatch across rounds or worker counts.
//!
//! Under miri the loop shrinks (3 rounds, tiny spins) so the interpreter
//! can still exercise the cross-thread handoff in reasonable time.

use quartz_core::pool::{unit_seed, ThreadPool};
use quartz_core::rng::StdRng;

/// Base seed for unit results; fixed so every round and worker count
/// must reproduce the same vector.
const BASE: u64 = 42;

/// Busy-spin long enough to let other workers win steal races.
fn spin(iters: u64) {
    let mut acc = 0u64;
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc);
}

/// One perturbed run: `units` results where unit `i` first stalls for a
/// round-dependent random delay, then computes from its unit seed.
fn perturbed_run(pool: &ThreadPool, units: usize, round: u64) -> Vec<u64> {
    let max_spin: u64 = if cfg!(miri) { 64 } else { 4096 };
    pool.par_map(units, move |i| {
        // Delay keyed to the ROUND so every round schedules differently.
        let delay_seed = unit_seed(round.wrapping_mul(0x9e37_79b9), i as u64);
        spin(delay_seed % max_spin);
        // Result keyed to the UNIT only: must be identical in every round.
        let mut rng = StdRng::seed_from_u64(unit_seed(BASE, i as u64));
        let mut h = 0u64;
        for _ in 0..8 {
            h = h.rotate_left(7) ^ rng.next_u64();
        }
        h
    })
}

#[test]
fn pool_output_is_bit_identical_under_schedule_perturbation() {
    let rounds: u64 = if cfg!(miri) { 3 } else { 100 };
    let units = if cfg!(miri) { 16 } else { 64 };

    let reference = perturbed_run(&ThreadPool::sequential(), units, 0);
    for workers in [1usize, 2, 8] {
        let pool = ThreadPool::new(workers);
        for round in 0..rounds {
            let got = perturbed_run(&pool, units, round);
            assert_eq!(
                got, reference,
                "pool output diverged at workers={workers} round={round}"
            );
        }
    }
}

#[test]
fn pool_unit_seeds_do_not_collide_across_adjacent_bases() {
    // A weaker but fast sanity check riding along: the splitmix64 stream
    // indexing must keep distinct (base, index) pairs distinct, or the
    // perturbation test above could pass vacuously on constant output.
    let n = if cfg!(miri) { 32u64 } else { 1024 };
    let mut seen = std::collections::BTreeSet::new();
    for base in [BASE, BASE + 1] {
        for i in 0..n {
            assert!(
                seen.insert(unit_seed(base, i)),
                "unit_seed collision at base={base} i={i}"
            );
        }
    }
}
