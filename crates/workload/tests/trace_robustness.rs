//! Robustness tests for the ndjson trace parser: malformed input of any
//! kind must produce a line-numbered error (or parse cleanly), never a
//! panic, and never a silently-wrong flow.

use quartz_core::rng::StdRng;
use quartz_workload::Trace;

const HOSTS: usize = 16;

fn valid_trace() -> String {
    let mut out = String::new();
    out.push_str("# demo trace\n");
    for i in 0..20 {
        let src = i % HOSTS;
        let dst = (i + 3) % HOSTS;
        out.push_str(&format!(
            "{{\"src\":{src},\"dst\":{dst},\"bytes\":{},\"start_ns\":{},\"tag\":{}}}\n",
            1_000 + i * 7,
            i * 500,
            i % 4
        ));
    }
    out
}

#[test]
fn the_valid_trace_parses_and_round_trips() {
    let text = valid_trace();
    let trace = Trace::parse(&text, HOSTS).expect("valid trace parses");
    assert_eq!(trace.flows.len(), 20);
    let rendered = trace.to_ndjson();
    let again = Trace::parse(&rendered, HOSTS).expect("round trip parses");
    assert_eq!(trace, again);
}

#[test]
fn malformed_lines_fail_with_the_right_line_number() {
    // Each case: (bad line, expected substring). The bad line is
    // appended after two valid lines, so it is always line 3.
    let cases: &[(&str, &str)] = &[
        ("{\"src\":0,\"dst\":1,\"start_ns\":0}", "missing"),
        (
            "{\"src\":0,\"dst\":1,\"bytes\":NaN,\"start_ns\":0}",
            "line 3",
        ),
        (
            "{\"src\":0,\"dst\":1,\"bytes\":-5,\"start_ns\":0}",
            "negative",
        ),
        (
            "{\"src\":99,\"dst\":1,\"bytes\":10,\"start_ns\":0}",
            "out of range",
        ),
        (
            "{\"src\":0,\"dst\":99,\"bytes\":10,\"start_ns\":0}",
            "out of range",
        ),
        (
            "{\"src\":0,\"dst\":0,\"bytes\":10,\"start_ns\":0}",
            "line 3",
        ),
        ("{\"src\":0,\"dst\":1,\"bytes\":0,\"start_ns\":0}", "≥ 1"),
        (
            "{\"src\":0,\"dst\":1,\"bytes\":1.5,\"start_ns\":0}",
            "integer",
        ),
        (
            "{\"src\":0,\"dst\":1,\"bytes\":10,\"start_ns\":0,\"x\":1}",
            "line 3",
        ),
        (
            "{\"src\":0,\"dst\":1,\"bytes\":99999999999999999999999,\"start_ns\":0}",
            "line 3",
        ),
        ("not json at all", "line 3"),
        (
            "{\"src\":0,\"dst\":1,\"bytes\":10,\"start_ns\":0}trailing",
            "line 3",
        ),
    ];
    for (bad, want) in cases {
        let text = format!(
            "{{\"src\":0,\"dst\":1,\"bytes\":10,\"start_ns\":0}}\n\
             {{\"src\":1,\"dst\":2,\"bytes\":10,\"start_ns\":0}}\n\
             {bad}\n"
        );
        let err = Trace::parse(&text, HOSTS).expect_err(bad);
        assert_eq!(err.line, 3, "line number for {bad:?}: {err}");
        assert!(
            err.to_string().contains(want),
            "error for {bad:?} should mention {want:?}, got: {err}"
        );
    }
}

#[test]
fn seeded_corruption_never_panics() {
    // Fuzz-ish: mutate a valid trace in random ways — delete a byte,
    // insert a byte, flip a character — and require the parser to
    // either accept the result or return a line-numbered error. Any
    // panic fails the test harness.
    let base = valid_trace();
    let bytes: Vec<u8> = base.bytes().collect();
    let mut rng = StdRng::seed_from_u64(0xF422);
    let junk = b"{}\":,-.xX9 \tNaN";
    for _ in 0..5_000 {
        let mut mutated = bytes.clone();
        match rng.random_range(0..3) {
            0 => {
                let i = rng.random_range(0..mutated.len());
                mutated.remove(i);
            }
            1 => {
                let i = rng.random_range(0..mutated.len() + 1);
                let c = junk[rng.random_range(0..junk.len())];
                mutated.insert(i, c);
            }
            _ => {
                let i = rng.random_range(0..mutated.len());
                mutated[i] = junk[rng.random_range(0..junk.len())];
            }
        }
        let text = String::from_utf8_lossy(&mutated);
        match Trace::parse(&text, HOSTS) {
            Ok(trace) => {
                // If it still parses, every flow must still be valid.
                for f in &trace.flows {
                    assert!((f.src as usize) < HOSTS && (f.dst as usize) < HOSTS);
                    assert!(f.src != f.dst && f.bytes >= 1);
                }
            }
            Err(e) => {
                assert!(e.line >= 1, "error lines are 1-based: {e}");
                assert!(!e.to_string().is_empty());
            }
        }
    }
}

#[test]
fn loading_a_missing_file_is_an_error_not_a_panic() {
    let err = Trace::load(std::path::Path::new("/nonexistent/trace.ndjson"), HOSTS)
        .expect_err("missing file");
    assert!(err.to_string().contains("trace"), "{err}");
}
