//! Determinism tests: every workload driver must produce bit-identical
//! reports at any thread-pool width, and identical reports for
//! identical seeds.

use quartz_core::pool::ThreadPool;
use quartz_netsim::transport::TcpVariant;
use quartz_topology::builders::quartz_in_edge_and_core;
use quartz_topology::graph::{Network, NodeId};
use quartz_workload::{
    run_units, CollectiveAlgo, Trace, WorkloadConfig, WorkloadReport, WorkloadSpec,
};

fn fabric() -> (Network, Vec<NodeId>) {
    let c = quartz_in_edge_and_core(2, 3, 2, 2);
    (c.net, c.hosts)
}

fn render_all(reports: &[WorkloadReport]) -> String {
    reports.iter().map(|r| r.render()).collect()
}

fn assert_pool_width_invariant(spec: WorkloadSpec, variant: TcpVariant) {
    let name = spec.name();
    let cfg = WorkloadConfig::new(spec, variant, 0xA11CE);
    let units = 4;
    let baseline = render_all(&run_units(&cfg, units, &ThreadPool::new(1), fabric).unwrap());
    for jobs in [2, 8] {
        let wide = render_all(&run_units(&cfg, units, &ThreadPool::new(jobs), fabric).unwrap());
        assert_eq!(
            baseline, wide,
            "{name} over {jobs} threads diverged from sequential"
        );
    }
}

fn demo_trace() -> Trace {
    let mut text = String::new();
    for i in 0..30_u64 {
        text.push_str(&format!(
            "{{\"src\":{},\"dst\":{},\"bytes\":{},\"start_ns\":{}}}\n",
            i % 12,
            (i + 5) % 12,
            2_000 + i * 911,
            i * 1_000
        ));
    }
    Trace::parse(&text, 12).expect("demo trace is valid")
}

#[test]
fn trace_replay_is_pool_width_invariant() {
    assert_pool_width_invariant(WorkloadSpec::Trace(demo_trace()), TcpVariant::Reno);
}

#[test]
fn ring_allreduce_is_pool_width_invariant() {
    assert_pool_width_invariant(
        WorkloadSpec::AllReduce {
            algo: CollectiveAlgo::Ring,
            ranks: 0,
            bytes: 60_000,
        },
        TcpVariant::Dctcp,
    );
}

#[test]
fn tree_allreduce_is_pool_width_invariant() {
    assert_pool_width_invariant(
        WorkloadSpec::AllReduce {
            algo: CollectiveAlgo::Tree,
            ranks: 8,
            bytes: 60_000,
        },
        TcpVariant::Dctcp,
    );
}

#[test]
fn incast_is_pool_width_invariant() {
    assert_pool_width_invariant(
        WorkloadSpec::Incast {
            fanin: 6,
            bytes: 30_000,
            jitter_ns: 2_000,
        },
        TcpVariant::Reno,
    );
}

#[test]
fn same_seed_same_report_different_seed_different_report() {
    let spec = WorkloadSpec::Incast {
        fanin: 6,
        bytes: 30_000,
        jitter_ns: 2_000,
    };
    let pool = ThreadPool::new(2);
    let a = WorkloadConfig::new(spec.clone(), TcpVariant::Dctcp, 7);
    let b = WorkloadConfig::new(spec, TcpVariant::Dctcp, 8);
    let ra = render_all(&run_units(&a, 2, &pool, fabric).unwrap());
    let ra2 = render_all(&run_units(&a, 2, &pool, fabric).unwrap());
    let rb = render_all(&run_units(&b, 2, &pool, fabric).unwrap());
    assert_eq!(ra, ra2, "same seed must replay exactly");
    assert_ne!(ra, rb, "different seeds must diverge");
}
