//! Property tests for the heavy-tail flow-size samplers: the empirical
//! behavior of inverse-transform sampling must track the analytic CDF,
//! and a fixed seed must give a byte-identical sample stream.

use quartz_core::rng::StdRng;
use quartz_workload::{SizeDist, HADOOP, WEBSEARCH};

const N: usize = 200_000;

fn draw(dist: &SizeDist, seed: u64, n: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| dist.sample(&mut rng)).collect()
}

#[test]
fn empirical_mean_tracks_the_analytic_mean_across_seeds() {
    for dist in [WEBSEARCH, HADOOP] {
        let analytic = dist.mean_bytes();
        for seed in [1_u64, 0xBEEF, 0x5EED_5EED] {
            let samples = draw(&dist, seed, N);
            let empirical = samples.iter().map(|&s| s as f64).sum::<f64>() / N as f64;
            let rel = (empirical - analytic).abs() / analytic;
            // With 200k samples the standard error of the mean is well
            // under 1% even for hadoop's heavy tail; 5% is generous.
            assert!(
                rel < 0.05,
                "{} seed {seed}: empirical mean {empirical:.0} vs analytic {analytic:.0} \
                 (rel err {rel:.4})",
                dist.name
            );
        }
    }
}

#[test]
fn empirical_quantiles_track_the_analytic_quantiles() {
    for dist in [WEBSEARCH, HADOOP] {
        for seed in [2_u64, 77, 0xD15C0] {
            let mut samples = draw(&dist, seed, N);
            samples.sort_unstable();
            for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
                let analytic = dist.quantile(q);
                let idx = ((N - 1) as f64 * q).round() as usize;
                let empirical = samples[idx] as f64;
                let rel = (empirical - analytic).abs() / analytic;
                assert!(
                    rel < 0.05,
                    "{} seed {seed} q{q}: empirical {empirical:.0} vs analytic {analytic:.0}",
                    dist.name
                );
            }
        }
    }
}

#[test]
fn samples_never_leave_the_distribution_support() {
    for dist in [WEBSEARCH, HADOOP] {
        let lo = dist.points[0].0;
        let hi = dist.points[dist.points.len() - 1].0;
        for s in draw(&dist, 3, 50_000) {
            assert!(
                s >= lo && s <= hi,
                "{}: sample {s} outside [{lo},{hi}]",
                dist.name
            );
        }
    }
}

#[test]
fn fixed_seed_gives_a_byte_identical_sample_stream() {
    for dist in [WEBSEARCH, HADOOP] {
        let a = draw(&dist, 42, 10_000);
        let b = draw(&dist, 42, 10_000);
        assert_eq!(a, b, "{}: same seed must replay exactly", dist.name);
        let c = draw(&dist, 43, 10_000);
        assert_ne!(a, c, "{}: different seeds must diverge", dist.name);
    }
}

#[test]
fn heavy_tail_is_actually_heavy() {
    // The defining property the workloads exist to exercise: the top 10%
    // of flows carry the majority of the bytes.
    for dist in [WEBSEARCH, HADOOP] {
        let mut samples = draw(&dist, 9, N);
        samples.sort_unstable();
        let total: u128 = samples.iter().map(|&s| u128::from(s)).sum();
        let top10: u128 = samples[N - N / 10..].iter().map(|&s| u128::from(s)).sum();
        assert!(
            top10 * 2 > total,
            "{}: top decile carries {top10} of {total} bytes",
            dist.name
        );
    }
}
