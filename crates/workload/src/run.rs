//! The workload driver: offers a [`WorkloadSpec`] to a simulated fabric
//! and distills the run into a [`WorkloadReport`].
//!
//! One call = one simulator = one seed. Fan-out across experiment units
//! goes through [`run_units`], which re-seeds each unit with
//! [`unit_seed`] and merges on the pool in unit order, so any `--jobs`
//! width produces bit-identical reports.

use quartz_core::pool::{unit_seed, ThreadPool};
use quartz_core::rng::{SliceRandom, StdRng};
use quartz_netsim::sim::{FlowKind, SimConfig, Simulator};
use quartz_netsim::time::SimTime;
use quartz_netsim::transport::TcpVariant;
use quartz_obs::{Event, MemoryRecorder};
use quartz_topology::graph::{Network, NodeId};

use crate::collective::run_allreduce;
use crate::dist::{exp_gap_ns, mean_gap_ns};
use crate::report::{BucketAccum, WorkloadReport};
use crate::spec::WorkloadSpec;

/// Everything one workload run needs besides the topology.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// What traffic to offer.
    pub spec: WorkloadSpec,
    /// Congestion-control variant for every flow.
    pub variant: TcpVariant,
    /// Base RNG seed (also seeds the simulator's own randomness).
    pub seed: u64,
    /// Arrival window for open-loop (distribution) traffic: flows are
    /// offered in `[0, window)` and drain until `horizon`.
    pub window: SimTime,
    /// Hard simulation deadline — flows unfinished here are counted as
    /// offered-but-not-completed, never waited for.
    pub horizon: SimTime,
    /// Transport segment (packet) size, bytes.
    pub pkt_bytes: u32,
    /// ECN marking threshold for the fabric's queues (DCTCP's `K`).
    pub ecn_threshold_bytes: Option<u64>,
}

impl WorkloadConfig {
    /// A config with the subsystem's defaults: 1500 B segments, a
    /// 200 µs arrival window, a 20 ms horizon, and — for DCTCP — the
    /// repo-standard `K = 30 kB` marking threshold (Reno runs without
    /// ECN, as in experiment E1).
    pub fn new(spec: WorkloadSpec, variant: TcpVariant, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            spec,
            variant,
            seed,
            window: SimTime::from_us(200),
            horizon: SimTime::from_ms(20),
            pkt_bytes: 1_500,
            ecn_threshold_bytes: match variant {
                TcpVariant::Reno => None,
                TcpVariant::Dctcp => Some(30_000),
            },
        }
    }
}

/// Stable lowercase transport name for reports.
pub fn variant_name(v: TcpVariant) -> &'static str {
    match v {
        TcpVariant::Reno => "reno",
        TcpVariant::Dctcp => "dctcp",
    }
}

/// Parses a CLI transport name (`reno` / `dctcp`).
pub fn variant_by_name(name: &str) -> Result<TcpVariant, String> {
    match name {
        "reno" => Ok(TcpVariant::Reno),
        "dctcp" => Ok(TcpVariant::Dctcp),
        other => Err(format!("unknown transport '{other}' (reno|dctcp)")),
    }
}

/// Runs one workload on `net`. `hosts` are the traffic endpoints; trace
/// host ids index into this slice. Consumes the network (the simulator
/// owns it from here).
pub fn run_workload(
    net: Network,
    hosts: &[NodeId],
    cfg: &WorkloadConfig,
) -> Result<WorkloadReport, String> {
    run_inner(net, hosts, cfg, false).map(|(report, _)| report)
}

/// [`run_workload`] with a [`MemoryRecorder`] attached: also returns
/// the full event stream (flow opens/completions, collective steps,
/// per-packet events) for `--trace-out`. The report is bit-identical to
/// the untraced run's — observation never perturbs the simulation.
pub fn run_workload_traced(
    net: Network,
    hosts: &[NodeId],
    cfg: &WorkloadConfig,
) -> Result<(WorkloadReport, Vec<Event>), String> {
    run_inner(net, hosts, cfg, true)
}

fn run_inner(
    net: Network,
    hosts: &[NodeId],
    cfg: &WorkloadConfig,
    traced: bool,
) -> Result<(WorkloadReport, Vec<Event>), String> {
    if hosts.len() < 2 {
        return Err(format!(
            "workload needs ≥ 2 hosts, topology has {}",
            hosts.len()
        ));
    }
    // Access-link rate per node, captured before the simulator consumes
    // the network; the slowdown denominator (ideal serialization time)
    // is the flow's bytes clocked out at its source's access rate.
    let mut access_gbps = vec![0.0_f64; net.node_count()];
    for &h in hosts {
        let nbrs = net.neighbors(h);
        if nbrs.is_empty() {
            return Err(format!("host {h} has no access link"));
        }
        access_gbps[h.0 as usize] = net.link(nbrs[0].1).bandwidth_gbps;
    }
    let mut sim = Simulator::new(
        net,
        SimConfig {
            seed: cfg.seed,
            ecn_threshold_bytes: cfg.ecn_threshold_bytes,
            ..SimConfig::default()
        },
    );
    if traced {
        sim.set_recorder(Box::new(MemoryRecorder::new()));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut collective = None;
    match &cfg.spec {
        WorkloadSpec::Trace(trace) => {
            for f in &trace.flows {
                sim.add_flow(
                    hosts[f.src as usize],
                    hosts[f.dst as usize],
                    cfg.pkt_bytes,
                    FlowKind::Transport {
                        total_bytes: f.bytes,
                        variant: cfg.variant,
                    },
                    f.tag,
                    SimTime::from_ns(f.start_ns),
                );
            }
            sim.run(cfg.horizon);
        }
        WorkloadSpec::Dist { dist, load } => {
            let bisection_gbps = hosts.iter().map(|h| access_gbps[h.0 as usize]).sum::<f64>() / 2.0;
            let gap = mean_gap_ns(dist, *load, bisection_gbps);
            let mut t_ns = 0_u64;
            loop {
                t_ns += exp_gap_ns(&mut rng, gap);
                if t_ns >= cfg.window.ns() {
                    break;
                }
                let src = rng.random_range(0..hosts.len());
                // Uniform over the other hosts: draw from n−1 slots and
                // skip past the source.
                let mut dst = rng.random_range(0..hosts.len() - 1);
                if dst >= src {
                    dst += 1;
                }
                let bytes = dist.sample(&mut rng).max(1);
                sim.add_flow(
                    hosts[src],
                    hosts[dst],
                    cfg.pkt_bytes,
                    FlowKind::Transport {
                        total_bytes: bytes,
                        variant: cfg.variant,
                    },
                    0,
                    SimTime::from_ns(t_ns),
                );
            }
            sim.run(cfg.horizon);
        }
        WorkloadSpec::Incast {
            fanin,
            bytes,
            jitter_ns,
        } => {
            if fanin + 1 > hosts.len() {
                return Err(format!(
                    "incast fan-in {fanin} needs {} hosts, topology has {}",
                    fanin + 1,
                    hosts.len()
                ));
            }
            let receiver = hosts[rng.random_range(0..hosts.len())];
            let mut senders: Vec<NodeId> =
                hosts.iter().copied().filter(|&h| h != receiver).collect();
            senders.shuffle(&mut rng);
            senders.truncate(*fanin);
            for &s in &senders {
                let start = if *jitter_ns == 0 {
                    0
                } else {
                    rng.random::<u64>() % (jitter_ns + 1)
                };
                sim.add_flow(
                    s,
                    receiver,
                    cfg.pkt_bytes,
                    FlowKind::Transport {
                        total_bytes: *bytes,
                        variant: cfg.variant,
                    },
                    0,
                    SimTime::from_ns(start),
                );
            }
            sim.run(cfg.horizon);
        }
        WorkloadSpec::AllReduce { algo, ranks, bytes } => {
            let n = if *ranks == 0 || *ranks > hosts.len() {
                hosts.len()
            } else {
                *ranks
            };
            collective = Some(run_allreduce(
                &mut sim,
                &hosts[..n],
                *algo,
                *bytes,
                cfg.variant,
                cfg.pkt_bytes,
                0,
                cfg.horizon,
            )?);
        }
    }
    let flows = sim.flow_count();
    let mut offered_bytes = 0_u64;
    for f in 0..flows {
        let id = u32::try_from(f).expect("flow ids fit u32");
        offered_bytes += sim.flow_total_bytes(id).unwrap_or(0);
    }
    let mut acc = BucketAccum::default();
    for c in sim.flow_completions() {
        let bytes = sim.flow_total_bytes(c.flow).unwrap_or(0);
        let (src, _) = sim.flow_endpoints(c.flow).expect("completed flow exists");
        let gbps = access_gbps[src.0 as usize];
        // 1 Gb/s = 1 bit/ns, so ideal_ns = bits / gbps.
        let ideal_ns = if gbps > 0.0 {
            (bytes as f64 * 8.0 / gbps).max(1.0)
        } else {
            1.0
        };
        acc.record(bytes, c.fct_ns, ideal_ns as u64);
    }
    let completed = sim.flow_completions().len();
    let stats = sim.stats();
    let report = WorkloadReport {
        spec: cfg.spec.name(),
        transport: variant_name(cfg.variant),
        seed: cfg.seed,
        flows,
        completed,
        offered_bytes,
        generated: stats.generated,
        delivered: stats.delivered,
        dropped: stats.dropped,
        elapsed_ns: sim.now().ns(),
        buckets: acc.stats(),
        collective,
    };
    let events = if traced {
        sim.take_recorder().expect("recorder was attached").finish()
    } else {
        Vec::new()
    };
    Ok((report, events))
}

/// Runs `units` independent copies of the workload (unit `u` re-seeded
/// with [`unit_seed`]`(cfg.seed, u)`) on `pool`; reports come back in
/// unit order, bit-identical at any pool width. `build` constructs a
/// fresh `(network, hosts)` per unit (the simulator consumes it).
pub fn run_units<F>(
    cfg: &WorkloadConfig,
    units: usize,
    pool: &ThreadPool,
    build: F,
) -> Result<Vec<WorkloadReport>, String>
where
    F: Fn() -> (Network, Vec<NodeId>) + Sync,
{
    let results = pool.par_map(units, |u| {
        let mut unit_cfg = cfg.clone();
        unit_cfg.seed = unit_seed(cfg.seed, u as u64);
        let (net, hosts) = build();
        run_workload(net, &hosts, &unit_cfg)
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_topology::builders::quartz_in_edge_and_core;

    fn small_fabric() -> (Network, Vec<NodeId>) {
        let c = quartz_in_edge_and_core(1, 2, 2, 2);
        (c.net, c.hosts)
    }

    fn cfg(spec: WorkloadSpec) -> WorkloadConfig {
        WorkloadConfig::new(spec, TcpVariant::Dctcp, 0xC0FFEE)
    }

    #[test]
    fn incast_completes_and_buckets() {
        let (net, hosts) = small_fabric();
        let rep = run_workload(
            net,
            &hosts,
            &cfg(WorkloadSpec::Incast {
                fanin: 3,
                bytes: 20_000,
                jitter_ns: 0,
            }),
        )
        .unwrap();
        assert_eq!(rep.flows, 3);
        assert_eq!(rep.completed, 3);
        assert_eq!(rep.offered_bytes, 60_000);
        assert_eq!(rep.buckets.len(), 1);
        assert_eq!(rep.buckets[0].label, "10-100KB");
        assert!(rep.buckets[0].p50_slowdown >= 1.0);
    }

    #[test]
    fn incast_fanin_must_fit_the_fabric() {
        let (net, hosts) = small_fabric();
        let err = run_workload(
            net,
            &hosts,
            &cfg(WorkloadSpec::Incast {
                fanin: 64,
                bytes: 1_000,
                jitter_ns: 0,
            }),
        )
        .unwrap_err();
        assert!(err.contains("fan-in"), "{err}");
    }

    #[test]
    fn hadoop_offers_open_loop_traffic() {
        let (net, hosts) = small_fabric();
        // Mean hadoop flow ≈ 340 KB; at load 0.5 of this fabric's
        // 20 Gb/s bisection the mean gap is ≈ 270 µs, so a 3 ms window
        // admits a handful of flows with high probability.
        let mut c = cfg(WorkloadSpec::Dist {
            dist: crate::dist::HADOOP,
            load: 0.5,
        });
        c.window = SimTime::from_ms(3);
        let rep = run_workload(net, &hosts, &c).unwrap();
        assert!(rep.flows > 0, "window should admit at least one flow");
        assert!(rep.completed <= rep.flows);
        assert!(rep.offered_bytes > 0);
    }

    #[test]
    fn allreduce_produces_a_collective_report() {
        let (net, hosts) = small_fabric();
        let rep = run_workload(
            net,
            &hosts,
            &cfg(WorkloadSpec::AllReduce {
                algo: crate::collective::CollectiveAlgo::Ring,
                ranks: 0,
                bytes: 40_000,
            }),
        )
        .unwrap();
        let c = rep.collective.expect("collective report");
        assert_eq!(c.ranks, 4);
        assert_eq!(c.steps.len(), 6); // 2(N−1)
        assert!(c.total_ns > 0);
        assert_eq!(rep.completed, rep.flows);
    }

    #[test]
    fn traced_run_matches_untraced_and_carries_workload_events() {
        let spec = WorkloadSpec::Incast {
            fanin: 3,
            bytes: 5_000,
            jitter_ns: 1_000,
        };
        let (net_a, hosts_a) = small_fabric();
        let plain = run_workload(net_a, &hosts_a, &cfg(spec.clone())).unwrap();
        let (net_b, hosts_b) = small_fabric();
        let (traced, events) = run_workload_traced(net_b, &hosts_b, &cfg(spec)).unwrap();
        assert_eq!(plain.render(), traced.render());
        let starts = events.iter().filter(|e| e.tag() == "flow_start").count();
        let dones = events.iter().filter(|e| e.tag() == "flow_complete").count();
        assert_eq!(starts, 3);
        assert_eq!(dones, 3);
    }

    #[test]
    fn unit_fanout_is_pool_width_invariant() {
        let base = cfg(WorkloadSpec::Incast {
            fanin: 3,
            bytes: 10_000,
            jitter_ns: 500,
        });
        let seq = run_units(&base, 4, &ThreadPool::sequential(), small_fabric).unwrap();
        let par = run_units(&base, 4, &ThreadPool::new(4), small_fabric).unwrap();
        let render = |v: &[WorkloadReport]| v.iter().map(|r| r.render()).collect::<String>();
        assert_eq!(render(&seq), render(&par));
        // Units are re-seeded, so they are not carbon copies.
        assert_ne!(seq[0].seed, seq[1].seed);
    }
}
