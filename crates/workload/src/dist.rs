//! Empirical flow-size distributions and Poisson arrivals.
//!
//! Production DCN traffic is heavy-tailed: most flows are mice, most
//! *bytes* ride in elephants. Each distribution here is a piecewise-
//! linear CDF over flow size (the standard way measurement studies
//! publish them), sampled by inverse transform: draw `u ∈ [0,1)` from
//! the in-tree xoshiro PRNG, find the CDF segment containing `u`, and
//! interpolate linearly within it. Within a segment the size is
//! therefore uniform, which makes the analytic mean and quantiles exact
//! integrals the property tests can check against:
//!
//! * mean = Σ over segments `(c₁−c₀) · (b₀+b₁)/2`
//! * quantile(q) = `b₀ + (q−c₀)/(c₁−c₀) · (b₁−b₀)` on the segment with
//!   `c₀ ≤ q ≤ c₁`
//!
//! Arrivals are Poisson: exponential gaps with a mean chosen so the
//! offered load is a target fraction of the fabric's bisection
//! bandwidth (see [`mean_gap_ns`]).

use quartz_core::rng::StdRng;

/// A flow-size distribution as a piecewise-linear CDF.
///
/// `points` must start at probability 0, end at 1, and ascend strictly
/// in probability and non-strictly in size (checked by `debug_assert`s
/// in [`SizeDist::sample`] callers' tests; the two built-ins are
/// validated by unit test).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizeDist {
    /// Short lowercase name (`websearch`, `hadoop`) for reports.
    pub name: &'static str,
    /// `(size_bytes, cumulative_probability)` knots.
    pub points: &'static [(u64, f64)],
}

/// Web-search-style traffic (the DCTCP / pFabric "web search"
/// workload's shape): query and response flows of tens of KB dominate
/// the count, multi-MB index updates dominate the bytes.
pub const WEBSEARCH: SizeDist = SizeDist {
    name: "websearch",
    points: &[
        (5_000, 0.0),
        (10_000, 0.15),
        (20_000, 0.20),
        (30_000, 0.30),
        (50_000, 0.40),
        (80_000, 0.53),
        (200_000, 0.60),
        (1_000_000, 0.70),
        (2_000_000, 0.80),
        (5_000_000, 0.90),
        (10_000_000, 0.97),
        (30_000_000, 1.0),
    ],
};

/// Hadoop-style (data-mining) traffic: over half the flows are under a
/// few KB of control chatter, while a few-percent tail of multi-MB
/// shuffle transfers carries most of the bytes — a far heavier tail
/// than [`WEBSEARCH`].
pub const HADOOP: SizeDist = SizeDist {
    name: "hadoop",
    points: &[
        (100, 0.0),
        (500, 0.40),
        (1_000, 0.55),
        (5_000, 0.65),
        (20_000, 0.75),
        (100_000, 0.85),
        (1_000_000, 0.95),
        (10_000_000, 1.0),
    ],
};

impl SizeDist {
    /// Draws one flow size by inverse-transform sampling.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.random::<f64>();
        self.quantile(u).round() as u64
    }

    /// The analytic quantile: flow size at cumulative probability `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let pts = self.points;
        for w in pts.windows(2) {
            let (b0, c0) = w[0];
            let (b1, c1) = w[1];
            if q <= c1 {
                let span = c1 - c0;
                let frac = if span > 0.0 { (q - c0) / span } else { 0.0 };
                return b0 as f64 + frac * (b1 - b0) as f64;
            }
        }
        pts[pts.len() - 1].0 as f64
    }

    /// The analytic mean flow size in bytes: within each CDF segment
    /// the size is uniform, so each contributes its probability mass
    /// times its midpoint.
    pub fn mean_bytes(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let (b0, c0) = w[0];
                let (b1, c1) = w[1];
                (c1 - c0) * (b0 as f64 + b1 as f64) / 2.0
            })
            .sum()
    }

    /// Looks a distribution up by name.
    pub fn by_name(name: &str) -> Option<SizeDist> {
        match name {
            "websearch" => Some(WEBSEARCH),
            "hadoop" => Some(HADOOP),
            _ => None,
        }
    }
}

/// The mean inter-arrival gap (ns) that offers `load` of the fabric's
/// bisection bandwidth, given the distribution's mean flow size.
///
/// `bisection_gbps` is Σ host access rates / 2 — what an ideal
/// non-blocking fabric sustains under uniform random traffic — so
/// `load` is directly comparable across topologies. One Gb/s is one
/// bit/ns, hence `gap = mean_bits / (load · bisection_gbps)`.
pub fn mean_gap_ns(dist: &SizeDist, load: f64, bisection_gbps: f64) -> f64 {
    assert!(load > 0.0 && load <= 1.0, "load {load} out of (0,1]");
    assert!(bisection_gbps > 0.0, "bisection must be positive");
    dist.mean_bytes() * 8.0 / (load * bisection_gbps)
}

/// Draws an exponential inter-arrival gap with mean `mean_ns` (≥ 1 ns
/// so time always advances).
pub fn exp_gap_ns(rng: &mut StdRng, mean_ns: f64) -> u64 {
    let u: f64 = rng.random::<f64>().max(1e-12);
    (-mean_ns * u.ln()).max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_in_cdfs_are_well_formed() {
        for dist in [WEBSEARCH, HADOOP] {
            let pts = dist.points;
            assert!(pts.len() >= 2, "{}", dist.name);
            assert_eq!(pts[0].1, 0.0, "{} starts at p=0", dist.name);
            assert_eq!(pts[pts.len() - 1].1, 1.0, "{} ends at p=1", dist.name);
            for w in pts.windows(2) {
                assert!(w[0].1 < w[1].1, "{}: probability ascends", dist.name);
                assert!(w[0].0 < w[1].0, "{}: size ascends", dist.name);
            }
        }
    }

    #[test]
    fn quantile_hits_knots_and_interpolates() {
        let d = WEBSEARCH;
        assert_eq!(d.quantile(0.0), 5_000.0);
        assert_eq!(d.quantile(1.0), 30_000_000.0);
        assert_eq!(d.quantile(0.15), 10_000.0);
        // Midway through the first segment: halfway between the knots.
        let mid = d.quantile(0.075);
        assert!((mid - 7_500.0).abs() < 1e-6, "{mid}");
    }

    #[test]
    fn mean_is_the_segment_midpoint_sum() {
        // Two-segment toy: U(0,10) w.p. 0.5 and U(10,30) w.p. 0.5 has
        // mean 0.5·5 + 0.5·20 = 12.5.
        let toy = SizeDist {
            name: "toy",
            points: &[(0, 0.0), (10, 0.5), (30, 1.0)],
        };
        assert!((toy.mean_bytes() - 12.5).abs() < 1e-9);
        // Heavy tails: hadoop's mean is far above its median.
        assert!(HADOOP.mean_bytes() > 10.0 * HADOOP.quantile(0.5));
    }

    #[test]
    fn samples_stay_in_support() {
        let mut rng = StdRng::seed_from_u64(7);
        for dist in [WEBSEARCH, HADOOP] {
            let (lo, hi) = (dist.points[0].0, dist.points[dist.points.len() - 1].0);
            for _ in 0..1_000 {
                let s = dist.sample(&mut rng);
                assert!(s >= lo && s <= hi, "{}: {s}", dist.name);
            }
        }
    }

    #[test]
    fn load_scales_the_gap_inversely() {
        let g20 = mean_gap_ns(&WEBSEARCH, 0.2, 80.0);
        let g40 = mean_gap_ns(&WEBSEARCH, 0.4, 80.0);
        assert!((g20 / g40 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn by_name_round_trips() {
        assert_eq!(SizeDist::by_name("websearch").unwrap().name, "websearch");
        assert_eq!(SizeDist::by_name("hadoop").unwrap().name, "hadoop");
        assert!(SizeDist::by_name("bitcoin").is_none());
    }
}
