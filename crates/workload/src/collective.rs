//! ML collective schedules: ring and tree all-reduce.
//!
//! An all-reduce over `N` ranks is modeled as a dependency graph of
//! chunked transfers, driven by *delivery*: each bulk-synchronous step
//! injects its transport flows, the simulator runs until every one of
//! them has completed (via [`Simulator::run_until_samples`]), and the
//! next step starts at the simulated instant the last transfer of the
//! previous one finished — no wall-clock anywhere.
//!
//! * **Ring**: each rank holds `bytes`; the gradient is split into `N`
//!   chunks. A reduce-scatter of `N−1` steps (every rank sends one
//!   chunk to its right neighbor) is followed by an all-gather of
//!   another `N−1` steps, so `2(N−1)` steps of `N` concurrent
//!   `bytes/N`-sized transfers each. Per-step traffic is balanced but
//!   the step count grows with `N`.
//! * **Tree** (binomial): `⌈log₂N⌉` reduce levels — at level `l`, rank
//!   `r` with `r mod 2^(l+1) = 2^l` sends its full `bytes` to
//!   `r − 2^l` — then the same pairings in reverse broadcast the
//!   result. Fewer steps, but every transfer carries the full payload
//!   and the fan-in concentrates on low ranks.

use quartz_netsim::sim::{FlowKind, Simulator};
use quartz_netsim::time::SimTime;
use quartz_netsim::transport::TcpVariant;
use quartz_obs::Event;
use quartz_topology::graph::NodeId;

/// Which all-reduce schedule to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveAlgo {
    /// Ring reduce-scatter + all-gather.
    Ring,
    /// Binomial-tree reduce + broadcast.
    Tree,
}

impl CollectiveAlgo {
    /// Stable lowercase name (`ring` / `tree`).
    pub fn name(self) -> &'static str {
        match self {
            CollectiveAlgo::Ring => "ring",
            CollectiveAlgo::Tree => "tree",
        }
    }
}

/// One completed step of a collective schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollectiveStep {
    /// Zero-based step index.
    pub step: u32,
    /// Concurrent transfers in this step.
    pub transfers: u32,
    /// Bytes per transfer.
    pub bytes_per_transfer: u64,
    /// Simulated duration of the step, ns.
    pub elapsed_ns: u64,
}

/// The result of one all-reduce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollectiveReport {
    /// Schedule that ran.
    pub algo: CollectiveAlgo,
    /// Participating ranks.
    pub ranks: usize,
    /// Gradient bytes per rank.
    pub bytes: u64,
    /// Per-step timings, in schedule order.
    pub steps: Vec<CollectiveStep>,
    /// Total collective completion time, ns (sum of the steps as
    /// simulated — the steps are serialized, so this is also last step
    /// end minus first step start).
    pub total_ns: u64,
}

/// The transfers of one schedule step: `(sender, receiver, bytes)`.
type StepPlan = Vec<(usize, usize, u64)>;

/// Builds the ring schedule: `2(N−1)` steps, every rank sending one
/// `bytes/N` chunk to its right neighbor each step.
fn ring_steps(ranks: usize, bytes: u64) -> Vec<StepPlan> {
    let n = ranks;
    let chunk = bytes.div_ceil(n as u64).max(1);
    let step: StepPlan = (0..n).map(|r| (r, (r + 1) % n, chunk)).collect();
    std::iter::repeat_n(step, 2 * (n - 1)).collect()
}

/// Builds the binomial-tree schedule: reduce levels up, then the same
/// pairings reversed to broadcast.
fn tree_steps(ranks: usize, bytes: u64) -> Vec<StepPlan> {
    let n = ranks;
    let mut reduce: Vec<StepPlan> = Vec::new();
    let mut stride = 1usize;
    while stride < n {
        let mut plan = StepPlan::new();
        let mut r = stride;
        while r < n {
            if r % (2 * stride) == stride {
                plan.push((r, r - stride, bytes));
            }
            r += stride;
        }
        if !plan.is_empty() {
            reduce.push(plan);
        }
        stride *= 2;
    }
    let broadcast: Vec<StepPlan> = reduce
        .iter()
        .rev()
        .map(|plan| plan.iter().map(|&(s, d, b)| (d, s, b)).collect())
        .collect();
    reduce.into_iter().chain(broadcast).collect()
}

/// Runs one all-reduce over `ranks` (host nodes) on `sim`, starting at
/// `sim.now()`. Each step's flows are tagged `tag_base + step`, so the
/// caller must keep that tag range free. Returns an error if any step
/// fails to complete by `deadline`.
#[allow(clippy::too_many_arguments)]
pub fn run_allreduce(
    sim: &mut Simulator,
    ranks: &[NodeId],
    algo: CollectiveAlgo,
    bytes: u64,
    variant: TcpVariant,
    pkt_bytes: u32,
    tag_base: u32,
    deadline: SimTime,
) -> Result<CollectiveReport, String> {
    let n = ranks.len();
    if n < 2 {
        return Err(format!("all-reduce needs ≥ 2 ranks, got {n}"));
    }
    if bytes == 0 {
        return Err("all-reduce payload must be ≥ 1 byte".into());
    }
    let plans = match algo {
        CollectiveAlgo::Ring => ring_steps(n, bytes),
        CollectiveAlgo::Tree => tree_steps(n, bytes),
    };
    let of = u32::try_from(plans.len()).map_err(|_| "step count overflows u32".to_string())?;
    let t0 = sim.now();
    let mut steps = Vec::with_capacity(plans.len());
    for (s, plan) in plans.iter().enumerate() {
        let step = u32::try_from(s).expect("step index bounded by `of`");
        let tag = tag_base + step;
        let start = sim.now();
        for &(src, dst, b) in plan {
            sim.add_flow(
                ranks[src],
                ranks[dst],
                pkt_bytes,
                FlowKind::Transport {
                    total_bytes: b,
                    variant,
                },
                tag,
                start,
            );
        }
        if !sim.run_until_samples(tag, plan.len(), deadline) {
            return Err(format!(
                "{} all-reduce step {step}/{of} did not complete by the deadline \
                 ({} of {} transfers done)",
                algo.name(),
                sim.stats().count(tag),
                plan.len()
            ));
        }
        let elapsed_ns = sim.now().saturating_sub(start);
        sim.record_event(Event::CollectiveStep {
            t_ns: sim.now().ns(),
            algo: algo.name(),
            step,
            of,
            elapsed_ns,
        });
        steps.push(CollectiveStep {
            step,
            transfers: u32::try_from(plan.len()).expect("transfers ≤ ranks, fits u32"),
            bytes_per_transfer: plan[0].2,
            elapsed_ns,
        });
    }
    Ok(CollectiveReport {
        algo,
        ranks: n,
        bytes,
        steps,
        total_ns: sim.now().saturating_sub(t0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_schedule_shape() {
        let plans = ring_steps(4, 4_000);
        assert_eq!(plans.len(), 6); // 2(N−1)
        for plan in &plans {
            assert_eq!(plan.len(), 4);
            for &(s, d, b) in plan {
                assert_eq!(d, (s + 1) % 4);
                assert_eq!(b, 1_000);
            }
        }
    }

    #[test]
    fn tree_schedule_reduces_then_broadcasts() {
        let plans = tree_steps(8, 1_000);
        assert_eq!(plans.len(), 6); // log2(8) up + log2(8) down
                                    // Level 0 of the reduce: odd ranks send to their even neighbor.
        assert_eq!(
            plans[0],
            vec![(1, 0, 1_000), (3, 2, 1_000), (5, 4, 1_000), (7, 6, 1_000)]
        );
        // Last reduce level: rank 4 sends the half-tree total to 0.
        assert_eq!(plans[2], vec![(4, 0, 1_000)]);
        // Broadcast mirrors the reduce in reverse order and direction.
        assert_eq!(plans[3], vec![(0, 4, 1_000)]);
        assert_eq!(
            plans[5],
            vec![(0, 1, 1_000), (2, 3, 1_000), (4, 5, 1_000), (6, 7, 1_000)]
        );
    }

    #[test]
    fn tree_handles_non_power_of_two() {
        let plans = tree_steps(6, 600);
        // Every rank except 0 must send exactly once in the reduce half.
        let reduce_half = plans.len() / 2;
        let mut senders: Vec<usize> = plans[..reduce_half]
            .iter()
            .flat_map(|p| p.iter().map(|&(s, _, _)| s))
            .collect();
        senders.sort_unstable();
        assert_eq!(senders, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ring_chunk_rounds_up() {
        let plans = ring_steps(3, 1_000);
        assert_eq!(plans[0][0].2, 334); // ceil(1000/3)
    }
}
