//! `quartz-workload` — trace-driven traffic, heavy-tail generators,
//! incast storms, and ML collectives as a first-class subsystem.
//!
//! The Quartz paper's claims are about *latency under realistic
//! traffic*: §2 motivates the design with partition/aggregate
//! (incast-prone) services and heavy-tailed flow mixes, and §5
//! evaluates with fixed traffic patterns. This crate turns "realistic
//! traffic" into a reusable subsystem with four drivers behind one
//! [`WorkloadSpec`]:
//!
//! * **Trace replay** ([`trace`]) — an ndjson flow-trace format
//!   (`{"src":..,"dst":..,"bytes":..,"start_ns":..}`) with strict,
//!   line-numbered validation, replayed verbatim through the
//!   transport layer.
//! * **Empirical distributions** ([`dist`]) — websearch / hadoop
//!   heavy-tail flow-size CDFs, inverse-transform sampled, with
//!   Poisson arrivals scaled to a target fraction of bisection
//!   bandwidth.
//! * **Incast** — parameterized fan-in storms (N senders, one
//!   receiver, synchronized or jittered).
//! * **ML collectives** ([`collective`]) — ring and tree all-reduce
//!   as chunked, delivery-driven transfer schedules with per-step
//!   timings.
//!
//! Every driver reports flow completion times and slowdowns per size
//! bucket ([`report`]), runs bit-identically at any worker count
//! ([`run::run_units`]), and emits flow/collective events through the
//! observability layer.
//!
//! The original closed-loop latency scenarios predating this crate
//! live on in `quartz_netsim::workload`, re-exported here as
//! [`classic`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod collective;
pub mod dist;
pub mod report;
pub mod run;
pub mod spec;
pub mod trace;

/// The pre-existing closed-loop latency scenarios (ping-pong,
/// permutation, …) from the simulator crate.
pub use quartz_netsim::workload as classic;

pub use collective::{run_allreduce, CollectiveAlgo, CollectiveReport, CollectiveStep};
pub use dist::{SizeDist, HADOOP, WEBSEARCH};
pub use report::{BucketStat, WorkloadReport, BUCKETS};
pub use run::{
    run_units, run_workload, run_workload_traced, variant_by_name, variant_name, WorkloadConfig,
};
pub use spec::WorkloadSpec;
pub use trace::{Trace, TraceError, TraceFlow};
