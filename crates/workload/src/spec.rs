//! [`WorkloadSpec`]: the one enum behind all four workload drivers.

use std::path::Path;

use crate::collective::CollectiveAlgo;
use crate::dist::SizeDist;
use crate::trace::Trace;

/// What traffic to offer. One of the four driver kinds, fully
/// parameterized — the driver in [`crate::run`] consumes this plus a
/// topology and a seed.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// Replay a validated flow trace verbatim.
    Trace(Trace),
    /// Open-loop Poisson arrivals with sizes drawn from a heavy-tail
    /// distribution, scaled to a target load fraction of the fabric's
    /// bisection bandwidth.
    Dist {
        /// The flow-size distribution.
        dist: SizeDist,
        /// Offered load as a fraction of bisection bandwidth, `(0,1]`.
        load: f64,
    },
    /// A fan-in storm: `fanin` senders each push `bytes` at one
    /// receiver, starting together (or jittered).
    Incast {
        /// Number of concurrent senders.
        fanin: usize,
        /// Bytes per sender.
        bytes: u64,
        /// Each sender's start is drawn uniformly from `[0, jitter_ns]`
        /// (0 = perfectly synchronized).
        jitter_ns: u64,
    },
    /// A chunked all-reduce over `ranks` hosts.
    AllReduce {
        /// Schedule (ring or tree).
        algo: CollectiveAlgo,
        /// Participating hosts (0 = every host in the topology).
        ranks: usize,
        /// Gradient bytes per rank.
        bytes: u64,
    },
}

/// Default per-sender payload for `incast:<fanin>` spec strings.
pub const DEFAULT_INCAST_BYTES: u64 = 100_000;
/// Default gradient size for `allreduce:*` spec strings.
pub const DEFAULT_ALLREDUCE_BYTES: u64 = 1_000_000;
/// Default offered load for distribution spec strings.
pub const DEFAULT_LOAD: f64 = 0.4;

impl WorkloadSpec {
    /// Parses a CLI spec string:
    ///
    /// * `websearch` | `hadoop` — a named distribution at
    ///   [`DEFAULT_LOAD`];
    /// * `incast:<fanin>` — a synchronized fan-in storm;
    /// * `allreduce:ring` | `allreduce:tree` — a collective over every
    ///   host;
    /// * anything containing `/` or ending in `.ndjson` — a trace file,
    ///   read and validated against a topology with `hosts` hosts.
    pub fn parse(arg: &str, hosts: usize) -> Result<WorkloadSpec, String> {
        if let Some(dist) = SizeDist::by_name(arg) {
            return Ok(WorkloadSpec::Dist {
                dist,
                load: DEFAULT_LOAD,
            });
        }
        if let Some(rest) = arg.strip_prefix("incast:") {
            let fanin: usize = rest
                .parse()
                .map_err(|_| format!("bad incast fan-in '{rest}'"))?;
            if fanin == 0 {
                return Err("incast fan-in must be ≥ 1".into());
            }
            return Ok(WorkloadSpec::Incast {
                fanin,
                bytes: DEFAULT_INCAST_BYTES,
                jitter_ns: 0,
            });
        }
        if let Some(rest) = arg.strip_prefix("allreduce:") {
            let algo = match rest {
                "ring" => CollectiveAlgo::Ring,
                "tree" => CollectiveAlgo::Tree,
                other => return Err(format!("unknown all-reduce schedule '{other}' (ring|tree)")),
            };
            return Ok(WorkloadSpec::AllReduce {
                algo,
                ranks: 0,
                bytes: DEFAULT_ALLREDUCE_BYTES,
            });
        }
        if arg.contains('/') || arg.ends_with(".ndjson") {
            let trace = Trace::load(Path::new(arg), hosts).map_err(|e| e.to_string())?;
            if trace.flows.is_empty() {
                return Err(format!("trace '{arg}' contains no flows"));
            }
            return Ok(WorkloadSpec::Trace(trace));
        }
        Err(format!(
            "unknown spec '{arg}' (trace.ndjson | websearch | hadoop | incast:<fanin> | allreduce:ring|tree)"
        ))
    }

    /// Short stable name for reports (`trace`, `websearch`,
    /// `incast:12`, `allreduce:ring`, …).
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::Trace(_) => "trace".into(),
            WorkloadSpec::Dist { dist, .. } => dist.name.into(),
            WorkloadSpec::Incast { fanin, .. } => format!("incast:{fanin}"),
            WorkloadSpec::AllReduce { algo, .. } => format!("allreduce:{}", algo.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_non_file_specs() {
        assert!(matches!(
            WorkloadSpec::parse("websearch", 8),
            Ok(WorkloadSpec::Dist { .. })
        ));
        assert!(matches!(
            WorkloadSpec::parse("hadoop", 8),
            Ok(WorkloadSpec::Dist { .. })
        ));
        assert_eq!(
            WorkloadSpec::parse("incast:12", 8).unwrap(),
            WorkloadSpec::Incast {
                fanin: 12,
                bytes: DEFAULT_INCAST_BYTES,
                jitter_ns: 0
            }
        );
        assert!(matches!(
            WorkloadSpec::parse("allreduce:tree", 8),
            Ok(WorkloadSpec::AllReduce {
                algo: CollectiveAlgo::Tree,
                ..
            })
        ));
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "incast:",
            "incast:0",
            "incast:x",
            "allreduce:mesh",
            "webscale",
        ] {
            assert!(WorkloadSpec::parse(bad, 8).is_err(), "{bad}");
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            WorkloadSpec::parse("incast:4", 8).unwrap().name(),
            "incast:4"
        );
        assert_eq!(
            WorkloadSpec::parse("allreduce:ring", 8).unwrap().name(),
            "allreduce:ring"
        );
        assert_eq!(WorkloadSpec::parse("hadoop", 8).unwrap().name(), "hadoop");
    }
}
