//! The ndjson flow-trace format: one JSON object per line, strict
//! validation, line-numbered errors.
//!
//! ```text
//! {"src":0,"dst":5,"bytes":20000,"start_ns":1000}
//! {"src":3,"dst":1,"bytes":512,"start_ns":2500,"tag":7}
//! ```
//!
//! `src` and `dst` index the topology's host list (not raw node ids, so
//! the same trace replays onto any fabric with enough hosts), `bytes`
//! is the flow size, `start_ns` the injection time, and the optional
//! `tag` groups flows into a stats class. The parser is hand-rolled —
//! the field values are unsigned integers only, so a full JSON parser
//! would buy nothing but dependencies — and strict: unknown or
//! duplicate keys, missing fields, negative numbers, floats, `NaN`,
//! zero-byte flows, self-loops, and out-of-range host ids are all
//! rejected with the 1-based line number. Malformed input must never
//! panic (see `tests/trace_robustness.rs`).

use std::fmt;
use std::path::Path;

/// One flow of a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceFlow {
    /// Source host index (into the topology's host list).
    pub src: u32,
    /// Destination host index.
    pub dst: u32,
    /// Flow size in bytes (≥ 1).
    pub bytes: u64,
    /// Injection time, ns since simulation start.
    pub start_ns: u64,
    /// Stats class (0 when the line omits `tag`).
    pub tag: u32,
}

/// A parse or validation failure, pinned to its trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

/// A validated flow trace, ready for deterministic replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// The flows, in file order (replay preserves it).
    pub flows: Vec<TraceFlow>,
}

impl Trace {
    /// Parses and validates ndjson trace text against a topology with
    /// `hosts` hosts. Blank lines and `#` comment lines are skipped.
    pub fn parse(text: &str, hosts: usize) -> Result<Trace, TraceError> {
        let mut flows = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let flow =
                parse_line(trimmed, hosts).map_err(|msg| TraceError { line: lineno, msg })?;
            flows.push(flow);
        }
        Ok(Trace { flows })
    }

    /// Reads and validates a trace file.
    pub fn load(path: &Path, hosts: usize) -> Result<Trace, TraceError> {
        let text = std::fs::read_to_string(path).map_err(|e| TraceError {
            line: 0,
            msg: format!("reading {}: {e}", path.display()),
        })?;
        Trace::parse(&text, hosts)
    }

    /// Renders the trace back to its ndjson form (a round-trip through
    /// [`Trace::parse`] is the identity on the flow list).
    pub fn to_ndjson(&self) -> String {
        let mut out = String::with_capacity(self.flows.len() * 64);
        for f in &self.flows {
            out.push_str(&format!(
                "{{\"src\":{},\"dst\":{},\"bytes\":{},\"start_ns\":{}",
                f.src, f.dst, f.bytes, f.start_ns
            ));
            if f.tag != 0 {
                out.push_str(&format!(",\"tag\":{}", f.tag));
            }
            out.push_str("}\n");
        }
        out
    }

    /// Total bytes across all flows.
    pub fn total_bytes(&self) -> u64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }
}

/// Parses one `{"key":value,...}` line into a validated flow.
fn parse_line(line: &str, hosts: usize) -> Result<TraceFlow, String> {
    let mut src: Option<u64> = None;
    let mut dst: Option<u64> = None;
    let mut bytes: Option<u64> = None;
    let mut start_ns: Option<u64> = None;
    let mut tag: Option<u64> = None;

    let b = line.as_bytes();
    let mut i = 0usize;
    let skip_ws = |b: &[u8], mut i: usize| {
        while i < b.len() && (b[i] == b' ' || b[i] == b'\t') {
            i += 1;
        }
        i
    };
    i = skip_ws(b, i);
    if i >= b.len() || b[i] != b'{' {
        return Err("expected '{' at start of object".into());
    }
    i += 1;
    loop {
        i = skip_ws(b, i);
        if i < b.len() && b[i] == b'}' {
            i += 1;
            break;
        }
        // Key: a double-quoted identifier.
        if i >= b.len() || b[i] != b'"' {
            return Err("expected '\"' to open a field name".into());
        }
        i += 1;
        let key_start = i;
        while i < b.len() && b[i] != b'"' {
            i += 1;
        }
        if i >= b.len() {
            return Err("unterminated field name".into());
        }
        let key = &line[key_start..i];
        i += 1;
        i = skip_ws(b, i);
        if i >= b.len() || b[i] != b':' {
            return Err(format!("expected ':' after field `{key}`"));
        }
        i += 1;
        i = skip_ws(b, i);
        // Value: everything up to the next delimiter, validated as an
        // unsigned integer (the only value type the schema has).
        let val_start = i;
        while i < b.len() && b[i] != b',' && b[i] != b'}' && b[i] != b' ' && b[i] != b'\t' {
            i += 1;
        }
        let val = parse_uint(key, &line[val_start..i])?;
        let slot = match key {
            "src" => &mut src,
            "dst" => &mut dst,
            "bytes" => &mut bytes,
            "start_ns" => &mut start_ns,
            "tag" => &mut tag,
            other => return Err(format!("unknown field `{other}`")),
        };
        if slot.replace(val).is_some() {
            return Err(format!("duplicate field `{key}`"));
        }
        i = skip_ws(b, i);
        if i < b.len() && b[i] == b',' {
            i += 1;
            continue;
        }
        if i < b.len() && b[i] == b'}' {
            i += 1;
            break;
        }
        return Err(format!("expected ',' or '}}' after field `{key}`"));
    }
    if skip_ws(b, i) != b.len() {
        return Err("trailing characters after '}'".into());
    }

    let src = src.ok_or("missing field `src`")?;
    let dst = dst.ok_or("missing field `dst`")?;
    let bytes = bytes.ok_or("missing field `bytes`")?;
    let start_ns = start_ns.ok_or("missing field `start_ns`")?;
    let tag = tag.unwrap_or(0);

    let host = |name: &str, v: u64| -> Result<u32, String> {
        if (v as usize) >= hosts {
            return Err(format!("{name} {v} out of range ({hosts} hosts)"));
        }
        u32::try_from(v).map_err(|_| format!("{name} {v} does not fit u32"))
    };
    let src = host("src", src)?;
    let dst = host("dst", dst)?;
    if src == dst {
        return Err(format!("src and dst are both {src} (self-loop)"));
    }
    if bytes == 0 {
        return Err("bytes must be ≥ 1".into());
    }
    let tag = u32::try_from(tag).map_err(|_| format!("tag {tag} does not fit u32"))?;
    Ok(TraceFlow {
        src,
        dst,
        bytes,
        start_ns,
        tag,
    })
}

/// Validates `raw` as a non-negative integer value for field `key`,
/// with targeted messages for the classic ndjson corruptions.
fn parse_uint(key: &str, raw: &str) -> Result<u64, String> {
    if raw.is_empty() {
        return Err(format!("empty value for field `{key}`"));
    }
    if raw == "NaN" || raw == "nan" || raw == "null" {
        return Err(format!("{key}: non-numeric value `{raw}`"));
    }
    if raw.starts_with('-') {
        return Err(format!("{key}: negative value `{raw}`"));
    }
    if raw.contains('.') || raw.contains('e') || raw.contains('E') {
        return Err(format!("{key}: expected an integer, got `{raw}`"));
    }
    if !raw.bytes().all(|c| c.is_ascii_digit()) {
        return Err(format!("{key}: invalid number `{raw}`"));
    }
    raw.parse::<u64>()
        .map_err(|_| format!("{key}: `{raw}` overflows u64"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_and_tagged_lines() {
        let t = Trace::parse(
            "{\"src\":0,\"dst\":5,\"bytes\":20000,\"start_ns\":1000}\n\
             {\"src\":3,\"dst\":1,\"bytes\":512,\"start_ns\":2500,\"tag\":7}\n",
            8,
        )
        .unwrap();
        assert_eq!(t.flows.len(), 2);
        assert_eq!(
            t.flows[0],
            TraceFlow {
                src: 0,
                dst: 5,
                bytes: 20_000,
                start_ns: 1_000,
                tag: 0
            }
        );
        assert_eq!(t.flows[1].tag, 7);
        assert_eq!(t.total_bytes(), 20_512);
    }

    #[test]
    fn skips_blank_and_comment_lines_keeping_line_numbers() {
        let text = "# header\n\n{\"src\":0,\"dst\":1,\"bytes\":1,\"start_ns\":0}\n{\"dst\":1}\n";
        let err = Trace::parse(text, 4).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.msg.contains("missing field `src`"), "{}", err.msg);
    }

    #[test]
    fn whitespace_tolerant() {
        let t = Trace::parse(
            "  { \"src\" : 0 , \"dst\" : 1 , \"bytes\" : 9 , \"start_ns\" : 0 }  ",
            2,
        )
        .unwrap();
        assert_eq!(t.flows[0].bytes, 9);
    }

    #[test]
    fn rejects_the_classic_corruptions_with_line_numbers() {
        let cases: &[(&str, &str)] = &[
            (
                "{\"src\":0,\"dst\":1,\"start_ns\":0}",
                "missing field `bytes`",
            ),
            (
                "{\"src\":0,\"dst\":1,\"bytes\":NaN,\"start_ns\":0}",
                "non-numeric",
            ),
            (
                "{\"src\":0,\"dst\":1,\"bytes\":-5,\"start_ns\":0}",
                "negative",
            ),
            (
                "{\"src\":0,\"dst\":1,\"bytes\":1.5,\"start_ns\":0}",
                "expected an integer",
            ),
            (
                "{\"src\":99,\"dst\":1,\"bytes\":1,\"start_ns\":0}",
                "src 99 out of range (8 hosts)",
            ),
            (
                "{\"src\":2,\"dst\":2,\"bytes\":1,\"start_ns\":0}",
                "self-loop",
            ),
            (
                "{\"src\":0,\"dst\":1,\"bytes\":0,\"start_ns\":0}",
                "bytes must be ≥ 1",
            ),
            (
                "{\"src\":0,\"dst\":1,\"bytes\":1,\"start_ns\":0,\"color\":3}",
                "unknown field `color`",
            ),
            (
                "{\"src\":0,\"src\":1,\"dst\":1,\"bytes\":1,\"start_ns\":0}",
                "duplicate field `src`",
            ),
            ("\"src\":0", "expected '{'"),
            (
                "{\"src\":0,\"dst\":1,\"bytes\":1,\"start_ns\":0} x",
                "trailing characters",
            ),
            (
                "{\"src\":0,\"dst\":1,\"bytes\":99999999999999999999999,\"start_ns\":0}",
                "overflows",
            ),
        ];
        for (line, want) in cases {
            let err = Trace::parse(line, 8).unwrap_err();
            assert_eq!(err.line, 1, "{line}");
            assert!(err.msg.contains(want), "`{line}` → `{}`", err.msg);
        }
    }

    #[test]
    fn ndjson_round_trip_is_identity() {
        let t = Trace::parse(
            "{\"src\":0,\"dst\":5,\"bytes\":20000,\"start_ns\":1000}\n\
             {\"src\":3,\"dst\":1,\"bytes\":512,\"start_ns\":2500,\"tag\":7}\n",
            8,
        )
        .unwrap();
        let again = Trace::parse(&t.to_ndjson(), 8).unwrap();
        assert_eq!(t, again);
    }
}
