//! The workload report: per-size-bucket FCT and slowdown statistics,
//! deterministic text rendering, and metrics export.
//!
//! FCT (flow completion time) is the interval from a flow's open to its
//! last delivered byte. Slowdown is FCT divided by the flow's *ideal*
//! serialization time on its source access link — 1.0 means the fabric
//! added nothing over the wire itself; the tail of the slowdown
//! distribution is where incast and queueing live. Slowdown samples are
//! carried in per-mille (integer ‰) so the aggregation stays in exact
//! integer arithmetic.

use std::fmt::Write as _;

use quartz_netsim::stats::Series;
use quartz_obs::MetricsRegistry;

use crate::collective::CollectiveReport;

/// Flow-size buckets of the FCT report: `(label, lo, hi)` with
/// `lo ≤ bytes < hi`.
pub const BUCKETS: [(&str, u64, u64); 4] = [
    ("<10KB", 0, 10_000),
    ("10-100KB", 10_000, 100_000),
    ("100KB-1MB", 100_000, 1_000_000),
    (">=1MB", 1_000_000, u64::MAX),
];

/// The bucket index for a flow of `bytes`.
pub fn bucket_of(bytes: u64) -> usize {
    BUCKETS
        .iter()
        .position(|&(_, lo, hi)| bytes >= lo && bytes < hi)
        .expect("buckets cover all sizes")
}

/// Aggregated FCT + slowdown statistics for one size bucket.
#[derive(Clone, Debug, Default)]
pub struct BucketStat {
    /// Bucket label (from [`BUCKETS`]).
    pub label: &'static str,
    /// Completed flows in this bucket.
    pub count: usize,
    /// Mean FCT, µs.
    pub mean_fct_us: f64,
    /// Median FCT, µs.
    pub p50_fct_us: f64,
    /// 99th-percentile FCT, µs.
    pub p99_fct_us: f64,
    /// 99.9th-percentile FCT, µs.
    pub p999_fct_us: f64,
    /// Median slowdown (FCT / ideal serialization).
    pub p50_slowdown: f64,
    /// 99th-percentile slowdown.
    pub p99_slowdown: f64,
    /// 99.9th-percentile slowdown.
    pub p999_slowdown: f64,
}

/// Accumulates `(fct_ns, slowdown_permille)` samples per size bucket.
#[derive(Debug, Default)]
pub struct BucketAccum {
    fct: [Series; BUCKETS.len()],
    slowdown: [Series; BUCKETS.len()],
}

impl BucketAccum {
    /// Records one completed flow.
    pub fn record(&mut self, bytes: u64, fct_ns: u64, ideal_ns: u64) {
        let b = bucket_of(bytes);
        self.fct[b].record(fct_ns);
        // Integer per-mille slowdown; ideal is ≥ 1 ns by construction.
        let permille = (u128::from(fct_ns) * 1_000 / u128::from(ideal_ns.max(1))) as u64;
        self.slowdown[b].record(permille);
    }

    /// Snapshots the non-empty buckets, in size order.
    pub fn stats(&self) -> Vec<BucketStat> {
        let mut out = Vec::new();
        for (b, &(label, _, _)) in BUCKETS.iter().enumerate() {
            let fct = &self.fct[b];
            if fct.count() == 0 {
                continue;
            }
            let s = fct.summary();
            let sd = &self.slowdown[b];
            out.push(BucketStat {
                label,
                count: s.count,
                mean_fct_us: s.mean_ns / 1e3,
                p50_fct_us: s.p50_ns as f64 / 1e3,
                p99_fct_us: s.p99_ns as f64 / 1e3,
                p999_fct_us: fct.p999() as f64 / 1e3,
                p50_slowdown: sd.percentile(0.5) as f64 / 1e3,
                p99_slowdown: sd.percentile(0.99) as f64 / 1e3,
                p999_slowdown: sd.p999() as f64 / 1e3,
            });
        }
        out
    }
}

/// Everything one workload run produced.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Spec name (`trace`, `websearch`, `incast:12`, `allreduce:ring`).
    pub spec: String,
    /// Transport variant name (`reno` / `dctcp`).
    pub transport: &'static str,
    /// Seed of this unit.
    pub seed: u64,
    /// Flows offered.
    pub flows: usize,
    /// Flows that completed before the horizon.
    pub completed: usize,
    /// Bytes offered across all flows.
    pub offered_bytes: u64,
    /// Packets generated / delivered / dropped (transport ACKs and
    /// retransmissions included).
    pub generated: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped at full queues.
    pub dropped: u64,
    /// Simulated time when the run went quiescent (or hit the horizon), ns.
    pub elapsed_ns: u64,
    /// Per-size-bucket FCT/slowdown statistics (empty buckets omitted).
    pub buckets: Vec<BucketStat>,
    /// Present for `allreduce:*` runs.
    pub collective: Option<CollectiveReport>,
}

impl WorkloadReport {
    /// Renders the report as deterministic fixed-format text (the CLI
    /// and bench table body; byte-identical for identical runs).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = writeln!(
            out,
            "workload {} over {}: {}/{} flows completed, {:.2} MB offered, \
             {} pkts ({} delivered, {} dropped), {:.1} us simulated",
            self.spec,
            self.transport,
            self.completed,
            self.flows,
            self.offered_bytes as f64 / 1e6,
            self.generated,
            self.delivered,
            self.dropped,
            self.elapsed_ns as f64 / 1e3,
        );
        if !self.buckets.is_empty() {
            let _ = writeln!(
                out,
                "  {:<10} {:>6}  {:>10} {:>10} {:>10} {:>10}  {:>8} {:>8} {:>8}",
                "bucket",
                "flows",
                "mean(us)",
                "p50(us)",
                "p99(us)",
                "p99.9(us)",
                "sd-p50",
                "sd-p99",
                "sd-p99.9"
            );
            for b in &self.buckets {
                let _ = writeln!(
                    out,
                    "  {:<10} {:>6}  {:>10.1} {:>10.1} {:>10.1} {:>10.1}  {:>8.2} {:>8.2} {:>8.2}",
                    b.label,
                    b.count,
                    b.mean_fct_us,
                    b.p50_fct_us,
                    b.p99_fct_us,
                    b.p999_fct_us,
                    b.p50_slowdown,
                    b.p99_slowdown,
                    b.p999_slowdown
                );
            }
        }
        if let Some(c) = &self.collective {
            let _ = writeln!(
                out,
                "  {} all-reduce, {} ranks x {} B: total {:.1} us over {} steps",
                c.algo.name(),
                c.ranks,
                c.bytes,
                c.total_ns as f64 / 1e3,
                c.steps.len()
            );
            for s in &c.steps {
                let _ = writeln!(
                    out,
                    "    step {:>2}: {:>3} transfer(s) x {:>9} B in {:>9.1} us",
                    s.step,
                    s.transfers,
                    s.bytes_per_transfer,
                    s.elapsed_ns as f64 / 1e3
                );
            }
        }
        out
    }

    /// Exports the report into `m` under `prefix` (e.g. `workload.u0`).
    /// Key order is fixed by the registry's sorted storage, so the
    /// ndjson output is byte-stable.
    pub fn add_metrics(&self, m: &mut MetricsRegistry, prefix: &str) {
        m.inc(&format!("{prefix}.flows"), self.flows as u64);
        m.inc(&format!("{prefix}.completed"), self.completed as u64);
        m.inc(&format!("{prefix}.bytes_offered"), self.offered_bytes);
        m.inc(&format!("{prefix}.pkts_generated"), self.generated);
        m.inc(&format!("{prefix}.pkts_delivered"), self.delivered);
        m.inc(&format!("{prefix}.pkts_dropped"), self.dropped);
        m.set_gauge(
            &format!("{prefix}.elapsed_us"),
            self.elapsed_ns as f64 / 1e3,
        );
        for b in &self.buckets {
            let key = b.label.replace(['<', '>', '='], "");
            m.set_gauge(&format!("{prefix}.fct_p99_us.{key}"), b.p99_fct_us);
            m.set_gauge(&format!("{prefix}.fct_p999_us.{key}"), b.p999_fct_us);
            m.set_gauge(&format!("{prefix}.slowdown_p99.{key}"), b.p99_slowdown);
        }
        if let Some(c) = &self.collective {
            m.set_gauge(
                &format!("{prefix}.collective_total_us"),
                c.total_ns as f64 / 1e3,
            );
            m.inc(&format!("{prefix}.collective_steps"), c.steps.len() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_size_axis() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(9_999), 0);
        assert_eq!(bucket_of(10_000), 1);
        assert_eq!(bucket_of(99_999), 1);
        assert_eq!(bucket_of(100_000), 2);
        assert_eq!(bucket_of(1_000_000), 3);
        assert_eq!(bucket_of(u64::MAX - 1), 3);
    }

    #[test]
    fn accum_computes_slowdown_in_permille() {
        let mut acc = BucketAccum::default();
        // 2 KB flow, ideal 1 µs, took 3 µs → slowdown 3.00.
        acc.record(2_000, 3_000, 1_000);
        let stats = acc.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].label, "<10KB");
        assert_eq!(stats[0].count, 1);
        assert!((stats[0].p50_slowdown - 3.0).abs() < 1e-9);
        assert!((stats[0].p99_fct_us - 3.0).abs() < 1e-9);
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let mut acc = BucketAccum::default();
        for i in 1..=100u64 {
            acc.record(50_000, i * 1_000, 40_000);
        }
        let rep = WorkloadReport {
            spec: "websearch".into(),
            transport: "dctcp",
            seed: 1,
            flows: 100,
            completed: 100,
            offered_bytes: 5_000_000,
            generated: 4_000,
            delivered: 3_990,
            dropped: 10,
            elapsed_ns: 2_000_000,
            buckets: acc.stats(),
            collective: None,
        };
        let a = rep.render();
        let b = rep.render();
        assert_eq!(a, b);
        assert!(a.contains("workload websearch over dctcp"));
        assert!(a.contains("10-100KB"));
        let mut m = MetricsRegistry::new();
        rep.add_metrics(&mut m, "workload.u0");
        let nd = m.to_ndjson();
        assert!(nd.contains("workload.u0.flows"));
        assert!(nd.contains("workload.u0.fct_p999_us.10-100KB"));
    }
}
