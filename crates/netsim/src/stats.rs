//! Latency statistics: per-tag aggregation with confidence intervals.
//!
//! Experiments tag each measured flow class (e.g. "the local task" vs
//! "cross-traffic") with a small integer; the simulator records one
//! latency sample per delivered (or round-tripped) packet under its tag.
//! Summaries report mean, percentiles, and the 95 % confidence interval
//! of the mean — the paper plots 95 % CIs on its prototype results (§6.1).

use std::cell::{Cell, Ref, RefCell};

/// Aggregated samples for one tag.
///
/// Percentile queries ([`Series::cdf`], [`Series::summary`]) need the
/// samples sorted, but no caller depends on insertion order, so the
/// buffer is sorted **in place, lazily**: the first query after a
/// [`Series::record`] sorts once (amortized by the `sorted` flag) and
/// later queries reuse it — no per-query clone + sort of the full
/// buffer. Interior mutability keeps the query methods `&self`.
#[derive(Clone, Debug, Default)]
pub struct Series {
    samples_ns: RefCell<Vec<u64>>,
    sorted: Cell<bool>,
}

impl Series {
    /// Records one latency sample (invalidates the sorted order).
    pub fn record(&mut self, ns: u64) {
        self.samples_ns.get_mut().push(ns);
        self.sorted.set(false);
    }

    /// Appends every sample from `other` (invalidates the sorted
    /// order). All queries are multiset functions of the samples, so
    /// the answers after an append do not depend on which side the
    /// samples arrived from.
    pub fn append(&mut self, other: &Series) {
        self.samples_ns
            .get_mut()
            .extend_from_slice(&other.samples_ns.borrow());
        self.sorted.set(false);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples_ns.borrow().len()
    }

    /// The samples in ascending order, sorting first only if a record
    /// arrived since the last query.
    fn sorted_samples(&self) -> Ref<'_, Vec<u64>> {
        if !self.sorted.get() {
            self.samples_ns.borrow_mut().sort_unstable();
            self.sorted.set(true);
        }
        self.samples_ns.borrow()
    }

    /// Buckets the samples into `bins` equal-width bins over
    /// `[0, max]`; returns `(upper_edge_ns, count)` per bin — ready for
    /// plotting a latency histogram.
    pub fn histogram(&self, bins: usize) -> Vec<(u64, usize)> {
        assert!(bins >= 1);
        let samples = self.samples_ns.borrow();
        let max = samples.iter().copied().max().unwrap_or(0);
        let width = (max / bins as u64).max(1);
        let mut out: Vec<(u64, usize)> = (1..=bins as u64).map(|i| (i * width, 0)).collect();
        for &s in samples.iter() {
            let idx = ((s / width) as usize).min(bins - 1);
            out[idx].1 += 1;
        }
        out
    }

    /// The empirical CDF evaluated at `quantiles` (each in `0..=1`):
    /// returns the latency at or below which that fraction of samples
    /// falls.
    pub fn cdf(&self, quantiles: &[f64]) -> Vec<u64> {
        let sorted = self.sorted_samples();
        quantiles
            .iter()
            .map(|&q| {
                assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
                if sorted.is_empty() {
                    0
                } else {
                    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
                    sorted[idx]
                }
            })
            .collect()
    }

    /// The sample at quantile `p` (`0.0..=1.0`), using the same rounded
    /// nearest-rank convention as [`Series::summary`]. Returns 0 for an
    /// empty series.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "quantile {p} out of range");
        let sorted = self.sorted_samples();
        if sorted.is_empty() {
            0
        } else {
            sorted[(((sorted.len() - 1) as f64) * p).round() as usize]
        }
    }

    /// The 99.9th percentile — the tail the paper's latency argument
    /// lives in, and the headline column of the workload FCT report.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Summarizes the series.
    pub fn summary(&self) -> LatencySummary {
        let sorted = self.sorted_samples();
        let n = sorted.len();
        if n == 0 {
            return LatencySummary::default();
        }
        let sum: u128 = sorted.iter().map(|&x| x as u128).sum();
        let mean = sum as f64 / n as f64;
        let var = if n > 1 {
            sorted
                .iter()
                .map(|&x| {
                    let d = x as f64 - mean;
                    d * d
                })
                .sum::<f64>()
                / (n - 1) as f64
        } else {
            0.0
        };
        let sem = (var / n as f64).sqrt();
        let pct = |p: f64| sorted[(((n - 1) as f64) * p).round() as usize];
        LatencySummary {
            count: n,
            mean_ns: mean,
            ci95_ns: 1.96 * sem,
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
            max_ns: *sorted.last().unwrap(),
        }
    }
}

/// Summary statistics of one latency series.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Mean latency, ns.
    pub mean_ns: f64,
    /// Half-width of the 95 % confidence interval of the mean, ns.
    pub ci95_ns: f64,
    /// Median, ns.
    pub p50_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// Maximum, ns.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Mean in microseconds (convenient for paper-style plots).
    pub fn mean_us(&self) -> f64 {
        self.mean_ns / 1e3
    }
}

/// Per-tag aggregates: the latency series plus the byte and hop
/// accounting, one row per tag so the per-delivery hot path touches a
/// single entry.
#[derive(Clone, Debug, Default)]
struct TagStats {
    series: Series,
    bytes: u64,
    /// Histogram of path lengths: `hops[h]` = deliveries that crossed
    /// `h` links. Path lengths are tiny and repeat constantly, so a
    /// counted bin beats buffering one sample per delivery — and every
    /// derived quantity (mean, distribution) is an integer fold that
    /// doesn't depend on arrival order.
    hops: Vec<u64>,
}

/// Bumps the bin for a path of `h` links, growing the histogram to fit.
#[inline]
fn bump_hops(hops: &mut Vec<u64>, h: u32) {
    let h = h as usize;
    if h >= hops.len() {
        hops.resize(h + 1, 0);
    }
    hops[h] += 1;
}

/// All statistics a simulation run produces.
///
/// Tags live in a sorted `Vec` parallel to their aggregate rows:
/// experiments use a handful of tags, so the per-delivery lookup is a
/// binary search over a few words — measurably cheaper than the three
/// `BTreeMap` walks this replaced (one each for latency, bytes, hops).
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Tags with any recorded data, ascending; parallel to `per_tag`.
    tag_keys: Vec<u32>,
    per_tag: Vec<TagStats>,
    /// Packets generated by all sources.
    pub generated: u64,
    /// Packets delivered to their final destination.
    pub delivered: u64,
    /// Packets dropped at full output queues.
    pub dropped: u64,
}

impl Stats {
    /// Row index for `tag`, inserting an empty row (in sorted position)
    /// on first sight.
    fn tag_idx(&mut self, tag: u32) -> usize {
        match self.tag_keys.binary_search(&tag) {
            Ok(i) => i,
            Err(i) => {
                self.tag_keys.insert(i, tag);
                self.per_tag.insert(i, TagStats::default());
                i
            }
        }
    }

    /// Row for `tag`, if it has ever recorded anything.
    fn tag_row(&self, tag: u32) -> Option<&TagStats> {
        self.tag_keys
            .binary_search(&tag)
            .ok()
            .map(|i| &self.per_tag[i])
    }

    /// Records a latency sample under `tag`.
    pub fn record(&mut self, tag: u32, ns: u64) {
        let i = self.tag_idx(tag);
        self.per_tag[i].series.record(ns);
    }

    /// Accounts one delivered packet — payload bytes, path length, and
    /// (when the delivery completes a flow) its latency sample — under
    /// `tag` with a single row lookup.
    pub fn record_delivery(&mut self, tag: u32, bytes: u64, hops: u32, latency: Option<u64>) {
        let i = self.tag_idx(tag);
        let row = &mut self.per_tag[i];
        row.bytes += bytes;
        bump_hops(&mut row.hops, hops);
        if let Some(ns) = latency {
            row.series.record(ns);
        }
    }

    /// Accounts `bytes` of delivered payload under `tag`.
    pub fn record_bytes(&mut self, tag: u32, bytes: u64) {
        let i = self.tag_idx(tag);
        self.per_tag[i].bytes += bytes;
    }

    /// Total payload bytes delivered under `tag`.
    pub fn delivered_bytes(&self, tag: u32) -> u64 {
        self.tag_row(tag).map_or(0, |r| r.bytes)
    }

    /// Goodput of `tag` over `elapsed_ns`, in Gb/s.
    pub fn goodput_gbps(&self, tag: u32, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            0.0
        } else {
            self.delivered_bytes(tag) as f64 * 8.0 / elapsed_ns as f64
        }
    }

    /// Records a delivered packet's path length (links traversed) under
    /// `tag` — the raw material for post-failure path-stretch reports.
    pub fn record_hops(&mut self, tag: u32, hops: u32) {
        let i = self.tag_idx(tag);
        bump_hops(&mut self.per_tag[i].hops, hops);
    }

    /// Mean links traversed by `tag`'s delivered packets (0.0 if none).
    pub fn mean_hops(&self, tag: u32) -> f64 {
        match self.tag_row(tag) {
            Some(r) => {
                let total: u64 = r.hops.iter().sum();
                if total == 0 {
                    return 0.0;
                }
                let weighted: u64 = r.hops.iter().enumerate().map(|(h, &c)| h as u64 * c).sum();
                weighted as f64 / total as f64
            }
            None => 0.0,
        }
    }

    /// Distribution of path lengths under `tag`: `(links, packets)`
    /// pairs, ascending by hop count.
    pub fn hop_distribution(&self, tag: u32) -> Vec<(u32, usize)> {
        self.tag_row(tag)
            .map(|r| {
                debug_assert!(r.hops.len() <= u32::MAX as usize, "hop counts fit u32");
                r.hops
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(h, &c)| (h as u32, c as usize))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of samples recorded under `tag` (O(1), unlike
    /// [`Stats::summary`]).
    pub fn count(&self, tag: u32) -> usize {
        self.tag_row(tag).map_or(0, |r| r.series.count())
    }

    /// Histogram of `tag`'s samples (see [`Series::histogram`]).
    pub fn histogram(&self, tag: u32, bins: usize) -> Vec<(u64, usize)> {
        self.tag_row(tag)
            .map(|r| r.series.histogram(bins))
            .unwrap_or_default()
    }

    /// Summary for `tag` (empty summary if the tag has no samples).
    pub fn summary(&self, tag: u32) -> LatencySummary {
        self.tag_row(tag)
            .map(|r| r.series.summary())
            .unwrap_or_default()
    }

    /// All tags with latency samples, ascending. (A tag with only byte
    /// or hop accounting — e.g. a transport flow whose completion is
    /// tracked elsewhere — does not appear, matching the behavior of
    /// the separate per-metric maps this storage replaced.)
    pub fn tags(&self) -> Vec<u32> {
        self.tag_keys
            .iter()
            .zip(&self.per_tag)
            .filter(|(_, r)| r.series.count() > 0)
            .map(|(&t, _)| t)
            .collect()
    }

    /// Total recorded samples across tags.
    pub fn total_samples(&self) -> usize {
        self.per_tag.iter().map(|r| r.series.count()).sum()
    }

    /// Folds `other` into `self`: the conservation counters add, and
    /// each of `other`'s tag rows merges into the matching row here
    /// (latency samples append, bytes add, hop bins add elementwise).
    ///
    /// Every query on [`Stats`] is a multiset function of the recorded
    /// samples, so a merge of per-shard stats yields bit-identical
    /// summaries regardless of how the samples were split across the
    /// shards — the property the sharded engine's determinism contract
    /// relies on.
    pub fn merge(&mut self, other: &Stats) {
        self.generated += other.generated;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        for (&tag, row) in other.tag_keys.iter().zip(&other.per_tag) {
            let i = self.tag_idx(tag);
            let mine = &mut self.per_tag[i];
            mine.series.append(&row.series);
            mine.bytes += row.bytes;
            if row.hops.len() > mine.hops.len() {
                mine.hops.resize(row.hops.len(), 0);
            }
            for (m, &o) in mine.hops.iter_mut().zip(&row.hops) {
                *m += o;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_summary_is_zero() {
        let s = Series::default();
        assert_eq!(s.summary(), LatencySummary::default());
    }

    #[test]
    fn summary_of_constant_samples() {
        let mut s = Series::default();
        for _ in 0..100 {
            s.record(1_000);
        }
        let sum = s.summary();
        assert_eq!(sum.count, 100);
        assert_eq!(sum.mean_ns, 1_000.0);
        assert_eq!(sum.ci95_ns, 0.0);
        assert_eq!(sum.p50_ns, 1_000);
        assert_eq!(sum.p99_ns, 1_000);
        assert_eq!(sum.max_ns, 1_000);
    }

    #[test]
    fn summary_of_uniform_ramp() {
        let mut s = Series::default();
        for i in 1..=1000u64 {
            s.record(i);
        }
        let sum = s.summary();
        assert_eq!(sum.mean_ns, 500.5);
        assert_eq!(sum.p50_ns, 501); // index round(999·0.5)=500 → sorted[500]=501
        assert_eq!(sum.max_ns, 1000);
        assert!(sum.p99_ns >= 989 && sum.p99_ns <= 991);
        // CI of mean for U(1,1000): sd ≈ 288.8, sem ≈ 9.13, CI ≈ 17.9.
        assert!((sum.ci95_ns - 17.9).abs() < 0.5, "{}", sum.ci95_ns);
    }

    #[test]
    fn stats_tags_and_conservation_fields() {
        let mut st = Stats::default();
        st.record(1, 10);
        st.record(2, 20);
        st.record(2, 30);
        assert_eq!(st.tags(), vec![1, 2]);
        assert_eq!(st.total_samples(), 3);
        assert_eq!(st.summary(2).count, 2);
        assert_eq!(st.summary(9).count, 0);
    }

    #[test]
    fn histogram_buckets_and_cdf() {
        let mut s = Series::default();
        for i in 1..=100u64 {
            s.record(i * 10); // 10..=1000
        }
        let h = s.histogram(10);
        assert_eq!(h.len(), 10);
        assert_eq!(h.iter().map(|&(_, c)| c).sum::<usize>(), 100);
        // Equal-width bins over a uniform ramp hold ~10 samples each.
        for &(_, c) in &h {
            assert!((9..=11).contains(&c), "{h:?}");
        }
        let cdf = s.cdf(&[0.0, 0.5, 1.0]);
        assert_eq!(cdf[0], 10);
        assert!((495..=515).contains(&cdf[1]), "{cdf:?}");
        assert_eq!(cdf[2], 1000);
    }

    #[test]
    fn empty_histogram_is_empty_counts() {
        let s = Series::default();
        let h = s.histogram(4);
        assert_eq!(h.iter().map(|&(_, c)| c).sum::<usize>(), 0);
        assert!(Stats::default().histogram(9, 4).is_empty());
    }

    #[test]
    fn byte_accounting_and_goodput() {
        let mut st = Stats::default();
        st.record_bytes(4, 1_000);
        st.record_bytes(4, 250);
        assert_eq!(st.delivered_bytes(4), 1_250);
        assert_eq!(st.delivered_bytes(5), 0);
        // 1250 B over 1 µs = 10 Gb/s.
        assert!((st.goodput_gbps(4, 1_000) - 10.0).abs() < 1e-9);
        assert_eq!(st.goodput_gbps(4, 0), 0.0);
    }

    #[test]
    fn mean_us_conversion() {
        let mut s = Series::default();
        s.record(2_500);
        assert_eq!(s.summary().mean_us(), 2.5);
    }

    #[test]
    fn single_sample_percentiles_collapse_to_it() {
        // n = 1: the percentile index formula round((n−1)·p) must hit
        // index 0 for every p, not over- or under-run.
        let mut s = Series::default();
        s.record(777);
        let sum = s.summary();
        assert_eq!(sum.count, 1);
        assert_eq!(sum.mean_ns, 777.0);
        assert_eq!(sum.ci95_ns, 0.0);
        assert_eq!(sum.p50_ns, 777);
        assert_eq!(sum.p99_ns, 777);
        assert_eq!(sum.max_ns, 777);
        assert_eq!(s.cdf(&[0.0, 0.5, 1.0]), vec![777, 777, 777]);
    }

    #[test]
    fn empty_series_cdf_is_zero() {
        let s = Series::default();
        assert_eq!(s.cdf(&[0.0, 1.0]), vec![0, 0]);
    }

    #[test]
    fn extreme_quantiles_hit_min_and_max() {
        // p0 / p100 are the exact min and max, for even and odd n.
        for n in [2u64, 3, 10, 11] {
            let mut s = Series::default();
            for i in (1..=n).rev() {
                s.record(i * 7);
            }
            let cdf = s.cdf(&[0.0, 1.0]);
            assert_eq!(cdf[0], 7, "n={n}");
            assert_eq!(cdf[1], n * 7, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        let mut s = Series::default();
        s.record(1);
        s.cdf(&[1.5]);
    }

    #[test]
    fn interleaved_pushes_and_percentiles_match_naive_reference() {
        // The lazy sort must re-invalidate on every record: interleave
        // pushes with cdf/summary queries and compare each answer to a
        // naive clone-and-sort reference over the same prefix.
        let naive_cdf = |raw: &[u64], quantiles: &[f64]| -> Vec<u64> {
            let mut sorted = raw.to_vec();
            sorted.sort_unstable();
            quantiles
                .iter()
                .map(|&q| {
                    if sorted.is_empty() {
                        0
                    } else {
                        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
                    }
                })
                .collect()
        };
        let quantiles = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
        let mut s = Series::default();
        let mut raw: Vec<u64> = Vec::new();
        // Deterministic scrambled stream, including duplicates and a
        // descending tail that would expose a stale sort cache.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for step in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let sample = if step % 7 == 0 { 42 } else { x % 10_000 };
            s.record(sample);
            raw.push(sample);
            if step % 3 == 0 {
                assert_eq!(s.cdf(&quantiles), naive_cdf(&raw, &quantiles), "{step}");
            }
            if step % 5 == 0 {
                let sum = s.summary();
                let want = naive_cdf(&raw, &[0.5, 0.99]);
                assert_eq!(sum.p50_ns, want[0], "{step}");
                assert_eq!(sum.p99_ns, want[1], "{step}");
                assert_eq!(sum.count, raw.len());
                assert_eq!(sum.max_ns, *raw.iter().max().unwrap());
            }
        }
    }

    #[test]
    fn histogram_and_cdf_match_naive_reference_on_seeded_random_data() {
        use quartz_core::rng::StdRng;

        // Reference CDF: clone-and-sort, index by rounded quantile.
        let naive_cdf = |sorted: &[u64], quantiles: &[f64]| -> Vec<u64> {
            quantiles
                .iter()
                .map(|&q| {
                    if sorted.is_empty() {
                        0
                    } else {
                        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
                    }
                })
                .collect()
        };
        // Reference histogram via a different computation path than the
        // implementation: binary-search the sorted vector for each bin's
        // half-open range `[lo, hi)`, with everything ≥ the last edge
        // clamped into the final bin.
        let naive_hist = |sorted: &[u64], bins: usize| -> Vec<(u64, usize)> {
            let max = sorted.last().copied().unwrap_or(0);
            let width = (max / bins as u64).max(1);
            (1..=bins as u64)
                .map(|i| {
                    let lo = (i - 1) * width;
                    let below_lo = sorted.partition_point(|&s| s < lo);
                    let count = if i as usize == bins {
                        sorted.len() - below_lo
                    } else {
                        sorted.partition_point(|&s| s < i * width) - below_lo
                    };
                    (i * width, count)
                })
                .collect()
        };

        let quantiles = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        // Sizes cover the empty series, the single sample, and bulk.
        for (case, &n) in [0usize, 1, 2, 3, 37, 256].iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(0xCDF + case as u64);
            let spread = [1u64, 17, 9_999, 10_000_000][case % 4];
            let mut s = Series::default();
            let mut raw: Vec<u64> = Vec::new();
            for _ in 0..n {
                let v = rng.random::<u64>() % spread;
                s.record(v);
                raw.push(v);
            }
            raw.sort_unstable();
            assert_eq!(s.cdf(&quantiles), naive_cdf(&raw, &quantiles), "n={n}");
            for bins in [1usize, 2, 5, 16, 100] {
                let got = s.histogram(bins);
                assert_eq!(got, naive_hist(&raw, bins), "n={n} bins={bins}");
                // Invariants independent of the reference: every sample
                // lands in exactly one bin and edges ascend.
                assert_eq!(got.iter().map(|&(_, c)| c).sum::<usize>(), n);
                assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
            }
        }
    }

    #[test]
    fn histogram_and_cdf_edge_cases() {
        let empty = Series::default();
        assert_eq!(empty.cdf(&[0.0, 0.5, 1.0]), vec![0, 0, 0]);
        // No samples: max = 0 ⇒ unit-width bins, all empty.
        assert_eq!(empty.histogram(3), vec![(1, 0), (2, 0), (3, 0)]);

        let mut single = Series::default();
        single.record(500);
        assert_eq!(single.cdf(&[0.0, 0.5, 1.0]), vec![500, 500, 500]);
        // One sample at the max: width 125, the sample sits exactly on
        // the top edge and must clamp into the last bin.
        assert_eq!(
            single.histogram(4),
            vec![(125, 0), (250, 0), (375, 0), (500, 1)]
        );

        let mut zero = Series::default();
        zero.record(0);
        assert_eq!(zero.cdf(&[0.0, 1.0]), vec![0, 0]);
        assert_eq!(zero.histogram(2), vec![(1, 1), (2, 0)]);
    }

    #[test]
    fn percentile_and_p999_match_naive_sorted_reference() {
        use quartz_core::rng::StdRng;

        // Nearest-rank reference over an explicitly sorted clone.
        let naive = |raw: &[u64], p: f64| -> u64 {
            let mut sorted = raw.to_vec();
            sorted.sort_unstable();
            if sorted.is_empty() {
                0
            } else {
                sorted[((sorted.len() - 1) as f64 * p).round() as usize]
            }
        };
        let ps = [0.0, 0.5, 0.9, 0.99, 0.999, 1.0];
        // Sizes straddle the interesting boundaries for p999: below
        // 1/0.001 samples it collapses toward the max, above it must
        // pick an interior rank.
        for (case, &n) in [0usize, 1, 2, 500, 999, 1_000, 1_001, 4_096]
            .iter()
            .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(0x999 + case as u64);
            let mut s = Series::default();
            let mut raw = Vec::new();
            for _ in 0..n {
                let v = rng.random::<u64>() % 1_000_000;
                s.record(v);
                raw.push(v);
            }
            for &p in &ps {
                assert_eq!(s.percentile(p), naive(&raw, p), "n={n} p={p}");
            }
            assert_eq!(s.p999(), naive(&raw, 0.999), "n={n}");
            // p999 sits between p99 and the max by construction.
            assert!(s.p999() >= s.percentile(0.99), "n={n}");
            assert!(s.p999() <= s.percentile(1.0), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_percentile_panics() {
        let mut s = Series::default();
        s.record(1);
        s.percentile(-0.1);
    }

    #[test]
    fn merge_equals_single_sided_recording() {
        // Record one interleaved stream into a reference Stats, and the
        // same stream split round-robin across three shards that are
        // then merged; every summary output must be identical.
        let mut reference = Stats::default();
        let mut shards = [Stats::default(), Stats::default(), Stats::default()];
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for step in 0..600u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let tag = (x % 5) as u32;
            let shard = &mut shards[(step % 3) as usize];
            match x % 4 {
                0 => {
                    reference.record(tag, x % 100_000);
                    shard.record(tag, x % 100_000);
                }
                1 => {
                    reference.record_delivery(tag, x % 1500, (x % 7) as u32, Some(x % 50_000));
                    shard.record_delivery(tag, x % 1500, (x % 7) as u32, Some(x % 50_000));
                    reference.delivered += 1;
                    shard.delivered += 1;
                }
                2 => {
                    reference.record_bytes(tag, x % 9000);
                    shard.record_bytes(tag, x % 9000);
                    reference.generated += 1;
                    shard.generated += 1;
                }
                _ => {
                    reference.record_hops(tag, (x % 9) as u32);
                    shard.record_hops(tag, (x % 9) as u32);
                    reference.dropped += 1;
                    shard.dropped += 1;
                }
            }
        }
        let mut merged = Stats::default();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.generated, reference.generated);
        assert_eq!(merged.delivered, reference.delivered);
        assert_eq!(merged.dropped, reference.dropped);
        assert_eq!(merged.tags(), reference.tags());
        assert_eq!(merged.total_samples(), reference.total_samples());
        for tag in 0..6u32 {
            assert_eq!(merged.summary(tag), reference.summary(tag), "tag {tag}");
            assert_eq!(
                merged.delivered_bytes(tag),
                reference.delivered_bytes(tag),
                "tag {tag}"
            );
            assert_eq!(
                merged.hop_distribution(tag),
                reference.hop_distribution(tag),
                "tag {tag}"
            );
            assert_eq!(
                merged.histogram(tag, 8),
                reference.histogram(tag, 8),
                "tag {tag}"
            );
        }
    }

    #[test]
    fn merge_into_empty_and_with_empty_are_identity() {
        let mut some = Stats::default();
        some.record(3, 11);
        some.record_delivery(3, 64, 2, Some(7));
        some.generated = 5;

        let mut from_empty = Stats::default();
        from_empty.merge(&some);
        assert_eq!(from_empty.summary(3), some.summary(3));
        assert_eq!(from_empty.generated, 5);

        let snapshot = some.summary(3);
        some.merge(&Stats::default());
        assert_eq!(some.summary(3), snapshot);
        assert_eq!(some.generated, 5);
    }

    #[test]
    fn hop_recording_and_distribution() {
        let mut st = Stats::default();
        assert_eq!(st.mean_hops(0), 0.0);
        assert!(st.hop_distribution(0).is_empty());
        st.record_hops(0, 3);
        st.record_hops(0, 3);
        st.record_hops(0, 4);
        st.record_hops(9, 2);
        assert!((st.mean_hops(0) - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(st.hop_distribution(0), vec![(3, 2), (4, 1)]);
        assert_eq!(st.hop_distribution(9), vec![(2, 1)]);
    }
}
