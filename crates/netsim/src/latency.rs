//! End-to-end latency composition — Table 2 of the paper.
//!
//! "There are many sources of latency in DCNs": the OS network stack, the
//! NIC, each switch, and congestion. Table 2 contrasts standard hardware
//! with the state of the art; [`ComponentLatency`] captures one column
//! and composes an end-to-end estimate.

use std::fmt;

/// Per-component one-way latency contributions, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComponentLatency {
    /// Label ("standard" / "state of the art").
    pub name: &'static str,
    /// OS network stack traversal, ns.
    pub stack_ns: u64,
    /// NIC processing, ns.
    pub nic_ns: u64,
    /// One switch traversal, ns.
    pub switch_ns: u64,
    /// Typical congestion-induced queueing, ns.
    pub congestion_ns: u64,
}

/// Table 2's "Standard" column: 15 µs stack, 2.5–32 µs NIC (low end
/// used), 6 µs switch, 50 µs congestion.
pub const STANDARD: ComponentLatency = ComponentLatency {
    name: "Standard",
    stack_ns: 15_000,
    nic_ns: 2_500,
    switch_ns: 6_000,
    congestion_ns: 50_000,
};

/// Table 2's "State of Art" column: 1–4 µs stack (low end), 0.5 µs NIC,
/// 0.5 µs switch.
pub const STATE_OF_ART: ComponentLatency = ComponentLatency {
    name: "State of Art",
    stack_ns: 1_000,
    nic_ns: 500,
    switch_ns: 500,
    congestion_ns: 50_000,
};

impl ComponentLatency {
    /// One-way latency through `switch_hops` switches with both end-host
    /// stacks and NICs, ignoring congestion.
    pub fn end_to_end_ns(&self, switch_hops: usize) -> u64 {
        2 * (self.stack_ns + self.nic_ns) + switch_hops as u64 * self.switch_ns
    }

    /// Same, with the congestion term added once (a single congested
    /// queue on the path).
    pub fn end_to_end_congested_ns(&self, switch_hops: usize) -> u64 {
        self.end_to_end_ns(switch_hops) + self.congestion_ns
    }
}

impl fmt::Display for ComponentLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: stack {} ns, NIC {} ns, switch {} ns, congestion {} ns",
            self.name, self.stack_ns, self.nic_ns, self.switch_ns, self.congestion_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        assert_eq!(STANDARD.stack_ns, 15_000);
        assert_eq!(STANDARD.switch_ns, 6_000);
        assert_eq!(STATE_OF_ART.nic_ns, 500);
        assert_eq!(STATE_OF_ART.switch_ns, 500);
    }

    #[test]
    fn three_tier_standard_switching_is_30us() {
        // §2.1.3: "In a typical three-tier network architecture, switching
        // delay can therefore be as high as 30 µs" — five switch hops at
        // 6 µs each.
        assert_eq!(5 * STANDARD.switch_ns, 30_000);
    }

    #[test]
    fn order_of_magnitude_improvement() {
        // §1: combining state-of-the-art techniques yields "an order of
        // magnitude reduction in end-to-end network latency".
        let std = STANDARD.end_to_end_ns(5);
        let soa = STATE_OF_ART.end_to_end_ns(5);
        assert!(std as f64 / soa as f64 > 8.0, "{std} vs {soa}");
    }

    #[test]
    fn congestion_dominates_state_of_art() {
        // Table 2's point: once components are fast, congestion (~50 µs)
        // dominates — the motivation for Quartz's topology approach.
        let soa = STATE_OF_ART;
        assert!(soa.congestion_ns > soa.end_to_end_ns(5));
    }
}
