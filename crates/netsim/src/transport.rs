//! Reliable window-based transport state machines: Reno-style TCP and
//! DCTCP (Alizadeh et al., SIGCOMM 2010 — the paper's \[19\]).
//!
//! §2.1.4 of the Quartz paper surveys protocol-based latency fixes
//! (DCTCP, D²TCP, PDQ…) and argues they are "limited by the amount of
//! path diversity in the underlying network topology". This module makes
//! that argument measurable: the simulator can run the same congested
//! workload under plain Reno, under DCTCP (ECN-based early reaction), and
//! on a Quartz mesh — and compare flow completion times.
//!
//! The state machines are deliberately compact, documented
//! simplifications of the real protocols:
//!
//! * cumulative per-packet ACKs, no SACK;
//! * slow start (+1 cwnd per ACK) and congestion avoidance (+1/cwnd);
//! * fast retransmit on 3 duplicate ACKs (retransmit one segment,
//!   multiplicative decrease);
//! * retransmission timeout → go-back-N from the cumulative ACK with
//!   `cwnd = 1`;
//! * DCTCP: per-window ECN mark fraction `F`, `α ← (1−g)α + gF` with
//!   `g = 1/16`, and `cwnd ← cwnd·(1 − α/2)` once per marked window.
//!
//! They are pure (no simulator types), so every transition is unit-tested
//! here; `sim.rs` only schedules their actions.

/// Congestion-control variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpVariant {
    /// Loss-based AIMD.
    Reno,
    /// ECN-proportional decrease (DCTCP).
    Dctcp,
}

/// Transport-layer role of a packet, carried in the simulator's packet
/// arena (`quartz_netsim::arena`) and interpreted at delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportInfo {
    /// Not transport-managed.
    None,
    /// Data segment `seq` of its flow.
    Data(u64),
    /// Cumulative ACK up to `ack`, echoing the data packet's ECN mark.
    Ack {
        /// Next sequence expected by the receiver.
        ack: u64,
        /// Whether the acknowledged data packet carried an ECN mark.
        ecn_echo: bool,
    },
}

/// What the sender wants the simulator to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendAction {
    /// Transmit the data segment with this sequence number.
    SendData {
        /// Segment sequence number (0-based packet index).
        seq: u64,
    },
    /// (Re-)arm the retransmission timer for this epoch.
    ArmRto {
        /// Epoch to carry in the timer event; stale epochs are ignored.
        epoch: u64,
    },
    /// All data acknowledged — record the completion.
    Complete,
}

/// DCTCP's EWMA gain.
const DCTCP_G: f64 = 1.0 / 16.0;

/// Sender-side connection state.
#[derive(Clone, Debug)]
pub struct SenderState {
    variant: TcpVariant,
    total: u64,
    /// Next never-sent sequence.
    next_seq: u64,
    /// First unacknowledged sequence.
    acked: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    /// DCTCP: marks and ACKs in the current observation window, which
    /// ends when `acked` passes `window_end`.
    alpha: f64,
    marked: u64,
    acks_in_window: u64,
    window_end: u64,
    /// Incremented on every timer-relevant state change.
    pub rto_epoch: u64,
    complete: bool,
}

impl SenderState {
    /// A new connection of `total` segments.
    pub fn new(variant: TcpVariant, total: u64) -> Self {
        assert!(total > 0, "empty transfers complete trivially");
        SenderState {
            variant,
            total,
            next_seq: 0,
            acked: 0,
            cwnd: 2.0,
            ssthresh: f64::INFINITY,
            dup_acks: 0,
            alpha: 0.0,
            marked: 0,
            acks_in_window: 0,
            window_end: 0,
            rto_epoch: 0,
            complete: false,
        }
    }

    /// Current congestion window in whole segments (≥ 1).
    pub fn cwnd_pkts(&self) -> u64 {
        (self.cwnd.floor() as u64).max(1)
    }

    /// Segments in flight.
    pub fn in_flight(&self) -> u64 {
        self.next_seq.saturating_sub(self.acked)
    }

    /// Whether the transfer has completed.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The DCTCP mark-fraction estimate (0 for Reno).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Sends as much new data as the window allows.
    pub fn pump(&mut self) -> Vec<SendAction> {
        let mut out = Vec::new();
        self.pump_into(&mut out);
        out
    }

    /// [`SenderState::pump`] appending into a caller-provided buffer, so
    /// the simulator's steady state reuses one scratch `Vec` instead of
    /// allocating per transport event.
    pub fn pump_into(&mut self, out: &mut Vec<SendAction>) {
        let mut sent = false;
        while self.next_seq < self.total && self.in_flight() < self.cwnd_pkts() {
            out.push(SendAction::SendData { seq: self.next_seq });
            self.next_seq += 1;
            sent = true;
        }
        if sent {
            self.rto_epoch += 1;
            out.push(SendAction::ArmRto {
                epoch: self.rto_epoch,
            });
        }
    }

    /// Handles a cumulative ACK up to (excluding) `ack`, with DCTCP's
    /// per-packet ECN echo.
    pub fn on_ack(&mut self, ack: u64, ecn_echo: bool) -> Vec<SendAction> {
        let mut out = Vec::new();
        self.on_ack_into(ack, ecn_echo, &mut out);
        out
    }

    /// [`SenderState::on_ack`] appending into a caller-provided buffer.
    pub fn on_ack_into(&mut self, ack: u64, ecn_echo: bool, out: &mut Vec<SendAction>) {
        if self.complete {
            return;
        }
        // DCTCP bookkeeping counts every ACK, new or duplicate.
        if self.variant == TcpVariant::Dctcp {
            self.acks_in_window += 1;
            if ecn_echo {
                self.marked += 1;
                // A congestion signal ends slow start at once — without
                // this, short flows overshoot the ECN threshold just as
                // badly as loss-based senders overshoot the buffer.
                if self.cwnd < self.ssthresh {
                    self.ssthresh = self.cwnd;
                }
            }
            if ack >= self.window_end {
                let f = self.marked as f64 / self.acks_in_window.max(1) as f64;
                self.alpha = (1.0 - DCTCP_G) * self.alpha + DCTCP_G * f;
                if self.marked > 0 {
                    self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(1.0);
                }
                self.marked = 0;
                self.acks_in_window = 0;
                self.window_end = self.next_seq;
            }
        }

        if ack > self.acked {
            self.acked = ack;
            // A late ACK for data sent before an RTO rewind can pass the
            // rewound `next_seq`; those segments need no resend.
            self.next_seq = self.next_seq.max(self.acked);
            self.dup_acks = 0;
            // Window growth per newly acknowledged data.
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0; // slow start
            } else {
                self.cwnd += 1.0 / self.cwnd; // congestion avoidance
            }
            if self.acked >= self.total {
                self.complete = true;
                self.rto_epoch += 1; // cancel outstanding timers
                out.push(SendAction::Complete);
                return;
            }
            let before = out.len();
            self.pump_into(out);
            if out.len() == before {
                // Still waiting on in-flight data: keep the timer alive.
                self.rto_epoch += 1;
                out.push(SendAction::ArmRto {
                    epoch: self.rto_epoch,
                });
            }
        } else {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == 3 {
                // Fast retransmit + multiplicative decrease.
                self.ssthresh = (self.cwnd / 2.0).max(1.0);
                self.cwnd = self.ssthresh;
                self.dup_acks = 0;
                self.rto_epoch += 1;
                out.push(SendAction::SendData { seq: self.acked });
                out.push(SendAction::ArmRto {
                    epoch: self.rto_epoch,
                });
            }
        }
    }

    /// Handles a retransmission timeout carrying `epoch`.
    pub fn on_rto(&mut self, epoch: u64) -> Vec<SendAction> {
        let mut out = Vec::new();
        self.on_rto_into(epoch, &mut out);
        out
    }

    /// [`SenderState::on_rto`] appending into a caller-provided buffer.
    pub fn on_rto_into(&mut self, epoch: u64, out: &mut Vec<SendAction>) {
        if self.complete || epoch != self.rto_epoch {
            return; // stale timer
        }
        // Go-back-N: rewind to the cumulative ACK, collapse the window.
        self.ssthresh = (self.cwnd / 2.0).max(1.0);
        self.cwnd = 1.0;
        self.next_seq = self.acked;
        self.dup_acks = 0;
        self.pump_into(out);
    }
}

/// Receiver-side reassembly state: cumulative ACK generation.
#[derive(Clone, Debug, Default)]
pub struct ReceiverState {
    rcv_next: u64,
    out_of_order: std::collections::BTreeSet<u64>,
}

impl ReceiverState {
    /// Accepts segment `seq`; returns the cumulative ACK to send (the
    /// next expected sequence).
    pub fn on_data(&mut self, seq: u64) -> u64 {
        if seq == self.rcv_next {
            self.rcv_next += 1;
            while self.out_of_order.remove(&self.rcv_next) {
                self.rcv_next += 1;
            }
        } else if seq > self.rcv_next {
            self.out_of_order.insert(seq);
        } // seq < rcv_next: duplicate, re-ACK
        self.rcv_next
    }

    /// Highest contiguous sequence received.
    pub fn expected(&self) -> u64 {
        self.rcv_next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_seqs(actions: &[SendAction]) -> Vec<u64> {
        actions
            .iter()
            .filter_map(|a| match a {
                SendAction::SendData { seq } => Some(*seq),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = SenderState::new(TcpVariant::Reno, 1_000);
        assert_eq!(data_seqs(&s.pump()), vec![0, 1]); // initial window 2
                                                      // ACK both: window grows to 4, two new per ACK on average.
        let a1 = s.on_ack(1, false);
        let a2 = s.on_ack(2, false);
        let sent: usize = data_seqs(&a1).len() + data_seqs(&a2).len();
        assert_eq!(sent, 4);
        assert_eq!(s.cwnd_pkts(), 4);
    }

    #[test]
    fn completion_fires_exactly_once() {
        let mut s = SenderState::new(TcpVariant::Reno, 3);
        let _ = s.pump();
        let _ = s.on_ack(1, false);
        let _ = s.on_ack(2, false);
        let done = s.on_ack(3, false);
        assert!(done.contains(&SendAction::Complete));
        assert!(s.is_complete());
        assert!(s.on_ack(3, false).is_empty());
    }

    #[test]
    fn triple_dup_ack_fast_retransmits_and_halves() {
        let mut s = SenderState::new(TcpVariant::Reno, 1_000);
        let _ = s.pump();
        let _ = s.on_ack(1, false); // advance
        let _ = s.on_ack(2, false); // advance, cwnd = 4
        let cwnd_before = s.cwnd_pkts();
        assert_eq!(s.on_ack(2, false), vec![]); // dup 1
        assert_eq!(s.on_ack(2, false), vec![]); // dup 2
        let acts = s.on_ack(2, false); // dup 3 → fast retransmit seq 2
        assert_eq!(data_seqs(&acts), vec![2]);
        assert!(s.cwnd_pkts() <= cwnd_before / 2 + 1);
    }

    #[test]
    fn rto_goes_back_n_with_window_collapse() {
        let mut s = SenderState::new(TcpVariant::Reno, 100);
        let _ = s.pump();
        let epoch = s.rto_epoch;
        let acts = s.on_rto(epoch);
        assert_eq!(data_seqs(&acts), vec![0]); // cwnd = 1 → one segment
        assert_eq!(s.cwnd_pkts(), 1);
        // A stale epoch does nothing.
        assert!(s.on_rto(epoch).is_empty());
    }

    #[test]
    fn dctcp_alpha_tracks_mark_fraction() {
        let mut s = SenderState::new(TcpVariant::Dctcp, 10_000);
        let _ = s.pump();
        assert_eq!(s.alpha(), 0.0);
        // Fully marked traffic drives α up (EWMA with g = 1/16, one
        // update per window).
        for ack in 1..200u64 {
            let _ = s.on_ack(ack, true);
        }
        let peak = s.alpha();
        assert!(peak > 0.3, "α = {peak}");
        // Unmarked windows decay it.
        for ack in 200..600u64 {
            let _ = s.on_ack(ack, false);
        }
        assert!(s.alpha() < peak, "α should decay: {} vs {peak}", s.alpha());
    }

    #[test]
    fn dctcp_cuts_proportionally_not_by_half() {
        // Lightly marked: DCTCP's cut is gentler than Reno's halving.
        let mut s = SenderState::new(TcpVariant::Dctcp, 100_000);
        let _ = s.pump();
        for ack in 1..100u64 {
            let _ = s.on_ack(ack, false); // grow cleanly
        }
        let before = s.cwnd;
        // One marked window out of many: small α, small cut.
        for ack in 100..110u64 {
            let _ = s.on_ack(ack, ack % 10 == 0);
        }
        assert!(s.cwnd > before * 0.7, "{} vs {before}", s.cwnd);
    }

    #[test]
    fn receiver_generates_cumulative_acks() {
        let mut r = ReceiverState::default();
        assert_eq!(r.on_data(0), 1);
        assert_eq!(r.on_data(2), 1); // gap: hold 2
        assert_eq!(r.on_data(3), 1);
        assert_eq!(r.on_data(1), 4); // fills the gap, releases 2 and 3
        assert_eq!(r.on_data(1), 4); // duplicate re-ACKs
        assert_eq!(r.expected(), 4);
    }

    #[test]
    fn reno_never_deadlocks_without_loss() {
        // Drive a whole transfer with an in-order network: every pumped
        // segment is delivered and ACKed; the connection must complete.
        let mut s = SenderState::new(TcpVariant::Reno, 500);
        let mut r = ReceiverState::default();
        let mut wire: std::collections::VecDeque<u64> = data_seqs(&s.pump()).into();
        let mut guard = 0;
        while !s.is_complete() {
            guard += 1;
            assert!(guard < 10_000, "deadlock");
            let seq = wire.pop_front().expect("window stalled with no data");
            let ack = r.on_data(seq);
            for a in s.on_ack(ack, false) {
                if let SendAction::SendData { seq } = a {
                    wire.push_back(seq);
                }
            }
        }
    }

    #[test]
    fn late_ack_after_rto_rewind_does_not_underflow() {
        // Regression: send a window, rewind via RTO (next_seq ← acked),
        // then receive an ACK for data from *before* the rewind. The
        // window accounting must stay consistent (this underflowed
        // in_flight in debug builds).
        let mut s = SenderState::new(TcpVariant::Reno, 100);
        let _ = s.pump(); // seq 0, 1 in flight
        let epoch = s.rto_epoch;
        let _ = s.on_rto(epoch); // rewind: next_seq = 0, resend seq 0
                                 // The original seq 0 and 1 were actually delivered: ACK 2 lands.
        let acts = s.on_ack(2, false);
        assert!(s.in_flight() <= s.cwnd_pkts());
        // The connection keeps making progress.
        assert!(
            acts.iter()
                .any(|a| matches!(a, SendAction::SendData { .. })),
            "{acts:?}"
        );
        assert!(!s.is_complete());
    }
}
