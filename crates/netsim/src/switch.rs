//! Switch device models — Table 16 of the paper.
//!
//! Two state-of-the-art devices anchor every simulation:
//!
//! | Switch | Latency | Ports |
//! |---|---|---|
//! | Cisco Nexus 7000 (CCS) | 6 µs | 768 × 10 G or 192 × 40 G |
//! | Arista 7150S-64 (ULL) | 380 ns | 64 × 10 G or 16 × 40 G |
//!
//! "We use ULL for both ToR switches and aggregation switches, and CCS as
//! core switches. We use ULL exclusively in Quartz." (§7)

use quartz_topology::graph::SwitchRole;

/// A switch model: forwarding latency and architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Forwarding latency in nanoseconds.
    pub latency_ns: u64,
    /// Cut-through (can start transmitting before the frame fully
    /// arrives) vs store-and-forward.
    pub cut_through: bool,
    /// Port count in 10 G mode.
    pub ports_10g: u32,
    /// Port count in 40 G mode.
    pub ports_40g: u32,
}

/// How a switch forwards one frame: the per-hop decision the simulator
/// records as a `forward` observability event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForwardMode {
    /// Start forwarding `latency_ns` after the **head** arrives.
    CutThrough,
    /// Wait for the **tail**, then forward `latency_ns` later.
    StoreForward,
}

impl SwitchSpec {
    /// Decides cut-through vs store-and-forward for a frame arriving
    /// with `inbound_ns` of head-to-tail spacing that serializes out in
    /// `ser_ns`: cut-through is only possible when the output is no
    /// faster than the input, otherwise the transmitter would underrun
    /// mid-frame and the switch degrades to store-and-forward.
    #[inline]
    pub fn forward_mode(&self, inbound_ns: u64, ser_ns: u64) -> ForwardMode {
        if self.cut_through && ser_ns >= inbound_ns {
            ForwardMode::CutThrough
        } else {
            ForwardMode::StoreForward
        }
    }
}

/// The Cisco Nexus 7000 core switch (CCS): big, store-and-forward, 6 µs.
pub const CISCO_NEXUS_7000: SwitchSpec = SwitchSpec {
    name: "Cisco Nexus 7000 (CCS)",
    latency_ns: 6_000,
    cut_through: false,
    ports_10g: 768,
    ports_40g: 192,
};

/// The Arista 7150S-64 ultra-low-latency cut-through switch (ULL): 380 ns.
pub const ARISTA_7150S: SwitchSpec = SwitchSpec {
    name: "Arista 7150S-64 (ULL)",
    latency_ns: 380,
    cut_through: true,
    ports_10g: 64,
    ports_40g: 16,
};

/// Maps switch roles to device models and sets host-side latencies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Device used in ToR / aggregation / Quartz-ring positions.
    pub edge: SwitchSpec,
    /// Device used in the core tier.
    pub core: SwitchSpec,
    /// Host transmit-side latency (NIC + stack), ns.
    pub host_send_ns: u64,
    /// Host receive-side latency (NIC + stack), ns.
    pub host_recv_ns: u64,
}

impl LatencyModel {
    /// The paper's §7 configuration: ULL everywhere except CCS cores, and
    /// no host-side latency (the simulations isolate network latency).
    pub fn paper() -> Self {
        LatencyModel {
            edge: ARISTA_7150S,
            core: CISCO_NEXUS_7000,
            host_send_ns: 0,
            host_recv_ns: 0,
        }
    }

    /// An idealized zero-latency model, used to validate the simulator
    /// against queueing theory (only serialization and queueing remain).
    pub fn ideal() -> Self {
        LatencyModel {
            edge: SwitchSpec {
                name: "ideal",
                latency_ns: 0,
                cut_through: true,
                ports_10g: u32::MAX,
                ports_40g: u32::MAX,
            },
            core: SwitchSpec {
                name: "ideal",
                latency_ns: 0,
                cut_through: true,
                ports_10g: u32::MAX,
                ports_40g: u32::MAX,
            },
            host_send_ns: 0,
            host_recv_ns: 0,
        }
    }

    /// The device model for a switch role.
    #[inline]
    pub fn spec_for(&self, role: SwitchRole) -> SwitchSpec {
        match role {
            SwitchRole::Core => self.core,
            SwitchRole::TopOfRack | SwitchRole::Aggregation | SwitchRole::QuartzRing(_) => {
                self.edge
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table16_constants() {
        assert_eq!(CISCO_NEXUS_7000.latency_ns, 6_000);
        #[allow(clippy::assertions_on_constants)] // pins the datasheet value
        {
            assert!(!CISCO_NEXUS_7000.cut_through);
        }
        assert_eq!(CISCO_NEXUS_7000.ports_10g, 768);
        assert_eq!(CISCO_NEXUS_7000.ports_40g, 192);

        assert_eq!(ARISTA_7150S.latency_ns, 380);
        #[allow(clippy::assertions_on_constants)] // pins the datasheet value
        {
            assert!(ARISTA_7150S.cut_through);
        }
        assert_eq!(ARISTA_7150S.ports_10g, 64);
        assert_eq!(ARISTA_7150S.ports_40g, 16);
    }

    #[test]
    fn forward_mode_matches_the_timing_model() {
        // A cut-through device cuts through when the output serializes
        // no faster than the input delivers…
        assert_eq!(
            ARISTA_7150S.forward_mode(1_200, 1_200),
            ForwardMode::CutThrough
        );
        assert_eq!(
            ARISTA_7150S.forward_mode(300, 1_200),
            ForwardMode::CutThrough
        );
        // …degrades to store-and-forward onto a faster output link…
        assert_eq!(
            ARISTA_7150S.forward_mode(1_200, 300),
            ForwardMode::StoreForward
        );
        // …and a store-and-forward device never cuts through.
        assert_eq!(
            CISCO_NEXUS_7000.forward_mode(300, 1_200),
            ForwardMode::StoreForward
        );
    }

    #[test]
    fn paper_model_role_mapping() {
        let m = LatencyModel::paper();
        assert_eq!(m.spec_for(SwitchRole::Core), CISCO_NEXUS_7000);
        assert_eq!(m.spec_for(SwitchRole::TopOfRack), ARISTA_7150S);
        assert_eq!(m.spec_for(SwitchRole::Aggregation), ARISTA_7150S);
        assert_eq!(m.spec_for(SwitchRole::QuartzRing(3)), ARISTA_7150S);
    }

    #[test]
    fn core_is_an_order_of_magnitude_slower() {
        // §4.2: core switching latencies are "an order of magnitude more
        // than low-latency cut-through switches".
        let ratio = CISCO_NEXUS_7000.latency_ns as f64 / ARISTA_7150S.latency_ns as f64;
        assert!(ratio > 10.0);
    }

    #[test]
    fn ideal_model_is_free() {
        let m = LatencyModel::ideal();
        assert_eq!(m.spec_for(SwitchRole::Core).latency_ns, 0);
        assert_eq!(m.host_send_ns, 0);
    }
}
