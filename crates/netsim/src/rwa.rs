//! The online RWA control plane driving a live simulation — churn in
//! the optical layer, felt in the packet path.
//!
//! [`quartz_core::channel::online`] keeps a wavelength plan valid while
//! ring fibers are cut and spliced. This module closes the loop with
//! the packet simulator: each [`ChurnEvent`] is compiled ahead of the
//! run into
//!
//! 1. a re-solve of the wavelength plan (warm-started from the
//!    incumbent, greedy fallback under the node budget),
//! 2. a [`FaultPlan`] that darkens exactly the lightpaths the optical
//!    layer loses — torn-down pairs from the instant of the cut,
//!    re-tuned pairs for their transceivers' retune window after the
//!    control-plane delay — and relights them when the lasers lock, and
//! 3. [`Event::RwaResolve`] / [`Event::Retune`] observability events
//!    plus `rwa.*` metrics.
//!
//! Because the compilation is a pure function of the churn sequence,
//! the whole scenario stays bit-deterministic: same seed, same report,
//! at any worker count ([`churn_units`]).
//!
//! The retune window is the experiment's point: with
//! [`RetuneModel::instant`] reconfiguration is free and only the cuts
//! themselves hurt; with a real tunable-transceiver model every plan
//! change darkens channels for tens of microseconds to milliseconds,
//! and that shows up directly in the latency and drop distributions.

use crate::faults::FaultPlan;
use crate::sim::{FlowKind, SimConfig, Simulator};
use crate::stats::LatencySummary;
use crate::time::SimTime;
use quartz_core::channel::online::{OnlineRwa, ResolveReport, RingDelta};
use quartz_core::channel::Pair;
use quartz_core::pool::{unit_seed, ThreadPool};
use quartz_core::rng::StdRng;
use quartz_obs::{Event, MemoryRecorder, MetricsRegistry};
use quartz_optics::retune::{RetuneModel, FAST_TUNABLE_SFP};
use quartz_topology::builders::{quartz_mesh, QuartzMesh};
use std::collections::BTreeMap;

/// One optical-layer transition at an absolute simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When the fiber physically changes state.
    pub at: SimTime,
    /// What changes.
    pub delta: RingDelta,
}

/// A seeded random churn sequence: `cuts` distinct ring fibers each go
/// down at a uniformly random time in `window` and — when
/// `repair_after_ns` is given — are spliced back that long after their
/// cut. Events are sorted by time (cuts before repairs on exact ties).
///
/// # Panics
/// Panics if `cuts > m` or the window is empty.
pub fn random_churn(
    m: usize,
    cuts: usize,
    window: (SimTime, SimTime),
    repair_after_ns: Option<u64>,
    seed: u64,
) -> Vec<ChurnEvent> {
    assert!(cuts <= m, "only {m} ring fibers for {cuts} cuts");
    assert!(window.1 > window.0, "empty churn window");
    let mut fibers: Vec<usize> = (0..m).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let span = window.1 - window.0;
    let mut events = Vec::with_capacity(cuts * 2);
    for _ in 0..cuts {
        let pick = rng.random_range(0..fibers.len());
        let fiber = fibers.swap_remove(pick);
        let at = window.0 + rng.random_range(0..span as usize) as u64;
        events.push(ChurnEvent {
            at,
            delta: RingDelta::FiberCut(fiber),
        });
        if let Some(mttr) = repair_after_ns {
            events.push(ChurnEvent {
                at: at + mttr,
                delta: RingDelta::FiberRepair(fiber),
            });
        }
    }
    // Total deterministic order: time, then cut-before-repair, then
    // fiber index.
    events.sort_by_key(|e| {
        (
            e.at,
            matches!(e.delta, RingDelta::FiberRepair(_)),
            e.delta.fiber(),
        )
    });
    events
}

/// The churn sequence compiled against a mesh: the fault schedule the
/// simulator replays, plus everything the control plane learned while
/// producing it.
#[derive(Clone, Debug)]
pub struct CompiledChurn {
    /// Lightpath dark/relight transitions, ready for
    /// [`Simulator::apply_fault_plan`].
    pub plan: FaultPlan,
    /// `RwaResolve` and `Retune` events, time-sorted, for merging into
    /// the simulator's trace.
    pub control_events: Vec<Event>,
    /// One re-solve report per churn event, in order.
    pub reports: Vec<ResolveReport>,
    /// `rwa.*` counters and gauges.
    pub metrics: MetricsRegistry,
    /// Total transceiver retunes across the sequence.
    pub retunes: u64,
    /// Summed dark time charged to retuning (not to the outages
    /// themselves), ns.
    pub dark_ns_total: u64,
    /// Channels used by the final plan.
    pub final_channels: usize,
    /// Pairs still dark when the sequence ends.
    pub final_unroutable: usize,
}

/// Runs the online RWA controller over `churn` and compiles the
/// resulting optical-layer state changes into a packet-level
/// [`FaultPlan`] on `q`'s mesh.
///
/// Timing model per event at `t`: torn-down lightpaths go dark at `t`
/// (the cut is physical); the new plan lands at `t + control_delay_ns`;
/// every pair whose tuning changes is dark from then until its
/// [`RetuneOp::dark_ns`](quartz_core::channel::online::RetuneOp::dark_ns)
/// window under `retune` elapses; restored pairs relight when their
/// lasers lock. A later event supersedes any still-pending transitions
/// of the pairs it touches.
pub fn compile_churn(
    q: &QuartzMesh,
    churn: &[ChurnEvent],
    control_delay_ns: u64,
    node_budget: u64,
    retune: &RetuneModel,
) -> CompiledChurn {
    let m = q.switches.len();
    let mut rwa = OnlineRwa::new(m, node_budget);
    let mut metrics = MetricsRegistry::new();
    let mut control_events = Vec::new();
    let mut reports = Vec::with_capacity(churn.len());
    let mut retunes = 0u64;
    let mut dark_ns_total = 0u64;
    // Per-pair schedule of `(at_ns, lightpath_up)` transitions,
    // appended in event order and superseded on re-touch.
    let mut sched: BTreeMap<Pair, Vec<(u64, bool)>> = BTreeMap::new();

    for ev in churn {
        let t = ev.at.ns();
        let t_ctrl = t + control_delay_ns;
        let report = rwa.apply(ev.delta);

        // A new decision about a pair invalidates any transition of
        // that pair still scheduled for the future.
        let supersede = |sched: &mut BTreeMap<Pair, Vec<(u64, bool)>>, p: Pair| {
            sched.entry(p).or_default().retain(|&(at, _)| at <= t);
        };
        for &p in &report.torn_down {
            supersede(&mut sched, p);
            sched.get_mut(&p).expect("just inserted").push((t, false));
        }
        for op in &report.moved {
            let dark = op.dark_ns(retune);
            supersede(&mut sched, op.pair);
            let entry = sched.get_mut(&op.pair).expect("just inserted");
            if dark > 0 {
                entry.push((t_ctrl, false));
            }
            // With an instant model the pair never drops; the `true`
            // is a no-op unless an earlier window left it dark.
            entry.push((t_ctrl + dark, true));
        }
        for op in &report.restored {
            let dark = op.dark_ns(retune);
            supersede(&mut sched, op.pair);
            sched
                .get_mut(&op.pair)
                .expect("just inserted")
                .push((t_ctrl + dark, true));
        }

        metrics.inc(&format!("rwa.resolve.{}", report.outcome.as_str()), 1);
        let counts = [
            report.moved.len(),
            report.restored.len(),
            report.torn_down.len(),
        ];
        let sizes = [report.unroutable, report.channels, report.fresh_channels];
        debug_assert!(
            counts.iter().chain(&sizes).all(|&c| c <= u32::MAX as usize)
                && ev.delta.fiber() <= u32::MAX as usize,
            "RWA report counts fit u32"
        );
        control_events.push(Event::RwaResolve {
            t_ns: t_ctrl,
            trigger: ev.delta.as_str(),
            fiber: ev.delta.fiber() as u32,
            outcome: report.outcome.as_str(),
            moved: report.moved.len() as u32,
            restored: report.restored.len() as u32,
            torn_down: report.torn_down.len() as u32,
            unroutable: report.unroutable as u32,
            channels: report.channels as u32,
            fresh_channels: report.fresh_channels as u32,
        });
        for op in report.moved.iter().chain(report.restored.iter()) {
            if op.from == op.to {
                continue; // relight on the incumbent tuning: no retune
            }
            let dark = op.dark_ns(retune);
            retunes += 1;
            dark_ns_total += dark;
            debug_assert!(
                op.pair.a <= u32::MAX as usize && op.pair.b <= u32::MAX as usize,
                "ring pair ids fit u32"
            );
            control_events.push(Event::Retune {
                t_ns: t_ctrl,
                a: op.pair.a as u32,
                b: op.pair.b as u32,
                from_ch: op.from.1,
                to_ch: op.to.1,
                dark_ns: dark,
            });
        }
        reports.push(report);
    }

    // Flatten the per-pair schedules into link transitions, emitting
    // only actual state changes (every lightpath starts lit).
    let mut plan = FaultPlan::new();
    for (pair, transitions) in &sched {
        let link = q
            .net
            .link_between(q.switches[pair.a], q.switches[pair.b])
            .expect("mesh has a channel for every pair");
        let mut up = true;
        for &(at, want_up) in transitions {
            if want_up != up {
                if want_up {
                    plan.link_up(link, SimTime::from_ns(at));
                } else {
                    plan.link_down(link, SimTime::from_ns(at));
                }
                up = want_up;
            }
        }
    }

    metrics.inc("rwa.retunes", retunes);
    metrics.inc("rwa.dark_ns", dark_ns_total);
    let final_channels = rwa.plan().channels_used();
    let final_unroutable = rwa.plan().unroutable().len();
    metrics.set_gauge("rwa.channels", final_channels as f64);
    metrics.set_gauge("rwa.unroutable", final_unroutable as f64);

    CompiledChurn {
        plan,
        control_events,
        reports,
        metrics,
        retunes,
        dark_ns_total,
        final_channels,
        final_unroutable,
    }
}

/// Parameters of the churn experiment: a Quartz mesh under steady
/// Poisson load while ring fibers are cut and repaired, with the online
/// RWA controller re-provisioning the optical layer.
#[derive(Clone, Debug)]
pub struct ChurnScenarioConfig {
    /// Mesh size (switches in the ring, `2..=64`).
    pub switches: usize,
    /// Hosts attached to each switch.
    pub hosts_per_switch: usize,
    /// How many distinct ring fibers get cut.
    pub cuts: usize,
    /// Window the cuts land in.
    pub churn_window: (SimTime, SimTime),
    /// Mean time to repair after each cut (`None`: cuts are permanent).
    pub repair_after_ns: Option<u64>,
    /// Delay from a fiber transition to the new plan landing on the
    /// transceivers.
    pub control_delay_ns: u64,
    /// Routing-layer reconvergence holddown after each transition.
    pub reconvergence_ns: u64,
    /// Per-delta node budget of the incremental solver.
    pub node_budget: u64,
    /// Transceiver retune model ([`RetuneModel::instant`] for the
    /// free-reconfiguration baseline).
    pub retune: RetuneModel,
    /// When traffic generation stops (the run drains 2 ms longer).
    pub duration: SimTime,
    /// Mean Poisson inter-packet gap per flow, ns.
    pub mean_gap_ns: f64,
    /// Simulation seed (same seed ⇒ bit-identical report).
    pub seed: u64,
}

impl ChurnScenarioConfig {
    /// A CI-sized scenario: 9 switches, two cut+repair rounds inside a
    /// 1.5 ms run, fast-tunable transceivers.
    pub fn quick(seed: u64) -> Self {
        ChurnScenarioConfig {
            switches: 9,
            hosts_per_switch: 1,
            cuts: 2,
            churn_window: (SimTime::from_us(200), SimTime::from_us(800)),
            repair_after_ns: Some(400_000),
            control_delay_ns: 20_000,
            reconvergence_ns: 50_000,
            node_budget: 2_000_000,
            retune: FAST_TUNABLE_SFP,
            duration: SimTime::from_us(1_500),
            mean_gap_ns: 4_000.0,
            seed,
        }
    }

    /// The paper-scale scenario: the 33-switch ring, four cut+repair
    /// rounds across a 4 ms run.
    pub fn paper(seed: u64) -> Self {
        ChurnScenarioConfig {
            switches: 33,
            hosts_per_switch: 1,
            cuts: 4,
            churn_window: (SimTime::from_ms(1), SimTime::from_ms(3)),
            repair_after_ns: Some(500_000),
            control_delay_ns: 20_000,
            reconvergence_ns: 50_000,
            node_budget: 2_000_000,
            retune: FAST_TUNABLE_SFP,
            duration: SimTime::from_ms(4),
            mean_gap_ns: 4_000.0,
            seed,
        }
    }
}

/// Tag of the ring-neighbor flows.
pub const TAG_NEIGHBOR: u32 = 0;
/// Tag of the cross-ring (diameter) flows.
pub const TAG_CROSS: u32 = 1;

/// What the churn experiment measured. `PartialEq` is exact (floats
/// included): two same-seed runs must compare equal at any worker
/// count — the determinism guarantee the integration tests and the CI
/// `rwa-smoke` job pin.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnScenarioReport {
    /// Re-solves adopted from the warm start.
    pub warm_start: u32,
    /// Re-solves that fell back to fresh greedy on budget exhaustion.
    pub budget_fallback: u32,
    /// Re-solves where the fresh plan provably beat any warm completion.
    pub fresh_solve: u32,
    /// Total transceiver retunes.
    pub retunes: u64,
    /// Total retune-induced dark time, ns.
    pub dark_ns_total: u64,
    /// Channels used by the final plan.
    pub channels_final: usize,
    /// Pairs still dark at the end of the churn sequence.
    pub unroutable_final: usize,
    /// Latency of the ring-neighbor traffic.
    pub neighbor: LatencySummary,
    /// Latency of the cross-ring traffic.
    pub cross: LatencySummary,
    /// Routing reconvergences observed during the run.
    pub reroutes: u64,
    /// Total packets generated.
    pub generated: u64,
    /// Total packets delivered.
    pub delivered: u64,
    /// Total packets dropped.
    pub dropped: u64,
}

/// Builds the churn simulator and its compiled control-plane schedule.
fn churn_sim(cfg: &ChurnScenarioConfig) -> (Simulator, CompiledChurn) {
    assert!(cfg.switches >= 3, "a detour needs a third switch");
    let q = quartz_mesh(cfg.switches, cfg.hosts_per_switch, 10.0, 10.0);
    // The churn stream gets its own unit of the seed's splitmix stream
    // so it never aliases the simulator's draws.
    let churn = random_churn(
        cfg.switches,
        cfg.cuts,
        cfg.churn_window,
        cfg.repair_after_ns,
        unit_seed(cfg.seed, 1),
    );
    let compiled = compile_churn(
        &q,
        &churn,
        cfg.control_delay_ns,
        cfg.node_budget,
        &cfg.retune,
    );

    let mut sim = Simulator::new(
        q.net.clone(),
        SimConfig {
            seed: cfg.seed,
            reconvergence_ns: Some(cfg.reconvergence_ns),
            ..SimConfig::default()
        },
    );
    let hps = cfg.hosts_per_switch;
    let host_of = |sw: usize| q.hosts[sw * hps];
    // Every switch talks to its ring neighbor (shortest channels, the
    // ones single cuts displace) and to its antipode (the long arcs
    // that cross whichever fiber dies).
    let m = cfg.switches;
    for i in 0..m {
        sim.add_flow(
            host_of(i),
            host_of((i + 1) % m),
            400,
            FlowKind::Poisson {
                mean_gap_ns: cfg.mean_gap_ns,
                stop: cfg.duration,
                respond: false,
            },
            TAG_NEIGHBOR,
            SimTime::ZERO,
        );
        sim.add_flow(
            host_of(i),
            host_of((i + m / 2) % m),
            400,
            FlowKind::Poisson {
                mean_gap_ns: cfg.mean_gap_ns,
                stop: cfg.duration,
                respond: false,
            },
            TAG_CROSS,
            SimTime::ZERO,
        );
    }
    sim.apply_fault_plan(&compiled.plan);
    (sim, compiled)
}

/// Summarizes a finished churn run.
fn churn_report(sim: &Simulator, compiled: &CompiledChurn) -> ChurnScenarioReport {
    let stats = sim.stats();
    let mut warm_start = 0;
    let mut budget_fallback = 0;
    let mut fresh_solve = 0;
    for r in &compiled.reports {
        use quartz_core::channel::online::ResolveOutcome;
        match r.outcome {
            ResolveOutcome::WarmStart => warm_start += 1,
            ResolveOutcome::BudgetFallback => budget_fallback += 1,
            ResolveOutcome::FreshSolve => fresh_solve += 1,
        }
    }
    ChurnScenarioReport {
        warm_start,
        budget_fallback,
        fresh_solve,
        retunes: compiled.retunes,
        dark_ns_total: compiled.dark_ns_total,
        channels_final: compiled.final_channels,
        unroutable_final: compiled.final_unroutable,
        neighbor: stats.summary(TAG_NEIGHBOR),
        cross: stats.summary(TAG_CROSS),
        reroutes: sim
            .fault_log()
            .iter()
            .filter(|r| r.reconverged_at.is_some())
            .count() as u64,
        generated: stats.generated,
        delivered: stats.delivered,
        dropped: stats.dropped,
    }
}

/// Runs the churn experiment: compile the seeded churn sequence through
/// the online RWA controller, replay the resulting lightpath
/// transitions against steady Poisson load, and report both the
/// control-plane outcomes and the packet-level damage.
pub fn churn_scenario(cfg: &ChurnScenarioConfig) -> ChurnScenarioReport {
    let (mut sim, compiled) = churn_sim(cfg);
    sim.run(cfg.duration + 2_000_000);
    churn_report(&sim, &compiled)
}

/// [`churn_scenario`] traced into memory: the report, the merged event
/// stream (simulator events with the control plane's `RwaResolve` /
/// `Retune` events interleaved in time order), and the merged metrics.
pub fn churn_scenario_traced(
    cfg: &ChurnScenarioConfig,
) -> (ChurnScenarioReport, Vec<Event>, MetricsRegistry) {
    let (mut sim, compiled) = churn_sim(cfg);
    sim.set_recorder(Box::new(MemoryRecorder::new()));
    sim.enable_metrics();
    sim.run(cfg.duration + 2_000_000);
    let recorder = sim.take_recorder().expect("recorder was attached");
    let mut metrics = sim.take_metrics().expect("metrics were enabled");
    metrics.merge(&compiled.metrics);
    let events = merge_by_time(recorder.finish(), compiled.control_events.clone());
    (churn_report(&sim, &compiled), events, metrics)
}

/// Interleaves the control plane's time-sorted events into the
/// simulator's emission-ordered stream: each control event lands before
/// the first simulator event whose timestamp exceeds it. (The simulator
/// stream itself is not globally time-sorted — cut-through forwarding
/// records future-timestamped events — so this is an anchoring, not a
/// sort; it is deterministic either way.)
fn merge_by_time(sim_events: Vec<Event>, control: Vec<Event>) -> Vec<Event> {
    let mut out = Vec::with_capacity(sim_events.len() + control.len());
    let mut ctrl = control.into_iter().peekable();
    for ev in sim_events {
        while ctrl.peek().is_some_and(|c| c.t_ns() < ev.t_ns()) {
            out.push(ctrl.next().expect("peeked"));
        }
        out.push(ev);
    }
    out.extend(ctrl);
    out
}

/// Runs `units` independent churn scenarios (unit `u` re-seeded with
/// [`unit_seed`]`(cfg.seed, u)`) on `pool`, reports in unit order. The
/// result is bit-identical at any pool width — the property the CI
/// smoke job diffs.
pub fn churn_units(
    cfg: &ChurnScenarioConfig,
    units: usize,
    pool: &ThreadPool,
) -> Vec<ChurnScenarioReport> {
    let base = cfg.clone();
    pool.par_map(units, move |u| {
        let mut unit_cfg = base.clone();
        unit_cfg.seed = unit_seed(base.seed, u as u64);
        churn_scenario(&unit_cfg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_churn_is_seeded_and_well_ordered() {
        let w = (SimTime::from_us(100), SimTime::from_us(900));
        let a = random_churn(9, 3, w, Some(50_000), 11);
        let b = random_churn(9, 3, w, Some(50_000), 11);
        assert_eq!(a, b);
        let c = random_churn(9, 3, w, Some(50_000), 12);
        assert_ne!(a, c);
        assert_eq!(a.len(), 6);
        assert!(a.windows(2).all(|p| p[0].at <= p[1].at));
        // Every fiber is cut exactly once and repaired exactly once,
        // repair strictly after (mttr > 0).
        for e in &a {
            if let RingDelta::FiberRepair(f) = e.delta {
                let cut = a
                    .iter()
                    .find(|x| x.delta == RingDelta::FiberCut(f))
                    .expect("matching cut");
                assert_eq!(e.at, cut.at + 50_000);
            }
        }
    }

    #[test]
    fn compile_charges_retune_darkness_only_under_a_real_model() {
        let q = quartz_mesh(9, 1, 10.0, 10.0);
        let churn = random_churn(
            9,
            2,
            (SimTime::from_us(200), SimTime::from_us(800)),
            Some(400_000),
            unit_seed(0xC0FFEE, 1),
        );
        let real = compile_churn(&q, &churn, 20_000, 2_000_000, &FAST_TUNABLE_SFP);
        let instant = compile_churn(&q, &churn, 20_000, 2_000_000, &RetuneModel::instant());
        // Same control-plane decisions (the solver never sees the
        // retune model) …
        assert_eq!(real.reports, instant.reports);
        assert_eq!(real.retunes, instant.retunes);
        // … but only the real model charges dark time.
        assert_eq!(instant.dark_ns_total, 0);
        assert!(real.retunes > 0, "churn should force retunes");
        assert!(real.dark_ns_total >= real.retunes * FAST_TUNABLE_SFP.base_ns);
        // The fault schedule differs: retune windows add transitions.
        assert!(real.plan.len() >= instant.plan.len());
    }

    #[test]
    fn compiled_plan_balances_every_dark_window() {
        // Repairs within the run: every pair that goes dark comes back,
        // so downs and ups pair off exactly.
        use crate::faults::FaultKind;
        let q = quartz_mesh(9, 1, 10.0, 10.0);
        let churn = random_churn(
            9,
            2,
            (SimTime::from_us(200), SimTime::from_us(800)),
            Some(400_000),
            unit_seed(7, 1),
        );
        let compiled = compile_churn(&q, &churn, 20_000, 2_000_000, &FAST_TUNABLE_SFP);
        assert_eq!(compiled.final_unroutable, 0);
        let mut down = std::collections::BTreeMap::new();
        for ev in compiled.plan.events() {
            match ev.kind {
                FaultKind::LinkDown(l) => *down.entry(l).or_insert(0i64) += 1,
                FaultKind::LinkUp(l) => *down.entry(l).or_insert(0i64) -= 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(
            down.values().all(|&v| v == 0),
            "unbalanced windows: {down:?}"
        );
    }

    #[test]
    fn scenario_is_deterministic_and_feels_the_retune_window() {
        let cfg = ChurnScenarioConfig::quick(0xA1);
        let a = churn_scenario(&cfg);
        let b = churn_scenario(&cfg);
        assert_eq!(a, b, "same seed, same report");
        assert!(a.generated > 0 && a.delivered > 0);
        assert!(a.retunes > 0);
        assert!(a.dark_ns_total > 0);

        let mut instant_cfg = cfg.clone();
        instant_cfg.retune = RetuneModel::instant();
        let instant = churn_scenario(&instant_cfg);
        assert_eq!(instant.dark_ns_total, 0);
        // Reconfiguration cost is visible in the packet path: the
        // retune-modeled run loses at least as many packets, and the
        // runs are distinguishable.
        assert!(a.dropped >= instant.dropped);
        assert_ne!(a, instant);
    }

    #[test]
    fn traced_run_matches_plain_run_and_tells_the_story() {
        let cfg = ChurnScenarioConfig::quick(0xB2);
        let plain = churn_scenario(&cfg);
        let (traced, events, metrics) = churn_scenario_traced(&cfg);
        assert_eq!(plain, traced);
        // The control plane's own events stay in time order inside the
        // merged stream (the sim stream is emission-ordered, so only
        // the control subsequence is globally sorted).
        let ctrl_times: Vec<u64> = events
            .iter()
            .filter(|e| matches!(e.tag(), "rwa_resolve" | "retune"))
            .map(|e| e.t_ns())
            .collect();
        assert!(ctrl_times.windows(2).all(|w| w[0] <= w[1]));
        let resolves = events.iter().filter(|e| e.tag() == "rwa_resolve").count();
        assert_eq!(resolves, 2 * cfg.cuts);
        assert_eq!(
            events.iter().filter(|e| e.tag() == "retune").count() as u64,
            traced.retunes
        );
        assert_eq!(
            metrics.counter("rwa.resolve.warm_start")
                + metrics.counter("rwa.resolve.budget_fallback")
                + metrics.counter("rwa.resolve.fresh_solve"),
            (2 * cfg.cuts) as u64
        );
        assert_eq!(metrics.counter("rwa.retunes"), traced.retunes);
        assert_eq!(metrics.counter("sim.packets.generated"), traced.generated);
    }

    #[test]
    fn units_are_identical_across_pool_widths() {
        let cfg = ChurnScenarioConfig::quick(0xC3);
        let seq = churn_units(&cfg, 3, &ThreadPool::sequential());
        let par = churn_units(&cfg, 3, &ThreadPool::new(4));
        assert_eq!(seq, par);
        // Units are genuinely different experiments.
        assert_ne!(seq[0], seq[1]);
    }
}
