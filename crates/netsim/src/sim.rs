//! The discrete-event engine and its workload drivers.
//!
//! ## Timing model
//!
//! Every packet is tracked by the arrival times of its **head** and
//! **tail** at each node. A device adds its forwarding latency, then
//! queues the packet on the output port:
//!
//! * a **cut-through** switch may start transmitting `latency` after the
//!   head arrives — unless the output link is faster than the input (it
//!   would underrun), in which case it degrades to store-and-forward;
//! * a **store-and-forward** switch (and every host) waits for the tail;
//! * the output port serializes at link rate, FIFO, with a drop-tail
//!   byte-capacity bound;
//! * propagation delay is constant per link (datacenter cables are short).
//!
//! ## Workloads
//!
//! [`FlowKind`] covers every traffic shape in the paper: open-loop
//! Poisson streams (optionally echoed by the receiver, for
//! scatter/gather), closed-loop ping-pong RPC (the §6.1 Thrift
//! experiment), and bursty on/off sources (§6.1's Nuttcp cross-traffic:
//! "20 packet bursts that are separated by idle intervals, the duration
//! of which is selected to meet a target bandwidth").
//!
//! ## Determinism
//!
//! One seeded RNG; event ties break on a monotone sequence number; ECMP
//! picks by flow hash. Two runs with the same seed are bit-identical.

use crate::arena::{
    PacketArena, PacketCold, PacketId, FLAG_ECN, FLAG_LAST, FLAG_RESPONSE, FLAG_VLB_DECIDED,
};
use crate::faults::{FaultKind, FaultPlan};
use crate::sched::{BinaryHeapScheduler, Scheduler, SchedulerKind, TimingWheel};
use crate::stats::Stats;
use crate::switch::{ForwardMode, LatencyModel};
use crate::time::SimTime;
use crate::transport::{ReceiverState, SendAction, SenderState, TcpVariant, TransportInfo};
use quartz_core::rng::StdRng;
use quartz_obs::{DropReason, Event, MetricsRegistry, Recorder};
use quartz_topology::graph::{LinkId, Network, NodeId, NodeKind};
use quartz_topology::route::{FlatRoutes, RouteChange, RouteTable};
use std::collections::VecDeque;

/// Valiant load balancing configuration (§3.4).
#[derive(Clone, Debug)]
pub struct VlbConfig {
    /// Fraction of eligible packets detoured over a two-hop path.
    pub fraction: f64,
    /// The mesh domains (each a list of switches forming a full mesh —
    /// one entry per Quartz ring).
    pub domains: Vec<Vec<NodeId>>,
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed; same seed ⇒ identical run.
    pub seed: u64,
    /// Drop-tail capacity of each output port, bytes.
    pub queue_cap_bytes: u64,
    /// Per-link propagation delay, ns.
    pub prop_delay_ns: u64,
    /// Device latency model.
    pub latency: LatencyModel,
    /// Optional VLB routing inside mesh domains.
    pub vlb: Option<VlbConfig>,
    /// ECN marking threshold (DCTCP's K): packets enqueued behind more
    /// than this many bytes are marked. `None` disables marking.
    pub ecn_threshold_bytes: Option<u64>,
    /// Transport retransmission timeout, ns.
    pub rto_ns: u64,
    /// Control-plane reconvergence delay: when a fault (or recovery)
    /// fires, routes are recomputed over the degraded network this many
    /// ns later. `None` (the default) models a static control plane —
    /// call [`Simulator::reroute`] by hand.
    pub reconvergence_ns: Option<u64>,
    /// Which event engine drives the run. The default
    /// [`SchedulerKind::TimingWheel`] and the reference
    /// [`SchedulerKind::BinaryHeap`] drain events in an identical
    /// order, so this knob changes wall time only — never output.
    pub scheduler: SchedulerKind,
    /// How back-to-back arrivals on one link are scheduled. Both modes
    /// process every arrival at exactly the same `(time, seq)` position
    /// (DESIGN.md §10), so this knob changes wall time only — never
    /// output.
    pub drain: DrainMode,
}

/// How arrivals queued back-to-back on one directed link are scheduled
/// (see [`SimConfig::drain`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DrainMode {
    /// One scheduler visit transmits a whole back-to-back run: packets
    /// that queue behind an in-progress transmission join a per-link
    /// batch, and a single sentinel event drains the run in-line,
    /// yielding back to the scheduler whenever any other event (a
    /// fault, an RTO, an arrival on another link) is due first. The
    /// default.
    #[default]
    Batched,
    /// One scheduler event per packet arrival — the reference schedule,
    /// kept for differential testing and A/B benches.
    PerPacket,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            queue_cap_bytes: 512 * 1024,
            prop_delay_ns: 50,
            latency: LatencyModel::paper(),
            vlb: None,
            ecn_threshold_bytes: None,
            rto_ns: 250_000,
            reconvergence_ns: None,
            scheduler: SchedulerKind::TimingWheel,
            drain: DrainMode::Batched,
        }
    }
}

/// A traffic source shape.
#[derive(Clone, Copy, Debug)]
pub enum FlowKind {
    /// Open-loop Poisson stream with the given mean inter-arrival gap.
    /// With `respond`, the receiver echoes every packet and the recorded
    /// latency is the round trip; otherwise one-way delivery latency.
    Poisson {
        /// Mean gap between packet emissions, ns.
        mean_gap_ns: f64,
        /// Stop emitting at this time.
        stop: SimTime,
        /// Echo each packet back to the sender.
        respond: bool,
    },
    /// Closed-loop ping-pong RPC: one outstanding request; the next is
    /// sent when the response arrives. Records round-trip latencies.
    Rpc {
        /// Total requests to issue.
        count: u32,
    },
    /// On/off source: `burst_pkts` back-to-back packets every
    /// `period_ns` (pick the period to hit a target mean bandwidth).
    Burst {
        /// Packets per burst.
        burst_pkts: u32,
        /// Time between burst starts, ns.
        period_ns: u64,
        /// Stop starting bursts at this time.
        stop: SimTime,
    },
    /// A one-shot file transfer: `total_bytes` split into packets of the
    /// flow's size, queued back-to-back at the start time. The recorded
    /// latency is the **flow completion time** (delivery of the final
    /// packet, measured from the start).
    FileTransfer {
        /// Total payload to move.
        total_bytes: u64,
    },
    /// A reliable, congestion-controlled transfer (Reno or DCTCP state
    /// machine from [`crate::transport`]). The recorded latency is the
    /// flow completion time (final cumulative ACK at the sender).
    Transport {
        /// Total payload to move.
        total_bytes: u64,
        /// Congestion-control variant.
        variant: TcpVariant,
    },
}

/// Per-flow metadata, fixed at [`Simulator::add_flow`]. `Copy`, so the
/// per-event handlers read it by value without cloning and stay free to
/// mutate the parallel [`FlowState`] table.
#[derive(Clone, Copy, Debug)]
struct FlowMeta {
    src: NodeId,
    dst: NodeId,
    size: u32,
    kind: FlowKind,
    tag: u32,
    hash: u64,
    /// Index into the dense connection table (`u32::MAX` for flows with
    /// no transport state) — interned at `add_flow` so the per-delivery
    /// lookup is one indexed load, not an `Option` walk.
    conn: u32,
}

/// Sentinel: this flow has no transport connection.
const NO_CONN: u32 = u32::MAX;

/// Per-flow mutable progress, parallel to the [`FlowMeta`] table.
#[derive(Clone, Debug)]
struct FlowState {
    sent: u32,
    /// First emission time (file transfers measure completion from it).
    t0: SimTime,
    /// Index into the simulator's extra route tables (SPAIN-style VLAN
    /// selection, §6); `None` = the default ECMP table.
    table: Option<usize>,
}

#[derive(Clone, Copy, Debug)]
enum EvKind {
    /// Emit the flow's next packet (or burst).
    Gen { flow: usize },
    /// Packet head arrives at a node; the tail follows `ser` ns later
    /// (the serialization time, which always fits 32 bits — reconstructed
    /// as `time + ser` at dispatch to keep the event at one word). The
    /// packet's fields live in the [`PacketArena`]; the event carries
    /// only its id.
    Head { pkt: PacketId, at: NodeId, ser: u32 },
    /// Sentinel for a non-empty per-link batch: drain the back-to-back
    /// run queued on directed link `slot`. Carries the `(time, seq)`
    /// key of the batch's first pending arrival, so it pops exactly
    /// where that arrival's own `Head` event would have.
    LinkDrain { slot: u32 },
    /// Both directions of a link fail (a fiber cut).
    FailLink { link: LinkId },
    /// A previously cut link carries traffic again.
    RecoverLink { link: LinkId },
    /// A switch dies: every frame arriving at it is lost.
    FailSwitch { node: NodeId },
    /// A dead switch comes back.
    RecoverSwitch { node: NodeId },
    /// Control-plane reconvergence completes: recompute routes over the
    /// surviving elements and close open [`FaultRecord`]s.
    Reroute,
    /// Transport retransmission timer for `flow`; ignored if `epoch` is
    /// stale. Both fields are narrowed to keep the event at 16 bytes;
    /// neither plausibly exceeds 32 bits in a simulation's lifetime.
    Rto { flow: u32, epoch: u32 },
}

/// One entry of the simulator's fault log: what failed (or recovered),
/// when, and what the outage cost before routes reconverged.
#[derive(Clone, Copy, Debug)]
pub struct FaultRecord {
    /// When the fault fired.
    pub at: SimTime,
    /// What happened.
    pub kind: FaultKind,
    /// When the control plane reconverged onto routes that account for
    /// this event (`None` while the outage is still unrepaired).
    pub reconverged_at: Option<SimTime>,
    /// Packets dropped anywhere in the network between the event and
    /// reconvergence (0 until reconvergence closes the record).
    pub drops_during_outage: u64,
    /// Total drops when the event fired, to difference against at close.
    pub(crate) baseline_drops: u64,
}

/// One entry of the simulator's flow-completion log: a managed flow
/// ([`FlowKind::Transport`] or [`FlowKind::FileTransfer`]) delivered its
/// last byte. See [`Simulator::flow_completions`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowCompletion {
    /// Flow index (as returned by [`Simulator::add_flow`]).
    pub flow: u32,
    /// Flow completion time: open → last byte delivered, ns.
    pub fct_ns: u64,
}

/// The simulator's event engine: static dispatch over the two
/// [`Scheduler`] implementations (a `dyn` scheduler would cost a
/// virtual call per push/pop on the hottest loop in the workspace; the
/// enum costs one predictable branch).
enum EventQueue {
    Wheel(TimingWheel<EvKind>),
    Heap(BinaryHeapScheduler<EvKind>),
}

impl EventQueue {
    fn new(kind: SchedulerKind) -> Self {
        match kind {
            SchedulerKind::TimingWheel => EventQueue::Wheel(TimingWheel::new()),
            SchedulerKind::BinaryHeap => EventQueue::Heap(BinaryHeapScheduler::new()),
        }
    }

    #[inline]
    fn push(&mut self, time: SimTime, kind: EvKind) {
        match self {
            EventQueue::Wheel(w) => w.push(time, kind),
            EventQueue::Heap(h) => h.push(time, kind),
        }
    }

    #[inline]
    fn pop_before(&mut self, bound: SimTime) -> Option<(SimTime, EvKind)> {
        match self {
            EventQueue::Wheel(w) => w.pop_before(bound),
            EventQueue::Heap(h) => h.pop_before(bound),
        }
    }

    #[inline]
    fn reserve_seq(&mut self) -> u64 {
        match self {
            EventQueue::Wheel(w) => w.reserve_seq(),
            EventQueue::Heap(h) => h.reserve_seq(),
        }
    }

    #[inline]
    fn push_at_seq(&mut self, time: SimTime, seq: u64, kind: EvKind) {
        match self {
            EventQueue::Wheel(w) => w.push_at_seq(time, seq, kind),
            EventQueue::Heap(h) => h.push_at_seq(time, seq, kind),
        }
    }

    #[inline]
    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        match self {
            EventQueue::Wheel(w) => w.peek_key(),
            EventQueue::Heap(h) => h.peek_key(),
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        match self {
            EventQueue::Wheel(w) => w.is_empty(),
            EventQueue::Heap(h) => h.is_empty(),
        }
    }
}

/// Per-direction link state. `pub(crate)` because the sharded engine
/// ([`crate::shard`]) reuses the exact same per-slot bookkeeping (and
/// must, for bit-identical serialization arithmetic).
#[derive(Clone, Debug)]
pub(crate) struct DirLink {
    pub(crate) rate_gbps: f64, // == bits per ns
    pub(crate) free_at: SimTime,
    /// Nanoseconds spent transmitting (for utilization reports).
    pub(crate) busy_ns: u64,
    /// Bytes transmitted.
    pub(crate) bytes: u64,
    /// A failed link silently drops everything queued onto it.
    pub(crate) failed: bool,
    /// Memoized serialization time for the last frame size sent (the
    /// rate is fixed per link and traffic is dominated by one or two
    /// sizes, so the `ceil(bits / rate)` float round-trip rarely
    /// recomputes). `ser_size == 0` means empty.
    pub(crate) ser_size: u32,
    pub(crate) ser_ns: u64,
}

impl DirLink {
    /// Serialization time for `size` bytes — the cached value when the
    /// size repeats, the identical f64 computation when it doesn't.
    #[inline]
    pub(crate) fn ser_ns(&mut self, size: u32) -> u64 {
        if self.ser_size != size {
            self.ser_size = size;
            self.ser_ns = ((size as f64 * 8.0) / self.rate_gbps).ceil() as u64;
        }
        self.ser_ns
    }
}

/// Per-direction transmission statistics for one link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkLoad {
    /// Busy transmission time in the `a → b` direction, ns.
    pub ab_busy_ns: u64,
    /// Bytes sent `a → b`.
    pub ab_bytes: u64,
    /// Busy transmission time in the `b → a` direction, ns.
    pub ba_busy_ns: u64,
    /// Bytes sent `b → a`.
    pub ba_bytes: u64,
}

impl LinkLoad {
    /// Utilization of the busier direction over `elapsed` ns.
    pub fn peak_utilization(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            0.0
        } else {
            self.ab_busy_ns.max(self.ba_busy_ns) as f64 / elapsed_ns as f64
        }
    }
}

/// The discrete-event simulator.
///
/// # Examples
///
/// ```
/// use quartz_netsim::sim::{FlowKind, SimConfig, Simulator};
/// use quartz_netsim::time::SimTime;
/// use quartz_topology::builders::prototype_quartz;
///
/// let p = prototype_quartz();
/// let mut sim = Simulator::new(p.net.clone(), SimConfig::default());
/// sim.add_flow(
///     p.hosts[0],
///     p.hosts[7],
///     400,
///     FlowKind::Rpc { count: 100 },
///     0,
///     SimTime::ZERO,
/// );
/// sim.run(SimTime::from_ms(10));
/// assert_eq!(sim.stats().summary(0).count, 100);
/// ```
pub struct Simulator {
    net: Network,
    table: RouteTable,
    cfg: SimConfig,
    flows: Vec<FlowMeta>,
    /// Mutable per-flow progress, parallel to `flows`.
    flow_state: Vec<FlowState>,
    links: Vec<DirLink>, // 2 per undirected link: [2l] = a→b, [2l+1] = b→a
    events: EventQueue,
    rng: StdRng,
    stats: Stats,
    now: SimTime,
    /// VLB domain index per node (`u32::MAX` = not in any domain).
    /// Dense so the per-packet membership test is one indexed load.
    vlb_domain: Vec<u32>,
    /// Whether any VLB domain exists at all; `false` short-circuits the
    /// per-hop membership load in non-VLB runs.
    vlb_enabled: bool,
    /// Scratch buffer for VLB intermediate candidates; reused across
    /// packets so the steady-state hot path allocates nothing.
    vlb_scratch: Vec<NodeId>,
    /// Scratch buffer for transport actions; reused (via `mem::take`)
    /// across transport events so the hot path allocates nothing.
    action_scratch: Vec<SendAction>,
    /// Dense transport connection table; `FlowMeta::conn` indexes it.
    conns: Vec<Conn>,
    /// In-flight packet store (struct-of-arrays; events carry ids).
    arena: PacketArena,
    /// Per-directed-link batch of pending arrivals ([`DrainMode::Batched`]):
    /// arena ids whose `(arr_head, arr_seq)` keys are strictly
    /// increasing per queue. Non-empty exactly while one
    /// [`EvKind::LinkDrain`] sentinel for the slot is queued (or being
    /// dispatched).
    link_q: Vec<VecDeque<PacketId>>,
    /// Arrival node of each directed link slot (`[2l]` = `a→b` arrives
    /// at `b`), precomputed so a drained batch entry needs no lookup.
    slot_dst: Vec<NodeId>,
    /// Events processed so far (queue pops + batched arrivals): the
    /// denominator-free half of the events/sec headline metric.
    events_processed: u64,
    /// CSR-flattened view of `table` — the per-hop lookup the forward
    /// path actually uses (no map walks, no adjacency scans).
    flat: FlatRoutes,
    /// Extra routing tables (per-VLAN spanning trees, §6's SPAIN
    /// technique); flows may pin themselves to one. Stored flattened.
    extra_flat: Vec<FlatRoutes>,
    /// Per-node failure state (only switches ever fail).
    failed_nodes: Vec<bool>,
    /// Dense per-node kind column ([`Network::node`] rows carry rack
    /// metadata the per-hop path never reads; this keeps the whole
    /// fleet's kinds in a cache line or two).
    node_kind: Vec<NodeKind>,
    /// Link/node failure state *as the routing table last saw it*.
    /// `complete_reroute` replays pending deltas against these so each
    /// incremental patch observes exactly the state the previous patch
    /// produced (faults and recoveries may interleave between reroutes).
    routed_link_failed: Vec<bool>,
    routed_node_failed: Vec<bool>,
    /// Fault deltas that have fired but are not yet reflected in
    /// `table`; drained by `complete_reroute`.
    pending_route_changes: Vec<FaultKind>,
    /// Every fault event that has fired, with reconvergence outcomes.
    fault_log: Vec<FaultRecord>,
    /// Completion log for end-to-end managed flows ([`FlowKind::Transport`]
    /// and [`FlowKind::FileTransfer`]), in completion order. `Stats`
    /// aggregates by tag; workload drivers need the per-flow completion
    /// times back (FCT, slowdown), so each is also logged here — one
    /// push per *flow*, not per packet, so it stays off the hot path.
    completions: Vec<FlowCompletion>,
    /// Observability: optional event sink. `None` (the default) keeps
    /// every emission site down to one branch.
    recorder: Option<Box<dyn Recorder>>,
    /// Observability: optional metrics registry.
    metrics: Option<MetricsRegistry>,
    /// Pre-rendered per-switch / per-slot metric label strings, grown
    /// off the hot path so forwarding never formats (see
    /// [`MetricLabels`]).
    labels: MetricLabels,
    /// `recorder.is_some() || metrics.is_some()`, maintained by the
    /// attach/detach methods.
    obs: bool,
}

/// Per-switch and per-directed-slot metric label caches. The labels
/// (`switch.NNN.forwarded`, `queue.linkNNNN.ab`, …) are deterministic
/// functions of the node/slot index, so they are rendered once, on
/// first use, and the forwarding path borrows the cached `&str` —
/// `format!` never runs per packet.
#[derive(Debug, Default)]
pub(crate) struct MetricLabels {
    /// `switch.{:03}.forwarded`, indexed by node id.
    switch_fwd: Vec<String>,
    /// `queue.link{:04}.{ab|ba}`, indexed by directed slot.
    queue: Vec<String>,
    /// `util.link{:04}.{ab|ba}`, indexed by directed slot.
    util: Vec<String>,
}

impl MetricLabels {
    pub(crate) fn switch_fwd(&mut self, node: u32) -> &str {
        while self.switch_fwd.len() <= node as usize {
            let n = self.switch_fwd.len();
            self.switch_fwd.push(format!("switch.{n:03}.forwarded"));
        }
        &self.switch_fwd[node as usize]
    }

    pub(crate) fn queue(&mut self, slot: u32) -> &str {
        Self::slot_label(&mut self.queue, "queue", slot)
    }

    pub(crate) fn util(&mut self, slot: u32) -> &str {
        Self::slot_label(&mut self.util, "util", slot)
    }

    /// Slot layout mirrors [`Simulator::links`]: `[2l]` = a→b (`ab`),
    /// `[2l+1]` = b→a (`ba`).
    fn slot_label<'a>(cache: &'a mut Vec<String>, prefix: &str, slot: u32) -> &'a str {
        while cache.len() <= slot as usize {
            let s = cache.len();
            let link_idx = s >> 1;
            let dir_tag = if s & 1 == 0 { "ab" } else { "ba" };
            cache.push(format!("{prefix}.link{link_idx:04}.{dir_tag}"));
        }
        &cache[slot as usize]
    }
}

/// One reliable connection's two endpoints plus its start time.
struct Conn {
    sender: SenderState,
    receiver: ReceiverState,
    t0: SimTime,
}

impl Simulator {
    /// Builds a simulator over `net` (routing tables are computed here).
    pub fn new(net: Network, cfg: SimConfig) -> Self {
        let table = RouteTable::all_shortest_paths(&net);
        let links = net
            .links()
            .flat_map(|l| {
                let d = DirLink {
                    rate_gbps: l.bandwidth_gbps,
                    free_at: SimTime::ZERO,
                    busy_ns: 0,
                    bytes: 0,
                    failed: false,
                    ser_size: 0,
                    ser_ns: 0,
                };
                [d.clone(), d]
            })
            .collect();
        let mut vlb_domain = vec![u32::MAX; net.node_count()];
        if let Some(v) = &cfg.vlb {
            assert!(
                (0.0..=1.0).contains(&v.fraction),
                "VLB fraction must be in 0..=1"
            );
            for (i, dom) in v.domains.iter().enumerate() {
                for &sw in dom {
                    vlb_domain[sw.0 as usize] = i as u32;
                }
            }
        }
        let rng = StdRng::seed_from_u64(cfg.seed);
        let failed_nodes = vec![false; net.node_count()];
        let node_kind: Vec<NodeKind> = net.nodes().map(|n| n.kind).collect();
        let routed_link_failed = vec![false; net.link_count()];
        let routed_node_failed = vec![false; net.node_count()];
        let flat = FlatRoutes::new(&table, &net);
        let events = EventQueue::new(cfg.scheduler);
        // Directed slot layout: [2l] = a→b (arrives at b), [2l+1] = b→a.
        let mut slot_dst = Vec::with_capacity(2 * net.link_count());
        for l in net.links() {
            slot_dst.push(l.b);
            slot_dst.push(l.a);
        }
        let link_q = vec![VecDeque::new(); 2 * net.link_count()];
        Simulator {
            net,
            table,
            cfg,
            flows: Vec::new(),
            flow_state: Vec::new(),
            links,
            events,
            rng,
            stats: Stats::default(),
            now: SimTime::ZERO,
            vlb_enabled: vlb_domain.iter().any(|&d| d != u32::MAX),
            vlb_domain,
            vlb_scratch: Vec::new(),
            action_scratch: Vec::new(),
            conns: Vec::new(),
            arena: PacketArena::new(),
            link_q,
            slot_dst,
            events_processed: 0,
            flat,
            extra_flat: Vec::new(),
            failed_nodes,
            node_kind,
            routed_link_failed,
            routed_node_failed,
            pending_route_changes: Vec::new(),
            fault_log: Vec::new(),
            completions: Vec::new(),
            recorder: None,
            metrics: None,
            labels: MetricLabels::default(),
            obs: false,
        }
    }

    /// Attaches an event recorder. Recording is observe-only: it never
    /// draws from the simulation RNG and never reorders events, so a
    /// run with any recorder produces the same [`Stats`] as a run with
    /// none (asserted by `faults::tests`).
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.recorder = Some(recorder);
        self.obs = true;
    }

    /// Detaches the recorder; drain or flush it via `Recorder::finish`.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        let r = self.recorder.take();
        self.obs = self.metrics.is_some();
        r
    }

    /// Enables metric collection (per-link queue/utilization series,
    /// per-switch forwarded/dropped counters, lifecycle totals).
    pub fn enable_metrics(&mut self) {
        if self.metrics.is_none() {
            self.metrics = Some(MetricsRegistry::new());
        }
        self.obs = true;
    }

    /// Detaches and returns the metrics registry.
    pub fn take_metrics(&mut self) -> Option<MetricsRegistry> {
        let m = self.metrics.take();
        self.obs = self.recorder.is_some();
        m
    }

    /// Whether any observability sink is attached (cached in a flag the
    /// per-hop path can test with one load — the `Option`s themselves
    /// live with the cold fields).
    #[inline]
    fn observing(&self) -> bool {
        self.obs
    }

    /// Feeds one event to the attached recorder, if any.
    #[inline]
    fn record(&mut self, ev: Event) {
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(&ev);
        }
    }

    /// Shared bookkeeping for every discard site in [`Simulator::forward`].
    /// Only called when observing.
    fn drop_hook(&mut self, flow: u32, at: NodeId, t: SimTime, reason: DropReason) {
        self.record(Event::Drop {
            t_ns: t.ns(),
            node: at.0,
            flow,
            reason,
        });
        if let Some(m) = self.metrics.as_mut() {
            m.inc("sim.packets.dropped", 1);
            m.inc(&format!("sim.drop.{}", reason.as_str()), 1);
            if self.net.node(at).kind.is_switch() {
                m.inc(&format!("switch.{:03}.dropped", at.0), 1);
            }
        }
    }

    /// Registers an additional routing table (e.g. a per-VLAN spanning
    /// tree from [`quartz_topology::spain::SpainFabric`]); returns its
    /// index for [`Simulator::pin_flow_to_table`].
    pub fn add_route_table(&mut self, table: RouteTable) -> usize {
        assert_eq!(
            table.node_count(),
            self.net.node_count(),
            "table must cover this network"
        );
        self.extra_flat.push(FlatRoutes::new(&table, &self.net));
        self.extra_flat.len() - 1
    }

    /// Pins a flow's packets to a previously registered table — the §6
    /// prototype's "an application can select a direct two-hop path or a
    /// specific indirect three-hop path by sending data on the
    /// corresponding virtual interface".
    pub fn pin_flow_to_table(&mut self, flow: usize, table: usize) {
        assert!(table < self.extra_flat.len(), "unknown table {table}");
        self.flow_state[flow].table = Some(table);
    }

    /// Registers a flow starting at `start`; returns its index.
    ///
    /// # Panics
    /// Panics if `src` or `dst` is not a host, or they coincide.
    pub fn add_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        size_bytes: u32,
        kind: FlowKind,
        tag: u32,
        start: SimTime,
    ) -> usize {
        assert_ne!(src, dst, "flow endpoints must differ");
        assert!(
            self.net.node(src).kind == NodeKind::Host && self.net.node(dst).kind == NodeKind::Host,
            "flows run between hosts"
        );
        let idx = self.flows.len();
        let hash = self.rng.random::<u64>();
        let conn = match &kind {
            FlowKind::Transport {
                total_bytes,
                variant,
            } => {
                let pkts = total_bytes.div_ceil(u64::from(size_bytes)).max(1);
                self.conns.push(Conn {
                    sender: SenderState::new(*variant, pkts),
                    receiver: ReceiverState::default(),
                    t0: start,
                });
                debug_assert!(self.conns.len() <= u32::MAX as usize, "conn ids fit u32");
                (self.conns.len() - 1) as u32
            }
            _ => NO_CONN,
        };
        self.flows.push(FlowMeta {
            src,
            dst,
            size: size_bytes,
            kind,
            tag,
            hash,
            conn,
        });
        self.flow_state.push(FlowState {
            sent: 0,
            t0: start,
            table: None,
        });
        self.schedule(start, EvKind::Gen { flow: idx });
        idx
    }

    /// Enqueues a future simulator event. (Named `schedule` rather than
    /// `push` so hot-annotated callers read as scheduling, not as
    /// container growth.)
    #[inline]
    fn schedule(&mut self, time: SimTime, kind: EvKind) {
        self.events.push(time, kind);
    }

    /// Runs the simulation until `until` (events after it stay queued).
    /// Returns the accumulated statistics.
    pub fn run(&mut self, until: SimTime) -> &Stats {
        while let Some((time, kind)) = self.events.pop_before(until) {
            self.dispatch(time, kind, until, false);
        }
        // Leak check: at quiescence every arena slot must have been
        // freed (delivered or dropped). With events still queued past
        // `until`, live slots are exactly the in-flight packets, which
        // the event queue owns — only the empty-queue case is checkable
        // from here. The batch invariant makes the two equivalent: a
        // non-empty batch always keeps its sentinel queued.
        #[cfg(debug_assertions)]
        if self.events.is_empty() {
            let batched: usize = self.link_q.iter().map(|q| q.len()).sum();
            debug_assert_eq!(batched, 0, "batch entries without a drain sentinel");
            debug_assert_eq!(
                self.arena.live(),
                0,
                "packet arena leak: live slots at quiescence"
            );
        }
        &self.stats
    }

    /// Total simulated events processed so far: one per scheduler pop
    /// plus one per batched arrival (so the count is comparable across
    /// [`DrainMode`]s). The events/sec headline metric divides this by
    /// wall time.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Dispatches one popped event. `bound` is the caller's time bound
    /// (batch draining must not run past it); with `step`, a batch
    /// drain processes exactly one arrival before yielding, so callers
    /// that inspect state between events (e.g.
    /// [`Simulator::run_until_samples`]) observe the same boundaries as
    /// [`DrainMode::PerPacket`].
    // lint:hot
    fn dispatch(&mut self, time: SimTime, kind: EvKind, bound: SimTime, step: bool) {
        self.now = time;
        match kind {
            EvKind::LinkDrain { slot } => {
                self.drain_link(slot, bound, step);
                return;
            }
            _ => self.events_processed += 1,
        }
        match kind {
            EvKind::Gen { flow } => self.generate(flow, time),
            EvKind::Head { pkt, at, ser } => self.arrive(pkt, at, time, time + u64::from(ser)),
            EvKind::LinkDrain { .. } => unreachable!("handled above"),
            EvKind::FailLink { link } => self.on_fault(FaultKind::LinkDown(link)),
            EvKind::RecoverLink { link } => self.on_fault(FaultKind::LinkUp(link)),
            EvKind::FailSwitch { node } => self.on_fault(FaultKind::SwitchDown(node)),
            EvKind::RecoverSwitch { node } => self.on_fault(FaultKind::SwitchUp(node)),
            EvKind::Reroute => self.complete_reroute(),
            EvKind::Rto { flow, epoch } => {
                let flow = flow as usize;
                let conn = self.flows[flow].conn;
                if conn != NO_CONN {
                    let mut actions = std::mem::take(&mut self.action_scratch);
                    actions.clear();
                    self.conns[conn as usize]
                        .sender
                        .on_rto_into(u64::from(epoch), &mut actions);
                    self.apply_transport_actions(flow, time, &actions);
                    self.action_scratch = actions;
                }
            }
        }
    }

    /// Drains the batch queued on directed link `slot`, processing
    /// pending arrivals in-line while — and only while — each one's
    /// `(time, seq)` key precedes everything else in the event queue.
    /// Any earlier queued event (a fault, an RTO, an arrival on another
    /// link, a generation) re-arms the sentinel at the next entry's key
    /// and yields, so the global event order is exactly the
    /// [`DrainMode::PerPacket`] order — batch "termination" at ECN,
    /// fault, or dark-window boundaries falls out of the key merge
    /// rather than needing special cases.
    // lint:hot
    fn drain_link(&mut self, slot: u32, bound: SimTime, step: bool) {
        let at = self.slot_dst[slot as usize];
        loop {
            let Some(&id) = self.link_q[slot as usize].front() else {
                return;
            };
            let i = id as usize;
            let (head, seq) = (self.arena.arr_head[i], self.arena.arr_seq[i]);
            // Yield to the queue if anything there is due first, and to
            // the caller if the entry lies past its time bound; either
            // way the batch keeps exactly one sentinel, keyed like its
            // first pending arrival.
            let defer = head > bound || self.events.peek_key().is_some_and(|k| k < (head, seq));
            if defer {
                self.events
                    .push_at_seq(head, seq, EvKind::LinkDrain { slot });
                return;
            }
            self.link_q[slot as usize].pop_front();
            let tail = self.arena.arr_tail[i];
            self.now = head;
            self.events_processed += 1;
            self.arrive(id, at, head, tail);
            if step {
                // One arrival per dispatch: re-arm for the rest.
                if let Some(&next) = self.link_q[slot as usize].front() {
                    let j = next as usize;
                    self.events.push_at_seq(
                        self.arena.arr_head[j],
                        self.arena.arr_seq[j],
                        EvKind::LinkDrain { slot },
                    );
                }
                return;
            }
        }
    }

    fn generate(&mut self, flow_idx: usize, now: SimTime) {
        // Metadata is `Copy`; mutable progress lives in `flow_state`, so
        // no per-event clone is needed to satisfy the borrow checker.
        let flow = self.flows[flow_idx];
        match flow.kind {
            FlowKind::Poisson {
                mean_gap_ns, stop, ..
            } => {
                if now >= stop {
                    return;
                }
                self.emit(flow_idx, now, false, None);
                let u: f64 = self.rng.random::<f64>().max(1e-12);
                let gap = (-mean_gap_ns * u.ln()).max(1.0) as u64;
                let next = now + gap;
                if next < stop {
                    self.schedule(next, EvKind::Gen { flow: flow_idx });
                }
            }
            FlowKind::Rpc { count } => {
                if self.flow_state[flow_idx].sent >= count {
                    return;
                }
                self.flow_state[flow_idx].sent += 1;
                self.emit(flow_idx, now, false, None);
            }
            FlowKind::Burst {
                burst_pkts,
                period_ns,
                stop,
            } => {
                if now >= stop {
                    return;
                }
                for _ in 0..burst_pkts {
                    self.emit(flow_idx, now, false, None);
                }
                let next = now + period_ns;
                if next < stop {
                    self.schedule(next, EvKind::Gen { flow: flow_idx });
                }
            }
            FlowKind::Transport { total_bytes, .. } => {
                // Connection start: open the window.
                let t0 = self.flow_state[flow_idx].t0;
                if t0 == SimTime::ZERO || now >= t0 {
                    let conn = flow.conn;
                    debug_assert_ne!(conn, NO_CONN, "transport flow has a connection");
                    if self.observing() {
                        debug_assert!(flow_idx <= u32::MAX as usize, "flow ids fit u32");
                        self.record(Event::FlowStart {
                            t_ns: now.ns(),
                            flow: flow_idx as u32,
                            src: flow.src.0,
                            dst: flow.dst.0,
                            bytes: total_bytes,
                        });
                    }
                    let mut actions = std::mem::take(&mut self.action_scratch);
                    actions.clear();
                    self.conns[conn as usize].sender.pump_into(&mut actions);
                    self.apply_transport_actions(flow_idx, now, &actions);
                    self.action_scratch = actions;
                }
            }
            FlowKind::FileTransfer { total_bytes } => {
                // Ideally paced transport: one packet per serialization
                // slot of the source's access link, so the transfer
                // never overflows its own output queue.
                let pkts64 = total_bytes.div_ceil(u64::from(flow.size)).max(1);
                debug_assert!(pkts64 <= u64::from(u32::MAX), "packet count fits u32");
                let pkts = pkts64 as u32;
                let sent = self.flow_state[flow_idx].sent;
                if sent >= pkts {
                    return;
                }
                if sent == 0 {
                    self.flow_state[flow_idx].t0 = now;
                    if self.observing() {
                        debug_assert!(flow_idx <= u32::MAX as usize, "flow ids fit u32");
                        self.record(Event::FlowStart {
                            t_ns: now.ns(),
                            flow: flow_idx as u32,
                            src: flow.src.0,
                            dst: flow.dst.0,
                            bytes: total_bytes,
                        });
                    }
                }
                self.flow_state[flow_idx].sent += 1;
                let is_last = sent + 1 == pkts;
                // The final packet carries the flow's start time so its
                // delivery latency *is* the flow completion time.
                let created = is_last.then(|| self.flow_state[flow_idx].t0);
                self.emit_inner(flow_idx, now, false, created, is_last);
                if !is_last {
                    let (_, link_id) = self.net.neighbors(flow.src)[0];
                    let rate = self.net.link(link_id).bandwidth_gbps;
                    let pace = ((flow.size as f64 * 8.0) / rate).ceil() as u64;
                    self.schedule(now + pace, EvKind::Gen { flow: flow_idx });
                }
            }
        }
    }

    /// Creates a packet for `flow` and starts it from its origin host.
    /// `created_override` preserves the original request timestamp on
    /// responses so the recorded latency is the full round trip.
    fn emit(
        &mut self,
        flow_idx: usize,
        now: SimTime,
        is_response: bool,
        created_override: Option<SimTime>,
    ) {
        self.emit_inner(flow_idx, now, is_response, created_override, false);
    }

    fn emit_inner(
        &mut self,
        flow_idx: usize,
        now: SimTime,
        is_response: bool,
        created_override: Option<SimTime>,
        is_last: bool,
    ) {
        let (f_src, f_dst, f_size, f_hash) = {
            let flow = &self.flows[flow_idx];
            (flow.src, flow.dst, flow.size, flow.hash)
        };
        let (origin, dst) = if is_response {
            (f_dst, f_src)
        } else {
            (f_src, f_dst)
        };
        let hash = if is_response {
            f_hash.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15
        } else {
            f_hash
        };
        let flags =
            if is_response { FLAG_RESPONSE } else { 0 } | if is_last { FLAG_LAST } else { 0 };
        debug_assert!(flow_idx <= u32::MAX as usize, "flow ids fit u32");
        let flow_id = flow_idx as u32;
        let id = self.arena.alloc(
            created_override.unwrap_or(now),
            dst,
            flow_id,
            f_size,
            hash,
            PacketCold {
                transport: TransportInfo::None,
                intermediate: None,
                flags,
                hops: 0,
            },
        );
        self.stats.generated += 1;
        if self.observing() {
            self.record(Event::Gen {
                t_ns: now.ns(),
                flow: flow_id,
                size_bytes: f_size,
                response: is_response,
            });
            if let Some(m) = self.metrics.as_mut() {
                m.inc("sim.packets.generated", 1);
            }
        }
        let t = now + self.cfg.latency.host_send_ns;
        self.arrive(id, origin, t, t);
    }

    /// Executes the transport state machine's requested actions.
    fn apply_transport_actions(&mut self, flow_idx: usize, now: SimTime, actions: &[SendAction]) {
        for &a in actions {
            match a {
                SendAction::SendData { seq } => {
                    let (src, size) = {
                        let f = &self.flows[flow_idx];
                        (f.src, f.size)
                    };
                    self.send_transport_packet(flow_idx, src, size, TransportInfo::Data(seq), now);
                }
                SendAction::ArmRto { epoch } => {
                    let at = now + self.cfg.rto_ns;
                    debug_assert!(epoch <= u64::from(u32::MAX));
                    self.schedule(
                        at,
                        EvKind::Rto {
                            flow: flow_idx as u32,
                            epoch: epoch as u32,
                        },
                    );
                }
                SendAction::Complete => {
                    let (tag, t0, total_bytes) = {
                        let f = &self.flows[flow_idx];
                        let total = match f.kind {
                            FlowKind::Transport { total_bytes, .. } => total_bytes,
                            _ => 0,
                        };
                        (f.tag, self.conns[f.conn as usize].t0, total)
                    };
                    let fct_ns = now.saturating_sub(t0);
                    self.stats.record(tag, fct_ns);
                    debug_assert!(flow_idx <= u32::MAX as usize, "flow ids fit u32");
                    let flow = flow_idx as u32;
                    self.completions.push(FlowCompletion { flow, fct_ns });
                    if self.observing() {
                        self.record(Event::FlowComplete {
                            t_ns: now.ns(),
                            flow,
                            fct_ns,
                            bytes: total_bytes,
                        });
                    }
                }
            }
        }
    }

    /// Injects one transport packet (data toward the flow's destination,
    /// ACKs back toward the source).
    fn send_transport_packet(
        &mut self,
        flow_idx: usize,
        origin: NodeId,
        size: u32,
        transport: TransportInfo,
        now: SimTime,
    ) {
        let flow = &self.flows[flow_idx];
        let (dst, hash) = match transport {
            TransportInfo::Ack { .. } => {
                (flow.src, flow.hash.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15)
            }
            _ => (flow.dst, flow.hash),
        };
        debug_assert!(flow_idx <= u32::MAX as usize, "flow ids fit u32");
        let flow_id = flow_idx as u32;
        let id = self.arena.alloc(
            now,
            dst,
            flow_id,
            size,
            hash,
            PacketCold {
                transport,
                intermediate: None,
                flags: 0,
                hops: 0,
            },
        );
        self.stats.generated += 1;
        if self.observing() {
            self.record(Event::Gen {
                t_ns: now.ns(),
                flow: flow_id,
                size_bytes: size,
                response: false,
            });
            if let Some(m) = self.metrics.as_mut() {
                m.inc("sim.packets.generated", 1);
            }
        }
        let t = now + self.cfg.latency.host_send_ns;
        self.arrive(id, origin, t, t);
    }

    /// Logs a file transfer's completion: appends to the FCT log and,
    /// when observing, records the `FlowComplete` event. Cold: runs
    /// once per flow, not per packet, so it may grow the log.
    fn log_file_completion(
        &mut self,
        flow_id: u32,
        delivered_at: SimTime,
        fct_ns: u64,
        bytes: u64,
    ) {
        self.completions.push(FlowCompletion {
            flow: flow_id,
            fct_ns,
        });
        if self.observing() {
            self.record(Event::FlowComplete {
                t_ns: delivered_at.ns(),
                flow: flow_id,
                fct_ns,
                bytes,
            });
        }
    }

    /// Handles a packet (arena slot `id`) whose head reached `at` at
    /// `head` (tail at `tail`): deliver or queue on the next output
    /// port. Every exit path either frees the slot (delivery, drops) or
    /// schedules its next arrival.
    // lint:hot
    fn arrive(&mut self, id: PacketId, at: NodeId, head: SimTime, tail: SimTime) {
        let i = id as usize;
        let flow_id = self.arena.flow[i];
        // A dead switch loses every frame that reaches it.
        if self.failed_nodes[at.0 as usize] {
            self.stats.dropped += 1;
            if self.observing() {
                self.drop_hook(flow_id, at, head, DropReason::DeadSwitch);
            }
            self.arena.free(id);
            return;
        }
        let node_kind = self.node_kind[at.0 as usize];
        let dst = self.arena.dst[i];

        // Delivery: copy what the handlers below need, then free the
        // slot up front — the LIFO free list hands the still-warm row
        // straight to the ACK or response this delivery may emit.
        if at == dst {
            debug_assert!(node_kind.is_host());
            let delivered_at = tail + self.cfg.latency.host_recv_ns;
            let size = self.arena.size[i];
            let created = self.arena.created[i];
            let cold = self.arena.cold[i];
            self.arena.free(id);
            self.stats.delivered += 1;
            let flow_idx = flow_id as usize;
            let (tag, kind) = {
                let f = &self.flows[flow_idx];
                (f.tag, f.kind)
            };
            // One stats-row lookup per delivery: decide up front whether
            // this delivery contributes a latency sample (responses and
            // one-way streams do; request legs awaiting a response,
            // transport segments, and non-final file packets don't).
            let is_response = cold.flags & FLAG_RESPONSE != 0;
            let latency_sample = match cold.transport {
                TransportInfo::None => {
                    if is_response {
                        Some(delivered_at.saturating_sub(created))
                    } else {
                        let completes = match kind {
                            FlowKind::Poisson { respond, .. } => !respond,
                            FlowKind::Rpc { .. } => false,
                            FlowKind::FileTransfer { .. } => cold.flags & FLAG_LAST != 0,
                            _ => true,
                        };
                        completes.then(|| delivered_at.saturating_sub(created))
                    }
                }
                _ => None,
            };
            self.stats
                .record_delivery(tag, u64::from(size), cold.hops, latency_sample);
            if self.observing() {
                self.record(Event::Deliver {
                    t_ns: delivered_at.ns(),
                    node: at.0,
                    flow: flow_id,
                    latency_ns: delivered_at.saturating_sub(created),
                    hops: cold.hops,
                });
                if let Some(m) = self.metrics.as_mut() {
                    m.inc("sim.packets.delivered", 1);
                }
            }
            // A file transfer's last packet closes the whole flow: log
            // its completion (transport flows log theirs at
            // `SendAction::Complete` instead).
            if let FlowKind::FileTransfer { total_bytes } = kind {
                if cold.flags & FLAG_LAST != 0 {
                    let fct_ns = delivered_at.saturating_sub(created);
                    self.log_file_completion(flow_id, delivered_at, fct_ns, total_bytes);
                }
            }
            match cold.transport {
                TransportInfo::Data(seq) => {
                    // Receiver: reassemble and send a cumulative ACK
                    // echoing this packet's ECN mark.
                    let conn = self.flows[flow_idx].conn;
                    debug_assert_ne!(conn, NO_CONN, "data packet without connection");
                    let ack = self.conns[conn as usize].receiver.on_data(seq);
                    self.send_transport_packet(
                        flow_idx,
                        dst,
                        64,
                        TransportInfo::Ack {
                            ack,
                            ecn_echo: cold.flags & FLAG_ECN != 0,
                        },
                        delivered_at,
                    );
                    return;
                }
                TransportInfo::Ack { ack, ecn_echo } => {
                    let conn = self.flows[flow_idx].conn;
                    debug_assert_ne!(conn, NO_CONN, "ack without connection");
                    let mut actions = std::mem::take(&mut self.action_scratch);
                    actions.clear();
                    self.conns[conn as usize]
                        .sender
                        .on_ack_into(ack, ecn_echo, &mut actions);
                    self.apply_transport_actions(flow_idx, delivered_at, &actions);
                    self.action_scratch = actions;
                    return;
                }
                TransportInfo::None => {}
            }
            if is_response {
                if let FlowKind::Rpc { count } = kind {
                    if self.flow_state[flow_idx].sent < count {
                        self.schedule(delivered_at, EvKind::Gen { flow: flow_idx });
                    }
                }
            } else {
                let responds = matches!(
                    kind,
                    FlowKind::Poisson { respond: true, .. } | FlowKind::Rpc { .. }
                );
                if responds {
                    self.emit(flow_idx, delivered_at, true, Some(created));
                }
            }
            return;
        }

        // Forwarding: the mutable fields (detour, flags, hash, hops)
        // work on copies and write back once, right before scheduling.
        let mut cold = self.arena.cold[i];
        let mut hash = self.arena.hash[i];
        let size = self.arena.size[i];

        // Routing target: detour intermediate first, then the real dst.
        if cold.intermediate == Some(at) {
            cold.intermediate = None;
        }

        // VLB decision at the mesh ingress switch. (`vlb_enabled` keeps
        // non-VLB runs — the common case — off the domain table
        // entirely; with no domains configured every lookup would miss
        // anyway.)
        let mut vlb_detour: Option<NodeId> = None;
        if self.vlb_enabled && cold.flags & FLAG_VLB_DECIDED == 0 && node_kind.is_switch() {
            let dom_idx = self.vlb_domain[at.0 as usize];
            if dom_idx != u32::MAX {
                cold.flags |= FLAG_VLB_DECIDED;
                if let Some((nh, _)) = self.flat.ecmp_next(at, dst, hash) {
                    if self.vlb_domain[nh.0 as usize] == dom_idx {
                        let vlb = self.cfg.vlb.as_ref().expect("domains imply config");
                        if self.rng.random::<f64>() < vlb.fraction {
                            let dom = &vlb.domains[dom_idx as usize];
                            self.vlb_scratch.clear();
                            self.vlb_scratch
                                .extend(dom.iter().copied().filter(|&w| w != at && w != nh));
                            if !self.vlb_scratch.is_empty() {
                                let w = self.vlb_scratch
                                    [self.rng.random_range(0..self.vlb_scratch.len())];
                                cold.intermediate = Some(w);
                                vlb_detour = Some(w);
                                // Per-packet spraying: differentiate the
                                // hash so detour packets of one flow use
                                // their own ECMP choices.
                                hash = self.rng.random::<u64>();
                            }
                        }
                    }
                }
            }
        }

        if self.observing() {
            if let Some(w) = vlb_detour {
                self.record(Event::Vlb {
                    t_ns: head.ns(),
                    node: at.0,
                    flow: flow_id,
                    via: w.0,
                });
                if let Some(m) = self.metrics.as_mut() {
                    m.inc("sim.vlb.detours", 1);
                }
            }
        }

        let target = cold.intermediate.unwrap_or(dst);
        // With no extra tables installed (the common case) every flow
        // routes by the default table — skip the per-flow indirection.
        let routing = if self.extra_flat.is_empty() {
            &self.flat
        } else {
            match self.flow_state[flow_id as usize].table {
                Some(t) => &self.extra_flat[t],
                None => &self.flat,
            }
        };
        // The flat table resolves the next hop *and* its directed link
        // slot in one indexed lookup — no adjacency scan per hop.
        let Some((next, slot)) = routing.ecmp_next(at, target, hash) else {
            self.stats.dropped += 1;
            if self.observing() {
                self.drop_hook(flow_id, at, head, DropReason::NoRoute);
            }
            self.arena.free(id);
            return;
        };
        let (failed, rate, free_at, ser_ns) = {
            let dl = &mut self.links[slot as usize];
            (dl.failed, dl.rate_gbps, dl.free_at, dl.ser_ns(size))
        };
        if failed {
            // A cut fiber: everything forwarded onto it is lost until
            // routes are recomputed (see [`Simulator::reroute`]).
            self.stats.dropped += 1;
            if self.observing() {
                self.drop_hook(flow_id, at, head, DropReason::DeadLink);
            }
            self.arena.free(id);
            return;
        }
        let inbound_ns = tail - head; // 0 at the origin host
        let mut forward_decision: Option<(ForwardMode, u64)> = None;
        let earliest = match node_kind {
            NodeKind::Host => {
                if inbound_ns == 0 {
                    // Origin host (head == tail only at emission; every
                    // real link adds ≥ 1 ns of serialization): send-side
                    // latency was applied in `emit`.
                    head
                } else {
                    // Relay host (server-centric designs): full stack.
                    tail + self.cfg.latency.host_recv_ns + self.cfg.latency.host_send_ns
                }
            }
            NodeKind::Switch(role) => {
                let spec = self.cfg.latency.spec_for(role);
                let mode = spec.forward_mode(inbound_ns, ser_ns);
                if self.observing() {
                    forward_decision = Some((mode, spec.latency_ns));
                }
                match mode {
                    ForwardMode::CutThrough => head + spec.latency_ns,
                    ForwardMode::StoreForward => tail + spec.latency_ns,
                }
            }
        };
        if let Some((mode, latency_ns)) = forward_decision {
            let cut_through = mode == ForwardMode::CutThrough;
            self.record(Event::Forward {
                t_ns: head.ns(),
                node: at.0,
                flow: flow_id,
                cut_through,
                latency_ns,
            });
            if let Some(m) = self.metrics.as_mut() {
                m.inc(
                    if cut_through {
                        "sim.forward.cut_through"
                    } else {
                        "sim.forward.store_forward"
                    },
                    1,
                );
            }
        }

        // Drop-tail check on the output port (skip the float math on
        // the common idle-port case — the backlog is exactly zero).
        let backlog_ns = free_at.saturating_sub(earliest);
        let backlog_bytes = if backlog_ns == 0 {
            0
        } else {
            (backlog_ns as f64 * rate / 8.0) as u64
        };
        if backlog_bytes > self.cfg.queue_cap_bytes {
            self.stats.dropped += 1;
            if self.observing() {
                self.drop_hook(flow_id, at, earliest, DropReason::QueueFull);
            }
            self.arena.free(id);
            return;
        }
        // DCTCP-style ECN: mark packets that queue behind more than K
        // bytes (instantaneous queue-length marking, as DCTCP specifies).
        if let Some(k) = self.cfg.ecn_threshold_bytes {
            if backlog_bytes > k {
                cold.flags |= FLAG_ECN;
            }
        }

        let start = if free_at > earliest {
            free_at
        } else {
            earliest
        };
        let done = start + ser_ns;
        let dl = &mut self.links[slot as usize];
        dl.free_at = done;
        dl.busy_ns += ser_ns;
        dl.bytes += u64::from(size);
        if self.observing() {
            let queue_bytes = backlog_bytes + u64::from(size);
            // Slot layout: [2l] = a→b, [2l+1] = b→a.
            let link_idx = slot >> 1;
            let to_b = slot & 1 == 0;
            self.record(Event::Enqueue {
                t_ns: earliest.ns(),
                node: at.0,
                link: link_idx,
                to_b,
                flow: flow_id,
                queue_bytes,
            });
            self.record(Event::Transmit {
                t_ns: start.ns(),
                link: link_idx,
                to_b,
                flow: flow_id,
                serialize_ns: ser_ns,
            });
            if let Some(m) = self.metrics.as_mut() {
                m.inc("sim.packets.forwarded", 1);
                if node_kind.is_switch() {
                    m.inc(self.labels.switch_fwd(at.0), 1);
                }
                m.observe(self.labels.queue(slot), earliest.ns(), queue_bytes);
                m.observe(self.labels.util(slot), start.ns(), ser_ns);
            }
        }
        let prop = self.cfg.prop_delay_ns;
        cold.hops += 1;
        self.arena.cold[i] = cold;
        self.arena.hash[i] = hash;
        let arr_head = start + prop;
        let arr_tail = done + prop;
        debug_assert_eq!(next, self.slot_dst[slot as usize]);
        debug_assert!(ser_ns <= u64::from(u32::MAX));
        let ser = ser_ns as u32;
        match self.cfg.drain {
            DrainMode::PerPacket => self.schedule(
                arr_head,
                EvKind::Head {
                    pkt: id,
                    at: next,
                    ser,
                },
            ),
            DrainMode::Batched => {
                let q_was_empty = self.link_q[slot as usize].is_empty();
                if q_was_empty && free_at <= earliest {
                    // Idle link: a lone arrival gets a plain event, so
                    // short queues pay no batch bookkeeping.
                    self.schedule(
                        arr_head,
                        EvKind::Head {
                            pkt: id,
                            at: next,
                            ser,
                        },
                    );
                } else {
                    // Queued behind an in-progress transmission (or an
                    // already-pending batch): reserve this arrival's
                    // `(time, seq)` key — identical to the key a plain
                    // push would have taken — and append. Keys are
                    // strictly increasing per slot because each start
                    // time is at least the predecessor's done time.
                    let seq = self.events.reserve_seq();
                    self.arena.arr_head[i] = arr_head;
                    self.arena.arr_tail[i] = arr_tail;
                    self.arena.arr_seq[i] = seq;
                    self.link_q[slot as usize].push_back(id);
                    if q_was_empty {
                        self.events
                            .push_at_seq(arr_head, seq, EvKind::LinkDrain { slot });
                    }
                }
            }
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Completion log for managed flows ([`FlowKind::Transport`],
    /// [`FlowKind::FileTransfer`]), in completion order. Workload
    /// drivers join these against their own flow-index bookkeeping to
    /// compute per-flow FCT and slowdown; unmanaged kinds (Poisson,
    /// RPC, bursts) never appear.
    pub fn flow_completions(&self) -> &[FlowCompletion] {
        &self.completions
    }

    /// Number of flows registered so far.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Total payload bytes of a managed flow ([`FlowKind::Transport`] /
    /// [`FlowKind::FileTransfer`]); `None` for packet-stream kinds or an
    /// unknown index.
    pub fn flow_total_bytes(&self, flow: u32) -> Option<u64> {
        self.flows.get(flow as usize).and_then(|f| match f.kind {
            FlowKind::Transport { total_bytes, .. } => Some(total_bytes),
            FlowKind::FileTransfer { total_bytes } => Some(total_bytes),
            _ => None,
        })
    }

    /// A flow's `(src, dst)` hosts, or `None` for an unknown index.
    pub fn flow_endpoints(&self, flow: u32) -> Option<(NodeId, NodeId)> {
        self.flows.get(flow as usize).map(|f| (f.src, f.dst))
    }

    /// Feeds a caller-constructed event (e.g. a collective step
    /// boundary) to the attached recorder, if any. Drivers that stage
    /// work *around* the simulator use this to keep their milestones in
    /// the same ordered stream as the packet-level events.
    pub fn record_event(&mut self, ev: Event) {
        self.record(ev);
    }

    /// The time of the most recently processed event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Runs until `count` samples exist under `tag` (e.g. that many RPCs
    /// have completed) or `deadline` passes; returns whether the target
    /// was reached. Enables staged, dependency-driven workloads: start a
    /// fan-out, wait for it, start the next stage at [`Simulator::now`].
    pub fn run_until_samples(&mut self, tag: u32, count: usize, deadline: SimTime) -> bool {
        while self.stats.count(tag) < count {
            let Some((time, kind)) = self.events.pop_before(deadline) else {
                return false;
            };
            // step = true: a batched drain yields after each arrival so
            // the sample count is checked at the same boundaries as the
            // per-packet schedule (no overshoot divergence).
            self.dispatch(time, kind, deadline, true);
        }
        true
    }

    /// Whether any events remain queued (packets in flight or future
    /// generations).
    pub fn has_pending_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Schedules a fiber cut: at `at`, both directions of `link` start
    /// dropping everything queued onto them (§3.5's failure model, live).
    pub fn fail_link_at(&mut self, link: LinkId, at: SimTime) {
        assert!((link.0 as usize) < self.net.link_count(), "unknown link");
        self.schedule(at, EvKind::FailLink { link });
    }

    /// Schedules the death of switch `node` at `at`: from then on, every
    /// frame arriving at (or queued through) it is lost.
    ///
    /// # Panics
    /// Panics if `node` is not a switch.
    pub fn fail_switch_at(&mut self, node: NodeId, at: SimTime) {
        assert!(
            self.net.node(node).kind.is_switch(),
            "only switches fail; {node:?} is a host"
        );
        self.schedule(at, EvKind::FailSwitch { node });
    }

    /// Schedules every event of a [`FaultPlan`]. With
    /// [`SimConfig::reconvergence_ns`] set, each fault (and recovery)
    /// triggers an automatic route recomputation that much later;
    /// otherwise call [`Simulator::reroute`] manually.
    ///
    /// # Panics
    /// Panics if the plan names an unknown link or a non-switch node.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for ev in plan.events() {
            match ev.kind {
                FaultKind::LinkDown(link) => {
                    assert!((link.0 as usize) < self.net.link_count(), "unknown link");
                    self.schedule(ev.at, EvKind::FailLink { link });
                }
                FaultKind::LinkUp(link) => {
                    assert!((link.0 as usize) < self.net.link_count(), "unknown link");
                    self.schedule(ev.at, EvKind::RecoverLink { link });
                }
                FaultKind::SwitchDown(node) => {
                    assert!(
                        self.net.node(node).kind.is_switch(),
                        "only switches fail; {node:?} is a host"
                    );
                    self.schedule(ev.at, EvKind::FailSwitch { node });
                }
                FaultKind::SwitchUp(node) => {
                    assert!(
                        self.net.node(node).kind.is_switch(),
                        "only switches fail; {node:?} is a host"
                    );
                    self.schedule(ev.at, EvKind::RecoverSwitch { node });
                }
            }
        }
    }

    /// Applies one fault to the data plane and opens a log record. With
    /// auto-reconvergence configured, schedules the route recomputation.
    fn on_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::LinkDown(l) => {
                self.links[2 * l.0 as usize].failed = true;
                self.links[2 * l.0 as usize + 1].failed = true;
            }
            FaultKind::LinkUp(l) => {
                self.links[2 * l.0 as usize].failed = false;
                self.links[2 * l.0 as usize + 1].failed = false;
            }
            FaultKind::SwitchDown(n) => self.failed_nodes[n.0 as usize] = true,
            FaultKind::SwitchUp(n) => self.failed_nodes[n.0 as usize] = false,
        }
        self.pending_route_changes.push(kind);
        self.fault_log.push(FaultRecord {
            at: self.now,
            kind,
            reconverged_at: None,
            drops_during_outage: 0,
            baseline_drops: self.stats.dropped,
        });
        if self.observing() {
            let (kind_str, element) = match kind {
                FaultKind::LinkDown(l) => ("link_down", l.0),
                FaultKind::LinkUp(l) => ("link_up", l.0),
                FaultKind::SwitchDown(n) => ("switch_down", n.0),
                FaultKind::SwitchUp(n) => ("switch_up", n.0),
            };
            self.record(Event::Fault {
                t_ns: self.now.ns(),
                kind: kind_str,
                element,
            });
            if let Some(m) = self.metrics.as_mut() {
                m.inc(&format!("sim.fault.{kind_str}"), 1);
            }
        }
        if let Some(delay) = self.cfg.reconvergence_ns {
            self.schedule(self.now + delay, EvKind::Reroute);
        }
    }

    /// Recomputes the ECMP tables over the surviving links and switches
    /// only. Call after a failure event has fired to model control-plane
    /// reconvergence (or set [`SimConfig::reconvergence_ns`] to have it
    /// happen automatically); in-flight packets are unaffected.
    pub fn reroute(&mut self) {
        self.complete_reroute();
    }

    fn complete_reroute(&mut self) {
        // Incremental reconvergence: replay each pending fault delta as
        // a patch that recomputes only the destinations whose shortest
        // paths the delta can change. Each patch must observe the
        // failure state the *previous* patch produced (several deltas
        // may queue between reroutes, including a fault and its own
        // recovery), so the `routed_*` vectors advance delta by delta
        // rather than reading the live data plane.
        for kind in std::mem::take(&mut self.pending_route_changes) {
            let change = match kind {
                FaultKind::LinkDown(l) => {
                    self.routed_link_failed[l.0 as usize] = true;
                    RouteChange::LinkDown(l)
                }
                FaultKind::LinkUp(l) => {
                    self.routed_link_failed[l.0 as usize] = false;
                    RouteChange::LinkUp(l)
                }
                FaultKind::SwitchDown(n) => {
                    self.routed_node_failed[n.0 as usize] = true;
                    RouteChange::NodeDown(n)
                }
                FaultKind::SwitchUp(n) => {
                    self.routed_node_failed[n.0 as usize] = false;
                    RouteChange::NodeUp(n)
                }
            };
            let (rl, rn) = (&self.routed_link_failed, &self.routed_node_failed);
            self.table.patch(
                &self.net,
                change,
                |l| rl[l.0 as usize],
                |n| rn[n.0 as usize],
            );
        }
        #[cfg(debug_assertions)]
        {
            // Every delta has been replayed, so the patched table must
            // equal a from-scratch rebuild over the live failure state.
            let links = &self.links;
            let failed_nodes = &self.failed_nodes;
            let scratch = RouteTable::degraded(
                &self.net,
                |l| links[2 * l.0 as usize].failed,
                |n| failed_nodes[n.0 as usize],
            );
            debug_assert_eq!(
                self.table, scratch,
                "incremental route patch diverged from scratch rebuild"
            );
        }
        self.flat = FlatRoutes::new(&self.table, &self.net);
        let now = self.now;
        let dropped = self.stats.dropped;
        let mut resolved = 0u32;
        for r in self
            .fault_log
            .iter_mut()
            .filter(|r| r.reconverged_at.is_none())
        {
            r.reconverged_at = Some(now);
            r.drops_during_outage = dropped - r.baseline_drops;
            resolved += 1;
        }
        if self.observing() {
            self.record(Event::Reroute {
                t_ns: now.ns(),
                resolved,
            });
            if let Some(m) = self.metrics.as_mut() {
                m.inc("sim.reroutes", 1);
            }
        }
    }

    /// Every fault event that has fired so far, in firing order, with
    /// its measured reconvergence time and outage cost.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.fault_log
    }

    /// Transmission statistics per link, in the network's link order.
    pub fn link_loads(&self) -> Vec<LinkLoad> {
        (0..self.net.link_count())
            .map(|i| LinkLoad {
                ab_busy_ns: self.links[2 * i].busy_ns,
                ab_bytes: self.links[2 * i].bytes,
                ba_busy_ns: self.links[2 * i + 1].busy_ns,
                ba_bytes: self.links[2 * i + 1].bytes,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::{ARISTA_7150S, CISCO_NEXUS_7000};
    use quartz_topology::builders::{prototype_quartz, quartz_mesh, three_tier};
    use quartz_topology::graph::SwitchRole;

    /// Two hosts on one switch of the given role; returns (net, h1, h2).
    fn dumbbell(role: SwitchRole, gbps: f64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let sw = net.add_switch(role, Some(0));
        let h1 = net.add_host(Some(0));
        let h2 = net.add_host(Some(0));
        net.connect(h1, sw, gbps);
        net.connect(h2, sw, gbps);
        (net, h1, h2)
    }

    fn no_prop_cfg() -> SimConfig {
        SimConfig {
            prop_delay_ns: 0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn single_packet_cut_through_latency_is_exact() {
        // 400 B at 10 G: 320 ns serialization. Cut-through ULL adds
        // 380 ns; the two serializations pipeline, so the end-to-end
        // tail-arrival is 320 (first link) + 380 (switch) + 320 (second
        // link) − 320 (overlap) = 1020... precisely: head enters switch at
        // t=0 (sender starts transmitting at 0), switch starts at
        // head+380 = 380 — but our head timestamp is the *start of
        // transmission + prop*, so with prop=0: head_sw = 0, tail_sw =
        // 320; start_tx2 = 380; tail at h2 = 700.
        let (net, h1, h2) = dumbbell(SwitchRole::TopOfRack, 10.0);
        let mut sim = Simulator::new(net, no_prop_cfg());
        sim.add_flow(
            h1,
            h2,
            400,
            FlowKind::Poisson {
                mean_gap_ns: 1e9,
                stop: SimTime::from_ns(1),
                respond: false,
            },
            0,
            SimTime::ZERO,
        );
        sim.run(SimTime::from_ms(1));
        let s = sim.stats().summary(0);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean_ns, (ARISTA_7150S.latency_ns + 320) as f64);
    }

    #[test]
    fn single_packet_store_and_forward_latency_is_exact() {
        // CCS: wait for tail (320) + 6 µs + second serialization 320.
        let (net, h1, h2) = dumbbell(SwitchRole::Core, 10.0);
        let mut sim = Simulator::new(net, no_prop_cfg());
        sim.add_flow(
            h1,
            h2,
            400,
            FlowKind::Poisson {
                mean_gap_ns: 1e9,
                stop: SimTime::from_ns(1),
                respond: false,
            },
            0,
            SimTime::ZERO,
        );
        sim.run(SimTime::from_ms(1));
        let s = sim.stats().summary(0);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean_ns, (320 + CISCO_NEXUS_7000.latency_ns + 320) as f64);
    }

    #[test]
    fn md1_queueing_matches_theory() {
        // The §7 validation claim: Poisson arrivals, deterministic
        // service. At ρ = 0.5, M/D/1 mean wait = ρS/(2(1−ρ)) = S/2.
        let (net, h1, h2) = dumbbell(SwitchRole::TopOfRack, 10.0);
        let cfg = SimConfig {
            prop_delay_ns: 0,
            latency: LatencyModel::ideal(),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(net, cfg);
        let s_ns = 320.0; // 400 B at 10 Gb/s
        let rho = 0.5;
        sim.add_flow(
            h1,
            h2,
            400,
            FlowKind::Poisson {
                mean_gap_ns: s_ns / rho,
                stop: SimTime::from_ms(200),
                respond: false,
            },
            0,
            SimTime::ZERO,
        );
        sim.run(SimTime::from_ms(400));
        let got = sim.stats().summary(0);
        assert!(got.count > 100_000, "only {} samples", got.count);
        // Expected latency = wait + one serialization (the second link
        // pipelines behind the first under cut-through at equal rates).
        let theory = rho * s_ns / (2.0 * (1.0 - rho)) + s_ns;
        let rel_err = (got.mean_ns - theory).abs() / theory;
        assert!(
            rel_err < 0.03,
            "sim {} vs theory {theory} (rel err {rel_err})",
            got.mean_ns
        );
    }

    #[test]
    fn packet_conservation() {
        let q = prototype_quartz();
        let mut sim = Simulator::new(q.net.clone(), SimConfig::default());
        for (i, (&a, &b)) in q.hosts.iter().zip(q.hosts.iter().rev()).enumerate() {
            if a == b {
                continue;
            }
            sim.add_flow(
                a,
                b,
                400,
                FlowKind::Poisson {
                    mean_gap_ns: 5_000.0,
                    stop: SimTime::from_ms(1),
                    respond: false,
                },
                i as u32,
                SimTime::ZERO,
            );
        }
        // Run far past the stop time so everything drains.
        sim.run(SimTime::from_ms(10));
        let st = sim.stats();
        assert!(st.generated > 0);
        assert_eq!(st.generated, st.delivered + st.dropped);
        assert!(!sim.has_pending_events());
    }

    #[test]
    fn rpc_ping_pong_is_sequential_and_counted() {
        let (net, h1, h2) = dumbbell(SwitchRole::TopOfRack, 10.0);
        let mut sim = Simulator::new(net, no_prop_cfg());
        sim.add_flow(h1, h2, 100, FlowKind::Rpc { count: 500 }, 7, SimTime::ZERO);
        sim.run(SimTime::from_ms(100));
        let s = sim.stats().summary(7);
        assert_eq!(s.count, 500);
        // No cross-traffic: every RTT is identical.
        assert_eq!(s.ci95_ns, 0.0);
        assert_eq!(s.p99_ns as f64, s.mean_ns);
        // RTT = 2 × one-way (100 B at 10 G = 80 ns ser + 380 switch).
        assert_eq!(s.mean_ns, 2.0 * (380.0 + 80.0));
    }

    #[test]
    fn respond_flows_record_round_trips() {
        let (net, h1, h2) = dumbbell(SwitchRole::TopOfRack, 10.0);
        let mut sim = Simulator::new(net.clone(), no_prop_cfg());
        sim.add_flow(
            h1,
            h2,
            400,
            FlowKind::Poisson {
                mean_gap_ns: 100_000.0,
                stop: SimTime::from_ms(5),
                respond: true,
            },
            1,
            SimTime::ZERO,
        );
        sim.run(SimTime::from_ms(10));
        let rtt = sim.stats().summary(1);
        assert!(rtt.count > 10);
        assert_eq!(rtt.p50_ns, 2 * (380 + 320));
    }

    #[test]
    fn burst_source_hits_target_bandwidth() {
        // 20-packet bursts of 1500 B at 100 Mb/s mean: period =
        // 20×1500×8 / 0.1 Gb/s = 2.4 ms.
        let (net, h1, h2) = dumbbell(SwitchRole::TopOfRack, 1.0);
        let mut sim = Simulator::new(net, no_prop_cfg());
        sim.add_flow(
            h1,
            h2,
            1500,
            FlowKind::Burst {
                burst_pkts: 20,
                period_ns: 2_400_000,
                stop: SimTime::from_ms(240),
            },
            0,
            SimTime::ZERO,
        );
        sim.run(SimTime::from_ms(500));
        let st = sim.stats();
        // 100 bursts × 20 packets.
        assert_eq!(st.generated, 2_000);
        assert_eq!(st.delivered, 2_000);
        // Bandwidth check: 2000 × 1500 × 8 bits over 240 ms = 100 Mb/s.
        let gbps: f64 = (2_000.0 * 1_500.0 * 8.0) / 240e6;
        assert!((gbps - 0.1).abs() < 1e-9);
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let run = || {
            let t = three_tier(2, 2, 2, 2, 10.0, 40.0);
            let mut sim = Simulator::new(t.net.clone(), SimConfig::default());
            for (i, &h) in t.hosts.iter().enumerate().skip(1) {
                sim.add_flow(
                    t.hosts[0],
                    h,
                    400,
                    FlowKind::Poisson {
                        mean_gap_ns: 2_000.0,
                        stop: SimTime::from_ms(2),
                        respond: false,
                    },
                    i as u32,
                    SimTime::ZERO,
                );
            }
            sim.run(SimTime::from_ms(4));
            (
                sim.stats().generated,
                sim.stats().delivered,
                sim.stats().summary(1),
            )
        };
        assert_eq!(run().2, run().2);
        let (g1, d1, _) = run();
        let (g2, d2, _) = run();
        assert_eq!((g1, d1), (g2, d2));
    }

    #[test]
    fn overload_drops_at_queue_capacity() {
        // Offer 2× the link rate: half the traffic must drop once the
        // 512 KiB port buffer fills, and delivered latency saturates at
        // the buffer's drain time.
        let (net, h1, h2) = dumbbell(SwitchRole::TopOfRack, 10.0);
        let mut sim = Simulator::new(net, no_prop_cfg());
        sim.add_flow(
            h1,
            h2,
            400,
            FlowKind::Poisson {
                mean_gap_ns: 160.0, // 2× overload of the 320 ns service
                stop: SimTime::from_ms(50),
                respond: false,
            },
            0,
            SimTime::ZERO,
        );
        sim.run(SimTime::from_ms(200));
        let st = sim.stats();
        assert!(st.dropped > 0, "expected drops under 2x overload");
        let loss = st.dropped as f64 / st.generated as f64;
        assert!((loss - 0.5).abs() < 0.03, "loss {loss}");
        // Max queueing ≈ cap / rate = 512 KiB × 8 / 10 Gb/s ≈ 419 µs.
        let s = st.summary(0);
        assert!(
            (s.max_ns as f64) < 1.1 * (512.0 * 1024.0 * 8.0 / 10.0) + 1_000.0,
            "max latency {} ns",
            s.max_ns
        );
    }

    #[test]
    fn vlb_spreads_pathological_traffic() {
        // 4-switch mesh at 10 G channels; hosts under S1 send 16 Gb/s
        // aggregate to hosts under S2. ECMP pins everything on the single
        // direct channel (overload); VLB at k=0.75 spreads over the
        // detours and relieves it.
        let run = |vlb: Option<VlbConfig>| {
            let q = quartz_mesh(4, 4, 10.0, 10.0);
            let cfg = SimConfig {
                vlb,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(q.net.clone(), cfg);
            for i in 0..4 {
                sim.add_flow(
                    q.hosts[i],     // under switch 0
                    q.hosts[4 + i], // under switch 1
                    400,
                    FlowKind::Poisson {
                        mean_gap_ns: 800.0, // 4 Gb/s per host
                        stop: SimTime::from_ms(4),
                        respond: false,
                    },
                    0,
                    SimTime::ZERO,
                );
            }
            sim.run(SimTime::from_ms(20));
            (sim.stats().summary(0).mean_ns, sim.stats().dropped)
        };
        let (ecmp_lat, ecmp_drops) = run(None);
        let q = quartz_mesh(4, 4, 10.0, 10.0);
        let (vlb_lat, vlb_drops) = run(Some(VlbConfig {
            fraction: 0.75,
            domains: vec![q.switches.clone()],
        }));
        assert!(
            ecmp_drops > 0,
            "16 Gb/s into a 10 G channel must drop under ECMP"
        );
        assert!(vlb_drops < ecmp_drops / 4, "{vlb_drops} vs {ecmp_drops}");
        assert!(
            vlb_lat < ecmp_lat / 2.0,
            "VLB {vlb_lat} should beat ECMP {ecmp_lat}"
        );
    }

    #[test]
    #[should_panic(expected = "flows run between hosts")]
    fn flows_require_hosts() {
        let q = prototype_quartz();
        let mut sim = Simulator::new(q.net.clone(), SimConfig::default());
        sim.add_flow(
            q.switches[0],
            q.hosts[0],
            400,
            FlowKind::Rpc { count: 1 },
            0,
            SimTime::ZERO,
        );
    }

    #[test]
    fn link_utilization_matches_offered_load() {
        // ρ = 0.5 Poisson load on the host uplink: measured busy time
        // over elapsed time converges to 0.5.
        let (net, h1, h2) = dumbbell(SwitchRole::TopOfRack, 10.0);
        let mut sim = Simulator::new(net, no_prop_cfg());
        sim.add_flow(
            h1,
            h2,
            400,
            FlowKind::Poisson {
                mean_gap_ns: 640.0,
                stop: SimTime::from_ms(50),
                respond: false,
            },
            0,
            SimTime::ZERO,
        );
        // Run past the stop time so the final packet drains off both
        // links; conservation below must not depend on where in the
        // pipeline the cutoff lands.
        sim.run(SimTime::from_ms(51));
        let loads = sim.link_loads();
        // Link 0 is h1→switch.
        let rho = loads[0].peak_utilization(50_000_000);
        assert!((rho - 0.5).abs() < 0.02, "measured utilization {rho}");
        // Bytes conservation: both links carried the same bytes.
        assert_eq!(
            loads[0].ab_bytes + loads[0].ba_bytes,
            loads[1].ab_bytes + loads[1].ba_bytes
        );
    }

    #[test]
    fn fiber_cut_drops_until_reroute() {
        // A mesh flow rides its direct channel; cut it mid-run: packets
        // drop (ECMP still points at the dead link). After reroute() the
        // flow resumes over a two-hop detour with higher latency.
        let q = quartz_mesh(4, 1, 10.0, 10.0);
        let mut sim = Simulator::new(q.net.clone(), no_prop_cfg());
        let stop = SimTime::from_ms(9);
        sim.add_flow(
            q.hosts[0],
            q.hosts[1],
            400,
            FlowKind::Poisson {
                mean_gap_ns: 10_000.0,
                stop,
                respond: false,
            },
            0,
            SimTime::ZERO,
        );
        let direct = q.net.link_between(q.switches[0], q.switches[1]).unwrap();
        sim.fail_link_at(direct, SimTime::from_ms(3));

        // Phase 1: healthy.
        sim.run(SimTime::from_ms(3));
        let delivered_before = sim.stats().delivered;
        assert!(delivered_before > 100);
        assert_eq!(sim.stats().dropped, 0);

        // Phase 2: cut, not yet rerouted — everything drops.
        sim.run(SimTime::from_ms(6));
        let dropped_mid = sim.stats().dropped;
        assert!(dropped_mid > 100, "expected drops after the cut");
        let delivered_mid = sim.stats().delivered;

        // Phase 3: reroute; delivery resumes via a detour (2 ring hops).
        sim.reroute();
        sim.run(SimTime::from_ms(20));
        let st = sim.stats();
        assert!(
            st.delivered > delivered_mid + 100,
            "rerouted traffic must flow"
        );
        assert_eq!(st.generated, st.delivered + st.dropped);
        // Detour latency exceeds the healthy 2-switch latency.
        let s = st.summary(0);
        assert!(s.max_ns > s.p50_ns, "detour packets are slower");
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn failing_unknown_link_panics() {
        let (net, _, _) = dumbbell(SwitchRole::TopOfRack, 10.0);
        let mut sim = Simulator::new(net, SimConfig::default());
        sim.fail_link_at(quartz_topology::graph::LinkId(99), SimTime::ZERO);
    }

    #[test]
    fn file_transfer_completion_time_is_exact() {
        // 1 MB over one 10 G hop pair: FCT ≈ serialization of the whole
        // file at 10 Gb/s (the two links pipeline) + switch latency.
        let (net, h1, h2) = dumbbell(SwitchRole::TopOfRack, 10.0);
        let mut sim = Simulator::new(net, no_prop_cfg());
        let total: u64 = 1_000_000;
        sim.add_flow(
            h1,
            h2,
            1_000,
            FlowKind::FileTransfer { total_bytes: total },
            3,
            SimTime::ZERO,
        );
        sim.run(SimTime::from_ms(100));
        let s = sim.stats().summary(3);
        assert_eq!(s.count, 1, "exactly one completion sample");
        let expect = total as f64 * 8.0 / 10.0 // whole-file serialization
            + 380.0 // switch latency
            + 800.0; // last packet's second serialization
        let got = s.mean_ns;
        assert!(
            (got - expect).abs() / expect < 0.01,
            "FCT {got} vs expected {expect}"
        );
        assert_eq!(sim.stats().delivered, 1_000);
    }

    #[test]
    fn competing_transfers_roughly_double_completion() {
        let (net, h1, h2) = dumbbell(SwitchRole::TopOfRack, 10.0);
        // Two senders? The dumbbell has two hosts; compete on the
        // switch→h2 downlink by sending both directions... instead: two
        // transfers from the same source share its uplink FIFO: the
        // second finishes ~2x later.
        let mut sim = Simulator::new(net, no_prop_cfg());
        for tag in [0u32, 1] {
            sim.add_flow(
                h1,
                h2,
                1_000,
                FlowKind::FileTransfer {
                    total_bytes: 500_000,
                },
                tag,
                SimTime::ZERO,
            );
        }
        sim.run(SimTime::from_ms(100));
        // Fair FIFO interleaving at the shared uplink: both transfers
        // take ~2x their solo completion time (400 µs solo for 500 kB at
        // 10 Gb/s).
        let solo_ns = 500_000.0 * 8.0 / 10.0;
        for tag in [0u32, 1] {
            let fct = sim.stats().summary(tag).mean_ns;
            let ratio = fct / solo_ns;
            assert!(
                (1.8..2.2).contains(&ratio),
                "tag {tag}: FCT {fct} is {ratio:.2}x solo"
            );
        }
    }

    #[test]
    fn reno_transfer_completes_with_reasonable_fct() {
        let (net, h1, h2) = dumbbell(SwitchRole::TopOfRack, 10.0);
        let mut sim = Simulator::new(net, no_prop_cfg());
        let total: u64 = 1_000_000;
        sim.add_flow(
            h1,
            h2,
            1_000,
            FlowKind::Transport {
                total_bytes: total,
                variant: TcpVariant::Reno,
            },
            0,
            SimTime::ZERO,
        );
        sim.run(SimTime::from_ms(200));
        let s = sim.stats().summary(0);
        assert_eq!(s.count, 1, "transfer must complete");
        // Ideal paced FCT is ~800 µs; slow start costs some RTTs but the
        // uncontended transfer should finish within 2x of ideal.
        let ideal = total as f64 * 8.0 / 10.0;
        assert!(
            s.mean_ns > ideal && s.mean_ns < 2.0 * ideal,
            "FCT {} vs ideal {ideal}",
            s.mean_ns
        );
        assert_eq!(sim.stats().dropped, 0);
    }

    #[test]
    fn competing_reno_flows_share_roughly_fairly() {
        let (net, h1, h2) = dumbbell(SwitchRole::TopOfRack, 10.0);
        let mut sim = Simulator::new(net, no_prop_cfg());
        for tag in [0u32, 1] {
            sim.add_flow(
                h1,
                h2,
                1_000,
                FlowKind::Transport {
                    total_bytes: 500_000,
                    variant: TcpVariant::Reno,
                },
                tag,
                SimTime::ZERO,
            );
        }
        sim.run(SimTime::from_ms(500));
        let a = sim.stats().summary(0);
        let b = sim.stats().summary(1);
        assert_eq!(a.count + b.count, 2, "both transfers complete");
        let ratio = a.mean_ns.max(b.mean_ns) / a.mean_ns.min(b.mean_ns);
        assert!(ratio < 2.5, "unfair split: {ratio:.2}x");
    }

    #[test]
    fn dctcp_avoids_the_drops_reno_takes_on_incast() {
        // 4 senders slow-start into one receiver downlink. Reno grows
        // until the drop-tail queue overflows; DCTCP backs off at the
        // ECN threshold and never drops. (§2.1.4's DCTCP, quantified.)
        let run = |variant: TcpVariant, ecn: Option<u64>| {
            let mut net = Network::new();
            let sw = net.add_switch(SwitchRole::TopOfRack, Some(0));
            let dst = net.add_host(Some(0));
            net.connect(dst, sw, 10.0);
            let senders: Vec<NodeId> = (0..4)
                .map(|_| {
                    let h = net.add_host(Some(0));
                    net.connect(h, sw, 10.0);
                    h
                })
                .collect();
            let mut sim = Simulator::new(
                net,
                SimConfig {
                    prop_delay_ns: 0,
                    ecn_threshold_bytes: ecn,
                    queue_cap_bytes: 128 * 1024,
                    ..SimConfig::default()
                },
            );
            for (i, &s) in senders.iter().enumerate() {
                sim.add_flow(
                    s,
                    dst,
                    1_000,
                    FlowKind::Transport {
                        total_bytes: 2_000_000,
                        variant,
                    },
                    i as u32,
                    SimTime::ZERO,
                );
            }
            sim.run(SimTime::from_ms(2_000));
            let completions: usize = (0..4).map(|t| sim.stats().summary(t).count).sum();
            (completions, sim.stats().dropped)
        };
        let (reno_done, reno_drops) = run(TcpVariant::Reno, None);
        let (dctcp_done, dctcp_drops) = run(TcpVariant::Dctcp, Some(65_000));
        assert_eq!(reno_done, 4);
        assert_eq!(dctcp_done, 4);
        assert!(reno_drops > 0, "Reno incast should overflow the queue");
        assert!(
            dctcp_drops < reno_drops / 4,
            "DCTCP drops {dctcp_drops} vs Reno {reno_drops}"
        );
    }

    #[test]
    fn transport_survives_loss_via_retransmission() {
        // Force drops with a tiny queue: the transfer must still
        // complete (fast retransmit / RTO recovery).
        let (net, h1, h2) = dumbbell(SwitchRole::TopOfRack, 10.0);
        let mut sim = Simulator::new(
            net,
            SimConfig {
                prop_delay_ns: 0,
                queue_cap_bytes: 8_000, // 8 packets
                ..SimConfig::default()
            },
        );
        sim.add_flow(
            h1,
            h2,
            1_000,
            FlowKind::Transport {
                total_bytes: 300_000,
                variant: TcpVariant::Reno,
            },
            0,
            SimTime::ZERO,
        );
        sim.run(SimTime::from_ms(5_000));
        assert_eq!(
            sim.stats().summary(0).count,
            1,
            "must complete despite loss"
        );
        assert!(sim.stats().dropped > 0, "the tiny queue must have dropped");
    }

    #[test]
    fn spain_vlan_selection_controls_the_path() {
        // §6: the prototype picks a direct two-switch path or an indirect
        // three-switch path by choosing the VLAN (spanning-tree root).
        // Each VLAN is measured in its own run so the two RPCs don't
        // collide on the shared host uplink.
        use quartz_topology::spain::SpainFabric;
        let rtt_on_vlan = |vlan: usize| {
            let p = prototype_quartz();
            let spain = SpainFabric::per_switch(&p.net);
            let mut sim = Simulator::new(p.net.clone(), no_prop_cfg());
            let t = sim.add_route_table(spain.table(vlan).clone());
            let f = sim.add_flow(
                p.hosts[2],
                p.hosts[4],
                100,
                FlowKind::Rpc { count: 50 },
                0,
                SimTime::ZERO,
            );
            sim.pin_flow_to_table(f, t);
            sim.run(SimTime::from_ms(50));
            let s = sim.stats().summary(0);
            assert_eq!(s.count, 50);
            s.mean_ns
        };
        let detour = rtt_on_vlan(0); // tree rooted at S1: S2→S1→S3
        let direct = rtt_on_vlan(1); // tree rooted at S2: S2→S3
                                     // The detour crosses one extra cut-through switch each way:
                                     // 2 × 380 ns slower (serialization pipelines under cut-through).
        let delta = detour - direct;
        assert!(
            (delta - 2.0 * 380.0).abs() < 1.0,
            "detour delta {delta} ns (direct {direct}, detour {detour})"
        );
    }

    #[test]
    #[should_panic(expected = "unknown table")]
    fn pinning_to_missing_table_panics() {
        let p = prototype_quartz();
        let mut sim = Simulator::new(p.net.clone(), SimConfig::default());
        let f = sim.add_flow(
            p.hosts[0],
            p.hosts[2],
            100,
            FlowKind::Rpc { count: 1 },
            0,
            SimTime::ZERO,
        );
        sim.pin_flow_to_table(f, 3);
    }

    #[test]
    fn auto_reconvergence_reroutes_and_logs_the_outage() {
        // Same fiber cut as above, but the control plane reconverges by
        // itself 100 µs after the fault; the log records exactly that.
        let q = quartz_mesh(4, 1, 10.0, 10.0);
        let mut sim = Simulator::new(
            q.net.clone(),
            SimConfig {
                reconvergence_ns: Some(100_000),
                ..no_prop_cfg()
            },
        );
        let stop = SimTime::from_ms(9);
        sim.add_flow(
            q.hosts[0],
            q.hosts[1],
            400,
            FlowKind::Poisson {
                mean_gap_ns: 10_000.0,
                stop,
                respond: false,
            },
            0,
            SimTime::ZERO,
        );
        let direct = q.net.link_between(q.switches[0], q.switches[1]).unwrap();
        let cut_at = SimTime::from_ms(3);
        let mut plan = FaultPlan::new();
        plan.link_down(direct, cut_at);
        sim.apply_fault_plan(&plan);
        sim.run(SimTime::from_ms(9));

        let log = sim.fault_log();
        assert_eq!(log.len(), 1);
        let rec = &log[0];
        assert_eq!(rec.at, cut_at);
        assert_eq!(rec.kind, FaultKind::LinkDown(direct));
        assert_eq!(
            rec.reconverged_at.map(|t| t - rec.at),
            Some(100_000),
            "reconvergence fires exactly the configured delay later"
        );
        // ~10 packets emitted during the 100 µs blackhole window.
        assert!(rec.drops_during_outage > 0, "outage must cost packets");
        let st = sim.stats();
        assert_eq!(st.dropped, rec.drops_during_outage, "no drops elsewhere");
        assert!(
            st.delivered > 100 + rec.drops_during_outage,
            "traffic resumes over the detour after reconvergence"
        );
    }

    #[test]
    fn switch_death_blackholes_traffic_until_recovery() {
        // Kill the destination's switch mid-run: even after reconverging
        // there is no route, so everything drops; bring it back and the
        // next reconvergence restores delivery.
        let q = quartz_mesh(5, 1, 10.0, 10.0);
        let mut sim = Simulator::new(
            q.net.clone(),
            SimConfig {
                reconvergence_ns: Some(10_000),
                ..no_prop_cfg()
            },
        );
        sim.add_flow(
            q.hosts[0],
            q.hosts[2],
            400,
            FlowKind::Poisson {
                mean_gap_ns: 10_000.0,
                stop: SimTime::from_ms(12),
                respond: false,
            },
            0,
            SimTime::ZERO,
        );
        let mut plan = FaultPlan::new();
        plan.switch_down(q.switches[2], SimTime::from_ms(3))
            .switch_up(q.switches[2], SimTime::from_ms(6));
        sim.apply_fault_plan(&plan);

        sim.run(SimTime::from_ms(6));
        let mid = sim.stats().clone();
        assert!(mid.dropped > 100, "dead switch blackholes its hosts");
        let healthy = sim.stats().delivered;

        sim.run(SimTime::from_ms(20));
        let st = sim.stats();
        assert!(
            st.delivered > healthy + 100,
            "delivery resumes after the switch recovers"
        );
        assert_eq!(st.generated, st.delivered + st.dropped);
        let log = sim.fault_log();
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|r| r.reconverged_at.is_some()));
    }

    #[test]
    #[should_panic(expected = "only switches fail")]
    fn failing_a_host_panics() {
        let (net, h1, _) = dumbbell(SwitchRole::TopOfRack, 10.0);
        let mut sim = Simulator::new(net, SimConfig::default());
        sim.fail_switch_at(h1, SimTime::ZERO);
    }

    #[test]
    fn hop_counts_match_path_length_and_stretch_on_detour() {
        // Mesh path h0 → sw0 → sw1 → h1 is 3 links; after the direct
        // channel dies the detour h0 → sw0 → swX → sw1 → h1 is 4.
        let q = quartz_mesh(4, 1, 10.0, 10.0);
        let mut sim = Simulator::new(
            q.net.clone(),
            SimConfig {
                reconvergence_ns: Some(1_000),
                ..no_prop_cfg()
            },
        );
        let cut_at = SimTime::from_ms(3);
        // The post-cut flow starts after the 1 µs reconvergence window so
        // every one of its packets rides the recomputed detour.
        for (tag, start, stop) in [
            (0u32, SimTime::ZERO, cut_at),
            (1, cut_at + 2_000, SimTime::from_ms(6)),
        ] {
            sim.add_flow(
                q.hosts[0],
                q.hosts[1],
                400,
                FlowKind::Poisson {
                    mean_gap_ns: 10_000.0,
                    stop,
                    respond: false,
                },
                tag,
                start,
            );
        }
        let direct = q.net.link_between(q.switches[0], q.switches[1]).unwrap();
        sim.fail_link_at(direct, cut_at);
        sim.run(SimTime::from_ms(10));
        let st = sim.stats();
        assert_eq!(st.mean_hops(0), 3.0, "direct mesh path is 3 links");
        assert_eq!(st.mean_hops(1), 4.0, "the detour adds exactly one hop");
        assert_eq!(st.hop_distribution(0), vec![(3, st.count(0))]);
    }

    /// The incremental-reroute invariant, pinned on the paper's
    /// 33-switch ring-cut mesh: after every scripted fault's
    /// reconvergence, the incrementally patched routing table must equal
    /// a [`RouteTable::degraded`] rebuild from scratch over the live
    /// failure state. (The same comparison runs as a `debug_assert`
    /// inside `complete_reroute` on every reroute of every debug run;
    /// this test makes it an explicit release-mode guarantee too.)
    #[test]
    fn incremental_patch_matches_scratch_rebuild_on_the_ring_cut_mesh() {
        use crate::faults::FaultPlan;

        let q = quartz_mesh(33, 1, 10.0, 10.0);
        let mut sim = Simulator::new(
            q.net.clone(),
            SimConfig {
                reconvergence_ns: Some(50_000),
                ..SimConfig::default()
            },
        );
        // Background traffic keeps packets in flight across every fault.
        for i in 0..8 {
            sim.add_flow(
                q.hosts[i],
                q.hosts[(i + 11) % q.hosts.len()],
                400,
                FlowKind::Poisson {
                    mean_gap_ns: 8_000.0,
                    stop: SimTime::from_ms(8),
                    respond: false,
                },
                0,
                SimTime::ZERO,
            );
        }
        // The paper's cut (switch 0 ↔ 1 at 1 ms) plus a scripted mix of
        // repairs, a switch death and recovery, and seeded extra cuts —
        // including overlapping outages, so patches apply on top of an
        // already-degraded table.
        let cut = q.net.link_between(q.switches[0], q.switches[1]).unwrap();
        let mut plan = FaultPlan::random_link_faults(
            &q.net,
            4,
            (SimTime::from_ms(2), SimTime::from_ms(5)),
            Some(1_500_000),
            0xC07,
        );
        plan.link_down(cut, SimTime::from_ms(1))
            .link_up(cut, SimTime::from_ms(4))
            .switch_down(q.switches[7], SimTime::from_ms(3))
            .switch_up(q.switches[7], SimTime::from_ms(6));
        sim.apply_fault_plan(&plan);

        // Checkpoint just past each fault's reconvergence.
        let mut checkpoints: Vec<SimTime> = plan.events().iter().map(|f| f.at + 50_001).collect();
        checkpoints.sort();
        for (i, t) in checkpoints.into_iter().enumerate() {
            sim.run(t);
            let links = &sim.links;
            let failed_nodes = &sim.failed_nodes;
            let scratch = RouteTable::degraded(
                &sim.net,
                |l| links[2 * l.0 as usize].failed,
                |n| failed_nodes[n.0 as usize],
            );
            assert_eq!(
                sim.table, scratch,
                "patched table diverged from scratch rebuild at {t:?}"
            );
            // Each fault's own reroute fired 50 µs after it, so by the
            // i-th checkpoint at least i + 1 faults have reconverged (a
            // reroute also resolves any other still-open records).
            let resolved = sim
                .fault_log()
                .iter()
                .filter(|r| r.reconverged_at.is_some())
                .count();
            assert!(resolved > i, "missing reroutes by {t:?}");
        }
        assert_eq!(sim.fault_log().len(), plan.len());
        // Every fault healed: the final table equals the pristine one.
        sim.run(SimTime::from_ms(9));
        assert_eq!(sim.table, RouteTable::all_shortest_paths(&sim.net));
    }
}
