//! The sharded single-simulation engine: spatial domains under
//! conservative lookahead (DESIGN.md §13).
//!
//! [`ShardedSim`] runs **one** simulation across `k` spatial domains
//! produced by [`quartz_topology::partition::spatial_domains`]. Each
//! domain owns a contiguous region of the network — its switches, its
//! hosts, and every directed link slot whose *source* node it owns —
//! plus a private [`TimingWheel`] and [`PacketArena`] shard. Domains
//! advance independently inside a window `[W0, B]` whose upper bound is
//! derived from the slowest-safe lower bound
//!
//! ```text
//! L = min over cross-domain directed slots (from → to) of
//!         latency(from) + prop_delay
//! B = min(W0 + L − 1, t_ctl − 1, until)
//! ```
//!
//! where `W0` is the earliest pending event across all domains and
//! `t_ctl` is the next control-plane event (fault or reconvergence).
//! Any packet a domain forwards across a boundary during the window
//! arrives no earlier than `W0 + L > B`, so boundary exchange at the
//! window edge can never deliver an event into a domain's past — the
//! classic conservative-lookahead argument, with the bound realized by
//! the fabric's own switch latency and propagation delay.
//!
//! ## Determinism
//!
//! The engine is **bit-identical at any domain count** (and any worker
//! count). Three mechanisms make that hold:
//!
//! 1. **Content-derived event keys.** Where the legacy
//!    [`crate::sim::Simulator`]
//!    breaks same-time ties with an execution-order sequence number
//!    (meaningless across shards), every event here carries a canonical
//!    key computed from its content: generation events sort before
//!    packet arrivals before retransmission timers, and within each
//!    class by flow id and a per-flow emission counter. The global
//!    `(time, key)` order is therefore a property of the *simulation*,
//!    not of the schedule that produced it.
//! 2. **Order-independent randomness.** Each flow owns two private RNG
//!    streams ([`unit_seed`]`(seed, 2·flow)` for its source side,
//!    `2·flow + 1` for its destination side); VLB decisions are
//!    pre-drawn at emission from the emitting side's stream and carried
//!    with the packet. No RNG is ever shared across domains, so draw
//!    order cannot depend on the partition.
//! 3. **Merge-order-stable sinks.** Domains stash trace events and
//!    flow completions keyed by the `(time, key)` of the event that
//!    produced them; the coordinator k-way-merges the stashes at every
//!    window edge, so the recorder byte stream and the completion log
//!    are identical at `k = 1, 2, …, N`.
//!
//! ## Scope
//!
//! The sharded engine supports the workloads the scale experiments use:
//! all five [`FlowKind`]s, ECN marking, Reno/DCTCP transport, VLB
//! detours, live faults with automatic reconvergence, and the full
//! observability surface. It deliberately drops two legacy knobs:
//! `SimConfig::scheduler` and `SimConfig::drain` are ignored (every
//! domain runs a per-packet timing wheel — batching across a window
//! boundary would leak schedule order into output), and the SPAIN-style
//! extra route tables of the §6 prototype are not available. Fabrics
//! whose routes forward *through* hosts (e.g. BCube) are rejected at
//! construction when a host link would cross a domain boundary.
//!
//! Control-plane events deviate from the legacy engine in exactly one
//! documented way: a fault (or reroute) at time `t` applies before all
//! packet events at `t`, whereas the legacy engine interleaves them in
//! schedule order. The deviation is the same at every domain count.

use crate::arena::{
    PacketArena, PacketCold, PacketId, FLAG_ECN, FLAG_LAST, FLAG_RESPONSE, FLAG_VLB_DECIDED,
};
use crate::faults::{FaultKind, FaultPlan};
use crate::sched::{Scheduler, TimingWheel};
use crate::sim::{
    DirLink, FaultRecord, FlowCompletion, FlowKind, LinkLoad, MetricLabels, SimConfig,
};
use crate::stats::Stats;
use crate::switch::ForwardMode;
use crate::time::SimTime;
use crate::transport::{ReceiverState, SendAction, SenderState, TransportInfo};
use quartz_core::pool::{unit_seed, DomainCells, ThreadPool};
use quartz_core::rng::StdRng;
use quartz_obs::{DropReason, Event, MetricsRegistry, Recorder};
use quartz_topology::graph::{LinkId, Network, NodeId, NodeKind};
use quartz_topology::partition::spatial_domains;
use quartz_topology::route::{FlatRoutes, RouteChange, RouteTable};
use std::sync::Arc;

/// Rank bit of packet-arrival (`Head`) keys: arrivals sort after
/// generations (rank 0) and before retransmission timers.
const HEAD_RANK: u64 = 1 << 62;
/// Rank bit of retransmission-timer (`Rto`) keys: timers sort last
/// among same-time events.
const RTO_RANK: u64 = 1 << 63;

/// Canonical key of the `n`-th generation event of `flow` (rank 0).
#[inline]
fn gen_key(flow: u32, n: u32) -> u64 {
    (u64::from(flow) << 32) | u64::from(n)
}

/// Canonical key of the `seq`-th retransmission timer armed by `flow`.
#[inline]
fn rto_key(flow: u32, seq: u32) -> u64 {
    RTO_RANK | (u64::from(flow) << 32) | u64::from(seq)
}

/// The default injected clock: frozen at zero, so per-domain busy-time
/// profiling is free (and silent) unless a harness installs a real
/// monotonic source via [`ShardedSim::set_clock`].
fn zero_clock() -> u64 {
    0
}

/// A domain-local event. Unlike the legacy engine's `EvKind`, every
/// variant carries enough content to reconstruct its canonical
/// `(time, key)` position at dispatch (the scheduler returns only the
/// time), so sinks can stamp everything they stash with a
/// partition-independent merge key.
#[derive(Clone, Copy, Debug)]
enum DEv {
    /// Emit the `n`-th generation of `flow` (packet, burst, or window
    /// pump — `n` is the flow's generation counter, not a packet seq).
    Gen { flow: u32, n: u32 },
    /// Packet head arrives at `at`; tail follows `ser` ns later. The
    /// packet's canonical key lives in the arena sidecar (`pkey`).
    Head { pkt: PacketId, at: NodeId, ser: u32 },
    /// Retransmission timer for `flow`; ignored if `epoch` is stale.
    /// `seq` is the flow's timer-arm counter — the key component —
    /// because one epoch may be re-armed and keys must stay unique.
    Rto { flow: u32, epoch: u32, seq: u32 },
}

/// A packet crossing a domain boundary: everything the receiving shard
/// needs to re-materialize it in its own arena and schedule its next
/// arrival. `Copy`, about one cache line — outboxes are plain vectors.
#[derive(Clone, Copy, Debug)]
struct BoundaryMsg {
    /// Arrival time of the head at `at` (strictly beyond the window).
    arr_head: SimTime,
    /// The packet's canonical key (`pkey` sidecar value).
    key_lo: u64,
    /// Node the packet arrives at (owned by the receiving domain).
    at: NodeId,
    /// Serialization time of the inbound hop, ns (tail = head + ser).
    ser: u32,
    created: SimTime,
    dst: NodeId,
    flow: u32,
    size: u32,
    hash: u64,
    cold: PacketCold,
    /// Pre-drawn VLB randomness (coin as `f64::to_bits`, pick, spray).
    vcoin: u64,
    vpick: u64,
    vspray: u64,
}

/// Per-flow metadata, replicated read-only into every domain.
#[derive(Clone, Copy, Debug)]
struct SFlow {
    src: NodeId,
    dst: NodeId,
    size: u32,
    kind: FlowKind,
    tag: u32,
    hash: u64,
    /// Domain owning the source host (generation, sender state).
    src_dom: u32,
    /// Domain owning the destination host (receiver state, responses).
    dst_dom: u32,
}

/// One spatial domain's complete simulation state: a shard of the
/// arena, its own timing wheel, the full link table (it only touches
/// slots whose source node it owns), and full-size per-flow tables (it
/// only touches rows whose relevant endpoint it owns). Full-size tables
/// trade memory for branch-free indexing — every domain can index by
/// flow id or slot without a translation map.
struct DomainSim {
    id: u32,
    cfg: SimConfig,
    net: Arc<Network>,
    dom_of: Arc<Vec<u32>>,
    node_kind: Arc<Vec<NodeKind>>,
    slot_dst: Arc<Vec<NodeId>>,
    vlb_domain: Arc<Vec<u32>>,
    vlb_enabled: bool,
    flat: Arc<FlatRoutes>,
    flows: Vec<SFlow>,
    /// Per-flow progress (source side): packets/requests sent.
    sent: Vec<u32>,
    /// First-emission time (file transfers measure completion from it).
    t0: Vec<SimTime>,
    /// Next generation-event ordinal (key component).
    gen_n: Vec<u32>,
    /// Next retransmission-timer ordinal (key component).
    rto_emit: Vec<u32>,
    /// Per-flow emission counters, source / destination side (canonical
    /// packet-key components).
    src_emit: Vec<u32>,
    dst_emit: Vec<u32>,
    /// Per-flow private RNG streams, source / destination side.
    src_rng: Vec<StdRng>,
    dst_rng: Vec<StdRng>,
    /// Transport state: sender lives with the source host's domain,
    /// receiver with the destination's. `None` for non-transport flows.
    senders: Vec<Option<SenderState>>,
    receivers: Vec<ReceiverState>,
    /// Connection start time (FCT baseline for transport flows).
    conn_t0: Vec<SimTime>,
    links: Vec<DirLink>,
    failed_nodes: Vec<bool>,
    wheel: TimingWheel<DEv>,
    arena: PacketArena,
    /// Arena sidecars, parallel to the arena columns: the packet's
    /// canonical key and its pre-drawn VLB randomness.
    pkey: Vec<u64>,
    vcoin: Vec<u64>,
    vpick: Vec<u64>,
    vspray: Vec<u64>,
    vlb_scratch: Vec<NodeId>,
    action_scratch: Vec<SendAction>,
    /// Boundary packets bound for each peer domain, drained by the
    /// coordinator at every window edge.
    outbox: Vec<Vec<BoundaryMsg>>,
    stats: Stats,
    /// Trace events keyed by the `(time, key, sub)` of the event that
    /// produced them; non-decreasing by construction (events dispatch
    /// in key order, `sub` counts records within one dispatch).
    trace_stash: Vec<(u64, u64, u32, Event)>,
    /// Flow completions, keyed like the trace stash.
    comp_stash: Vec<(u64, u64, FlowCompletion)>,
    trace_on: bool,
    metrics: Option<MetricsRegistry>,
    labels: MetricLabels,
    /// `trace_on || metrics.is_some()`.
    obs: bool,
    now: SimTime,
    /// Merge key of the event being dispatched.
    cur_t: u64,
    cur_key: u64,
    cur_sub: u32,
    events_processed: u64,
    /// Wall time spent inside `step_to`, by the injected clock.
    busy_ns: u64,
    clock: fn() -> u64,
}

impl DomainSim {
    #[allow(clippy::too_many_arguments)]
    fn new(
        id: u32,
        cfg: &SimConfig,
        net: Arc<Network>,
        dom_of: Arc<Vec<u32>>,
        node_kind: Arc<Vec<NodeKind>>,
        slot_dst: Arc<Vec<NodeId>>,
        vlb_domain: Arc<Vec<u32>>,
        vlb_enabled: bool,
        flat: Arc<FlatRoutes>,
        links: Vec<DirLink>,
        k: usize,
    ) -> DomainSim {
        let failed_nodes = vec![false; net.node_count()];
        DomainSim {
            id,
            cfg: cfg.clone(),
            net,
            dom_of,
            node_kind,
            slot_dst,
            vlb_domain,
            vlb_enabled,
            flat,
            flows: Vec::new(),
            sent: Vec::new(),
            t0: Vec::new(),
            gen_n: Vec::new(),
            rto_emit: Vec::new(),
            src_emit: Vec::new(),
            dst_emit: Vec::new(),
            src_rng: Vec::new(),
            dst_rng: Vec::new(),
            senders: Vec::new(),
            receivers: Vec::new(),
            conn_t0: Vec::new(),
            links,
            failed_nodes,
            wheel: TimingWheel::new(),
            arena: PacketArena::new(),
            pkey: Vec::new(),
            vcoin: Vec::new(),
            vpick: Vec::new(),
            vspray: Vec::new(),
            vlb_scratch: Vec::new(),
            action_scratch: Vec::new(),
            outbox: (0..k).map(|_| Vec::new()).collect(),
            stats: Stats::default(),
            trace_stash: Vec::new(),
            comp_stash: Vec::new(),
            trace_on: false,
            metrics: None,
            labels: MetricLabels::default(),
            obs: false,
            now: SimTime::ZERO,
            cur_t: 0,
            cur_key: 0,
            cur_sub: 0,
            events_processed: 0,
            busy_ns: 0,
            clock: zero_clock,
        }
    }

    /// Registers one flow's full-size row (every domain holds it; only
    /// the owning side's domain ever advances the mutable parts).
    fn push_flow(&mut self, meta: SFlow, start: SimTime, base_seed: u64) {
        let i = self.flows.len() as u64;
        self.flows.push(meta);
        self.sent.push(0);
        self.t0.push(start);
        self.gen_n.push(0);
        self.rto_emit.push(0);
        self.src_emit.push(0);
        self.dst_emit.push(0);
        self.src_rng
            .push(StdRng::seed_from_u64(unit_seed(base_seed, 2 * i)));
        self.dst_rng
            .push(StdRng::seed_from_u64(unit_seed(base_seed, 2 * i + 1)));
        let sender = match meta.kind {
            FlowKind::Transport {
                total_bytes,
                variant,
            } => {
                let pkts = total_bytes.div_ceil(u64::from(meta.size)).max(1);
                Some(SenderState::new(variant, pkts))
            }
            _ => None,
        };
        self.senders.push(sender);
        self.receivers.push(ReceiverState::default());
        self.conn_t0.push(start);
    }

    /// Whether any observability sink is attached.
    #[inline]
    fn observing(&self) -> bool {
        self.obs
    }

    /// Stashes a trace event under the current dispatch's merge key.
    fn stash_event(&mut self, ev: Event) {
        if self.trace_on {
            let sub = self.cur_sub;
            self.cur_sub = sub + 1;
            self.trace_stash.push((self.cur_t, self.cur_key, sub, ev));
        }
    }

    /// Bumps a named counter if metrics are enabled.
    fn metric_inc(&mut self, name: &str) {
        if let Some(m) = self.metrics.as_mut() {
            m.inc(name, 1);
        }
    }

    /// Shared bookkeeping for every discard site; only called when
    /// observing.
    fn drop_hook(&mut self, flow: u32, at: NodeId, t: SimTime, reason: DropReason) {
        self.stash_event(Event::Drop {
            t_ns: t.ns(),
            node: at.0,
            flow,
            reason,
        });
        if let Some(m) = self.metrics.as_mut() {
            m.inc("sim.packets.dropped", 1);
            m.inc(&format!("sim.drop.{}", reason.as_str()), 1);
            if self.node_kind[at.0 as usize].is_switch() {
                m.inc(&format!("switch.{:03}.dropped", at.0), 1);
            }
        }
    }

    /// Grows the arena sidecar columns to cover every allocated slot.
    fn ensure_side_cols(&mut self) {
        let need = self.arena.capacity();
        if self.pkey.len() < need {
            self.pkey.resize(need, 0);
            self.vcoin.resize(need, 0);
            self.vpick.resize(need, 0);
            self.vspray.resize(need, 0);
        }
    }

    /// Assigns a freshly allocated packet its canonical key and (when
    /// VLB is on) pre-draws its detour randomness from the emitting
    /// side's private stream.
    fn tag_packet(&mut self, id: PacketId, flow: u32, dst_side: bool) {
        self.ensure_side_cols();
        let i = id as usize;
        let fi = flow as usize;
        let (dir, ctr) = if dst_side {
            let c = self.dst_emit[fi];
            debug_assert!(c < u32::MAX, "emission counter fits u32");
            self.dst_emit[fi] = c + 1;
            (1u64, c)
        } else {
            let c = self.src_emit[fi];
            debug_assert!(c < u32::MAX, "emission counter fits u32");
            self.src_emit[fi] = c + 1;
            (0u64, c)
        };
        self.pkey[i] = (dir << 61) | (u64::from(flow) << 32) | u64::from(ctr);
        if self.vlb_enabled {
            let rng = if dst_side {
                &mut self.dst_rng[fi]
            } else {
                &mut self.src_rng[fi]
            };
            self.vcoin[i] = rng.random::<f64>().to_bits();
            self.vpick[i] = rng.next_u64();
            self.vspray[i] = rng.next_u64();
        }
    }

    /// Schedules the flow's next generation event at its canonical key.
    fn schedule_gen(&mut self, flow_idx: usize, at: SimTime) {
        let n = self.gen_n[flow_idx];
        debug_assert!(n < u32::MAX, "generation counter fits u32");
        self.gen_n[flow_idx] = n + 1;
        debug_assert!(flow_idx < (1 << 29), "flow ids fit the key layout");
        let flow = flow_idx as u32;
        self.wheel
            .push_at_seq(at, gen_key(flow, n), DEv::Gen { flow, n });
    }

    /// Earliest pending event time in this domain, if any.
    fn next_event_time(&mut self) -> Option<SimTime> {
        self.wheel.next_time()
    }

    /// Drains every event with `time <= bound` in `(time, key)` order.
    // lint:hot
    fn step_to(&mut self, bound: SimTime) {
        let t_in = (self.clock)();
        while let Some((t, ev)) = self.wheel.pop_before(bound) {
            self.events_processed += 1;
            self.dispatch(t, ev);
        }
        self.busy_ns = self
            .busy_ns
            .saturating_add((self.clock)().saturating_sub(t_in));
    }

    /// Dispatches one event, reconstructing its canonical merge key
    /// from its content.
    // lint:hot
    fn dispatch(&mut self, t: SimTime, ev: DEv) {
        self.now = t;
        self.cur_t = t.ns();
        self.cur_sub = 0;
        match ev {
            DEv::Gen { flow, n } => {
                self.cur_key = gen_key(flow, n);
                self.generate(flow as usize, t);
            }
            DEv::Head { pkt, at, ser } => {
                self.cur_key = HEAD_RANK | self.pkey[pkt as usize];
                self.arrive(pkt, at, t, t + u64::from(ser));
            }
            DEv::Rto { flow, epoch, seq } => {
                self.cur_key = rto_key(flow, seq);
                let fi = flow as usize;
                if self.senders[fi].is_some() {
                    let mut actions = std::mem::take(&mut self.action_scratch);
                    actions.clear();
                    if let Some(s) = self.senders[fi].as_mut() {
                        s.on_rto_into(u64::from(epoch), &mut actions);
                    }
                    self.apply_transport_actions(fi, t, &actions);
                    self.action_scratch = actions;
                }
            }
        }
    }

    /// Emits the flow's next packet (or burst, or window pump). Always
    /// runs in the flow's source domain.
    fn generate(&mut self, flow_idx: usize, now: SimTime) {
        let flow = self.flows[flow_idx];
        debug_assert_eq!(
            flow.src_dom, self.id,
            "generation runs in the source domain"
        );
        match flow.kind {
            FlowKind::Poisson {
                mean_gap_ns, stop, ..
            } => {
                if now >= stop {
                    return;
                }
                self.emit_inner(flow_idx, now, false, None, false);
                let u: f64 = self.src_rng[flow_idx].random::<f64>().max(1e-12);
                let gap = (-mean_gap_ns * u.ln()).max(1.0) as u64;
                let next = now + gap;
                if next < stop {
                    self.schedule_gen(flow_idx, next);
                }
            }
            FlowKind::Rpc { count } => {
                if self.sent[flow_idx] >= count {
                    return;
                }
                self.sent[flow_idx] += 1;
                self.emit_inner(flow_idx, now, false, None, false);
            }
            FlowKind::Burst {
                burst_pkts,
                period_ns,
                stop,
            } => {
                if now >= stop {
                    return;
                }
                for _ in 0..burst_pkts {
                    self.emit_inner(flow_idx, now, false, None, false);
                }
                let next = now + period_ns;
                if next < stop {
                    self.schedule_gen(flow_idx, next);
                }
            }
            FlowKind::Transport { total_bytes, .. } => {
                let t0 = self.t0[flow_idx];
                if t0 == SimTime::ZERO || now >= t0 {
                    debug_assert!(
                        self.senders[flow_idx].is_some(),
                        "transport flow has a sender"
                    );
                    if self.observing() {
                        debug_assert!(flow_idx <= u32::MAX as usize, "flow ids fit u32");
                        self.stash_event(Event::FlowStart {
                            t_ns: now.ns(),
                            flow: flow_idx as u32,
                            src: flow.src.0,
                            dst: flow.dst.0,
                            bytes: total_bytes,
                        });
                    }
                    let mut actions = std::mem::take(&mut self.action_scratch);
                    actions.clear();
                    if let Some(s) = self.senders[flow_idx].as_mut() {
                        s.pump_into(&mut actions);
                    }
                    self.apply_transport_actions(flow_idx, now, &actions);
                    self.action_scratch = actions;
                }
            }
            FlowKind::FileTransfer { total_bytes } => {
                let pkts64 = total_bytes.div_ceil(u64::from(flow.size)).max(1);
                debug_assert!(pkts64 <= u64::from(u32::MAX), "packet count fits u32");
                let pkts = pkts64 as u32;
                let sent = self.sent[flow_idx];
                if sent >= pkts {
                    return;
                }
                if sent == 0 {
                    self.t0[flow_idx] = now;
                    if self.observing() {
                        debug_assert!(flow_idx <= u32::MAX as usize, "flow ids fit u32");
                        self.stash_event(Event::FlowStart {
                            t_ns: now.ns(),
                            flow: flow_idx as u32,
                            src: flow.src.0,
                            dst: flow.dst.0,
                            bytes: total_bytes,
                        });
                    }
                }
                self.sent[flow_idx] += 1;
                let is_last = sent + 1 == pkts;
                let created = is_last.then(|| self.t0[flow_idx]);
                self.emit_inner(flow_idx, now, false, created, is_last);
                if !is_last {
                    let (_, link_id) = self.net.neighbors(flow.src)[0];
                    let rate = self.net.link(link_id).bandwidth_gbps;
                    let pace = ((flow.size as f64 * 8.0) / rate).ceil() as u64;
                    self.schedule_gen(flow_idx, now + pace);
                }
            }
        }
    }

    /// Creates a packet for `flow` and starts it from its origin host.
    fn emit_inner(
        &mut self,
        flow_idx: usize,
        now: SimTime,
        is_response: bool,
        created_override: Option<SimTime>,
        is_last: bool,
    ) {
        let (f_src, f_dst, f_size, f_hash) = {
            let f = &self.flows[flow_idx];
            (f.src, f.dst, f.size, f.hash)
        };
        let (origin, dst) = if is_response {
            (f_dst, f_src)
        } else {
            (f_src, f_dst)
        };
        let hash = if is_response {
            f_hash.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15
        } else {
            f_hash
        };
        let flags =
            if is_response { FLAG_RESPONSE } else { 0 } | if is_last { FLAG_LAST } else { 0 };
        debug_assert!(flow_idx <= u32::MAX as usize, "flow ids fit u32");
        let flow_id = flow_idx as u32;
        let id = self.arena.alloc(
            created_override.unwrap_or(now),
            dst,
            flow_id,
            f_size,
            hash,
            PacketCold {
                transport: TransportInfo::None,
                intermediate: None,
                flags,
                hops: 0,
            },
        );
        self.tag_packet(id, flow_id, is_response);
        self.stats.generated += 1;
        if self.observing() {
            self.stash_event(Event::Gen {
                t_ns: now.ns(),
                flow: flow_id,
                size_bytes: f_size,
                response: is_response,
            });
            self.metric_inc("sim.packets.generated");
        }
        let t = now + self.cfg.latency.host_send_ns;
        self.arrive(id, origin, t, t);
    }

    /// Executes the transport state machine's requested actions.
    fn apply_transport_actions(&mut self, flow_idx: usize, now: SimTime, actions: &[SendAction]) {
        for &a in actions {
            match a {
                SendAction::SendData { seq } => {
                    let (src, size) = {
                        let f = &self.flows[flow_idx];
                        (f.src, f.size)
                    };
                    self.send_transport_packet(flow_idx, src, size, TransportInfo::Data(seq), now);
                }
                SendAction::ArmRto { epoch } => {
                    let at = now + self.cfg.rto_ns;
                    debug_assert!(epoch <= u64::from(u32::MAX));
                    debug_assert!(flow_idx < (1 << 29), "flow ids fit the key layout");
                    let flow = flow_idx as u32;
                    let seq = self.rto_emit[flow_idx];
                    debug_assert!(seq < u32::MAX, "timer counter fits u32");
                    self.rto_emit[flow_idx] = seq + 1;
                    self.wheel.push_at_seq(
                        at,
                        rto_key(flow, seq),
                        DEv::Rto {
                            flow,
                            epoch: epoch as u32,
                            seq,
                        },
                    );
                }
                SendAction::Complete => {
                    let (tag, total_bytes) = {
                        let f = &self.flows[flow_idx];
                        let total = match f.kind {
                            FlowKind::Transport { total_bytes, .. } => total_bytes,
                            _ => 0,
                        };
                        (f.tag, total)
                    };
                    let fct_ns = now.saturating_sub(self.conn_t0[flow_idx]);
                    self.stats.record(tag, fct_ns);
                    debug_assert!(flow_idx <= u32::MAX as usize, "flow ids fit u32");
                    let flow = flow_idx as u32;
                    self.log_completion(flow, now, fct_ns, total_bytes);
                }
            }
        }
    }

    /// Injects one transport packet (data toward the flow's destination
    /// from the source side, ACKs back from the destination side).
    fn send_transport_packet(
        &mut self,
        flow_idx: usize,
        origin: NodeId,
        size: u32,
        transport: TransportInfo,
        now: SimTime,
    ) {
        let f = &self.flows[flow_idx];
        let dst_side = matches!(transport, TransportInfo::Ack { .. });
        let (dst, hash) = if dst_side {
            (f.src, f.hash.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15)
        } else {
            (f.dst, f.hash)
        };
        debug_assert!(flow_idx <= u32::MAX as usize, "flow ids fit u32");
        let flow_id = flow_idx as u32;
        let id = self.arena.alloc(
            now,
            dst,
            flow_id,
            size,
            hash,
            PacketCold {
                transport,
                intermediate: None,
                flags: 0,
                hops: 0,
            },
        );
        self.tag_packet(id, flow_id, dst_side);
        self.stats.generated += 1;
        if self.observing() {
            self.stash_event(Event::Gen {
                t_ns: now.ns(),
                flow: flow_id,
                size_bytes: size,
                response: false,
            });
            self.metric_inc("sim.packets.generated");
        }
        let t = now + self.cfg.latency.host_send_ns;
        self.arrive(id, origin, t, t);
    }

    /// Appends to the completion stash and records `FlowComplete`.
    /// Cold: runs once per flow.
    fn log_completion(&mut self, flow: u32, at: SimTime, fct_ns: u64, bytes: u64) {
        self.comp_stash
            .push((self.cur_t, self.cur_key, FlowCompletion { flow, fct_ns }));
        if self.observing() {
            self.stash_event(Event::FlowComplete {
                t_ns: at.ns(),
                flow,
                fct_ns,
                bytes,
            });
        }
    }

    /// Stashes a boundary crossing for the coordinator to deliver.
    fn stash_boundary(&mut self, dom: u32, m: BoundaryMsg) {
        self.outbox[dom as usize].push(m);
    }

    /// Re-materializes a boundary packet in this domain's arena and
    /// schedules its arrival. Called by the coordinator between
    /// windows; the arrival time is provably beyond everything this
    /// domain has processed.
    // lint:hot
    fn deliver_boundary(&mut self, m: &BoundaryMsg) {
        debug_assert!(
            m.arr_head > self.now,
            "conservative lookahead violated: boundary event in the past"
        );
        let id = self
            .arena
            .alloc(m.created, m.dst, m.flow, m.size, m.hash, m.cold);
        self.ensure_side_cols();
        let i = id as usize;
        self.pkey[i] = m.key_lo;
        self.vcoin[i] = m.vcoin;
        self.vpick[i] = m.vpick;
        self.vspray[i] = m.vspray;
        self.wheel.push_at_seq(
            m.arr_head,
            HEAD_RANK | m.key_lo,
            DEv::Head {
                pkt: id,
                at: m.at,
                ser: m.ser,
            },
        );
    }

    /// Handles a packet whose head reached `at` at `head` (tail at
    /// `tail`): deliver, queue on the next output port, or hand off to
    /// the next hop's domain. Mirrors the legacy engine's timing
    /// arithmetic exactly; only the tie-breaking keys and the boundary
    /// hand-off are new.
    // lint:hot
    fn arrive(&mut self, id: PacketId, at: NodeId, head: SimTime, tail: SimTime) {
        let i = id as usize;
        let flow_id = self.arena.flow[i];
        if self.failed_nodes[at.0 as usize] {
            self.stats.dropped += 1;
            if self.observing() {
                self.drop_hook(flow_id, at, head, DropReason::DeadSwitch);
            }
            self.arena.free(id);
            return;
        }
        let node_kind = self.node_kind[at.0 as usize];
        let dst = self.arena.dst[i];

        if at == dst {
            debug_assert!(node_kind.is_host());
            debug_assert_eq!(
                self.dom_of[at.0 as usize], self.id,
                "delivery happens in the domain owning the host"
            );
            let delivered_at = tail + self.cfg.latency.host_recv_ns;
            let size = self.arena.size[i];
            let created = self.arena.created[i];
            let cold = self.arena.cold[i];
            self.arena.free(id);
            self.stats.delivered += 1;
            let flow_idx = flow_id as usize;
            let (tag, kind) = {
                let f = &self.flows[flow_idx];
                (f.tag, f.kind)
            };
            let is_response = cold.flags & FLAG_RESPONSE != 0;
            let latency_sample = match cold.transport {
                TransportInfo::None => {
                    if is_response {
                        Some(delivered_at.saturating_sub(created))
                    } else {
                        let completes = match kind {
                            FlowKind::Poisson { respond, .. } => !respond,
                            FlowKind::Rpc { .. } => false,
                            FlowKind::FileTransfer { .. } => cold.flags & FLAG_LAST != 0,
                            _ => true,
                        };
                        completes.then(|| delivered_at.saturating_sub(created))
                    }
                }
                _ => None,
            };
            self.stats
                .record_delivery(tag, u64::from(size), cold.hops, latency_sample);
            if self.observing() {
                self.stash_event(Event::Deliver {
                    t_ns: delivered_at.ns(),
                    node: at.0,
                    flow: flow_id,
                    latency_ns: delivered_at.saturating_sub(created),
                    hops: cold.hops,
                });
                self.metric_inc("sim.packets.delivered");
            }
            if let FlowKind::FileTransfer { total_bytes } = kind {
                if cold.flags & FLAG_LAST != 0 {
                    // The FCT sample itself went in via `record_delivery`
                    // (the last packet carries the flow's start time).
                    let fct_ns = delivered_at.saturating_sub(created);
                    self.log_completion(flow_id, delivered_at, fct_ns, total_bytes);
                }
            }
            match cold.transport {
                TransportInfo::Data(seq) => {
                    debug_assert_eq!(
                        self.flows[flow_idx].dst_dom, self.id,
                        "receiver state lives in the destination host's domain"
                    );
                    let ack = self.receivers[flow_idx].on_data(seq);
                    self.send_transport_packet(
                        flow_idx,
                        dst,
                        64,
                        TransportInfo::Ack {
                            ack,
                            ecn_echo: cold.flags & FLAG_ECN != 0,
                        },
                        delivered_at,
                    );
                    return;
                }
                TransportInfo::Ack { ack, ecn_echo } => {
                    let mut actions = std::mem::take(&mut self.action_scratch);
                    actions.clear();
                    if let Some(s) = self.senders[flow_idx].as_mut() {
                        s.on_ack_into(ack, ecn_echo, &mut actions);
                    }
                    self.apply_transport_actions(flow_idx, delivered_at, &actions);
                    self.action_scratch = actions;
                    return;
                }
                TransportInfo::None => {}
            }
            if is_response {
                if let FlowKind::Rpc { count } = kind {
                    if self.sent[flow_idx] < count {
                        self.schedule_gen(flow_idx, delivered_at);
                    }
                }
            } else {
                let responds = matches!(
                    kind,
                    FlowKind::Poisson { respond: true, .. } | FlowKind::Rpc { .. }
                );
                if responds {
                    self.emit_inner(flow_idx, delivered_at, true, Some(created), false);
                }
            }
            return;
        }

        // Forwarding: work on copies, write back once before scheduling.
        let mut cold = self.arena.cold[i];
        let mut hash = self.arena.hash[i];
        let size = self.arena.size[i];
        if cold.intermediate == Some(at) {
            cold.intermediate = None;
        }

        // VLB decision at the mesh ingress switch, from the packet's
        // pre-drawn randomness (legacy draws from the shared RNG here;
        // pre-drawing at emission is what makes the outcome independent
        // of cross-domain processing order).
        let mut vlb_detour: Option<NodeId> = None;
        if self.vlb_enabled && cold.flags & FLAG_VLB_DECIDED == 0 && node_kind.is_switch() {
            let dom_idx = self.vlb_domain[at.0 as usize];
            if dom_idx != u32::MAX {
                cold.flags |= FLAG_VLB_DECIDED;
                if let Some((nh, _)) = self.flat.ecmp_next(at, dst, hash) {
                    if self.vlb_domain[nh.0 as usize] == dom_idx {
                        let vlb = self.cfg.vlb.as_ref().expect("domains imply config");
                        if f64::from_bits(self.vcoin[i]) < vlb.fraction {
                            let dom = &vlb.domains[dom_idx as usize];
                            self.vlb_scratch.clear();
                            self.vlb_scratch
                                .extend(dom.iter().copied().filter(|&w| w != at && w != nh));
                            if !self.vlb_scratch.is_empty() {
                                let pick = (self.vpick[i] % self.vlb_scratch.len() as u64) as usize;
                                let w = self.vlb_scratch[pick];
                                cold.intermediate = Some(w);
                                vlb_detour = Some(w);
                                hash = self.vspray[i];
                            }
                        }
                    }
                }
            }
        }
        if self.observing() {
            if let Some(w) = vlb_detour {
                self.stash_event(Event::Vlb {
                    t_ns: head.ns(),
                    node: at.0,
                    flow: flow_id,
                    via: w.0,
                });
                self.metric_inc("sim.vlb.detours");
            }
        }

        let target = cold.intermediate.unwrap_or(dst);
        let Some((next, slot)) = self.flat.ecmp_next(at, target, hash) else {
            self.stats.dropped += 1;
            if self.observing() {
                self.drop_hook(flow_id, at, head, DropReason::NoRoute);
            }
            self.arena.free(id);
            return;
        };
        let (failed, rate, free_at, ser_ns) = {
            let dl = &mut self.links[slot as usize];
            (dl.failed, dl.rate_gbps, dl.free_at, dl.ser_ns(size))
        };
        if failed {
            self.stats.dropped += 1;
            if self.observing() {
                self.drop_hook(flow_id, at, head, DropReason::DeadLink);
            }
            self.arena.free(id);
            return;
        }
        let inbound_ns = tail - head;
        let mut forward_decision: Option<(ForwardMode, u64)> = None;
        let earliest = match node_kind {
            NodeKind::Host => {
                if inbound_ns == 0 {
                    head
                } else {
                    tail + self.cfg.latency.host_recv_ns + self.cfg.latency.host_send_ns
                }
            }
            NodeKind::Switch(role) => {
                let spec = self.cfg.latency.spec_for(role);
                let mode = spec.forward_mode(inbound_ns, ser_ns);
                if self.observing() {
                    forward_decision = Some((mode, spec.latency_ns));
                }
                match mode {
                    ForwardMode::CutThrough => head + spec.latency_ns,
                    ForwardMode::StoreForward => tail + spec.latency_ns,
                }
            }
        };
        if let Some((mode, latency_ns)) = forward_decision {
            let cut_through = mode == ForwardMode::CutThrough;
            self.stash_event(Event::Forward {
                t_ns: head.ns(),
                node: at.0,
                flow: flow_id,
                cut_through,
                latency_ns,
            });
            self.metric_inc(if cut_through {
                "sim.forward.cut_through"
            } else {
                "sim.forward.store_forward"
            });
        }

        let backlog_ns = free_at.saturating_sub(earliest);
        let backlog_bytes = if backlog_ns == 0 {
            0
        } else {
            (backlog_ns as f64 * rate / 8.0) as u64
        };
        if backlog_bytes > self.cfg.queue_cap_bytes {
            self.stats.dropped += 1;
            if self.observing() {
                self.drop_hook(flow_id, at, earliest, DropReason::QueueFull);
            }
            self.arena.free(id);
            return;
        }
        if let Some(k) = self.cfg.ecn_threshold_bytes {
            if backlog_bytes > k {
                cold.flags |= FLAG_ECN;
            }
        }

        let start = if free_at > earliest {
            free_at
        } else {
            earliest
        };
        let done = start + ser_ns;
        let dl = &mut self.links[slot as usize];
        dl.free_at = done;
        dl.busy_ns += ser_ns;
        dl.bytes += u64::from(size);
        if self.observing() {
            let queue_bytes = backlog_bytes + u64::from(size);
            let link_idx = slot >> 1;
            let to_b = slot & 1 == 0;
            self.stash_event(Event::Enqueue {
                t_ns: earliest.ns(),
                node: at.0,
                link: link_idx,
                to_b,
                flow: flow_id,
                queue_bytes,
            });
            self.stash_event(Event::Transmit {
                t_ns: start.ns(),
                link: link_idx,
                to_b,
                flow: flow_id,
                serialize_ns: ser_ns,
            });
            if let Some(m) = self.metrics.as_mut() {
                m.inc("sim.packets.forwarded", 1);
                if node_kind.is_switch() {
                    m.inc(self.labels.switch_fwd(at.0), 1);
                }
                m.observe(self.labels.queue(slot), earliest.ns(), queue_bytes);
                m.observe(self.labels.util(slot), start.ns(), ser_ns);
            }
        }
        let prop = self.cfg.prop_delay_ns;
        cold.hops += 1;
        self.arena.cold[i] = cold;
        self.arena.hash[i] = hash;
        let arr_head = start + prop;
        debug_assert_eq!(next, self.slot_dst[slot as usize]);
        debug_assert!(ser_ns <= u64::from(u32::MAX));
        let ser = ser_ns as u32;
        let next_dom = self.dom_of[next.0 as usize];
        if next_dom != self.id {
            debug_assert!(node_kind.is_switch(), "cross-domain hop from a non-switch");
            debug_assert!(
                arr_head > self.now,
                "cross-domain arrival must be strictly future"
            );
            let m = BoundaryMsg {
                arr_head,
                key_lo: self.pkey[i],
                at: next,
                ser,
                created: self.arena.created[i],
                dst,
                flow: flow_id,
                size,
                hash,
                cold,
                vcoin: self.vcoin[i],
                vpick: self.vpick[i],
                vspray: self.vspray[i],
            };
            self.stash_boundary(next_dom, m);
            self.arena.free(id);
            return;
        }
        self.wheel.push_at_seq(
            arr_head,
            HEAD_RANK | self.pkey[i],
            DEv::Head {
                pkt: id,
                at: next,
                ser,
            },
        );
    }
}

/// A control-plane transition applied at a window barrier.
#[derive(Clone, Copy, Debug)]
enum CtlKind {
    /// A fault (or recovery) hits the data plane.
    Fault(FaultKind),
    /// Control-plane reconvergence completes.
    Reroute,
}

/// The coordinator's control plane: the global route table, the sorted
/// timeline of fault/reroute events, and the fault log. Control events
/// apply *between* windows — every window is bounded by the next
/// control event's time, so a fault at `t` is visible to every packet
/// event at `t` or later, in every domain.
struct CtlPlane {
    net: Arc<Network>,
    table: RouteTable,
    routed_link_failed: Vec<bool>,
    routed_node_failed: Vec<bool>,
    pending: Vec<FaultKind>,
    /// Time-sorted control events; `cursor` marks the applied prefix.
    events: Vec<(SimTime, CtlKind)>,
    cursor: usize,
    fault_log: Vec<FaultRecord>,
    reconvergence_ns: Option<u64>,
    metrics: Option<MetricsRegistry>,
}

impl CtlPlane {
    /// Next unapplied control-event time, if any.
    fn next_time(&self) -> Option<SimTime> {
        self.events.get(self.cursor).map(|e| e.0)
    }

    /// Inserts a control event keeping the timeline sorted (upper
    /// bound: same-time events apply in insertion order, matching the
    /// legacy scheduler's behavior for a fault and its reconvergence).
    fn insert(&mut self, at: SimTime, kind: CtlKind) {
        let lo = self.cursor;
        let pos = lo + self.events[lo..].partition_point(|e| e.0 <= at);
        self.events.insert(pos, (at, kind));
    }

    /// Applies the control event at the cursor.
    fn apply_next(&mut self, sinks: &mut Sinks, cells: &DomainCells<'_, DomainSim>) {
        let (at, kind) = self.events[self.cursor];
        self.cursor += 1;
        match kind {
            CtlKind::Fault(k) => self.apply_fault(at, k, sinks, cells),
            CtlKind::Reroute => self.apply_reroute(at, sinks, cells),
        }
    }

    /// Applies one fault to every domain's data-plane state and opens a
    /// log record. With auto-reconvergence configured, schedules the
    /// route recomputation.
    fn apply_fault(
        &mut self,
        at: SimTime,
        kind: FaultKind,
        sinks: &mut Sinks,
        cells: &DomainCells<'_, DomainSim>,
    ) {
        for i in 0..cells.len() {
            let mut d = cells.lock(i);
            match kind {
                FaultKind::LinkDown(l) => {
                    d.links[2 * l.0 as usize].failed = true;
                    d.links[2 * l.0 as usize + 1].failed = true;
                }
                FaultKind::LinkUp(l) => {
                    d.links[2 * l.0 as usize].failed = false;
                    d.links[2 * l.0 as usize + 1].failed = false;
                }
                FaultKind::SwitchDown(n) => d.failed_nodes[n.0 as usize] = true,
                FaultKind::SwitchUp(n) => d.failed_nodes[n.0 as usize] = false,
            }
        }
        let baseline: u64 = (0..cells.len()).map(|i| cells.lock(i).stats.dropped).sum();
        self.pending.push(kind);
        self.fault_log.push(FaultRecord {
            at,
            kind,
            reconverged_at: None,
            drops_during_outage: 0,
            baseline_drops: baseline,
        });
        let (kind_str, element) = match kind {
            FaultKind::LinkDown(l) => ("link_down", l.0),
            FaultKind::LinkUp(l) => ("link_up", l.0),
            FaultKind::SwitchDown(n) => ("switch_down", n.0),
            FaultKind::SwitchUp(n) => ("switch_up", n.0),
        };
        sinks.record_ctl(Event::Fault {
            t_ns: at.ns(),
            kind: kind_str,
            element,
        });
        if let Some(m) = self.metrics.as_mut() {
            m.inc(&format!("sim.fault.{kind_str}"), 1);
        }
        if let Some(delay) = self.reconvergence_ns {
            self.insert(at + delay, CtlKind::Reroute);
        }
    }

    /// Recomputes routes over the surviving elements, distributes the
    /// new flat table to every domain, and closes open fault records.
    fn apply_reroute(
        &mut self,
        at: SimTime,
        sinks: &mut Sinks,
        cells: &DomainCells<'_, DomainSim>,
    ) {
        for kind in std::mem::take(&mut self.pending) {
            let change = match kind {
                FaultKind::LinkDown(l) => {
                    self.routed_link_failed[l.0 as usize] = true;
                    RouteChange::LinkDown(l)
                }
                FaultKind::LinkUp(l) => {
                    self.routed_link_failed[l.0 as usize] = false;
                    RouteChange::LinkUp(l)
                }
                FaultKind::SwitchDown(n) => {
                    self.routed_node_failed[n.0 as usize] = true;
                    RouteChange::NodeDown(n)
                }
                FaultKind::SwitchUp(n) => {
                    self.routed_node_failed[n.0 as usize] = false;
                    RouteChange::NodeUp(n)
                }
            };
            let (rl, rn) = (&self.routed_link_failed, &self.routed_node_failed);
            self.table.patch(
                &self.net,
                change,
                |l| rl[l.0 as usize],
                |n| rn[n.0 as usize],
            );
        }
        #[cfg(debug_assertions)]
        {
            // The patched table must equal a from-scratch rebuild over
            // the live failure state (domain 0's copy — identical in
            // all domains, since faults apply to every one).
            let d0 = cells.lock(0);
            let scratch = RouteTable::degraded(
                &self.net,
                |l| d0.links[2 * l.0 as usize].failed,
                |n| d0.failed_nodes[n.0 as usize],
            );
            debug_assert_eq!(
                self.table, scratch,
                "incremental route patch diverged from scratch rebuild"
            );
        }
        let flat = Arc::new(FlatRoutes::new(&self.table, &self.net));
        for i in 0..cells.len() {
            cells.lock(i).flat = Arc::clone(&flat);
        }
        let dropped: u64 = (0..cells.len()).map(|i| cells.lock(i).stats.dropped).sum();
        let mut resolved = 0u32;
        for r in self
            .fault_log
            .iter_mut()
            .filter(|r| r.reconverged_at.is_none())
        {
            r.reconverged_at = Some(at);
            r.drops_during_outage = dropped - r.baseline_drops;
            resolved += 1;
        }
        sinks.record_ctl(Event::Reroute {
            t_ns: at.ns(),
            resolved,
        });
        if let Some(m) = self.metrics.as_mut() {
            m.inc("sim.reroutes", 1);
        }
    }
}

/// The coordinator's output sinks: the recorder, the merged completion
/// log, and the reusable buffers the window merge ping-pongs with the
/// domains (so the steady-state merge allocates nothing).
struct Sinks {
    recorder: Option<Box<dyn Recorder>>,
    completions: Vec<FlowCompletion>,
    msg_scratch: Vec<BoundaryMsg>,
    trace_bufs: Vec<Vec<(u64, u64, u32, Event)>>,
    comp_bufs: Vec<Vec<(u64, u64, FlowCompletion)>>,
    cursors: Vec<usize>,
}

impl Sinks {
    /// Records a coordinator-originated (control-plane) event.
    fn record_ctl(&mut self, ev: Event) {
        if let Some(r) = self.recorder.as_deref_mut() {
            r.record(&ev);
        }
    }

    /// Merges one window's outputs: boundary packets into their target
    /// wheels, then traces and completions into the global sinks in
    /// `(time, key)` order.
    fn merge_window(&mut self, cells: &DomainCells<'_, DomainSim>) {
        self.merge_boundary(cells);
        self.merge_traces(cells);
        self.merge_completions(cells);
    }

    /// Drains every domain's outboxes into the target domains' wheels.
    /// Delivery order is irrelevant to simulation output (events are
    /// keyed), but is fixed anyway: by receiving domain, then sender.
    // lint:hot
    fn merge_boundary(&mut self, cells: &DomainCells<'_, DomainSim>) {
        let k = cells.len();
        for dd in 0..k {
            for sd in 0..k {
                if sd == dd {
                    continue;
                }
                {
                    let mut src = cells.lock(sd);
                    std::mem::swap(&mut self.msg_scratch, &mut src.outbox[dd]);
                }
                if !self.msg_scratch.is_empty() {
                    let mut dst = cells.lock(dd);
                    for m in &self.msg_scratch {
                        dst.deliver_boundary(m);
                    }
                    self.msg_scratch.clear();
                }
                {
                    let mut src = cells.lock(sd);
                    std::mem::swap(&mut self.msg_scratch, &mut src.outbox[dd]);
                }
            }
        }
    }

    /// K-way merges the domains' trace stashes into the recorder by
    /// `(time, key, sub)`, ties to the lowest domain (only same-domain
    /// entries can tie, so any deterministic rule gives one order).
    // lint:hot
    fn merge_traces(&mut self, cells: &DomainCells<'_, DomainSim>) {
        let k = cells.len();
        for d in 0..k {
            let mut dom = cells.lock(d);
            std::mem::swap(&mut self.trace_bufs[d], &mut dom.trace_stash);
            self.cursors[d] = 0;
        }
        if let Some(r) = self.recorder.as_deref_mut() {
            loop {
                let mut best: Option<(u64, u64, u32, usize)> = None;
                for d in 0..k {
                    if let Some(e) = self.trace_bufs[d].get(self.cursors[d]) {
                        let key = (e.0, e.1, e.2, d);
                        if best.is_none_or(|b| key < b) {
                            best = Some(key);
                        }
                    }
                }
                let Some((_, _, _, d)) = best else { break };
                r.record(&self.trace_bufs[d][self.cursors[d]].3);
                self.cursors[d] += 1;
            }
        }
        for d in 0..k {
            self.trace_bufs[d].clear();
            let mut dom = cells.lock(d);
            std::mem::swap(&mut self.trace_bufs[d], &mut dom.trace_stash);
        }
    }

    /// K-way merges the domains' completion stashes into the global
    /// completion log (which grows once per flow — off the hot path).
    fn merge_completions(&mut self, cells: &DomainCells<'_, DomainSim>) {
        let k = cells.len();
        for d in 0..k {
            let mut dom = cells.lock(d);
            std::mem::swap(&mut self.comp_bufs[d], &mut dom.comp_stash);
            self.cursors[d] = 0;
        }
        loop {
            let mut best: Option<(u64, u64, usize)> = None;
            for d in 0..k {
                if let Some(e) = self.comp_bufs[d].get(self.cursors[d]) {
                    let key = (e.0, e.1, d);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
            }
            let Some((_, _, d)) = best else { break };
            self.completions.push(self.comp_bufs[d][self.cursors[d]].2);
            self.cursors[d] += 1;
        }
        for d in 0..k {
            self.comp_bufs[d].clear();
            let mut dom = cells.lock(d);
            std::mem::swap(&mut self.comp_bufs[d], &mut dom.comp_stash);
        }
    }
}

/// The sharded simulation: `k` spatial domains advancing one simulation
/// under conservative lookahead. See the module docs for the windowing
/// and determinism arguments; [`ShardedSim::run`] drives the domains on
/// a [`ThreadPool`] (bit-identical output at any thread count,
/// including 1).
///
/// # Examples
///
/// ```
/// use quartz_core::pool::ThreadPool;
/// use quartz_netsim::shard::ShardedSim;
/// use quartz_netsim::sim::{FlowKind, SimConfig};
/// use quartz_netsim::time::SimTime;
/// use quartz_topology::builders::quartz_mesh;
///
/// let m = quartz_mesh(4, 2, 10.0, 10.0);
/// let mut sim = ShardedSim::new(m.net.clone(), SimConfig::default(), 2);
/// sim.add_flow(
///     m.hosts[0],
///     m.hosts[7],
///     400,
///     FlowKind::Rpc { count: 50 },
///     0,
///     SimTime::ZERO,
/// );
/// sim.run(SimTime::from_ms(10), &ThreadPool::sequential());
/// assert_eq!(sim.stats().summary(0).count, 50);
/// ```
pub struct ShardedSim {
    domains: Vec<DomainSim>,
    dom_of: Arc<Vec<u32>>,
    net: Arc<Network>,
    lookahead: u64,
    ctl: CtlPlane,
    sinks: Sinks,
    merged: Stats,
    /// Construction-order RNG: one ECMP hash per `add_flow`, exactly
    /// like the legacy engine's add-time draws (so flow hashes match
    /// the legacy simulator under the same seed and add order).
    cons_rng: StdRng,
    seed: u64,
    clock: fn() -> u64,
    coord_ns: u64,
    flow_count: usize,
}

impl ShardedSim {
    /// Builds a sharded simulator over `net`, partitioned into (at
    /// most) `domains` spatial domains.
    ///
    /// # Panics
    /// Panics if any cross-domain link touches a host (relay-host
    /// fabrics and multi-homed hosts straddling a cut are not
    /// shardable), or if the lookahead bound would be zero (an ideal
    /// latency model with zero propagation delay cannot shard — run
    /// with `domains = 1`).
    pub fn new(net: Network, cfg: SimConfig, domains: usize) -> Self {
        let part = spatial_domains(&net, domains.max(1));
        let k = part.domains();
        let mut lookahead = u64::MAX;
        for (_slot, from, to) in part.cross_slots(&net) {
            let from_kind = net.node(from).kind;
            assert!(
                from_kind.is_switch() && net.node(to).kind.is_switch(),
                "cross-domain links must join switches; {from:?} -> {to:?} touches a host \
                 (relay-host fabrics are not shardable — use domains = 1)"
            );
            let NodeKind::Switch(role) = from_kind else {
                unreachable!("asserted switch above")
            };
            let hop = cfg.latency.spec_for(role).latency_ns + cfg.prop_delay_ns;
            lookahead = lookahead.min(hop);
        }
        if k > 1 {
            assert!(
                lookahead >= 1,
                "conservative lookahead needs >= 1 ns per cross-domain hop; this latency \
                 model has zero switch latency and zero propagation delay — run with domains = 1"
            );
        }
        let mut vlb_domain = vec![u32::MAX; net.node_count()];
        if let Some(v) = &cfg.vlb {
            assert!(
                (0.0..=1.0).contains(&v.fraction),
                "VLB fraction must be in 0..=1"
            );
            for (vi, dom) in v.domains.iter().enumerate() {
                debug_assert!(vi < u32::MAX as usize, "VLB domain ids fit u32");
                for &sw in dom {
                    vlb_domain[sw.0 as usize] = vi as u32;
                }
            }
        }
        let vlb_domain = Arc::new(vlb_domain);
        let vlb_enabled = vlb_domain.iter().any(|&d| d != u32::MAX);
        let table = RouteTable::all_shortest_paths(&net);
        let flat = Arc::new(FlatRoutes::new(&table, &net));
        let node_kind: Arc<Vec<NodeKind>> = Arc::new(net.nodes().map(|n| n.kind).collect());
        let mut slot_dst = Vec::with_capacity(2 * net.link_count());
        for l in net.links() {
            slot_dst.push(l.b);
            slot_dst.push(l.a);
        }
        let slot_dst = Arc::new(slot_dst);
        let links: Vec<DirLink> = net
            .links()
            .flat_map(|l| {
                let d = DirLink {
                    rate_gbps: l.bandwidth_gbps,
                    free_at: SimTime::ZERO,
                    busy_ns: 0,
                    bytes: 0,
                    failed: false,
                    ser_size: 0,
                    ser_ns: 0,
                };
                [d.clone(), d]
            })
            .collect();
        let dom_of = Arc::new(part.domain_of().to_vec());
        let routed_link_failed = vec![false; net.link_count()];
        let routed_node_failed = vec![false; net.node_count()];
        let net = Arc::new(net);
        debug_assert!(k <= u32::MAX as usize, "domain count fits u32");
        let doms: Vec<DomainSim> = (0..k)
            .map(|id| {
                DomainSim::new(
                    id as u32,
                    &cfg,
                    Arc::clone(&net),
                    Arc::clone(&dom_of),
                    Arc::clone(&node_kind),
                    Arc::clone(&slot_dst),
                    Arc::clone(&vlb_domain),
                    vlb_enabled,
                    Arc::clone(&flat),
                    links.clone(),
                    k,
                )
            })
            .collect();
        let cons_rng = StdRng::seed_from_u64(cfg.seed);
        ShardedSim {
            domains: doms,
            dom_of,
            net: Arc::clone(&net),
            lookahead,
            ctl: CtlPlane {
                net,
                table,
                routed_link_failed,
                routed_node_failed,
                pending: Vec::new(),
                events: Vec::new(),
                cursor: 0,
                fault_log: Vec::new(),
                reconvergence_ns: cfg.reconvergence_ns,
                metrics: None,
            },
            sinks: Sinks {
                recorder: None,
                completions: Vec::new(),
                msg_scratch: Vec::new(),
                trace_bufs: (0..k).map(|_| Vec::new()).collect(),
                comp_bufs: (0..k).map(|_| Vec::new()).collect(),
                cursors: vec![0; k],
            },
            merged: Stats::default(),
            cons_rng,
            seed: cfg.seed,
            clock: zero_clock,
            coord_ns: 0,
            flow_count: 0,
        }
    }

    /// Registers a flow starting at `start`; returns its index. Flow
    /// hashes are drawn from a construction-order RNG seeded like the
    /// legacy engine's, so the same add order yields the same ECMP
    /// paths.
    ///
    /// # Panics
    /// Panics if `src` or `dst` is not a host, they coincide, or more
    /// than 2²⁹ flows are registered (the canonical key layout).
    pub fn add_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        size_bytes: u32,
        kind: FlowKind,
        tag: u32,
        start: SimTime,
    ) -> usize {
        assert_ne!(src, dst, "flow endpoints must differ");
        assert!(
            self.net.node(src).kind == NodeKind::Host && self.net.node(dst).kind == NodeKind::Host,
            "flows run between hosts"
        );
        let idx = self.flow_count;
        assert!(idx < (1 << 29), "the sharded engine keys flows in 29 bits");
        self.flow_count += 1;
        let hash = self.cons_rng.random::<u64>();
        let src_dom = self.dom_of[src.0 as usize];
        let dst_dom = self.dom_of[dst.0 as usize];
        let meta = SFlow {
            src,
            dst,
            size: size_bytes,
            kind,
            tag,
            hash,
            src_dom,
            dst_dom,
        };
        let seed = self.seed;
        for d in &mut self.domains {
            d.push_flow(meta, start, seed);
        }
        self.domains[src_dom as usize].schedule_gen(idx, start);
        idx
    }

    /// Schedules a fiber cut at `at` (both directions of `link` drop
    /// everything until recovery + reconvergence).
    pub fn fail_link_at(&mut self, link: LinkId, at: SimTime) {
        assert!((link.0 as usize) < self.net.link_count(), "unknown link");
        self.ctl
            .insert(at, CtlKind::Fault(FaultKind::LinkDown(link)));
    }

    /// Schedules the death of switch `node` at `at`.
    ///
    /// # Panics
    /// Panics if `node` is not a switch.
    pub fn fail_switch_at(&mut self, node: NodeId, at: SimTime) {
        assert!(
            self.net.node(node).kind.is_switch(),
            "only switches fail; {node:?} is a host"
        );
        self.ctl
            .insert(at, CtlKind::Fault(FaultKind::SwitchDown(node)));
    }

    /// Schedules every event of a [`FaultPlan`]. The sharded engine
    /// requires [`SimConfig::reconvergence_ns`] for routes to recover —
    /// there is no manual reroute call (reroutes are control events on
    /// the coordinator's timeline).
    ///
    /// # Panics
    /// Panics if the plan names an unknown link or a non-switch node.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        for ev in plan.events() {
            match ev.kind {
                FaultKind::LinkDown(l) | FaultKind::LinkUp(l) => {
                    assert!((l.0 as usize) < self.net.link_count(), "unknown link");
                }
                FaultKind::SwitchDown(n) | FaultKind::SwitchUp(n) => {
                    assert!(
                        self.net.node(n).kind.is_switch(),
                        "only switches fail; {n:?} is a host"
                    );
                }
            }
            self.ctl.insert(ev.at, CtlKind::Fault(ev.kind));
        }
    }

    /// Attaches an event recorder. The merged stream is identical at
    /// any domain count (the determinism contract).
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.sinks.recorder = Some(recorder);
        for d in &mut self.domains {
            d.trace_on = true;
            d.obs = true;
        }
    }

    /// Detaches the recorder; drain or flush it via `Recorder::finish`.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        for d in &mut self.domains {
            d.trace_on = false;
            d.obs = d.metrics.is_some();
        }
        self.sinks.recorder.take()
    }

    /// Enables metric collection in every domain plus the control
    /// plane; [`ShardedSim::take_metrics`] merges them.
    pub fn enable_metrics(&mut self) {
        if self.ctl.metrics.is_none() {
            self.ctl.metrics = Some(MetricsRegistry::new());
        }
        for d in &mut self.domains {
            if d.metrics.is_none() {
                d.metrics = Some(MetricsRegistry::new());
            }
            d.obs = true;
        }
    }

    /// Detaches and merges every registry (control plane first, then
    /// domains in index order). Counter and histogram merges are
    /// commutative, so the result is domain-count-independent.
    pub fn take_metrics(&mut self) -> Option<MetricsRegistry> {
        let mut out = self.ctl.metrics.take();
        for d in &mut self.domains {
            if let Some(m) = d.metrics.take() {
                match &mut out {
                    Some(o) => o.merge(&m),
                    None => out = Some(m),
                }
            }
            d.obs = d.trace_on;
        }
        out
    }

    /// Injects a monotonic-clock source (nanoseconds) for per-domain
    /// busy-time profiling. The default clock is frozen at zero, which
    /// keeps the engine free of wall-clock reads; benches install
    /// `quartz_bench::timing::monotonic_ns`.
    pub fn set_clock(&mut self, clock: fn() -> u64) {
        self.clock = clock;
        for d in &mut self.domains {
            d.clock = clock;
        }
    }

    /// Runs the simulation until `until` (events after it stay queued)
    /// on `pool`'s workers. Returns the merged statistics. Output is
    /// bit-identical for every `(domains, threads)` combination.
    pub fn run(&mut self, until: SimTime, pool: &ThreadPool) -> &Stats {
        let clock = self.clock;
        let lookahead = self.lookahead;
        let ctl = &mut self.ctl;
        let sinks = &mut self.sinks;
        let coord_ns = &mut self.coord_ns;
        let mut first = true;
        let doms = std::mem::take(&mut self.domains);
        let doms = pool.step_domains(
            doms,
            |d, b| d.step_to(SimTime::from_ns(b)),
            |cells| {
                let t_in = clock();
                let r = Self::coordinate(ctl, sinks, cells, until, lookahead, &mut first);
                *coord_ns = coord_ns.saturating_add(clock().saturating_sub(t_in));
                r
            },
        );
        self.domains = doms;
        #[cfg(debug_assertions)]
        {
            let quiescent = self
                .domains
                .iter_mut()
                .all(|d| d.wheel.next_time().is_none())
                && self
                    .domains
                    .iter()
                    .all(|d| d.outbox.iter().all(Vec::is_empty));
            if quiescent {
                for d in &self.domains {
                    debug_assert_eq!(
                        d.arena.live(),
                        0,
                        "packet arena leak in domain {} at quiescence",
                        d.id
                    );
                }
            }
        }
        self.merged = Stats::default();
        for d in &self.domains {
            self.merged.merge(&d.stats);
        }
        &self.merged
    }

    /// One coordinator round: merge the finished window's outputs, then
    /// apply every control event due before the next packet event, then
    /// pick the next window bound (or end the run).
    fn coordinate(
        ctl: &mut CtlPlane,
        sinks: &mut Sinks,
        cells: &DomainCells<'_, DomainSim>,
        until: SimTime,
        lookahead: u64,
        first: &mut bool,
    ) -> Option<u64> {
        if *first {
            *first = false;
        } else {
            sinks.merge_window(cells);
        }
        loop {
            let mut next_ev: Option<u64> = None;
            for d in 0..cells.len() {
                if let Some(t) = cells.lock(d).next_event_time() {
                    let t = t.ns();
                    if next_ev.is_none_or(|b| t < b) {
                        next_ev = Some(t);
                    }
                }
            }
            let tc = ctl.next_time();
            if let Some(tc) = tc {
                // A control event due at or before the earliest packet
                // event applies now (fault-before-packet at equal
                // times — the engine's one documented deviation).
                if tc <= until && next_ev.is_none_or(|w| tc.ns() <= w) {
                    ctl.apply_next(sinks, cells);
                    continue;
                }
            }
            let w0 = next_ev?;
            if w0 > until.ns() {
                return None;
            }
            let mut bound = w0.saturating_add(lookahead - 1).min(until.ns());
            if let Some(tc) = tc {
                if tc <= until {
                    // Reachable only with tc > w0 (else the apply branch
                    // took it), so tc - 1 >= w0 and cannot underflow.
                    bound = bound.min(tc.ns() - 1);
                }
            }
            return Some(bound);
        }
    }

    /// Merged statistics from the last [`ShardedSim::run`].
    pub fn stats(&self) -> &Stats {
        &self.merged
    }

    /// Completion log for managed flows, in global `(time, key)` order
    /// (identical at any domain count).
    pub fn flow_completions(&self) -> &[FlowCompletion] {
        &self.sinks.completions
    }

    /// Every fault event that has fired, with reconvergence outcomes.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.ctl.fault_log
    }

    /// Total events processed across all domains.
    pub fn events_processed(&self) -> u64 {
        self.domains.iter().map(|d| d.events_processed).sum()
    }

    /// Events processed per domain (the load-balance profile).
    pub fn per_domain_events(&self) -> Vec<u64> {
        self.domains.iter().map(|d| d.events_processed).collect()
    }

    /// Wall time each domain spent stepping, by the injected clock
    /// (all zeros under the default frozen clock).
    pub fn domain_busy_ns(&self) -> Vec<u64> {
        self.domains.iter().map(|d| d.busy_ns).collect()
    }

    /// Wall time the coordinator spent merging windows and picking
    /// bounds, by the injected clock.
    pub fn coordinator_ns(&self) -> u64 {
        self.coord_ns
    }

    /// The conservative lookahead bound `L`, ns (`u64::MAX` when no
    /// link crosses a domain boundary).
    pub fn lookahead_ns(&self) -> u64 {
        self.lookahead
    }

    /// Number of spatial domains actually in use.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Number of flows registered so far.
    pub fn flow_count(&self) -> usize {
        self.flow_count
    }

    /// The time of the most recently processed event in any domain.
    pub fn now(&self) -> SimTime {
        self.domains
            .iter()
            .map(|d| d.now)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Whether any events remain queued in any domain.
    pub fn has_pending_events(&mut self) -> bool {
        self.domains
            .iter_mut()
            .any(|d| d.next_event_time().is_some())
    }

    /// Transmission statistics per link, summed across domains (each
    /// directed slot is only ever driven by its owning domain).
    pub fn link_loads(&self) -> Vec<LinkLoad> {
        (0..self.net.link_count())
            .map(|i| {
                let mut ll = LinkLoad::default();
                for d in &self.domains {
                    ll.ab_busy_ns += d.links[2 * i].busy_ns;
                    ll.ab_bytes += d.links[2 * i].bytes;
                    ll.ba_busy_ns += d.links[2 * i + 1].busy_ns;
                    ll.ba_bytes += d.links[2 * i + 1].bytes;
                }
                ll
            })
            .collect()
    }
}

/// Compile-time check: domains must be `Send` to cross worker threads.
#[doc(hidden)]
pub fn _assert_send() {
    fn is_send<T: Send>() {}
    is_send::<DomainSim>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use quartz_obs::MemoryRecorder;
    use quartz_topology::builders::{quartz_in_core, quartz_mesh};

    fn mesh_flows(sim_add: &mut dyn FnMut(NodeId, NodeId, u32, FlowKind, u32, SimTime)) {
        let m = quartz_mesh(4, 3, 10.0, 10.0);
        let h = &m.hosts;
        sim_add(
            h[0],
            h[7],
            400,
            FlowKind::Rpc { count: 40 },
            0,
            SimTime::ZERO,
        );
        sim_add(
            h[1],
            h[10],
            400,
            FlowKind::Burst {
                burst_pkts: 6,
                period_ns: 20_000,
                stop: SimTime::from_us(400),
            },
            1,
            SimTime::from_ns(500),
        );
        sim_add(
            h[4],
            h[11],
            1_000,
            FlowKind::FileTransfer {
                total_bytes: 40_000,
            },
            2,
            SimTime::from_us(1),
        );
        sim_add(
            h[5],
            h[2],
            1_000,
            FlowKind::Transport {
                total_bytes: 60_000,
                variant: crate::transport::TcpVariant::Dctcp,
            },
            3,
            SimTime::from_us(2),
        );
    }

    /// Per-tag stat rows: `(tag, count, mean bits, p99)`.
    type TagRows = Vec<(u32, usize, u64, u64)>;

    /// Digest of everything a run produces: stats bits, completions,
    /// and the recorded event stream.
    fn run_digest(k: usize, threads: usize) -> (TagRows, u64, Vec<(u32, u64)>, Vec<Event>) {
        let m = quartz_mesh(4, 3, 10.0, 10.0);
        let cfg = SimConfig {
            ecn_threshold_bytes: Some(30_000),
            ..SimConfig::default()
        };
        let mut sim = ShardedSim::new(m.net.clone(), cfg, k);
        sim.set_recorder(Box::new(MemoryRecorder::new()));
        let mut add = |src, dst, size, kind, tag, start| {
            sim.add_flow(src, dst, size, kind, tag, start);
        };
        mesh_flows(&mut add);
        let pool = ThreadPool::new(threads);
        sim.run(SimTime::from_ms(5), &pool);
        let stats = sim.stats();
        let rows: Vec<(u32, usize, u64, u64)> = stats
            .tags()
            .into_iter()
            .map(|t| {
                let s = stats.summary(t);
                (t, s.count, s.mean_ns.to_bits(), s.p99_ns)
            })
            .collect();
        let lifecycle = stats.generated ^ (stats.delivered << 20) ^ (stats.dropped << 40);
        let comps: Vec<(u32, u64)> = sim
            .flow_completions()
            .iter()
            .map(|c| (c.flow, c.fct_ns))
            .collect();
        let rec = sim.take_recorder().expect("recorder attached");
        let events = rec.finish();
        (rows, lifecycle, comps, events)
    }

    #[test]
    fn domain_count_does_not_change_output() {
        let base = run_digest(1, 1);
        for (k, threads) in [(2, 1), (2, 2), (4, 2), (4, 4)] {
            let other = run_digest(k, threads);
            assert_eq!(base.0, other.0, "stats diverge at k={k}");
            assert_eq!(base.1, other.1, "lifecycle counters diverge at k={k}");
            assert_eq!(base.2, other.2, "completions diverge at k={k}");
            assert_eq!(base.3, other.3, "event stream diverges at k={k}");
        }
    }

    #[test]
    fn single_domain_matches_legacy_on_rng_free_workloads() {
        // RPC + FileTransfer + Transport draw no mid-run randomness, and
        // flow hashes come from the same construction-order RNG, so the
        // sharded engine at k = 1 must agree with the legacy engine
        // sample for sample.
        let m = quartz_mesh(4, 2, 10.0, 10.0);
        let mut legacy = Simulator::new(m.net.clone(), SimConfig::default());
        let mut sharded = ShardedSim::new(m.net.clone(), SimConfig::default(), 1);
        for (src, dst, size, kind, tag) in [
            (
                m.hosts[0],
                m.hosts[5],
                400,
                FlowKind::Rpc { count: 30 },
                0u32,
            ),
            (
                m.hosts[1],
                m.hosts[6],
                1_000,
                FlowKind::FileTransfer {
                    total_bytes: 25_000,
                },
                1,
            ),
            (
                m.hosts[2],
                m.hosts[7],
                1_000,
                FlowKind::Transport {
                    total_bytes: 50_000,
                    variant: crate::transport::TcpVariant::Reno,
                },
                2,
            ),
        ] {
            legacy.add_flow(src, dst, size, kind, tag, SimTime::ZERO);
            sharded.add_flow(src, dst, size, kind, tag, SimTime::ZERO);
        }
        legacy.run(SimTime::from_ms(5));
        sharded.run(SimTime::from_ms(5), &ThreadPool::sequential());
        for tag in [0u32, 1, 2] {
            let a = legacy.stats().summary(tag);
            let b = sharded.stats().summary(tag);
            assert_eq!(a.count, b.count, "tag {tag} count");
            assert_eq!(a.mean_ns.to_bits(), b.mean_ns.to_bits(), "tag {tag} mean");
        }
        assert_eq!(legacy.stats().generated, sharded.stats().generated);
        assert_eq!(legacy.stats().delivered, sharded.stats().delivered);
        assert_eq!(
            legacy.flow_completions().len(),
            sharded.flow_completions().len()
        );
        for (a, b) in legacy
            .flow_completions()
            .iter()
            .zip(sharded.flow_completions())
        {
            assert_eq!(a, b, "completion logs diverge");
        }
    }

    #[test]
    fn faults_and_reconvergence_are_domain_count_invariant() {
        let digest = |k: usize| {
            let m = quartz_mesh(6, 2, 10.0, 10.0);
            let cfg = SimConfig {
                reconvergence_ns: Some(50_000),
                ..SimConfig::default()
            };
            let mut sim = ShardedSim::new(m.net.clone(), cfg, k);
            for i in 0..6 {
                sim.add_flow(
                    m.hosts[i],
                    m.hosts[(i + 5) % 12],
                    400,
                    FlowKind::Rpc { count: 60 },
                    i as u32,
                    SimTime::ZERO,
                );
            }
            // Cut a ring channel mid-run.
            let l = m
                .net
                .link_between(m.switches[0], m.switches[3])
                .expect("mesh channel exists");
            sim.fail_link_at(l, SimTime::from_us(30));
            sim.run(SimTime::from_ms(4), &ThreadPool::sequential());
            let log: Vec<(u64, Option<u64>, u64)> = sim
                .fault_log()
                .iter()
                .map(|r| {
                    (
                        r.at.ns(),
                        r.reconverged_at.map(|t| t.ns()),
                        r.drops_during_outage,
                    )
                })
                .collect();
            let s = sim.stats();
            (log, s.generated, s.delivered, s.dropped)
        };
        let base = digest(1);
        assert_eq!(base, digest(2));
        assert_eq!(base, digest(4));
        assert_eq!(base, digest(6));
    }

    #[test]
    fn vlb_detours_are_domain_count_invariant() {
        let digest = |k: usize| {
            let m = quartz_mesh(6, 2, 10.0, 10.0);
            let cfg = SimConfig {
                vlb: Some(crate::sim::VlbConfig {
                    fraction: 0.5,
                    domains: vec![m.switches.clone()],
                }),
                ..SimConfig::default()
            };
            let mut sim = ShardedSim::new(m.net.clone(), cfg, k);
            for i in 0..4 {
                sim.add_flow(
                    m.hosts[i],
                    m.hosts[11 - i],
                    400,
                    FlowKind::Burst {
                        burst_pkts: 4,
                        period_ns: 10_000,
                        stop: SimTime::from_us(300),
                    },
                    i as u32,
                    SimTime::ZERO,
                );
            }
            sim.run(SimTime::from_ms(2), &ThreadPool::sequential());
            let s = sim.stats();
            (
                s.generated,
                s.delivered,
                s.tags()
                    .into_iter()
                    .map(|t| s.summary(t).mean_ns.to_bits())
                    .collect::<Vec<_>>(),
            )
        };
        let base = digest(1);
        assert_eq!(base, digest(2));
        assert_eq!(base, digest(6));
    }

    #[test]
    fn composite_partitions_and_runs_sharded() {
        let c = quartz_in_core(3, 4, 2, 4);
        let mut sim = ShardedSim::new(c.net.clone(), SimConfig::default(), 4);
        assert!(sim.domain_count() >= 2, "composite splits into domains");
        assert!(sim.lookahead_ns() >= 1);
        let n = c.hosts.len();
        for i in 0..8 {
            sim.add_flow(
                c.hosts[i],
                c.hosts[(i + n / 2) % n],
                400,
                FlowKind::Rpc { count: 25 },
                0,
                SimTime::ZERO,
            );
        }
        sim.run(SimTime::from_ms(10), &ThreadPool::new(2));
        assert_eq!(sim.stats().summary(0).count, 8 * 25);
        assert!(sim.events_processed() > 0);
        let per = sim.per_domain_events();
        assert_eq!(per.len(), sim.domain_count());
        assert!(per.iter().copied().sum::<u64>() >= sim.stats().generated);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn zero_lookahead_is_rejected() {
        let m = quartz_mesh(4, 2, 10.0, 10.0);
        let cfg = SimConfig {
            prop_delay_ns: 0,
            latency: crate::switch::LatencyModel::ideal(),
            ..SimConfig::default()
        };
        let _ = ShardedSim::new(m.net.clone(), cfg, 2);
    }
}
