//! Struct-of-arrays packet arena: the simulator's in-flight packet store.
//!
//! Before this module, every [`crate::sim`] `Head` event carried a full
//! ~80-byte `Packet` by value through the timing wheel — cloned on VLB
//! detour re-enqueues, moved on every bucket migration. The arena
//! inverts the layout: packets live in **slots** identified by a `u32`
//! [`PacketId`], events carry only the id, and the per-hop hot loop
//! touches a handful of contiguous parallel `Vec`s:
//!
//! ```text
//!             id ──────────────┐
//!   hot (read every hop)       ▼
//!   created:  [SimTime SimTime SimTime …]   latency base
//!   dst:      [NodeId  NodeId  NodeId  …]   delivery test
//!   flow:     [u32     u32     u32     …]   stats / transport lookup
//!   size:     [u32     u32     u32     …]   serialization time
//!   hash:     [u64     u64     u64     …]   ECMP pick
//!   arr_head/arr_tail/arr_seq  …            pending batched arrival
//!   cold (read at delivery / detour only)
//!   cold:     [PacketCold …]               transport, intermediate,
//!                                          flags, hops
//! ```
//!
//! Freed slots recycle through a LIFO free list, so the steady-state
//! hot path allocates nothing and the most recently freed slot — whose
//! row is still cache-warm — is handed out next. The free list is a
//! plain `Vec`, so recycling order is deterministic: identical
//! alloc/free sequences produce identical id sequences, which the
//! property tests in `tests/arena_prop.rs` pin.
//!
//! Debug builds additionally track per-slot liveness so a recycled slot
//! can never alias a live packet (double-free and double-alloc both
//! panic), and [`crate::sim::Simulator::run`] asserts at quiescence that
//! the live count matches the in-flight count — a leak check.

// lint:panic-free — the arena sits under every packet event; slot
// indexing is covered by the debug-build liveness asserts.

use crate::time::SimTime;
use crate::transport::TransportInfo;
use quartz_topology::graph::NodeId;

/// Index of a live arena slot; the payload of a `Head` event.
pub type PacketId = u32;

/// Flag bit: the packet travels dst→src of its flow (an RPC response or
/// Poisson echo); its delivery records a round trip.
pub const FLAG_RESPONSE: u8 = 1 << 0;
/// Flag bit: final packet of a file transfer; its delivery is the flow
/// completion.
pub const FLAG_LAST: u8 = 1 << 1;
/// Flag bit: ECN congestion-experienced mark, set at overloaded queues.
pub const FLAG_ECN: u8 = 1 << 2;
/// Flag bit: the VLB ingress decision (detour or not) has been made.
pub const FLAG_VLB_DECIDED: u8 = 1 << 3;

/// Cold per-packet fields, read only at delivery, drop, or a VLB
/// detour decision — one row per slot, separate from the hot columns.
#[derive(Clone, Copy, Debug)]
pub struct PacketCold {
    /// Transport-layer payload (data segment or cumulative ACK).
    pub transport: TransportInfo,
    /// VLB detour waypoint still to be visited, if any.
    pub intermediate: Option<NodeId>,
    /// `FLAG_*` bits.
    pub flags: u8,
    /// Links traversed so far (recorded at delivery: detours after a
    /// fiber cut show up as hop-count stretch).
    pub hops: u32,
}

/// The slot arena. Columns are parallel: index all of them by the same
/// [`PacketId`]. Crate-internal code reads the columns directly; the
/// public surface (alloc/free/live/capacity) is what external tests
/// exercise.
#[derive(Debug, Default)]
pub struct PacketArena {
    /// Creation time (or the original request time, for responses).
    pub(crate) created: Vec<SimTime>,
    /// Final destination host.
    pub(crate) dst: Vec<NodeId>,
    /// Owning flow index.
    pub(crate) flow: Vec<u32>,
    /// Frame size, bytes.
    pub(crate) size: Vec<u32>,
    /// ECMP flow hash (resprayed on VLB detours).
    pub(crate) hash: Vec<u64>,
    /// Pending batched arrival: head time at the next node. Valid only
    /// while the packet sits in a link batch queue.
    pub(crate) arr_head: Vec<SimTime>,
    /// Pending batched arrival: tail time at the next node.
    pub(crate) arr_tail: Vec<SimTime>,
    /// Pending batched arrival: the reserved scheduler sequence number
    /// (the tie-break half of the event key).
    pub(crate) arr_seq: Vec<u64>,
    /// Cold row per slot.
    pub(crate) cold: Vec<PacketCold>,
    /// Freed slot ids, reused LIFO.
    free: Vec<PacketId>,
    /// Currently allocated slots.
    live: usize,
    /// Debug-only per-slot liveness, for alias detection.
    #[cfg(debug_assertions)]
    live_bits: Vec<bool>,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a slot (recycling the most recently freed one first)
    /// and writes every column. Returns the slot's id.
    ///
    /// The recycle branch is the steady-state hot path: pure column
    /// stores into a cache-warm row, no allocator. [`Self::grow`] runs
    /// only while the in-flight high-water mark is still rising.
    // lint:hot
    pub fn alloc(
        &mut self,
        created: SimTime,
        dst: NodeId,
        flow: u32,
        size: u32,
        hash: u64,
        cold: PacketCold,
    ) -> PacketId {
        self.live += 1;
        if let Some(id) = self.free.pop() {
            let i = id as usize;
            debug_assert!(i < self.created.len(), "recycled id is in bounds");
            self.created[i] = created;
            self.dst[i] = dst;
            self.flow[i] = flow;
            self.size[i] = size;
            self.hash[i] = hash;
            self.cold[i] = cold;
            #[cfg(debug_assertions)]
            {
                assert!(!self.live_bits[i], "arena slot {id} handed out twice");
                self.live_bits[i] = true;
            }
            id
        } else {
            self.grow(created, dst, flow, size, hash, cold)
        }
    }

    /// Appends a brand-new slot to every column.
    fn grow(
        &mut self,
        created: SimTime,
        dst: NodeId,
        flow: u32,
        size: u32,
        hash: u64,
        cold: PacketCold,
    ) -> PacketId {
        debug_assert!(self.created.len() <= u32::MAX as usize, "slot ids fit u32");
        let id = self.created.len() as PacketId;
        self.created.push(created);
        self.dst.push(dst);
        self.flow.push(flow);
        self.size.push(size);
        self.hash.push(hash);
        self.arr_head.push(SimTime::ZERO);
        self.arr_tail.push(SimTime::ZERO);
        self.arr_seq.push(0);
        self.cold.push(cold);
        #[cfg(debug_assertions)]
        self.live_bits.push(true);
        id
    }

    /// Returns slot `id` to the free list.
    ///
    /// # Panics
    /// Debug builds panic on a double free.
    pub fn free(&mut self, id: PacketId) {
        #[cfg(debug_assertions)]
        {
            assert!(self.live_bits[id as usize], "double free of slot {id}");
            self.live_bits[id as usize] = false;
        }
        self.live -= 1;
        self.free.push(id);
    }

    /// Currently allocated slot count (the in-flight packet count).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever created (live + free).
    pub fn capacity(&self) -> usize {
        self.created.len()
    }
}
