//! Simulation clock: integer nanoseconds.
//!
//! A `u64` of nanoseconds covers ~584 years of simulated time — plenty —
//! while keeping event ordering exact (no floating-point time drift).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since start.
    #[inline]
    pub const fn ns(self) -> u64 {
        self.0
    }

    /// The timing-wheel slot this time falls in: nanoseconds shifted
    /// down by the wheel's bucket granularity (see [`crate::sched`]).
    /// Every time inside one slot shares one near-wheel bucket.
    #[inline]
    pub const fn wheel_slot(self, granularity_log2: u32) -> u64 {
        self.0 >> granularity_log2
    }

    /// Microseconds since start, as a float (for reporting).
    pub fn us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction: `self − other`, or zero.
    pub fn saturating_sub(self, other: SimTime) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, ns: u64) {
        self.0 += ns;
    }
}

impl Sub for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0.checked_sub(rhs.0).expect("negative time difference")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{} ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2} µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.3} ms", self.0 as f64 / 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(SimTime::from_us(3).ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).ns(), 2_000_000);
        assert_eq!(SimTime::from_ns(500).us(), 0.5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(100) + 50;
        assert_eq!(t.ns(), 150);
        assert_eq!(t - SimTime::from_ns(100), 50);
        assert_eq!(SimTime::from_ns(10).saturating_sub(SimTime::from_ns(30)), 0);
    }

    #[test]
    #[should_panic(expected = "negative time difference")]
    fn backwards_subtraction_panics() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn ordering_for_event_queue() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert_eq!(SimTime::ZERO, SimTime::from_ns(0));
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_ns(380).to_string(), "380 ns");
        assert_eq!(SimTime::from_us(6).to_string(), "6.00 µs");
        assert_eq!(SimTime::from_ms(1).to_string(), "1.000 ms");
    }
}
