//! Reusable workload drivers: the §7 traffic patterns as a library.
//!
//! "We evaluate the performance of the different topologies using three
//! common traffic patterns: Scatter … Gather … Scatter/Gather. These
//! traffic patterns are representative of latency sensitive traffic found
//! in social networks and web search, and are also common in
//! high-performance computing applications, with MPI providing both
//! scatter and gather functions as part of its API."
//!
//! A [`Task`] is one root host exchanging Poisson packet streams with a
//! set of partners; [`TaskSet`] places whole collections of tasks
//! (globally random or locality-constrained, with distinct roots) the way
//! Figures 17 and 18 do.

use crate::sim::{FlowKind, Simulator};
use crate::time::SimTime;
use quartz_core::rng::{SliceRandom, StdRng};
use quartz_topology::graph::NodeId;

/// The three §7 communication shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// "One host is the sender and the others are receivers."
    Scatter,
    /// "One host is the receiver and the others are senders."
    Gather,
    /// "One host sends packets to all the other hosts, then all the
    /// receivers send back reply packets" (round trips measured).
    ScatterGather,
}

/// One communication task.
#[derive(Clone, Debug)]
pub struct Task {
    /// The root host (sender for scatter, receiver for gather).
    pub root: NodeId,
    /// The partner hosts.
    pub partners: Vec<NodeId>,
    /// Traffic shape.
    pub shape: Shape,
    /// Packet payload bytes (the paper simulates 400).
    pub packet_bytes: u32,
    /// Mean per-flow inter-packet gap, ns.
    pub mean_gap_ns: f64,
    /// Statistics tag for the task's packets.
    pub tag: u32,
}

impl Task {
    /// Registers the task's flows on `sim`, emitting until `stop`.
    pub fn install(&self, sim: &mut Simulator, stop: SimTime) {
        for &p in &self.partners {
            let (src, dst, respond) = match self.shape {
                Shape::Scatter => (self.root, p, false),
                Shape::Gather => (p, self.root, false),
                Shape::ScatterGather => (self.root, p, true),
            };
            sim.add_flow(
                src,
                dst,
                self.packet_bytes,
                FlowKind::Poisson {
                    mean_gap_ns: self.mean_gap_ns,
                    stop,
                    respond,
                },
                self.tag,
                SimTime::ZERO,
            );
        }
    }
}

/// Builder for collections of tasks with the paper's placement rules.
#[derive(Clone, Debug)]
pub struct TaskSet {
    hosts: Vec<NodeId>,
    rng: StdRng,
    packet_bytes: u32,
    mean_gap_ns: f64,
}

impl TaskSet {
    /// A task-set builder over `hosts`, with the §7 defaults (400-byte
    /// packets) and the given per-flow rate.
    pub fn new(hosts: Vec<NodeId>, mean_gap_ns: f64, seed: u64) -> Self {
        assert!(hosts.len() >= 2, "need at least two hosts");
        TaskSet {
            hosts,
            rng: StdRng::seed_from_u64(seed),
            packet_bytes: 400,
            mean_gap_ns,
        }
    }

    /// Overrides the packet size.
    pub fn with_packet_bytes(mut self, bytes: u32) -> Self {
        self.packet_bytes = bytes;
        self
    }

    /// Builds `count` tasks with globally random placement and distinct
    /// roots ("the senders and receivers are randomly distributed across
    /// servers in the network"), `partners` partners each, tagged `tag`.
    pub fn global(&mut self, count: usize, partners: usize, shape: Shape, tag: u32) -> Vec<Task> {
        assert!(
            count <= self.hosts.len() / 2,
            "too many tasks for {} hosts",
            self.hosts.len()
        );
        assert!(partners < self.hosts.len());
        let mut roots = self.hosts.clone();
        roots.shuffle(&mut self.rng);
        roots.truncate(count);
        roots
            .into_iter()
            .map(|root| {
                let mut pool: Vec<NodeId> =
                    self.hosts.iter().copied().filter(|&h| h != root).collect();
                pool.shuffle(&mut self.rng);
                pool.truncate(partners);
                Task {
                    root,
                    partners: pool,
                    shape,
                    packet_bytes: self.packet_bytes,
                    mean_gap_ns: self.mean_gap_ns,
                    tag,
                }
            })
            .collect()
    }

    /// Builds one locality-constrained task whose root and partners all
    /// come from `local_pool` ("a task that only performs scatter,
    /// gather, or scatter/gather operations between servers in nearby
    /// racks", §7.1).
    pub fn local(
        &mut self,
        local_pool: &[NodeId],
        partners: usize,
        shape: Shape,
        tag: u32,
    ) -> Task {
        assert!(
            partners < local_pool.len(),
            "local pool of {} cannot supply {partners} partners",
            local_pool.len()
        );
        let mut pool = local_pool.to_vec();
        pool.shuffle(&mut self.rng);
        let root = pool[0];
        Task {
            root,
            partners: pool[1..=partners].to_vec(),
            shape,
            packet_bytes: self.packet_bytes,
            mean_gap_ns: self.mean_gap_ns,
            tag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimConfig;
    use quartz_topology::builders::quartz_mesh;

    #[test]
    fn global_tasks_have_distinct_roots_and_no_self_flows() {
        let q = quartz_mesh(4, 8, 10.0, 10.0);
        let mut ts = TaskSet::new(q.hosts.clone(), 8_000.0, 1);
        let tasks = ts.global(8, 10, Shape::Scatter, 0);
        let mut roots: Vec<_> = tasks.iter().map(|t| t.root).collect();
        roots.sort();
        roots.dedup();
        assert_eq!(roots.len(), 8, "roots must be distinct");
        for t in &tasks {
            assert_eq!(t.partners.len(), 10);
            assert!(!t.partners.contains(&t.root));
        }
    }

    #[test]
    fn local_task_stays_in_its_pool() {
        let q = quartz_mesh(4, 4, 10.0, 10.0);
        let pool = &q.hosts[0..8]; // first two racks
        let mut ts = TaskSet::new(q.hosts.clone(), 8_000.0, 2);
        let t = ts.local(pool, 5, Shape::Gather, 3);
        assert!(pool.contains(&t.root));
        for p in &t.partners {
            assert!(pool.contains(p));
        }
    }

    #[test]
    fn installed_tasks_generate_traffic() {
        let q = quartz_mesh(4, 4, 10.0, 10.0);
        let mut sim = Simulator::new(q.net.clone(), SimConfig::default());
        let mut ts = TaskSet::new(q.hosts.clone(), 8_000.0, 3);
        let stop = SimTime::from_ms(1);
        for task in ts.global(2, 6, Shape::ScatterGather, 7) {
            task.install(&mut sim, stop);
        }
        sim.run(SimTime::from_ms(3));
        let s = sim.stats().summary(7);
        assert!(s.count > 100, "round trips recorded: {}", s.count);
        assert_eq!(
            sim.stats().generated,
            sim.stats().delivered + sim.stats().dropped
        );
    }

    #[test]
    fn gather_reverses_direction() {
        let q = quartz_mesh(3, 2, 10.0, 10.0);
        let mut ts = TaskSet::new(q.hosts.clone(), 50_000.0, 4);
        let task = ts.local(&q.hosts.clone(), 3, Shape::Gather, 1);
        let mut sim = Simulator::new(q.net.clone(), SimConfig::default());
        task.install(&mut sim, SimTime::from_ms(1));
        sim.run(SimTime::from_ms(2));
        // All deliveries land at the root: bytes recorded under the tag
        // equal delivered packet count × size.
        let st = sim.stats();
        assert_eq!(
            st.delivered_bytes(1),
            st.delivered * 400,
            "all traffic belongs to the gather task"
        );
    }

    #[test]
    #[should_panic(expected = "too many tasks")]
    fn too_many_tasks_rejected() {
        let q = quartz_mesh(2, 2, 10.0, 10.0);
        let mut ts = TaskSet::new(q.hosts.clone(), 8_000.0, 5);
        let _ = ts.global(3, 1, Shape::Scatter, 0);
    }
}
