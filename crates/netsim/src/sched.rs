//! Event schedulers: the timing-wheel engine and its reference heap.
//!
//! The discrete-event loop in [`crate::sim`] is bounded by how fast it
//! can push and pop timestamped events. A `BinaryHeap` gives `O(log n)`
//! per operation and — worse for a packet simulator — every sift moves
//! the full event payload several times. This module replaces it with a
//! calendar-queue-style **timing wheel** ([`TimingWheel`]):
//!
//! * a **near wheel** of `NUM_BUCKETS` buckets, each covering
//!   `GRANULARITY` ns of simulated time, holding every event within the
//!   sliding horizon `[cursor, cursor + NUM_BUCKETS × GRANULARITY)`;
//! * an **overflow heap** for far-future events (retransmission timers,
//!   scheduled faults), migrated into the wheel as the cursor slides
//!   over their slot;
//! * near buckets store `(time, seq, item)` **inline**, so bucket
//!   maintenance moves contiguous tuples instead of chasing slot ids —
//!   cheap now that [`crate::sim`] events carry a 4-byte packet id
//!   rather than a by-value packet. Only overflow-heap payloads live in
//!   a recycled side arena (the heap orders by key and must not move
//!   `T` through sifts);
//! * a **sorted cursor bucket**: when the cursor lands on a non-empty
//!   bucket its entries are sorted descending by `(time, seq)` once,
//!   after which every pop and peek is O(1) off the tail. Buckets
//!   routinely hold several events (40 % load ⇒ ~2–3 per 64 ns bucket,
//!   Poisson bursts far more), so the per-pop min-scan this replaces
//!   was quadratic exactly when the simulator was busiest. Pushes into
//!   future buckets stay O(1) appends; only the uncommon push landing
//!   on (or before) the cursor bucket pays an ordered insert.
//!
//! ## Ordering contract
//!
//! Both schedulers implement [`Scheduler`] and drain events in exactly
//! `(time, seq)` order, where `seq` is a monotone sequence number
//! assigned at push. This is the tie-break rule the simulator's
//! determinism contract (DESIGN.md §6) is built on: two schedulers fed
//! the same pushes pop the same events in the same order, bit for bit.
//! [`BinaryHeapScheduler`] is kept as the executable reference for
//! differential tests (`tests/scheduler_differential.rs`); the wheel
//! achieves the same order because
//!
//! * every bucket within the horizon maps to exactly one absolute slot,
//!   so the first non-empty bucket at the cursor holds the globally
//!   earliest events, and
//! * the pop scans that bucket for the `(time, seq)` minimum — exact
//!   even when a bucket mixes timestamps (events pushed for the past
//!   are clamped into the cursor bucket and still win the scan).
//!
//! Pushing an event earlier than the last popped time is allowed (it
//! pops next, same as the heap); pushing while mid-drain of the same
//! timestamp is the common case (a packet forwarded at `now`) and
//! ordered correctly by `seq`.

// lint:panic-free — the event engine runs inside every simulated
// nanosecond; a panic here tears down mid-run with arena slots live.
// Potential panic sites below either return Option or state their
// bound with a debug_assert.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Near-wheel bucket count (power of two; index masks instead of `%`).
pub const NUM_BUCKETS: usize = 512;
/// log2 of the nanoseconds each bucket spans.
pub const GRANULARITY_LOG2: u32 = 6;
/// Nanoseconds per bucket.
pub const GRANULARITY: u64 = 1 << GRANULARITY_LOG2;
const BUCKET_MASK: u64 = (NUM_BUCKETS as u64) - 1;

/// Which event engine a simulator runs on (see
/// [`crate::sim::SimConfig::scheduler`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The timing wheel ([`TimingWheel`]) — the default engine.
    #[default]
    TimingWheel,
    /// The reference binary heap ([`BinaryHeapScheduler`]), retained
    /// for differential testing and A/B benches.
    BinaryHeap,
}

/// A deterministic future-event set: timestamped items drain in
/// `(time, push order)` order.
///
/// The `seq` half of the ordering key is normally assigned implicitly
/// by [`Scheduler::push`], but the batched link drain
/// (DESIGN.md §10) needs to *decouple* sequence allocation from event
/// insertion: each packet appended to a link batch reserves a sequence
/// number (so tie-breaks match the unbatched schedule bit for bit), yet
/// only one sentinel event — carrying the *first* entry's key — sits in
/// the queue. [`Scheduler::reserve_seq`] and [`Scheduler::push_at_seq`]
/// expose that split; [`Scheduler::peek_key`] lets the drain loop ask
/// "is anything queued ahead of my next batch entry?" without popping.
pub trait Scheduler<T> {
    /// Queues `item` at `time`, assigning it the next sequence number.
    fn push(&mut self, time: SimTime, item: T) {
        let seq = self.reserve_seq();
        self.push_at_seq(time, seq, item);
    }
    /// Draws the next sequence number without queueing anything.
    fn reserve_seq(&mut self) -> u64;
    /// Queues `item` at `(time, seq)` where `seq` came from
    /// [`Scheduler::reserve_seq`]. Keys must be unique; reusing a
    /// reserved seq for a second queued event is a logic error.
    fn push_at_seq(&mut self, time: SimTime, seq: u64, item: T);
    /// Removes and returns the earliest `(time, seq)` event.
    fn pop(&mut self) -> Option<(SimTime, T)>;
    /// [`Scheduler::pop`], but only if the earliest event's time is
    /// `<= bound`; otherwise the queue is untouched.
    fn pop_before(&mut self, bound: SimTime) -> Option<(SimTime, T)>;
    /// The earliest queued `(time, seq)` key, if any. Takes `&mut self`
    /// because the wheel may advance its cursor (not observable).
    fn peek_key(&mut self) -> Option<(SimTime, u64)>;
    /// The earliest queued time, if any. Takes `&mut self` because the
    /// wheel may advance its cursor to find it (not observable).
    fn next_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(t, _)| t)
    }
    /// Queued event count.
    fn len(&self) -> usize;
    /// Whether nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The reference scheduler: a binary min-heap ordered by `(time, seq)`.
/// Exactly the engine the simulator used before the timing wheel; kept
/// as the executable specification of the ordering contract.
#[derive(Debug)]
pub struct BinaryHeapScheduler<T> {
    heap: BinaryHeap<Reverse<HeapEv<T>>>,
    seq: u64,
}

#[derive(Debug)]
struct HeapEv<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEv<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for HeapEv<T> {}
impl<T> PartialOrd for HeapEv<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEv<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<T> Default for BinaryHeapScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BinaryHeapScheduler<T> {
    /// An empty heap scheduler.
    pub fn new() -> Self {
        BinaryHeapScheduler {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> Scheduler<T> for BinaryHeapScheduler<T> {
    fn reserve_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn push_at_seq(&mut self, time: SimTime, seq: u64, item: T) {
        self.heap.push(Reverse(HeapEv { time, seq, item }));
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.item))
    }

    fn pop_before(&mut self, bound: SimTime) -> Option<(SimTime, T)> {
        if self.heap.peek().is_some_and(|Reverse(e)| e.time <= bound) {
            self.pop()
        } else {
            None
        }
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|Reverse(e)| (e.time, e.seq))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// The timing-wheel scheduler (see the module docs for geometry and the
/// ordering argument).
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// Near-wheel buckets of `(time, seq, item)` entries; bucket `i`
    /// holds exactly the events of absolute slot `s` with
    /// `s & BUCKET_MASK == i` for the unique `s` in
    /// `(cursor, cursor + NUM_BUCKETS)`. The cursor's own slot lives in
    /// `current`, so its bucket is empty outside [`TimingWheel::seek`].
    buckets: Vec<Vec<(SimTime, u64, T)>>,
    /// The cursor bucket's entries, sorted **descending** by
    /// `(time, seq)`: the global minimum is the last element (every
    /// other near entry sits in a strictly later slot, and far entries
    /// later still), so pop and peek are O(1) off the tail.
    current: Vec<(SimTime, u64, T)>,
    /// Events at `slot >= cursor + NUM_BUCKETS`, ordered by
    /// `(time, seq)` for exact migration; payloads sit in `far_slots`.
    far: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Payload arena for overflow-heap events; freed slots recycle
    /// through `far_free`.
    far_slots: Vec<Option<T>>,
    far_free: Vec<u32>,
    /// Absolute slot index (`time >> GRANULARITY_LOG2`) of the bucket
    /// the drain cursor is on. Only ever advances.
    cursor: u64,
    /// Events currently in the near wheel (`current` + `buckets`).
    near_len: usize,
    /// Total queued events (near + far).
    len: usize,
    seq: u64,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// An empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        TimingWheel {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            current: Vec::new(),
            far: BinaryHeap::new(),
            far_slots: Vec::new(),
            far_free: Vec::new(),
            cursor: 0,
            near_len: 0,
            len: 0,
            seq: 0,
        }
    }

    /// Pulls every far event whose slot has entered the horizon into
    /// the near wheel. Only called from [`TimingWheel::seek`] with
    /// `current` empty, so migrated entries (whose slots are all
    /// `>= cursor`) can file straight into their buckets; the seek loop
    /// loads the cursor's own bucket right after. (Slot math goes
    /// through [`SimTime::wheel_slot`], the single definition of the
    /// mapping.)
    fn migrate(&mut self) {
        let horizon = self.cursor + NUM_BUCKETS as u64;
        while let Some(&Reverse((t, seq, id))) = self.far.peek() {
            let slot = t.wheel_slot(GRANULARITY_LOG2);
            if slot >= horizon {
                break;
            }
            self.far.pop();
            let Some(item) = self.far_slots[id as usize].take() else {
                // Unreachable: far heap ids always point at live slots.
                debug_assert!(false, "far slot {id} is dead");
                continue;
            };
            self.far_free.push(id);
            debug_assert!(slot >= self.cursor);
            self.buckets[(slot & BUCKET_MASK) as usize].push((t, seq, item));
            self.near_len += 1;
        }
    }

    /// Makes `current` hold the earliest queued events: advances the
    /// cursor to the first non-empty bucket (jumping straight to the
    /// overflow heap's earliest slot when the near wheel is empty) and
    /// sorts that bucket descending, once. Returns `false` when nothing
    /// is queued.
    fn seek(&mut self) -> bool {
        if !self.current.is_empty() {
            return true;
        }
        if self.len == 0 {
            return false;
        }
        loop {
            if self.near_len == 0 {
                // Everything queued is in the overflow heap: jump the
                // cursor to its earliest slot and pull the horizon in.
                let Some(&Reverse((t, _, _))) = self.far.peek() else {
                    // Unreachable: len > 0 with an empty near wheel
                    // means the far heap is non-empty.
                    debug_assert!(false, "len {} with both wheels empty", self.len);
                    return false;
                };
                self.cursor = t.wheel_slot(GRANULARITY_LOG2);
            } else {
                self.cursor += 1;
            }
            self.migrate();
            let idx = (self.cursor & BUCKET_MASK) as usize;
            debug_assert!(idx < NUM_BUCKETS, "mask keeps bucket indices in range");
            if !self.buckets[idx].is_empty() {
                // Take the bucket wholesale (its allocation swaps with
                // `current`'s spent one) and order it for O(1) pops.
                std::mem::swap(&mut self.current, &mut self.buckets[idx]);
                self.current
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
                return true;
            }
        }
    }
}

impl<T> Scheduler<T> for TimingWheel<T> {
    fn reserve_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn push_at_seq(&mut self, time: SimTime, seq: u64, item: T) {
        let slot = time.wheel_slot(GRANULARITY_LOG2);
        if slot <= self.cursor {
            // Into (or before — allowed, rare) the cursor bucket:
            // ordered insert keeps `current` sorted descending.
            let key = (time, seq);
            let pos = self.current.partition_point(|e| (e.0, e.1) > key);
            self.current.insert(pos, (time, seq, item));
            self.near_len += 1;
        } else if slot < self.cursor + NUM_BUCKETS as u64 {
            self.buckets[(slot & BUCKET_MASK) as usize].push((time, seq, item));
            self.near_len += 1;
        } else {
            let id = if let Some(id) = self.far_free.pop() {
                self.far_slots[id as usize] = Some(item);
                id
            } else {
                debug_assert!(
                    self.far_slots.len() <= u32::MAX as usize,
                    "slot ids fit u32"
                );
                let id = self.far_slots.len() as u32;
                self.far_slots.push(Some(item));
                id
            };
            self.far.push(Reverse((time, seq, id)));
        }
        self.len += 1;
    }

    // lint:hot
    fn pop(&mut self) -> Option<(SimTime, T)> {
        if !self.seek() {
            return None;
        }
        // `seek() == true` guarantees `current` is non-empty.
        let (time, _, item) = self.current.pop()?;
        self.near_len -= 1;
        self.len -= 1;
        Some((time, item))
    }

    // lint:hot
    fn pop_before(&mut self, bound: SimTime) -> Option<(SimTime, T)> {
        if !self.seek() {
            return None;
        }
        if self.current.last()?.0 > bound {
            return None;
        }
        let (time, _, item) = self.current.pop()?;
        self.near_len -= 1;
        self.len -= 1;
        Some((time, item))
    }

    // lint:hot
    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if !self.seek() {
            return None;
        }
        let e = self.current.last()?;
        Some((e.0, e.1))
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_core::rng::StdRng;

    /// Drains both schedulers fed the same pushes and asserts identical
    /// pop streams. Interleaves pushes mid-drain the way the simulator
    /// does: some popped events re-push at `now + delta`.
    fn differential(seed: u64, initial: usize, respawn_num: u64, respawn_den: u64) {
        let mut wheel = TimingWheel::new();
        let mut heap = BinaryHeapScheduler::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pushes: Vec<(SimTime, u32)> = Vec::new();
        for i in 0..initial {
            // Mix near (same-bucket bursts), mid, and far-horizon times.
            let t = match rng.random_range(0..4) {
                0 => rng.random_range(0..64) as u64,
                1 => rng.random_range(0..10_000) as u64,
                2 => 5_000 + rng.random_range(0..8) as u64, // equal-time bursts
                _ => rng.random_range(0..5_000_000) as u64, // beyond horizon
            };
            pushes.push((SimTime::from_ns(t), i as u32));
        }
        for &(t, v) in &pushes {
            wheel.push(t, v);
            heap.push(t, v);
        }
        let mut next_tag = initial as u32;
        let mut popped = 0u64;
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(w, h, "divergence after {popped} pops (seed {seed})");
            let Some((t, _)) = w else {
                break;
            };
            popped += 1;
            // Deterministic respawn: mid-drain pushes, often landing in
            // the bucket being drained (delta 0) or exactly on another
            // queued timestamp.
            if popped % respawn_den < respawn_num && next_tag < initial as u32 + 400 {
                let delta = match rng.random_range(0..3) {
                    0 => 0,
                    1 => rng.random_range(0..100) as u64,
                    _ => 300_000 + rng.random_range(0..300_000) as u64,
                };
                wheel.push(t + delta, next_tag);
                heap.push(t + delta, next_tag);
                next_tag += 1;
            }
        }
        assert!(wheel.is_empty() && heap.is_empty());
    }

    #[test]
    fn wheel_matches_heap_on_seeded_streams() {
        for seed in 0..8 {
            differential(seed, 300, 1, 3);
        }
    }

    #[test]
    fn wheel_matches_heap_under_heavy_respawn() {
        differential(0xFEED, 50, 1, 1);
    }

    #[test]
    fn equal_timestamps_drain_in_push_order() {
        let mut w = TimingWheel::new();
        for i in 0..100u32 {
            w.push(SimTime::from_ns(42), i);
        }
        for i in 0..100u32 {
            assert_eq!(w.pop(), Some((SimTime::from_ns(42), i)));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn far_future_events_migrate_in_order() {
        let mut w = TimingWheel::new();
        // All beyond the 4096 × 64 ns ≈ 262 µs horizon.
        w.push(SimTime::from_ms(3), 0u32);
        w.push(SimTime::from_ms(1), 1);
        w.push(SimTime::from_ms(2), 2);
        w.push(SimTime::from_ms(1), 3);
        assert_eq!(w.next_time(), Some(SimTime::from_ms(1)));
        assert_eq!(w.pop(), Some((SimTime::from_ms(1), 1)));
        assert_eq!(w.pop(), Some((SimTime::from_ms(1), 3)));
        assert_eq!(w.pop(), Some((SimTime::from_ms(2), 2)));
        assert_eq!(w.pop(), Some((SimTime::from_ms(3), 0)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn pop_before_leaves_later_events_queued() {
        let mut w = TimingWheel::new();
        w.push(SimTime::from_ns(10), 'a');
        w.push(SimTime::from_ns(2_000_000), 'b');
        assert_eq!(
            w.pop_before(SimTime::from_ns(100)),
            Some((SimTime::from_ns(10), 'a'))
        );
        assert_eq!(w.pop_before(SimTime::from_ns(100)), None);
        assert_eq!(w.len(), 1);
        assert_eq!(
            w.pop_before(SimTime::from_ms(5)),
            Some((SimTime::from_ns(2_000_000), 'b'))
        );
        assert!(w.is_empty());
    }

    #[test]
    fn past_pushes_pop_immediately() {
        // The heap would pop an earlier-than-now push first; the wheel
        // clamps it into the cursor bucket and must do the same.
        let mut w = TimingWheel::new();
        let mut h = BinaryHeapScheduler::new();
        for s in [&mut w as &mut dyn Scheduler<u32>, &mut h] {
            s.push(SimTime::from_us(50), 0);
            s.push(SimTime::from_us(60), 1);
            assert_eq!(s.pop(), Some((SimTime::from_us(50), 0)));
            // Now push "into the past" relative to the cursor.
            s.push(SimTime::from_us(1), 2);
            assert_eq!(s.pop(), Some((SimTime::from_us(1), 2)));
            assert_eq!(s.pop(), Some((SimTime::from_us(60), 1)));
        }
    }

    #[test]
    fn far_arena_recycles_slots() {
        let mut w = TimingWheel::new();
        for round in 0..10u64 {
            for i in 0..50u32 {
                // Each round sits a full millisecond past the previous
                // cursor — far beyond the 4096×64 ns horizon — so every
                // event routes through the overflow heap's payload
                // arena.
                w.push(SimTime::from_ms(round + 1) + i as u64 * 1_000, i);
            }
            while w.pop().is_some() {}
        }
        // Ten rounds of 50 events reuse the same 50 arena slots.
        assert!(
            w.far_slots.len() <= 50,
            "arena grew to {}",
            w.far_slots.len()
        );
        assert_eq!(w.far_free.len(), w.far_slots.len());
    }

    #[test]
    fn reserved_seq_orders_like_plain_push_on_both_engines() {
        // Reserving seqs up front and pushing out of order must drain
        // identically to plain pushes in reservation order — this is
        // the primitive the batched link drain stands on.
        let mut w = TimingWheel::new();
        let mut h = BinaryHeapScheduler::new();
        for s in [&mut w as &mut dyn Scheduler<u32>, &mut h] {
            let t = SimTime::from_ns(100);
            let s0 = s.reserve_seq();
            let s1 = s.reserve_seq();
            let s2 = s.reserve_seq();
            assert!(s0 < s1 && s1 < s2);
            // Insert in scrambled order, same timestamp.
            s.push_at_seq(t, s2, 2);
            s.push_at_seq(t, s0, 0);
            s.push_at_seq(t, s1, 1);
            assert_eq!(s.peek_key(), Some((t, s0)));
            assert_eq!(s.pop(), Some((t, 0)));
            assert_eq!(s.peek_key(), Some((t, s1)));
            assert_eq!(s.pop(), Some((t, 1)));
            assert_eq!(s.pop(), Some((t, 2)));
            assert_eq!(s.peek_key(), None);
        }
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut w: TimingWheel<u8> = TimingWheel::new();
        assert!(w.is_empty());
        w.push(SimTime::from_ns(5), 1);
        w.push(SimTime::from_ms(5), 2);
        assert_eq!(w.len(), 2);
        w.pop();
        assert_eq!(w.len(), 1);
        w.pop();
        assert!(w.is_empty());
        assert_eq!(w.next_time(), None);
    }
}
