//! Event schedulers: the timing-wheel engine and its reference heap.
//!
//! The discrete-event loop in [`crate::sim`] is bounded by how fast it
//! can push and pop timestamped events. A `BinaryHeap` gives `O(log n)`
//! per operation and — worse for a packet simulator — every sift moves
//! the full event payload several times. This module replaces it with a
//! calendar-queue-style **timing wheel** ([`TimingWheel`]):
//!
//! * a **near wheel** of `NUM_BUCKETS` buckets, each covering
//!   `GRANULARITY` ns of simulated time, holding every event within the
//!   sliding horizon `[cursor, cursor + NUM_BUCKETS × GRANULARITY)`;
//! * an **overflow heap** for far-future events (retransmission timers,
//!   scheduled faults), migrated into the wheel as the cursor slides
//!   over their slot;
//! * a **slot arena** with a free list: event payloads live in recycled
//!   slots and buckets store 4-byte slot ids, so the steady-state event
//!   loop allocates nothing and bucket maintenance moves `u32`s, not
//!   multi-hundred-byte packets.
//!
//! ## Ordering contract
//!
//! Both schedulers implement [`Scheduler`] and drain events in exactly
//! `(time, seq)` order, where `seq` is a monotone sequence number
//! assigned at push. This is the tie-break rule the simulator's
//! determinism contract (DESIGN.md §6) is built on: two schedulers fed
//! the same pushes pop the same events in the same order, bit for bit.
//! [`BinaryHeapScheduler`] is kept as the executable reference for
//! differential tests (`tests/scheduler_differential.rs`); the wheel
//! achieves the same order because
//!
//! * every bucket within the horizon maps to exactly one absolute slot,
//!   so the first non-empty bucket at the cursor holds the globally
//!   earliest events, and
//! * the pop scans that bucket for the `(time, seq)` minimum — exact
//!   even when a bucket mixes timestamps (events pushed for the past
//!   are clamped into the cursor bucket and still win the scan).
//!
//! Pushing an event earlier than the last popped time is allowed (it
//! pops next, same as the heap); pushing while mid-drain of the same
//! timestamp is the common case (a packet forwarded at `now`) and
//! ordered correctly by `seq`.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Near-wheel bucket count (power of two; index masks instead of `%`).
pub const NUM_BUCKETS: usize = 4096;
/// log2 of the nanoseconds each bucket spans.
pub const GRANULARITY_LOG2: u32 = 6;
/// Nanoseconds per bucket.
pub const GRANULARITY: u64 = 1 << GRANULARITY_LOG2;
const BUCKET_MASK: u64 = (NUM_BUCKETS as u64) - 1;

/// Which event engine a simulator runs on (see
/// [`crate::sim::SimConfig::scheduler`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The timing wheel ([`TimingWheel`]) — the default engine.
    #[default]
    TimingWheel,
    /// The reference binary heap ([`BinaryHeapScheduler`]), retained
    /// for differential testing and A/B benches.
    BinaryHeap,
}

/// A deterministic future-event set: timestamped items drain in
/// `(time, push order)` order.
pub trait Scheduler<T> {
    /// Queues `item` at `time`, assigning it the next sequence number.
    fn push(&mut self, time: SimTime, item: T);
    /// Removes and returns the earliest `(time, seq)` event.
    fn pop(&mut self) -> Option<(SimTime, T)>;
    /// [`Scheduler::pop`], but only if the earliest event's time is
    /// `<= bound`; otherwise the queue is untouched.
    fn pop_before(&mut self, bound: SimTime) -> Option<(SimTime, T)>;
    /// The earliest queued time, if any. Takes `&mut self` because the
    /// wheel may advance its cursor to find it (not observable).
    fn next_time(&mut self) -> Option<SimTime>;
    /// Queued event count.
    fn len(&self) -> usize;
    /// Whether nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The reference scheduler: a binary min-heap ordered by `(time, seq)`.
/// Exactly the engine the simulator used before the timing wheel; kept
/// as the executable specification of the ordering contract.
#[derive(Debug)]
pub struct BinaryHeapScheduler<T> {
    heap: BinaryHeap<Reverse<HeapEv<T>>>,
    seq: u64,
}

#[derive(Debug)]
struct HeapEv<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEv<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for HeapEv<T> {}
impl<T> PartialOrd for HeapEv<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEv<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<T> Default for BinaryHeapScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BinaryHeapScheduler<T> {
    /// An empty heap scheduler.
    pub fn new() -> Self {
        BinaryHeapScheduler {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> Scheduler<T> for BinaryHeapScheduler<T> {
    fn push(&mut self, time: SimTime, item: T) {
        self.seq += 1;
        self.heap.push(Reverse(HeapEv {
            time,
            seq: self.seq,
            item,
        }));
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.item))
    }

    fn pop_before(&mut self, bound: SimTime) -> Option<(SimTime, T)> {
        if self.heap.peek().is_some_and(|Reverse(e)| e.time <= bound) {
            self.pop()
        } else {
            None
        }
    }

    fn next_time(&mut self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// One arena slot: the payload plus its ordering key. `item` is `None`
/// only while the slot sits on the free list.
#[derive(Debug)]
struct Slot<T> {
    time: SimTime,
    seq: u64,
    item: Option<T>,
}

/// The timing-wheel scheduler (see the module docs for geometry and the
/// ordering argument).
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// Near-wheel buckets of arena slot ids; bucket `i` holds exactly
    /// the events of absolute slot `s` with `s & BUCKET_MASK == i` for
    /// the unique `s` in `[cursor, cursor + NUM_BUCKETS)`.
    buckets: Vec<Vec<u32>>,
    /// Events at `slot >= cursor + NUM_BUCKETS`, ordered by
    /// `(time, seq)` for exact migration.
    far: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Payload arena; freed slots are recycled through `free`.
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    /// Absolute slot index (`time >> GRANULARITY_LOG2`) of the bucket
    /// the drain cursor is on. Only ever advances.
    cursor: u64,
    /// Events currently in the near wheel.
    near_len: usize,
    /// Total queued events (near + far).
    len: usize,
    seq: u64,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimingWheel<T> {
    /// An empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        TimingWheel {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            far: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            cursor: 0,
            near_len: 0,
            len: 0,
            seq: 0,
        }
    }

    /// Takes a recycled arena slot (or grows the arena) for an event.
    fn alloc(&mut self, time: SimTime, seq: u64, item: T) -> u32 {
        if let Some(id) = self.free.pop() {
            let s = &mut self.slots[id as usize];
            s.time = time;
            s.seq = seq;
            s.item = Some(item);
            id
        } else {
            let id = self.slots.len() as u32;
            self.slots.push(Slot {
                time,
                seq,
                item: Some(item),
            });
            id
        }
    }

    /// Frees slot `id`, returning its payload.
    fn release(&mut self, id: u32) -> (SimTime, T) {
        let s = &mut self.slots[id as usize];
        let item = s.item.take().expect("slot is live");
        self.free.push(id);
        (s.time, item)
    }

    /// Files a slot id under its near-wheel bucket. Events earlier than
    /// the cursor (allowed, rare) clamp into the cursor bucket, where
    /// the min-scan still pops them first.
    fn file_near(&mut self, slot: u64, id: u32) {
        let s = slot.max(self.cursor);
        self.buckets[(s & BUCKET_MASK) as usize].push(id);
        self.near_len += 1;
    }

    /// Pulls every far event whose slot has entered the horizon into
    /// the near wheel. (Slot math goes through
    /// [`SimTime::wheel_slot`], the single definition of the mapping.)
    fn migrate(&mut self) {
        let horizon = self.cursor + NUM_BUCKETS as u64;
        while let Some(&Reverse((t, _, id))) = self.far.peek() {
            let slot = t.wheel_slot(GRANULARITY_LOG2);
            if slot >= horizon {
                break;
            }
            self.far.pop();
            self.file_near(slot, id);
        }
    }

    /// Advances the cursor to the first non-empty bucket, jumping
    /// straight to the overflow heap's earliest slot when the near
    /// wheel is empty. Returns `false` when nothing is queued.
    fn seek(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        loop {
            if self.near_len == 0 {
                // Everything queued is in the overflow heap: jump the
                // cursor to its earliest slot and pull the horizon in.
                let &Reverse((t, _, _)) = self.far.peek().expect("len > 0 with empty near wheel");
                self.cursor = t.wheel_slot(GRANULARITY_LOG2);
                self.migrate();
                debug_assert!(self.near_len > 0);
                continue;
            }
            if !self.buckets[(self.cursor & BUCKET_MASK) as usize].is_empty() {
                return true;
            }
            self.cursor += 1;
            self.migrate();
        }
    }

    /// Index (within the cursor bucket) of the `(time, seq)`-minimum
    /// event. Caller guarantees the bucket is non-empty.
    fn scan_min(&self) -> usize {
        let bucket = &self.buckets[(self.cursor & BUCKET_MASK) as usize];
        let mut best = 0;
        let mut best_key = {
            let s = &self.slots[bucket[0] as usize];
            (s.time, s.seq)
        };
        for (i, &id) in bucket.iter().enumerate().skip(1) {
            let s = &self.slots[id as usize];
            if (s.time, s.seq) < best_key {
                best_key = (s.time, s.seq);
                best = i;
            }
        }
        best
    }

    /// Removes the bucket-minimum located by [`TimingWheel::scan_min`].
    fn take_min(&mut self) -> (SimTime, T) {
        let best = self.scan_min();
        let id = self.buckets[(self.cursor & BUCKET_MASK) as usize].swap_remove(best);
        self.near_len -= 1;
        self.len -= 1;
        self.release(id)
    }
}

impl<T> Scheduler<T> for TimingWheel<T> {
    fn push(&mut self, time: SimTime, item: T) {
        self.seq += 1;
        let seq = self.seq;
        let id = self.alloc(time, seq, item);
        let slot = time.wheel_slot(GRANULARITY_LOG2);
        if slot >= self.cursor + NUM_BUCKETS as u64 {
            self.far.push(Reverse((time, seq, id)));
        } else {
            self.file_near(slot, id);
        }
        self.len += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, T)> {
        if !self.seek() {
            return None;
        }
        Some(self.take_min())
    }

    fn pop_before(&mut self, bound: SimTime) -> Option<(SimTime, T)> {
        if !self.seek() {
            return None;
        }
        let best = self.scan_min();
        let bucket = &self.buckets[(self.cursor & BUCKET_MASK) as usize];
        if self.slots[bucket[best] as usize].time > bound {
            return None;
        }
        Some(self.take_min())
    }

    fn next_time(&mut self) -> Option<SimTime> {
        if !self.seek() {
            return None;
        }
        let best = self.scan_min();
        let bucket = &self.buckets[(self.cursor & BUCKET_MASK) as usize];
        Some(self.slots[bucket[best] as usize].time)
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_core::rng::StdRng;

    /// Drains both schedulers fed the same pushes and asserts identical
    /// pop streams. Interleaves pushes mid-drain the way the simulator
    /// does: some popped events re-push at `now + delta`.
    fn differential(seed: u64, initial: usize, respawn_num: u64, respawn_den: u64) {
        let mut wheel = TimingWheel::new();
        let mut heap = BinaryHeapScheduler::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pushes: Vec<(SimTime, u32)> = Vec::new();
        for i in 0..initial {
            // Mix near (same-bucket bursts), mid, and far-horizon times.
            let t = match rng.random_range(0..4) {
                0 => rng.random_range(0..64) as u64,
                1 => rng.random_range(0..10_000) as u64,
                2 => 5_000 + rng.random_range(0..8) as u64, // equal-time bursts
                _ => rng.random_range(0..5_000_000) as u64, // beyond horizon
            };
            pushes.push((SimTime::from_ns(t), i as u32));
        }
        for &(t, v) in &pushes {
            wheel.push(t, v);
            heap.push(t, v);
        }
        let mut next_tag = initial as u32;
        let mut popped = 0u64;
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(w, h, "divergence after {popped} pops (seed {seed})");
            let Some((t, _)) = w else {
                break;
            };
            popped += 1;
            // Deterministic respawn: mid-drain pushes, often landing in
            // the bucket being drained (delta 0) or exactly on another
            // queued timestamp.
            if popped % respawn_den < respawn_num && next_tag < initial as u32 + 400 {
                let delta = match rng.random_range(0..3) {
                    0 => 0,
                    1 => rng.random_range(0..100) as u64,
                    _ => 300_000 + rng.random_range(0..300_000) as u64,
                };
                wheel.push(t + delta, next_tag);
                heap.push(t + delta, next_tag);
                next_tag += 1;
            }
        }
        assert!(wheel.is_empty() && heap.is_empty());
    }

    #[test]
    fn wheel_matches_heap_on_seeded_streams() {
        for seed in 0..8 {
            differential(seed, 300, 1, 3);
        }
    }

    #[test]
    fn wheel_matches_heap_under_heavy_respawn() {
        differential(0xFEED, 50, 1, 1);
    }

    #[test]
    fn equal_timestamps_drain_in_push_order() {
        let mut w = TimingWheel::new();
        for i in 0..100u32 {
            w.push(SimTime::from_ns(42), i);
        }
        for i in 0..100u32 {
            assert_eq!(w.pop(), Some((SimTime::from_ns(42), i)));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn far_future_events_migrate_in_order() {
        let mut w = TimingWheel::new();
        // All beyond the 4096 × 64 ns ≈ 262 µs horizon.
        w.push(SimTime::from_ms(3), 0u32);
        w.push(SimTime::from_ms(1), 1);
        w.push(SimTime::from_ms(2), 2);
        w.push(SimTime::from_ms(1), 3);
        assert_eq!(w.next_time(), Some(SimTime::from_ms(1)));
        assert_eq!(w.pop(), Some((SimTime::from_ms(1), 1)));
        assert_eq!(w.pop(), Some((SimTime::from_ms(1), 3)));
        assert_eq!(w.pop(), Some((SimTime::from_ms(2), 2)));
        assert_eq!(w.pop(), Some((SimTime::from_ms(3), 0)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn pop_before_leaves_later_events_queued() {
        let mut w = TimingWheel::new();
        w.push(SimTime::from_ns(10), 'a');
        w.push(SimTime::from_ns(2_000_000), 'b');
        assert_eq!(
            w.pop_before(SimTime::from_ns(100)),
            Some((SimTime::from_ns(10), 'a'))
        );
        assert_eq!(w.pop_before(SimTime::from_ns(100)), None);
        assert_eq!(w.len(), 1);
        assert_eq!(
            w.pop_before(SimTime::from_ms(5)),
            Some((SimTime::from_ns(2_000_000), 'b'))
        );
        assert!(w.is_empty());
    }

    #[test]
    fn past_pushes_pop_immediately() {
        // The heap would pop an earlier-than-now push first; the wheel
        // clamps it into the cursor bucket and must do the same.
        let mut w = TimingWheel::new();
        let mut h = BinaryHeapScheduler::new();
        for s in [&mut w as &mut dyn Scheduler<u32>, &mut h] {
            s.push(SimTime::from_us(50), 0);
            s.push(SimTime::from_us(60), 1);
            assert_eq!(s.pop(), Some((SimTime::from_us(50), 0)));
            // Now push "into the past" relative to the cursor.
            s.push(SimTime::from_us(1), 2);
            assert_eq!(s.pop(), Some((SimTime::from_us(1), 2)));
            assert_eq!(s.pop(), Some((SimTime::from_us(60), 1)));
        }
    }

    #[test]
    fn arena_recycles_slots() {
        let mut w = TimingWheel::new();
        for round in 0..10u64 {
            for i in 0..50u32 {
                w.push(SimTime::from_ns(round * 1000 + i as u64), i);
            }
            while w.pop().is_some() {}
        }
        // Ten rounds of 50 events reuse the same 50 arena slots.
        assert!(w.slots.len() <= 50, "arena grew to {}", w.slots.len());
        assert_eq!(w.free.len(), w.slots.len());
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut w: TimingWheel<u8> = TimingWheel::new();
        assert!(w.is_empty());
        w.push(SimTime::from_ns(5), 1);
        w.push(SimTime::from_ms(5), 2);
        assert_eq!(w.len(), 2);
        w.pop();
        assert_eq!(w.len(), 1);
        w.pop();
        assert!(w.is_empty());
        assert_eq!(w.next_time(), None);
    }
}
