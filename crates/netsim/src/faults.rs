//! Dynamic fault injection: deterministic, seeded schedules of link and
//! switch failures (and recoveries) applied to a live simulation.
//!
//! §3.5 of the paper argues Quartz keeps working through fiber cuts:
//! "routing protocols can route around failed links". The static
//! Monte-Carlo analysis in [`quartz_core::fault`] measures how much
//! *capacity* survives; this module measures what actually happens to
//! *packets in flight*: a [`FaultPlan`] schedules cuts mid-run, the
//! simulator drops everything forwarded onto dead elements until its
//! control plane reconverges onto failure-aware routes (see
//! [`crate::sim::SimConfig::reconvergence_ns`]), and the statistics
//! record the latency and hop-count stretch of the detoured traffic.
//!
//! [`ring_cut_scenario`] packages the paper-flavoured experiment — a
//! Quartz mesh under steady Poisson load, one fiber cut at `t = T` —
//! used by the Figure 6 dynamic panel, the `quartz faults --dynamic`
//! CLI, and the integration tests.

use crate::sim::{FlowKind, SimConfig, Simulator};
use crate::stats::LatencySummary;
use crate::time::SimTime;
use quartz_core::rng::StdRng;
use quartz_obs::{Event, MemoryRecorder, MetricsRegistry, Recorder};
use quartz_topology::builders::quartz_mesh;
use quartz_topology::graph::{LinkId, Network, NodeId, NodeKind};

/// One kind of scheduled fault or recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Both directions of a link start dropping traffic (fiber cut).
    LinkDown(LinkId),
    /// A previously cut link carries traffic again (splice repaired).
    LinkUp(LinkId),
    /// A switch dies: every frame inside or arriving at it is lost.
    SwitchDown(NodeId),
    /// A dead switch comes back.
    SwitchUp(NodeId),
}

/// A fault (or recovery) scheduled at an absolute simulation time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedFault {
    /// When the event fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of failure and recovery events.
///
/// Build one explicitly (`link_down` / `switch_down` / …) or generate a
/// random-but-seeded plan with [`FaultPlan::random_link_faults`]; then
/// hand it to [`Simulator::apply_fault_plan`]. The plan itself is plain
/// data — the same plan applied to same-seed simulators produces
/// bit-identical runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules a fiber cut of `link` at `at`.
    pub fn link_down(&mut self, link: LinkId, at: SimTime) -> &mut Self {
        self.events.push(PlannedFault {
            at,
            kind: FaultKind::LinkDown(link),
        });
        self
    }

    /// Schedules the repair of `link` at `at`.
    pub fn link_up(&mut self, link: LinkId, at: SimTime) -> &mut Self {
        self.events.push(PlannedFault {
            at,
            kind: FaultKind::LinkUp(link),
        });
        self
    }

    /// Schedules the death of switch `node` at `at`.
    pub fn switch_down(&mut self, node: NodeId, at: SimTime) -> &mut Self {
        self.events.push(PlannedFault {
            at,
            kind: FaultKind::SwitchDown(node),
        });
        self
    }

    /// Schedules the recovery of switch `node` at `at`.
    pub fn switch_up(&mut self, node: NodeId, at: SimTime) -> &mut Self {
        self.events.push(PlannedFault {
            at,
            kind: FaultKind::SwitchUp(node),
        });
        self
    }

    /// The planned events, sorted by time (stable for ties: insertion
    /// order).
    pub fn events(&self) -> Vec<PlannedFault> {
        let mut e = self.events.clone();
        e.sort_by_key(|f| f.at);
        e
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a seeded random plan: `count` distinct switch-to-switch
    /// links of `net` each go down at a uniformly random time in
    /// `window`, and — if `repair_after_ns` is given — come back up that
    /// long after their cut. Host access links are never cut (the paper's
    /// failure model is about the ring fibers, not server NICs).
    ///
    /// # Panics
    /// Panics if `net` has fewer than `count` switch-to-switch links or
    /// the window is empty.
    pub fn random_link_faults(
        net: &Network,
        count: usize,
        window: (SimTime, SimTime),
        repair_after_ns: Option<u64>,
        seed: u64,
    ) -> Self {
        assert!(window.1 > window.0, "empty fault window");
        let mut candidates: Vec<LinkId> = net
            .links()
            .filter(|l| {
                net.node(l.a).kind != NodeKind::Host && net.node(l.b).kind != NodeKind::Host
            })
            .map(|l| l.id)
            .collect();
        assert!(
            candidates.len() >= count,
            "only {} switch-to-switch links for {count} faults",
            candidates.len()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let span = window.1 - window.0;
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let pick = rng.random_range(0..candidates.len());
            let link = candidates.swap_remove(pick);
            let at = window.0 + rng.random_range(0..span as usize) as u64;
            plan.link_down(link, at);
            if let Some(mttr) = repair_after_ns {
                plan.link_up(link, at + mttr);
            }
        }
        plan
    }
}

/// Parameters of the canonical dynamic experiment: a Quartz mesh under
/// steady Poisson traffic, one fiber cut mid-run.
#[derive(Clone, Debug)]
pub struct CutScenarioConfig {
    /// Mesh size (switches in the ring).
    pub switches: usize,
    /// Hosts attached to each switch.
    pub hosts_per_switch: usize,
    /// When the fiber between switches 0 and 1 is cut.
    pub cut_at: SimTime,
    /// Control-plane reconvergence delay after the cut.
    pub reconvergence_ns: u64,
    /// When traffic generation stops (the run drains 2 ms longer).
    pub duration: SimTime,
    /// Mean Poisson inter-packet gap per flow, ns.
    pub mean_gap_ns: f64,
    /// Extra steady cross-traffic flows between other switch pairs.
    pub background_pairs: usize,
    /// Simulation seed (same seed ⇒ bit-identical report).
    pub seed: u64,
}

impl CutScenarioConfig {
    /// The paper-scale scenario: the 33-switch ring, cut at 1 ms into a
    /// 4 ms run, 50 µs reconvergence.
    pub fn paper(seed: u64) -> Self {
        CutScenarioConfig {
            switches: 33,
            hosts_per_switch: 1,
            cut_at: SimTime::from_ms(1),
            reconvergence_ns: 50_000,
            duration: SimTime::from_ms(4),
            mean_gap_ns: 4_000.0,
            background_pairs: 16,
            seed,
        }
    }

    /// A CI-sized scenario (small mesh, 1.5 ms run).
    pub fn quick(seed: u64) -> Self {
        CutScenarioConfig {
            switches: 9,
            hosts_per_switch: 1,
            cut_at: SimTime::from_us(500),
            reconvergence_ns: 50_000,
            duration: SimTime::from_us(1_500),
            mean_gap_ns: 4_000.0,
            background_pairs: 4,
            seed,
        }
    }
}

/// What the dynamic experiment measured. `PartialEq` is exact (floats
/// included): two same-seed runs must compare equal, which is the
/// determinism guarantee the integration tests pin.
#[derive(Clone, Debug, PartialEq)]
pub struct CutScenarioReport {
    /// Latency of the severed pair's traffic before the cut.
    pub pre: LatencySummary,
    /// Latency of the severed pair's traffic emitted after the cut
    /// (detoured over surviving channels once routes reconverge).
    pub post: LatencySummary,
    /// Mean links traversed before the cut.
    pub pre_mean_hops: f64,
    /// Mean links traversed after the cut (≥ pre: the detour is longer).
    pub post_mean_hops: f64,
    /// Full post-cut path-length distribution `(links, packets)`.
    pub post_hop_distribution: Vec<(u32, usize)>,
    /// Measured control-plane reconvergence time, ns (`None` if routes
    /// never reconverged within the run).
    pub reconvergence_ns: Option<u64>,
    /// Packets lost between the cut and reconvergence.
    pub drops_during_outage: u64,
    /// Total packets generated.
    pub generated: u64,
    /// Total packets delivered.
    pub delivered: u64,
    /// Total packets dropped.
    pub dropped: u64,
}

/// Tag of the severed pair's pre-cut traffic.
pub const TAG_PRE: u32 = 0;
/// Tag of the severed pair's post-cut traffic.
pub const TAG_POST: u32 = 1;
/// Tag of the background cross-traffic.
pub const TAG_BACKGROUND: u32 = 2;

/// Runs the canonical dynamic experiment: build the mesh, load it with
/// Poisson traffic, cut the switch-0↔switch-1 fiber at `cut_at`, let the
/// control plane reconverge onto the degraded routes, and report the
/// severed pair's before/after latency and path stretch.
pub fn ring_cut_scenario(cfg: &CutScenarioConfig) -> CutScenarioReport {
    let mut sim = scenario_sim(cfg);
    sim.run(cfg.duration + 2_000_000);
    scenario_report(&sim)
}

/// [`ring_cut_scenario`] with the caller's event recorder attached for
/// the duration of the run (e.g. a `quartz_obs::NdjsonRecorder`
/// streaming to a file) and metric collection enabled. Returns the
/// identical report — observation never perturbs the simulation — plus
/// the recorder (drain/flush it via `Recorder::finish`) and the
/// collected metrics.
pub fn ring_cut_scenario_observed(
    cfg: &CutScenarioConfig,
    recorder: Box<dyn Recorder>,
) -> (CutScenarioReport, Box<dyn Recorder>, MetricsRegistry) {
    let mut sim = scenario_sim(cfg);
    sim.set_recorder(recorder);
    sim.enable_metrics();
    sim.run(cfg.duration + 2_000_000);
    let recorder = sim.take_recorder().expect("recorder was attached");
    let metrics = sim.take_metrics().expect("metrics were enabled");
    (scenario_report(&sim), recorder, metrics)
}

/// [`ring_cut_scenario`] traced into memory: the report, the full event
/// stream, and the metrics registry.
pub fn ring_cut_scenario_traced(
    cfg: &CutScenarioConfig,
) -> (CutScenarioReport, Vec<Event>, MetricsRegistry) {
    let (report, recorder, metrics) =
        ring_cut_scenario_observed(cfg, Box::new(MemoryRecorder::new()));
    (report, recorder.finish(), metrics)
}

/// Builds the scenario simulator: mesh, severed-pair flows, background
/// load, and the scheduled cut.
fn scenario_sim(cfg: &CutScenarioConfig) -> Simulator {
    assert!(cfg.switches >= 3, "a detour needs a third switch");
    assert!(cfg.cut_at < cfg.duration, "cut must land inside the run");
    let q = quartz_mesh(cfg.switches, cfg.hosts_per_switch, 10.0, 10.0);
    let mut sim = Simulator::new(
        q.net.clone(),
        SimConfig {
            seed: cfg.seed,
            reconvergence_ns: Some(cfg.reconvergence_ns),
            ..SimConfig::default()
        },
    );
    let hps = cfg.hosts_per_switch;
    let host_of = |sw: usize| q.hosts[sw * hps];

    // The severed pair: hosts behind switches 0 and 1, whose direct
    // channel is about to be cut. Pre- and post-cut emissions carry
    // different tags so the report can compare them.
    sim.add_flow(
        host_of(0),
        host_of(1),
        400,
        FlowKind::Poisson {
            mean_gap_ns: cfg.mean_gap_ns,
            stop: cfg.cut_at,
            respond: false,
        },
        TAG_PRE,
        SimTime::ZERO,
    );
    sim.add_flow(
        host_of(0),
        host_of(1),
        400,
        FlowKind::Poisson {
            mean_gap_ns: cfg.mean_gap_ns,
            stop: cfg.duration,
            respond: false,
        },
        TAG_POST,
        cfg.cut_at,
    );
    // Steady background load on the rest of the mesh.
    for i in 0..cfg.background_pairs {
        let a = 2 + i % (cfg.switches - 2);
        let b = 2 + (i + 3) % (cfg.switches - 2);
        if a == b {
            continue;
        }
        sim.add_flow(
            host_of(a),
            host_of(b),
            400,
            FlowKind::Poisson {
                mean_gap_ns: cfg.mean_gap_ns,
                stop: cfg.duration,
                respond: false,
            },
            TAG_BACKGROUND,
            SimTime::ZERO,
        );
    }

    let cut = q
        .net
        .link_between(q.switches[0], q.switches[1])
        .expect("mesh has the direct channel");
    let mut plan = FaultPlan::new();
    plan.link_down(cut, cfg.cut_at);
    sim.apply_fault_plan(&plan);
    sim
}

/// Summarizes a finished scenario run.
fn scenario_report(sim: &Simulator) -> CutScenarioReport {
    let record = sim.fault_log().first().expect("one fault was injected");
    let stats = sim.stats();
    CutScenarioReport {
        pre: stats.summary(TAG_PRE),
        post: stats.summary(TAG_POST),
        pre_mean_hops: stats.mean_hops(TAG_PRE),
        post_mean_hops: stats.mean_hops(TAG_POST),
        post_hop_distribution: stats.hop_distribution(TAG_POST),
        reconvergence_ns: record.reconverged_at.map(|t| t - record.at),
        drops_during_outage: record.drops_during_outage,
        generated: stats.generated,
        delivered: stats.delivered,
        dropped: stats.dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quartz_topology::builders::prototype_quartz;

    #[test]
    fn plan_events_sort_by_time() {
        let mut p = FaultPlan::new();
        p.link_down(LinkId(3), SimTime::from_us(9))
            .switch_down(NodeId(1), SimTime::from_us(2))
            .link_up(LinkId(3), SimTime::from_us(20));
        let e = p.events();
        assert_eq!(p.len(), 3);
        assert_eq!(e[0].kind, FaultKind::SwitchDown(NodeId(1)));
        assert_eq!(e[2].kind, FaultKind::LinkUp(LinkId(3)));
        assert!(e.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn random_plans_are_seeded_and_skip_host_links() {
        let p = prototype_quartz();
        let window = (SimTime::from_us(10), SimTime::from_us(100));
        let a = FaultPlan::random_link_faults(&p.net, 3, window, Some(5_000), 7);
        let b = FaultPlan::random_link_faults(&p.net, 3, window, Some(5_000), 7);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::random_link_faults(&p.net, 3, window, Some(5_000), 8);
        assert_ne!(a, c, "different seed, different plan");
        assert_eq!(a.len(), 6); // 3 cuts + 3 repairs
        for ev in a.events() {
            let (link, up) = match ev.kind {
                FaultKind::LinkDown(l) => (l, false),
                FaultKind::LinkUp(l) => (l, true),
                other => panic!("unexpected {other:?}"),
            };
            let l = p.net.link(link);
            assert!(
                p.switches.contains(&l.a) && p.switches.contains(&l.b),
                "host link {link:?} in plan"
            );
            if !up {
                assert!(ev.at >= window.0 && ev.at < window.1);
            }
        }
    }

    #[test]
    fn tracing_never_perturbs_the_scenario() {
        // The observe-only contract: a run with a recorder and metrics
        // attached reports *exactly* what an unobserved run reports
        // (CutScenarioReport's PartialEq is float-exact).
        let cfg = CutScenarioConfig::quick(0xD16);
        let plain = ring_cut_scenario(&cfg);
        let (traced, events, metrics) = ring_cut_scenario_traced(&cfg);
        assert_eq!(plain, traced);

        // The trace tells the same story as the report.
        assert!(!events.is_empty());
        assert_eq!(events[0].tag(), "gen");
        assert!(events.iter().any(|e| e.tag() == "fault"));
        assert!(events.iter().any(|e| e.tag() == "reroute"));
        let cuts = events
            .iter()
            .filter(|e| matches!(e, Event::Fault { kind, .. } if *kind == "link_down"))
            .count();
        assert_eq!(cuts, 1);
        assert_eq!(metrics.counter("sim.packets.generated"), traced.generated);
        assert_eq!(metrics.counter("sim.packets.delivered"), traced.delivered);
        assert_eq!(metrics.counter("sim.packets.dropped"), traced.dropped);
        assert_eq!(metrics.counter("sim.fault.link_down"), 1);
        assert!(metrics.counter("sim.reroutes") >= 1);
        // Per-link series exist for the mesh links the traffic used.
        assert!(metrics
            .to_ndjson()
            .lines()
            .any(|l| l.contains("queue.link")));
    }

    #[test]
    #[should_panic(expected = "switch-to-switch")]
    fn too_many_faults_panic() {
        let p = prototype_quartz();
        let _ = FaultPlan::random_link_faults(
            &p.net,
            100,
            (SimTime::ZERO, SimTime::from_us(1)),
            None,
            1,
        );
    }
}
