//! Differential test for the sharded engine's determinism contract:
//! [`ShardedSim`] must produce byte-identical output at every domain
//! count — same stats bits, same ndjson trace bytes, same flow
//! completion log, same fault log, same merged metrics — on a loaded
//! VLB mesh with bursty traffic, a DCTCP transfer under ECN, a mid-run
//! fiber cut plus repair, and on a Figure 15 Quartz-in-core composite.
//! Each domain count is also re-run across 1, 2, and 8 pool workers to
//! pin that the thread schedule cannot leak into the output.

use quartz_core::pool::ThreadPool;
use quartz_netsim::shard::ShardedSim;
use quartz_netsim::sim::{FlowKind, SimConfig, VlbConfig};
use quartz_netsim::time::SimTime;
use quartz_netsim::transport::TcpVariant;
use quartz_netsim::FaultPlan;
use quartz_obs::{MemoryRecorder, NdjsonRecorder, Recorder};
use quartz_topology::builders::{quartz_in_core, quartz_mesh};
use quartz_topology::graph::Network;

/// Everything observable about one sharded run, in comparable form.
#[derive(Debug, PartialEq)]
struct Digest {
    generated: u64,
    delivered: u64,
    dropped: u64,
    /// Per tag: count, mean bits, ci95 bits, p50, p99, max, bytes,
    /// mean-hops bits, hop distribution.
    per_tag: Vec<(u32, TagDigest)>,
    completions: Vec<(u32, u64)>,
    faults: Vec<(u64, Option<u64>, u64)>,
    ndjson: Vec<u8>,
    metrics: String,
}

#[derive(Debug, PartialEq)]
struct TagDigest {
    count: usize,
    mean_bits: u64,
    ci95_bits: u64,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    bytes: u64,
    mean_hops_bits: u64,
    hop_dist: Vec<(u32, usize)>,
}

/// Runs `populate`d traffic on `net` under `cfg` with `k` domains and
/// `workers` pool threads, capturing every output channel.
fn run_sharded(
    net: &Network,
    cfg: &SimConfig,
    k: usize,
    workers: usize,
    until: SimTime,
    populate: impl FnOnce(&mut ShardedSim),
) -> Digest {
    let mut sim = ShardedSim::new(net.clone(), cfg.clone(), k);
    populate(&mut sim);
    sim.set_recorder(Box::new(MemoryRecorder::new()));
    sim.enable_metrics();
    sim.run(until, &ThreadPool::new(workers));

    // The trace-determinism contract is stated over the ndjson bytes.
    let events = sim.take_recorder().expect("recorder attached").finish();
    let mut nd = NdjsonRecorder::new(Vec::new());
    for ev in &events {
        nd.record(ev);
    }
    let ndjson = nd.into_inner();
    let metrics = sim
        .take_metrics()
        .map(|m| m.to_ndjson())
        .unwrap_or_default();

    let stats = sim.stats();
    let per_tag = stats
        .tags()
        .into_iter()
        .map(|tag| {
            let s = stats.summary(tag);
            (
                tag,
                TagDigest {
                    count: s.count,
                    mean_bits: s.mean_ns.to_bits(),
                    ci95_bits: s.ci95_ns.to_bits(),
                    p50_ns: s.p50_ns,
                    p99_ns: s.p99_ns,
                    max_ns: s.max_ns,
                    bytes: stats.delivered_bytes(tag),
                    mean_hops_bits: stats.mean_hops(tag).to_bits(),
                    hop_dist: stats.hop_distribution(tag),
                },
            )
        })
        .collect();
    Digest {
        generated: stats.generated,
        delivered: stats.delivered,
        dropped: stats.dropped,
        per_tag,
        completions: sim
            .flow_completions()
            .iter()
            .map(|c| (c.flow, c.fct_ns))
            .collect(),
        faults: sim
            .fault_log()
            .iter()
            .map(|r| {
                (
                    r.at.ns(),
                    r.reconverged_at.map(SimTime::ns),
                    r.drops_during_outage,
                )
            })
            .collect(),
        ndjson,
        metrics,
    }
}

/// The fig. 6-flavored mesh scenario: VLB detours over the full ring,
/// Poisson echo + burst cross-traffic, a paced file transfer, a DCTCP
/// transfer with ECN marking, and a ring fiber cut at 0.5 ms repaired
/// at 1.2 ms (the control plane reconverges 50 µs after each).
fn mesh_digest(k: usize, workers: usize) -> Digest {
    let q = quartz_mesh(4, 4, 10.0, 10.0);
    let ring_link = q
        .net
        .links()
        .find(|l| q.switches.contains(&l.a) && q.switches.contains(&l.b))
        .expect("mesh has ring links")
        .id;
    let cfg = SimConfig {
        seed: 0xD1FF,
        vlb: Some(VlbConfig {
            fraction: 0.3,
            domains: vec![q.switches.clone()],
        }),
        ecn_threshold_bytes: Some(30_000),
        reconvergence_ns: Some(50_000),
        ..SimConfig::default()
    };
    let stop = SimTime::from_ms(2);
    let n = q.hosts.len();
    run_sharded(&q.net, &cfg, k, workers, SimTime::from_ms(3), |sim| {
        for (i, &src) in q.hosts.iter().enumerate() {
            let dst = q.hosts[(i + 5) % n];
            match i % 3 {
                0 => sim.add_flow(
                    src,
                    dst,
                    400,
                    FlowKind::Poisson {
                        mean_gap_ns: 1_000.0,
                        stop,
                        respond: true,
                    },
                    0,
                    SimTime::ZERO,
                ),
                1 => sim.add_flow(
                    src,
                    dst,
                    400,
                    FlowKind::Burst {
                        burst_pkts: 24,
                        period_ns: 40_000,
                        stop,
                    },
                    1,
                    SimTime::ZERO,
                ),
                _ => sim.add_flow(
                    src,
                    dst,
                    400,
                    FlowKind::Poisson {
                        mean_gap_ns: 900.0,
                        stop,
                        respond: false,
                    },
                    2,
                    SimTime::ZERO,
                ),
            };
        }
        sim.add_flow(
            q.hosts[0],
            q.hosts[n - 1],
            1_000,
            FlowKind::Transport {
                total_bytes: 300_000,
                variant: TcpVariant::Dctcp,
            },
            3,
            SimTime::ZERO,
        );
        sim.add_flow(
            q.hosts[1],
            q.hosts[n - 2],
            1_000,
            FlowKind::FileTransfer {
                total_bytes: 80_000,
            },
            4,
            SimTime::from_us(10),
        );
        let mut plan = FaultPlan::new();
        plan.link_down(ring_link, SimTime::from_ns(500_000))
            .link_up(ring_link, SimTime::from_ns(1_200_000));
        sim.apply_fault_plan(&plan);
    })
}

/// The Figure 15 Quartz-in-core composite: four pods whose cores are
/// replaced by a Quartz ring, with pod-crossing RPC, transport, and
/// file-transfer traffic (pod-crossing is what exercises the domain
/// boundaries — the partitioner groups whole pods).
fn composite_digest(k: usize, workers: usize) -> Digest {
    let c = quartz_in_core(3, 4, 2, 4);
    let cfg = SimConfig {
        seed: 0xC0DE,
        ecn_threshold_bytes: Some(50_000),
        ..SimConfig::default()
    };
    let n = c.hosts.len();
    run_sharded(&c.net, &cfg, k, workers, SimTime::from_ms(4), |sim| {
        for i in 0..n {
            let src = c.hosts[i];
            let dst = c.hosts[(i + n / 2) % n];
            match i % 3 {
                0 => sim.add_flow(src, dst, 400, FlowKind::Rpc { count: 40 }, 0, SimTime::ZERO),
                1 => sim.add_flow(
                    src,
                    dst,
                    1_000,
                    FlowKind::Transport {
                        total_bytes: 60_000,
                        variant: TcpVariant::Reno,
                    },
                    1,
                    SimTime::from_us(i as u64),
                ),
                _ => sim.add_flow(
                    src,
                    dst,
                    1_000,
                    FlowKind::FileTransfer {
                        total_bytes: 30_000,
                    },
                    2,
                    SimTime::from_us(2 * i as u64),
                ),
            };
        }
    })
}

#[test]
fn mesh_output_is_domain_count_invariant() {
    let reference = mesh_digest(1, 1);
    assert!(reference.delivered > 0, "scenario must carry traffic");
    assert!(reference.dropped > 0, "fault window must cost packets");
    assert!(!reference.ndjson.is_empty(), "trace must observe the run");
    assert!(
        !reference.metrics.is_empty(),
        "metrics must observe the run"
    );
    assert_eq!(reference.faults.len(), 2, "cut and repair both fire");
    for k in [2usize, 4, 8] {
        let other = mesh_digest(k, 1);
        assert_eq!(reference, other, "mesh run diverged at {k} domains");
    }
}

#[test]
fn mesh_output_is_worker_count_invariant() {
    let reference = mesh_digest(4, 1);
    for workers in [2usize, 8] {
        let other = mesh_digest(4, workers);
        assert_eq!(reference, other, "mesh run diverged at {workers} workers");
    }
}

#[test]
fn composite_output_is_domain_count_invariant() {
    let reference = composite_digest(1, 1);
    assert!(reference.delivered > 0, "scenario must carry traffic");
    assert!(
        !reference.completions.is_empty(),
        "transport and file flows must complete"
    );
    for (k, workers) in [(2usize, 2usize), (4, 2), (4, 4), (8, 8)] {
        let other = composite_digest(k, workers);
        assert_eq!(
            reference, other,
            "composite run diverged at {k} domains / {workers} workers"
        );
    }
}
