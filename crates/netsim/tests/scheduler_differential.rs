//! Differential pinning of the timing-wheel engine against the
//! reference binary heap (DESIGN.md §8).
//!
//! Two layers:
//!
//! * **Scheduler-level**: seeded random event streams — equal-timestamp
//!   bursts, beyond-horizon times, mid-drain pushes back into the
//!   draining bucket — must drain through [`TimingWheel`] and
//!   [`BinaryHeapScheduler`] in the same order. The streams fan out
//!   over a [`ThreadPool`] pinned at 1, 2, and 8 workers, because the
//!   determinism contract is "bit-identical at any `--jobs`": each
//!   worker drains its own schedulers, and the per-seed transcripts
//!   must not depend on which worker ran them.
//! * **Simulator-level**: a full VLB-mesh run with a mid-run fiber cut
//!   produces identical statistics and fault logs under
//!   [`SchedulerKind::TimingWheel`] and [`SchedulerKind::BinaryHeap`].

use quartz_core::ThreadPool;
use quartz_netsim::sched::{BinaryHeapScheduler, Scheduler, SchedulerKind, TimingWheel};
use quartz_netsim::{FlowKind, SimConfig, SimTime, Simulator, VlbConfig};
use quartz_topology::builders::quartz_mesh;

/// A simple deterministic LCG so the streams need nothing beyond core.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// Drains one seeded stream through both engines and returns the wheel's
/// pop transcript; panics on any divergence from the heap.
fn drain_stream(seed: u64) -> Vec<(u64, u32)> {
    let mut wheel = TimingWheel::new();
    let mut heap = BinaryHeapScheduler::new();
    let mut rng = Lcg(seed.wrapping_add(1));
    for i in 0..500u32 {
        let t = match rng.next() % 4 {
            0 => rng.next() % 64,        // one-bucket bursts
            1 => rng.next() % 20_000,    // near horizon
            2 => 7_000 + rng.next() % 4, // equal-time ties
            _ => rng.next() % 4_000_000, // far beyond horizon
        };
        wheel.push(SimTime::from_ns(t), i);
        heap.push(SimTime::from_ns(t), i);
    }
    let mut transcript = Vec::new();
    let mut tag = 500u32;
    loop {
        let w = wheel.pop();
        assert_eq!(w, heap.pop(), "engines diverged (seed {seed})");
        let Some((t, v)) = w else { break };
        transcript.push((t.ns(), v));
        // Mid-drain pushes, frequently into the bucket being drained.
        if v % 3 == 0 && tag < 800 {
            let delta = match rng.next() % 3 {
                0 => 0,
                1 => rng.next() % 100,
                _ => 500_000 + rng.next() % 100_000,
            };
            wheel.push(t + delta, tag);
            heap.push(t + delta, tag);
            tag += 1;
        }
    }
    assert!(wheel.is_empty() && heap.is_empty());
    transcript
}

#[test]
fn seeded_streams_drain_identically_at_any_worker_count() {
    let baseline: Vec<Vec<(u64, u32)>> = (0..16).map(|s| drain_stream(s as u64)).collect();
    for workers in [1, 2, 8] {
        let pool = ThreadPool::new(workers);
        let fanned = pool.par_map(16, |s| drain_stream(s as u64));
        assert_eq!(
            baseline, fanned,
            "scheduler transcripts must not depend on --jobs (workers={workers})"
        );
    }
}

/// One VLB-mesh simulation with a mid-run fiber cut; returns per-tag
/// (count, mean, p99) plus drop and reconvergence evidence.
fn mesh_run(kind: SchedulerKind) -> Vec<(usize, f64, u64, u64)> {
    let q = quartz_mesh(8, 4, 10.0, 10.0);
    let cfg = SimConfig {
        vlb: Some(VlbConfig {
            fraction: 0.5,
            domains: vec![q.switches.clone()],
        }),
        reconvergence_ns: Some(50_000),
        scheduler: kind,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(q.net.clone(), cfg);
    for (i, &src) in q.hosts.iter().enumerate() {
        let dst = q.hosts[(i + 9) % q.hosts.len()];
        sim.add_flow(
            src,
            dst,
            400,
            FlowKind::Poisson {
                mean_gap_ns: 2_000.0,
                stop: SimTime::from_ms(2),
                respond: false,
            },
            0,
            SimTime::ZERO,
        );
    }
    // Cut a mesh channel mid-run; routes reconverge 50 µs later.
    let ring_link = q
        .net
        .link_between(q.switches[0], q.switches[1])
        .expect("mesh clique link");
    sim.fail_link_at(ring_link, SimTime::from_us(500));
    sim.run(SimTime::from_ms(3));
    let s = sim.stats().summary(0);
    let mut out = vec![(s.count, s.mean_ns, s.p99_ns, sim.stats().dropped)];
    for r in sim.fault_log() {
        out.push((
            0,
            0.0,
            r.at.ns(),
            r.reconverged_at.expect("reconverged").ns(),
        ));
    }
    out
}

#[test]
fn full_simulation_is_identical_under_both_engines() {
    assert_eq!(
        mesh_run(SchedulerKind::TimingWheel),
        mesh_run(SchedulerKind::BinaryHeap),
        "wheel and heap engines must produce bit-identical runs"
    );
}
