//! Property tests for the struct-of-arrays packet arena: seeded
//! alloc/free churn pinning the recycling contract the simulator's
//! determinism rests on — no slot is ever live twice, recycling is
//! LIFO, and identical operation sequences produce identical id
//! sequences.

use quartz_core::rng::StdRng;
use quartz_netsim::arena::{PacketArena, PacketCold, PacketId};
use quartz_netsim::time::SimTime;
use quartz_netsim::transport::TransportInfo;
use quartz_topology::graph::NodeId;
use std::collections::HashSet;

fn cold() -> PacketCold {
    PacketCold {
        transport: TransportInfo::None,
        intermediate: None,
        flags: 0,
        hops: 0,
    }
}

/// Runs `ops` seeded alloc/free steps (biased toward alloc, so the
/// arena both grows and recycles) and returns the full id trace:
/// `(allocated ids in order, freed ids in order)`.
fn churn(seed: u64, ops: usize) -> (Vec<PacketId>, Vec<PacketId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arena = PacketArena::new();
    let mut live: Vec<PacketId> = Vec::new();
    let mut live_set: HashSet<PacketId> = HashSet::new();
    let mut allocated = Vec::new();
    let mut freed = Vec::new();
    let mut peak = 0usize;
    for step in 0..ops {
        let do_alloc = live.is_empty() || rng.random_range(0..5) < 3;
        if do_alloc {
            let id = arena.alloc(
                SimTime::from_ns(step as u64),
                NodeId(rng.random_range(0..64) as u32),
                rng.random_range(0..16) as u32,
                400,
                rng.random::<u64>(),
                cold(),
            );
            // Never-twice-live: a handed-out slot must not alias one
            // still allocated.
            assert!(
                live_set.insert(id),
                "slot {id} handed out while still live (step {step})"
            );
            live.push(id);
            allocated.push(id);
        } else {
            let idx = rng.random_range(0..live.len());
            let id = live.swap_remove(idx);
            assert!(live_set.remove(&id));
            arena.free(id);
            freed.push(id);
        }
        peak = peak.max(live.len());
        assert_eq!(arena.live(), live.len(), "live() accounting diverged");
        // The arena never grows past the high-water mark of concurrent
        // liveness: every slot beyond it must come from recycling.
        assert!(
            arena.capacity() <= peak,
            "capacity {} exceeded peak liveness {peak}",
            arena.capacity()
        );
    }
    (allocated, freed)
}

#[test]
fn churn_never_aliases_and_stays_bounded() {
    for seed in 0..8 {
        churn(seed, 4_000);
    }
}

#[test]
fn identical_sequences_yield_identical_ids() {
    for seed in [1, 7, 42] {
        let a = churn(seed, 2_500);
        let b = churn(seed, 2_500);
        assert_eq!(a, b, "same ops must recycle the same slots (seed {seed})");
    }
}

#[test]
fn recycling_is_lifo() {
    let mut arena = PacketArena::new();
    let ids: Vec<PacketId> = (0..16)
        .map(|i| arena.alloc(SimTime::from_ns(i), NodeId(0), 0, 400, i, cold()))
        .collect();
    // Free in an arbitrary fixed order; re-allocation must hand the
    // slots back in exactly the reverse of it.
    let free_order = [3u32, 11, 5, 0, 15, 8];
    for &id in &free_order {
        arena.free(id);
    }
    let realloc: Vec<PacketId> = (0..free_order.len())
        .map(|i| {
            arena.alloc(
                SimTime::from_ns(100 + i as u64),
                NodeId(1),
                1,
                400,
                0,
                cold(),
            )
        })
        .collect();
    let expect: Vec<PacketId> = free_order.iter().rev().copied().collect();
    assert_eq!(realloc, expect, "free list must recycle LIFO");
    assert_eq!(
        arena.capacity(),
        ids.len(),
        "no growth while free slots exist"
    );
    assert_eq!(arena.live(), 16);
}
