//! Property and differential pinning of the online RWA control plane
//! (DESIGN.md §9).
//!
//! Three layers:
//!
//! * **Solver-level property**: over seeded random cut/repair
//!   interleavings, after every delta the warm-started incremental plan
//!   is valid on the degraded ring and uses no more channels than a
//!   from-scratch greedy solve of the same ring; once every fiber is
//!   repaired the plan converts to a complete [`Assignment`] that
//!   passes [`Assignment::validate`]. Debug asserts inside
//!   `OnlineRwa::apply` (active here) cross-check the warm and fresh
//!   solvers' unroutable sets on every delta.
//! * **Budget**: a zero-budget controller completes every delta via the
//!   greedy fallback — degradation, never an abort.
//! * **Scenario-level determinism**: the full packet experiment is
//!   bit-identical at 1, 2, and 8 workers, the retune-modeled run is
//!   measurably different from the instant-retune baseline, and repair
//!   reconvergence flows through the incremental `RouteTable::patch`
//!   path (its own debug_assert cross-checks against the from-scratch
//!   build in these runs).

use quartz_core::channel::online::{
    assign_best_degraded, OnlineRwa, ResolveOutcome, RingDelta, DEFAULT_NODE_BUDGET,
};
use quartz_core::pool::{unit_seed, ThreadPool};
use quartz_core::rng::StdRng;
use quartz_netsim::faults::FaultKind;
use quartz_netsim::rwa::{churn_scenario, churn_units, random_churn, ChurnScenarioConfig};
use quartz_netsim::time::SimTime;
use quartz_optics::retune::RetuneModel;

/// A seeded random interleaving of cut and repair deltas that is always
/// legal (never cuts a dead fiber or repairs a live one) and ends fully
/// repaired.
fn random_deltas(m: usize, steps: usize, seed: u64) -> Vec<RingDelta> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dead: Vec<usize> = Vec::new();
    let mut out = Vec::with_capacity(steps + m);
    for _ in 0..steps {
        let cut = dead.is_empty() || (dead.len() < m && rng.random_range(0..2) == 0);
        if cut {
            let alive: Vec<usize> = (0..m).filter(|f| !dead.contains(f)).collect();
            let f = alive[rng.random_range(0..alive.len())];
            dead.push(f);
            out.push(RingDelta::FiberCut(f));
        } else {
            let f = dead.swap_remove(rng.random_range(0..dead.len()));
            out.push(RingDelta::FiberRepair(f));
        }
    }
    // Heal everything so the run can finish on a complete assignment.
    dead.sort_unstable();
    for f in dead {
        out.push(RingDelta::FiberRepair(f));
    }
    out
}

#[test]
fn incremental_plan_is_valid_and_no_worse_than_scratch_under_churn() {
    for m in [7usize, 9, 12] {
        for unit in 0..4u64 {
            let seed = unit_seed(0x5EED_0001, unit);
            let deltas = random_deltas(m, 10, seed);
            let mut rwa = OnlineRwa::new(m, DEFAULT_NODE_BUDGET);
            for delta in &deltas {
                let r = rwa.apply(*delta);
                let dead = rwa.dead_mask();
                rwa.plan()
                    .validate(dead)
                    .unwrap_or_else(|e| panic!("m={m} seed={seed:#x} {delta:?}: {e}"));
                let scratch = assign_best_degraded(m, dead);
                assert_eq!(r.fresh_channels, scratch.channels_used());
                assert!(
                    r.channels <= scratch.channels_used(),
                    "m={m} seed={seed:#x} {delta:?}: incremental {} > scratch {}",
                    r.channels,
                    scratch.channels_used()
                );
                assert_eq!(rwa.plan().unroutable(), scratch.unroutable());
            }
            // Fully healed: the degraded plan is a complete assignment.
            assert_eq!(rwa.dead_mask(), 0);
            let plan = rwa
                .plan()
                .clone()
                .into_assignment()
                .expect("healed ring has no unroutable pairs");
            plan.validate().expect("healed plan is a valid assignment");
            assert!(plan.channels_used() <= assign_best_degraded(m, 0).channels_used());
        }
    }
}

#[test]
fn zero_budget_churn_degrades_but_never_aborts() {
    let m = 9;
    for unit in 0..3u64 {
        let deltas = random_deltas(m, 8, unit_seed(0x5EED_0002, unit));
        let mut rwa = OnlineRwa::new(m, 0);
        let mut fallbacks = 0;
        for delta in &deltas {
            let r = rwa.apply(*delta);
            assert!(r.channels <= r.fresh_channels);
            if r.outcome == ResolveOutcome::BudgetFallback {
                fallbacks += 1;
            }
            rwa.plan().validate(rwa.dead_mask()).unwrap();
        }
        assert!(fallbacks > 0, "a zero budget must trip the fallback");
        rwa.plan()
            .clone()
            .into_assignment()
            .expect("healed")
            .validate()
            .unwrap();
    }
}

#[test]
fn churn_scenario_is_bit_identical_at_1_2_and_8_workers() {
    let cfg = ChurnScenarioConfig::quick(0x0B5);
    let units = 4;
    let one = churn_units(&cfg, units, &ThreadPool::new(1));
    let two = churn_units(&cfg, units, &ThreadPool::new(2));
    let eight = churn_units(&cfg, units, &ThreadPool::new(8));
    // ChurnScenarioReport's PartialEq is float-exact: this is
    // bit-identity, not approximate agreement.
    assert_eq!(one, two);
    assert_eq!(one, eight);
}

#[test]
fn retune_latency_is_measurable_against_the_instant_baseline() {
    let cfg = ChurnScenarioConfig::quick(0x0D7);
    let mut instant_cfg = cfg.clone();
    instant_cfg.retune = RetuneModel::instant();
    let real = churn_scenario(&cfg);
    let instant = churn_scenario(&instant_cfg);
    assert!(real.retunes > 0, "the scenario must force retunes");
    assert!(real.dark_ns_total > 0);
    assert_eq!(instant.dark_ns_total, 0);
    // The dark windows cost packets: reconfiguration is visible in the
    // drop/latency distributions, not just the control-plane counters.
    assert!(
        real.dropped > instant.dropped,
        "retune windows should drop packets: real {} vs instant {}",
        real.dropped,
        instant.dropped
    );
    assert_eq!(real.generated, instant.generated);
}

#[test]
fn repair_reconvergence_flows_through_the_patch_path() {
    // Every repair in the compiled plan triggers a Reroute through
    // RouteTable::patch (cross-checked against the from-scratch build
    // by its debug_assert, active in this test profile). The fault log
    // must show reconvergence closing both down and up transitions.
    use quartz_netsim::rwa::compile_churn;
    use quartz_netsim::{SimConfig, Simulator};
    use quartz_topology::builders::quartz_mesh;

    let q = quartz_mesh(9, 1, 10.0, 10.0);
    let churn = random_churn(
        9,
        2,
        (SimTime::from_us(200), SimTime::from_us(600)),
        Some(300_000),
        unit_seed(0x0E1, 1),
    );
    let compiled = compile_churn(&q, &churn, 20_000, 2_000_000, &RetuneModel::instant());
    let ups = compiled
        .plan
        .events()
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::LinkUp(_)))
        .count();
    assert!(ups > 0, "repairs must relight lightpaths");

    let mut sim = Simulator::new(
        q.net.clone(),
        SimConfig {
            seed: 0x0E1,
            reconvergence_ns: Some(50_000),
            ..SimConfig::default()
        },
    );
    sim.apply_fault_plan(&compiled.plan);
    sim.run(SimTime::from_ms(3));
    let log = sim.fault_log();
    assert_eq!(log.len(), compiled.plan.len());
    for rec in log {
        assert!(
            rec.reconverged_at.is_some(),
            "{:?} at {:?} never reconverged",
            rec.kind,
            rec.at
        );
        assert!(rec.reconverged_at.unwrap() >= rec.at);
    }
    assert!(log.iter().any(|r| matches!(r.kind, FaultKind::LinkUp(_))));
}
