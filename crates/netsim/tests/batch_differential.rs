//! Differential test for the batched link drain: [`DrainMode::Batched`]
//! and [`DrainMode::PerPacket`] must produce identical runs — same
//! stats, same recorded event stream, same ndjson bytes — on a loaded
//! VLB mesh with bursty traffic, a congestion-controlled transfer under
//! ECN, and a mid-run fiber cut plus repair. The pair is re-run across
//! 1, 2, and 8 worker threads to pin that no hidden shared state leaks
//! between concurrent simulations.

use quartz_netsim::sim::{DrainMode, FlowKind, SimConfig, Simulator, VlbConfig};
use quartz_netsim::time::SimTime;
use quartz_netsim::transport::TcpVariant;
use quartz_netsim::FaultPlan;
use quartz_obs::{Event, MemoryRecorder, NdjsonRecorder, Recorder};
use quartz_topology::builders::quartz_mesh;

/// Everything observable about one run, in comparable form.
#[derive(Debug, PartialEq)]
struct Digest {
    generated: u64,
    delivered: u64,
    dropped: u64,
    /// Per tag: count, mean bits, ci95 bits, p50, p99, max, bytes,
    /// mean-hops bits, hop distribution.
    per_tag: Vec<(u32, TagDigest)>,
    faults: usize,
    events: Vec<Event>,
    ndjson: Vec<u8>,
}

#[derive(Debug, PartialEq)]
struct TagDigest {
    count: usize,
    mean_bits: u64,
    ci95_bits: u64,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    bytes: u64,
    mean_hops_bits: u64,
    hop_dist: Vec<(u32, usize)>,
}

/// One full scenario run under `drain`: VLB detours, Poisson echo +
/// burst cross-traffic, a DCTCP transfer with ECN marking, and a ring
/// fiber cut at 0.5 ms repaired at 1.2 ms (control plane reconverges
/// 50 µs after each).
fn run(drain: DrainMode) -> Digest {
    let q = quartz_mesh(4, 4, 10.0, 10.0);
    // First switch-switch link: cutting it forces reroutes (and VLB
    // detours around the gap) while packets are in flight.
    let ring_link = q
        .net
        .links()
        .find(|l| q.switches.contains(&l.a) && q.switches.contains(&l.b))
        .expect("mesh has ring links")
        .id;
    let mut sim = Simulator::new(
        q.net.clone(),
        SimConfig {
            seed: 0xD1FF,
            vlb: Some(VlbConfig {
                fraction: 0.3,
                domains: vec![q.switches.clone()],
            }),
            ecn_threshold_bytes: Some(30_000),
            reconvergence_ns: Some(50_000),
            drain,
            ..SimConfig::default()
        },
    );
    let stop = SimTime::from_ms(2);
    let n = q.hosts.len();
    for (i, &src) in q.hosts.iter().enumerate() {
        let dst = q.hosts[(i + 5) % n];
        match i % 3 {
            // Open-loop echo streams (round trips stress both link
            // directions and the response emission path).
            0 => sim.add_flow(
                src,
                dst,
                400,
                FlowKind::Poisson {
                    mean_gap_ns: 1_000.0,
                    stop,
                    respond: true,
                },
                0,
                SimTime::ZERO,
            ),
            // Bursts: back-to-back runs are exactly what the batched
            // drain coalesces, so they must still land on the same
            // (time, seq) keys.
            1 => sim.add_flow(
                src,
                dst,
                400,
                FlowKind::Burst {
                    burst_pkts: 24,
                    period_ns: 40_000,
                    stop,
                },
                1,
                SimTime::ZERO,
            ),
            // One-way Poisson fill.
            _ => sim.add_flow(
                src,
                dst,
                400,
                FlowKind::Poisson {
                    mean_gap_ns: 900.0,
                    stop,
                    respond: false,
                },
                2,
                SimTime::ZERO,
            ),
        };
    }
    // A congestion-controlled transfer through the loaded mesh: ECN
    // marks feed DCTCP, ACKs ride the reverse path, RTO timers arm.
    sim.add_flow(
        q.hosts[0],
        q.hosts[n - 1],
        1_000,
        FlowKind::Transport {
            total_bytes: 300_000,
            variant: TcpVariant::Dctcp,
        },
        3,
        SimTime::ZERO,
    );
    let mut plan = FaultPlan::new();
    plan.link_down(ring_link, SimTime::from_ns(500_000))
        .link_up(ring_link, SimTime::from_ns(1_200_000));
    sim.apply_fault_plan(&plan);
    sim.set_recorder(Box::new(MemoryRecorder::new()));
    sim.run(SimTime::from_ms(3));

    let events = sim.take_recorder().expect("recorder attached").finish();
    // Re-encode through the streaming backend: the ndjson bytes are
    // what the trace-determinism contract is stated over.
    let mut nd = NdjsonRecorder::new(Vec::new());
    for ev in &events {
        nd.record(ev);
    }
    let ndjson = nd.into_inner();

    let stats = sim.stats();
    let per_tag = stats
        .tags()
        .into_iter()
        .map(|tag| {
            let s = stats.summary(tag);
            (
                tag,
                TagDigest {
                    count: s.count,
                    mean_bits: s.mean_ns.to_bits(),
                    ci95_bits: s.ci95_ns.to_bits(),
                    p50_ns: s.p50_ns,
                    p99_ns: s.p99_ns,
                    max_ns: s.max_ns,
                    bytes: stats.delivered_bytes(tag),
                    mean_hops_bits: stats.mean_hops(tag).to_bits(),
                    hop_dist: stats.hop_distribution(tag),
                },
            )
        })
        .collect();
    Digest {
        generated: stats.generated,
        delivered: stats.delivered,
        dropped: stats.dropped,
        per_tag,
        faults: sim.fault_log().len(),
        events,
        ndjson,
    }
}

#[test]
fn batched_drain_matches_per_packet_schedule() {
    let batched = run(DrainMode::Batched);
    let per_packet = run(DrainMode::PerPacket);
    assert!(batched.delivered > 0, "scenario must carry traffic");
    assert!(batched.dropped > 0, "fault window must cost packets");
    assert!(!batched.events.is_empty(), "recorder must observe the run");
    assert_eq!(
        batched, per_packet,
        "batched drain diverged from the per-packet schedule"
    );
}

#[test]
fn drain_modes_agree_across_worker_counts() {
    let reference = run(DrainMode::Batched);
    for workers in [1usize, 2, 8] {
        let digests: Vec<(Digest, Digest)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| s.spawn(|| (run(DrainMode::Batched), run(DrainMode::PerPacket))))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (batched, per_packet) in &digests {
            assert_eq!(
                batched, &reference,
                "batched run diverged at {workers} workers"
            );
            assert_eq!(
                per_packet, &reference,
                "per-packet run diverged at {workers} workers"
            );
        }
    }
}
