//! # quartz-flowsim
//!
//! Flow-level throughput analysis for the Quartz reproduction.
//!
//! §5.1 of the paper: "Given Quartz's high path diversity, it is
//! difficult to analytically calculate its bisection bandwidth. Instead,
//! we use simulations to compare the aggregate throughput of a Quartz
//! network using both one- and two-hop paths to that of an ideal (full
//! bisection bandwidth) network for typical DCN workloads."
//!
//! This crate answers those questions at the flow level:
//!
//! * [`waterfill`] — a weighted progressive-filling solver computing the
//!   **max-min fair** rate allocation for flows over capacitated links
//!   (the steady state TCP-like transport converges toward);
//! * [`fabric`] — abstract capacity models: the Quartz mesh with
//!   ECMP-direct or VLB split routing (§3.4), the ideal full-bisection
//!   fabric, and oversubscribed (1/2, 1/4 bisection) fabrics;
//! * [`matrix`] — the three §5.1 traffic patterns: random permutation,
//!   incast (10:1), and rack-level shuffle;
//! * [`throughput`] — normalized-throughput computation ("equals 1 if
//!   every server can send traffic at its full rate"), reproducing
//!   Figure 10;
//! * [`degraded`] — the same capacity model after fiber cuts: severed
//!   channels carry nothing and their traffic detours over surviving
//!   paths, quantifying how gracefully the mesh loses throughput.

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod degraded;
pub mod fabric;
pub mod matrix;
pub mod throughput;
pub mod waterfill;

pub use degraded::DegradedQuartzFabric;
pub use fabric::{Fabric, OversubscribedFabric, QuartzFabric};
pub use matrix::{incast, rack_shuffle, random_permutation, Demand};
pub use throughput::{normalized_throughput, NormalizedThroughput};
pub use waterfill::{max_min_rates, Problem};
